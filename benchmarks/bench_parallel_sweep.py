#!/usr/bin/env python
"""Parallel sweep guard: determinism first, speedup second.

The supervised parallel engine (``repro sweep --jobs N``) shards sealed
simulation cells across worker processes.  Its contract has two halves,
and this guard makes both a CI failure instead of a slow drift:

1. **Determinism.**  The parallel result set must be *byte-identical* to
   the serial one — same cells, same payloads, same checkpoint contents —
   for a plain sweep grid and for a chaos grid spanning every built-in
   fault profile.  The canonical digest (sha256 over the sorted JSON of
   every cell payload) is also compared against the committed baseline in
   ``BENCH_parallel_sweep.json``: the simulation is seeded, so the digest
   is machine-independent and any change means results moved.
2. **Speedup.**  On a multi-core runner, ``--jobs 4`` must beat serial by
   the core-aware floor ``min(3.0, 0.75 * effective_cores)`` (the full
   3x on a 4-core CI runner).  On a single-core machine the floor is not
   enforceable — process-level parallelism cannot beat serial there — so
   the guard reports the ratio and enforces determinism only.

``--quick`` runs a 4-cell grid at ``--jobs 2`` and checks determinism
only (for fast CI smoke); ``--update-baseline`` records the current
digests after an intentional simulation change.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.faults.plan import PROFILES  # noqa: E402
from repro.harness.parallel import (  # noqa: E402
    chaos_parallel_cells,
    run_cells_parallel,
    sweep_parallel_cells,
)

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_parallel_sweep.json"
)

SCALE = 0.2
# Permanent-death profiles are excluded to keep the committed digest
# baseline stable across the degraded-mode work; they are covered (with
# their own baseline) by bench_degraded.py.
CHAOS_PROFILES = tuple(sorted(
    name for name in PROFILES
    if name != "none" and not PROFILES[name].permanent_death
))


def full_grid():
    """The guard's workload: a cache sweep plus an all-profile chaos grid."""
    cells = sweep_parallel_cells("cache", workload_scale=SCALE)
    cells += chaos_parallel_cells(
        apps=("agrep",), profiles=(None,) + CHAOS_PROFILES,
        workload_scale=SCALE,
    )
    return cells


def quick_grid():
    return sweep_parallel_cells("cache", workload_scale=SCALE)[:4]


def digest_of(results) -> str:
    """Canonical digest of a result set: order-independent, byte-exact."""
    canonical = json.dumps(results, sort_keys=True).encode()
    return hashlib.sha256(canonical).hexdigest()


def timed_run(cells, jobs: int):
    """One run of the grid; returns (results, quarantined, wall seconds)."""
    start = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        outcome = run_cells_parallel(
            cells, jobs=jobs,
            checkpoint_path=os.path.join(tmp, "bench.ckpt"),
            identity="bench-parallel-sweep",
            on_event=lambda message: print(f"  [supervisor] {message}",
                                           file=sys.stderr),
        )
    elapsed = time.perf_counter() - start
    return outcome, elapsed


def effective_cores(jobs: int) -> int:
    return min(jobs, os.cpu_count() or 1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count of the parallel leg (default 4)")
    parser.add_argument("--quick", action="store_true",
                        help="4-cell grid at --jobs 2, determinism only")
    parser.add_argument("--update-baseline", action="store_true",
                        help="record the current digests as the baseline")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path")
    args = parser.parse_args(argv)

    jobs = 2 if args.quick else args.jobs
    cells = quick_grid() if args.quick else full_grid()
    label = "quick" if args.quick else "full"
    print(f"{label} grid: {len(cells)} cells, serial vs --jobs {jobs}")

    serial, serial_s = timed_run(cells, jobs=1)
    parallel, parallel_s = timed_run(cells, jobs=jobs)

    for name, outcome in (("serial", serial), ("parallel", parallel)):
        if outcome.quarantined:
            print(f"FAIL: {name} run quarantined cells: "
                  f"{sorted(outcome.quarantined)}", file=sys.stderr)
            return 1
    if len(serial.results) != len(cells):
        print(f"FAIL: serial run completed {len(serial.results)} of "
              f"{len(cells)} cells", file=sys.stderr)
        return 1

    # -- determinism ---------------------------------------------------------
    serial_digest = digest_of(serial.results)
    parallel_digest = digest_of(parallel.results)
    print(f"serial:   {serial_s:7.2f} s  digest {serial_digest[:16]}…")
    print(f"parallel: {parallel_s:7.2f} s  digest {parallel_digest[:16]}…  "
          f"(workers spawned: {parallel.stats.workers_spawned}, "
          f"crashes: {parallel.stats.worker_crashes}, "
          f"timeouts: {parallel.stats.cell_timeouts})")
    if parallel_digest != serial_digest:
        diverging = sorted(
            key for key in serial.results
            if json.dumps(serial.results[key], sort_keys=True)
            != json.dumps(parallel.results.get(key), sort_keys=True)
        )
        print(f"FAIL: parallel run diverged from serial in "
              f"{len(diverging)} cell(s): {diverging[:5]}", file=sys.stderr)
        return 1
    print("determinism: ok (parallel byte-identical to serial)")

    # -- baseline digest -----------------------------------------------------
    digest_key = f"digest_{label}"
    if args.update_baseline:
        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
        except (OSError, ValueError):
            baseline = {}
        baseline.update({
            "workload": f"cache sweep + chaos grid, scale={SCALE:g}",
            "cells_full": len(full_grid()),
            "cells_quick": len(quick_grid()),
            digest_key: serial_digest,
        })
        with open(args.baseline, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline updated: {args.baseline} ({digest_key})")
        return 0

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print(f"FAIL: no baseline at {args.baseline}; run with "
              f"--update-baseline first", file=sys.stderr)
        return 1
    expected = baseline.get(digest_key)
    if expected is None:
        print(f"FAIL: baseline has no {digest_key!r}; run this mode with "
              f"--update-baseline", file=sys.stderr)
        return 1
    if serial_digest != expected:
        print(f"FAIL: result digest {serial_digest} does not match the "
              f"baseline {expected} — simulation results changed; update "
              f"the baseline if intentional", file=sys.stderr)
        return 1
    print("baseline digest: ok")

    # -- speedup (core-aware) ------------------------------------------------
    if args.quick:
        print("speedup: skipped (--quick checks determinism only)")
        return 0
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cores = effective_cores(jobs)
    if cores < 2:
        print(f"speedup: {speedup:.2f}x at --jobs {jobs} on {cores} core(s) "
              f"— floor not enforceable on a single-core machine")
        return 0
    floor = min(3.0, 0.75 * cores)
    verdict = "ok" if speedup >= floor else "REGRESSION"
    print(f"speedup: {speedup:.2f}x at --jobs {jobs} on {cores} cores "
          f"(floor {floor:.2f}x) -> {verdict}")
    if speedup < floor:
        print(f"FAIL: parallel speedup {speedup:.2f}x is below the "
              f"{floor:.2f}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
