#!/usr/bin/env python
"""Run-registry guard: recording must be (nearly) free, and byte-stable.

The persistent run registry (``--registry``) rides along on every sweep:
workers append sidecar records, the parent merges and compacts.  Its
contract has two halves, and this guard makes both a CI failure instead
of a slow drift:

1. **Overhead.**  Recording a sweep into the registry must cost less
   than ``TOLERANCE_PCT`` (2%) of the uninstrumented sweep's wall time —
   the ledger is bookkeeping, not a second workload.  The query side
   (regression check + similarity search + listing over the freshly
   written ledger) is held to the same bound.
2. **Determinism.**  The compacted registry file is content-addressed
   and sorted, so its bytes are machine-independent; the committed
   sha256 in ``BENCH_registry.json`` pins them.  Any change means run
   identity (fingerprints, record schema) moved — update the baseline
   only for an intentional schema/identity change.

``--quick`` runs a 3-cell grid once and checks determinism only (the
overhead ratio is reported but not enforced — too noisy at that size);
``--update-baseline`` records the current digest.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.harness.parallel import (  # noqa: E402
    run_cells_parallel,
    sweep_parallel_cells,
)

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_registry.json"
)

SCALE = 0.2
TOLERANCE_PCT = 2.0
META = {"kind": "sweep-cell", "code_version": "bench-registry"}


def grid(quick: bool):
    cells = sweep_parallel_cells("cache", workload_scale=SCALE)
    return cells[:3] if quick else cells


def timed_sweep(cells, registry_path=None) -> float:
    start = time.perf_counter()
    outcome = run_cells_parallel(
        cells, jobs=1,
        registry_path=registry_path,
        registry_meta=META if registry_path else None,
    )
    elapsed = time.perf_counter() - start
    if outcome.quarantined or len(outcome.results) != len(cells):
        raise RuntimeError(
            f"sweep incomplete: {len(outcome.results)}/{len(cells)} cells, "
            f"quarantined {sorted(outcome.quarantined)}"
        )
    return elapsed


def timed_queries(registry_path: str) -> float:
    from repro.registry.regression import check_all
    from repro.registry.similarity import similar_runs
    from repro.registry.store import RunRegistry

    start = time.perf_counter()
    registry = RunRegistry.open(registry_path)
    try:
        records = registry.records()
        check_all(registry, min_baseline=1)
        similar_runs(registry, records[0])
    finally:
        registry.close()
    return time.perf_counter() - start


def file_digest(path: str) -> str:
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="3-cell grid, one iteration, determinism only")
    parser.add_argument("--iterations", type=int, default=2,
                        help="timing iterations per leg (min is kept)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="record the current registry digest")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path")
    args = parser.parse_args(argv)

    cells = grid(args.quick)
    label = "quick" if args.quick else "full"
    iterations = 1 if args.quick else max(1, args.iterations)
    print(f"{label} grid: {len(cells)} cells at scale {SCALE:g}, "
          f"min of {iterations} iteration(s) per leg")

    plain_s = min(timed_sweep(cells) for _ in range(iterations))

    recorded_s = float("inf")
    query_s = float("inf")
    digest = None
    for _ in range(iterations):
        with tempfile.TemporaryDirectory() as tmp:
            registry_path = os.path.join(tmp, "registry.jsonl")
            recorded_s = min(recorded_s, timed_sweep(cells, registry_path))
            query_s = min(query_s, timed_queries(registry_path))
            current = file_digest(registry_path)
        if digest is not None and current != digest:
            print("FAIL: registry bytes differ between identical sweeps",
                  file=sys.stderr)
            return 1
        digest = current

    write_pct = 100.0 * (recorded_s - plain_s) / plain_s
    query_pct = 100.0 * query_s / plain_s
    print(f"uninstrumented: {plain_s:7.2f} s")
    print(f"with registry:  {recorded_s:7.2f} s  "
          f"(write overhead {write_pct:+.2f}%)")
    print(f"queries:        {query_s:7.3f} s  ({query_pct:.2f}% of a sweep)")
    print(f"registry digest {digest[:16]}…")

    if args.quick:
        print(f"overhead guard: skipped (--quick; bound is "
              f"<{TOLERANCE_PCT:g}% in the full run)")
    else:
        for what, pct in (("write", write_pct), ("query", query_pct)):
            if pct >= TOLERANCE_PCT:
                print(f"FAIL: registry {what} overhead {pct:.2f}% exceeds "
                      f"the {TOLERANCE_PCT:g}% bound", file=sys.stderr)
                return 1
        print(f"overhead guard: ok (write and query both "
              f"<{TOLERANCE_PCT:g}%)")

    digest_key = f"registry_digest_{label}"
    if args.update_baseline:
        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
        except (OSError, ValueError):
            baseline = {}
        baseline.update({
            "workload": f"cache sweep cells, scale={SCALE:g}, serial",
            "cells_full": len(grid(False)),
            "cells_quick": len(grid(True)),
            "tolerance_pct": TOLERANCE_PCT,
            digest_key: digest,
        })
        with open(args.baseline, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline updated: {args.baseline} ({digest_key})")
        return 0

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print(f"FAIL: no baseline at {args.baseline}; run with "
              f"--update-baseline first", file=sys.stderr)
        return 1
    expected = baseline.get(digest_key)
    if expected is None:
        print(f"FAIL: baseline has no {digest_key!r}; run this mode with "
              f"--update-baseline", file=sys.stderr)
        return 1
    if digest != expected:
        print(f"FAIL: registry digest {digest} does not match the baseline "
              f"{expected} — record identity or schema changed; update the "
              f"baseline if intentional", file=sys.stderr)
        return 1
    print("baseline digest: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
