"""Table 6: performance side-effects of speculation.

Paper: the speculating applications have larger memory footprints (shadow
code, COW copies), more page reclaims and faults, and generate extraneous
signals from computing on erroneous data (up to 39 for Gnuld); the manual
applications look essentially like the originals.
"""

from conftest import banner, headline_matrix, once

from repro.harness.tables import format_table6


def test_table6_side_effects(benchmark):
    matrix = once(benchmark, headline_matrix)
    print(banner("Table 6 - performance side-effects"))
    print(format_table6(matrix))

    for app, results in matrix.items():
        original = results["original"]
        speculating = results["speculating"]
        manual = results["manual"]

        # Footprint: speculating > original; manual ~ original.
        assert speculating.footprint_bytes > original.footprint_bytes
        assert manual.footprint_bytes <= original.footprint_bytes * 1.2

        # Reclaims/faults rise under speculation.
        assert speculating.page_reclaims >= original.page_reclaims
        assert speculating.page_faults >= original.page_faults

    # Signals: only Gnuld computes on erroneous data aggressively enough
    # to fault (paper: 39 for Gnuld, 0 and 2 for the others).
    assert matrix["gnuld"]["speculating"].spec_signals > 0
    assert matrix["agrep"]["speculating"].spec_signals == 0
