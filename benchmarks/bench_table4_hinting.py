"""Table 4: hinting statistics.

Paper: speculating Agrep and XDataSlice hint nearly as many reads as their
manual counterparts (68.1%/97.5% of calls; >99% of bytes); Gnuld manages
only 54.9% against the manual 78.4% and issues 2,336 inaccurate hints —
the signature of its data-dependent reads.
"""

from conftest import banner, headline_matrix, once

from repro.harness.tables import format_table4


def test_table4_hinting(benchmark):
    matrix = once(benchmark, headline_matrix)
    print(banner("Table 4 - hinting statistics"))
    print(format_table4(matrix))

    agrep = matrix["agrep"]["speculating"]
    gnuld = matrix["gnuld"]["speculating"]
    xds = matrix["xds"]["speculating"]

    # Agrep: EOF reads (one per file, non-data-returning) are unhinted,
    # so %calls sits well below %bytes ("over 99% of Agrep's read calls
    # were hinted" once those are discounted).
    assert agrep.pct_calls_hinted < agrep.pct_bytes_hinted - 15
    assert agrep.pct_bytes_hinted > 90

    # Agrep/XDataSlice issue (essentially) no inaccurate hints.
    assert agrep.inaccurate_hints <= 2
    assert xds.inaccurate_hints <= 10

    # Gnuld's data dependences produce a stream of erroneous hints.
    assert gnuld.inaccurate_hints > 100

    # XDataSlice hints nearly everything.
    assert xds.pct_calls_hinted > 85

    # Manual variants hint at least as large a share of calls as the
    # speculating ones (paper: 68.3 vs 68.1, 78.4 vs 54.9, 97.6 vs 97.5).
    for app in ("agrep", "gnuld", "xds"):
        spec = matrix[app]["speculating"]
        manual = matrix[app]["manual"]
        assert manual.pct_calls_hinted >= spec.pct_calls_hinted - 3
