"""Figure 4: runtime overhead of supporting speculative execution.

Paper: with TIP configured to ignore hints, the speculating applications
were "no more than 4%, and as little as 1%, slower than the original
applications" — the worst-case cost of the transformation minus any
erroneous-hint effects.
"""

from conftest import banner, once

from repro.harness import paper
from repro.harness.config import Variant
from repro.harness.experiments import run_one
from repro.harness.tables import format_fig4
from repro.params import SystemConfig, TipParams


def run_overheads():
    system = SystemConfig().replace(tip=TipParams(ignore_hints=True))
    overheads = {}
    for app in ("agrep", "gnuld", "xds"):
        original = run_one(app, Variant.ORIGINAL, system=system)
        speculating = run_one(app, Variant.SPECULATING, system=system)
        overheads[app] = (
            100.0 * (speculating.cycles - original.cycles) / original.cycles
        )
    return overheads


def test_fig4_overhead(benchmark):
    overheads = once(benchmark, run_overheads)
    print(banner("Figure 4 - runtime overhead (TIP ignoring hints)"))
    print(format_fig4(overheads))
    for app, overhead in overheads.items():
        assert overhead <= paper.FIG4_MAX_OVERHEAD_PCT, (
            f"{app}: overhead {overhead:.2f}% exceeds the paper's 4% bound"
        )
        assert overhead >= -1.0, f"{app}: speculating run implausibly faster"
