"""Ablation (Sections 3 and 5): multiprogrammed CPU contention.

Paper, Section 3: "if there is contention for the processor or the I/O
system as, for example, with a multithreaded server or in a
multiprogrammed environment, then speculative execution will have less
opportunity to improve performance."

We run the speculating Agrep alone and alongside a compute-bound process:
under strict priorities, any runnable original thread preempts the
speculating thread, so hint generation loses its stall-time cycles.
"""

from conftest import banner, once

from repro.apps.agrep import AgrepWorkload, build_agrep
from repro.fs.filesystem import FileSystem
from repro.harness.config import ExperimentConfig
from repro.harness.runner import build_system
from repro.spechint.tool import SpecHintTool
from repro.vm.assembler import Assembler
from repro.vm.isa import SYS_EXIT, Reg


def spinner_binary(iterations=3_000):
    asm = Assembler("spinner")
    asm.entry("main")
    with asm.function("main"):
        asm.li(Reg.s0, 0)
        asm.label("spin")
        asm.li(Reg.at, iterations)
        asm.bge(Reg.s0, Reg.at, "done")
        asm.cwork(50_000, 0, 0)
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("spin")
        asm.label("done")
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
    return asm.finish()


def run_agrep(contended: bool):
    config = ExperimentConfig(app="agrep").resolved_system()
    fs = FileSystem(allocation_jitter_blocks=24, seed=config.seed)
    binary = SpecHintTool().transform(build_agrep(fs, AgrepWorkload()))
    system = build_system(config, fs)
    agrep = system.kernel.spawn(binary)
    if contended:
        system.kernel.spawn(spinner_binary())
    system.kernel.run()
    return system, agrep


def run_comparison():
    results = {}
    for contended in (False, True):
        system, agrep = run_agrep(contended)
        results[contended] = (
            agrep.spec_thread.cpu_cycles,
            agrep.spec.hints_issued,
            system.stats.get("tip.hinted_read_calls"),
        )
    return results


def test_ablation_multiprogramming(benchmark):
    results = once(benchmark, run_comparison)
    print(banner("Ablation - CPU contention starves speculation"))
    for contended, (spec_cpu, hints, hinted_reads) in results.items():
        label = "with competitor" if contended else "alone          "
        print(f"{label}: speculating-thread CPU {spec_cpu / 1e6:7.2f} Mcycles, "
              f"{hints} hints issued, {hinted_reads} reads hinted")

    alone = results[False]
    contended = results[True]
    # The competitor steals the stall-time cycles speculation lives on.
    assert contended[0] < alone[0] * 0.9
    assert contended[2] <= alone[2]
