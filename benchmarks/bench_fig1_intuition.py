"""Figure 1: the intuition example.

"Consider an application which issues four read requests for uncached data
and processes for a million cycles before each of these read requests.
Assume that the data is distributed over three disks, that the disk access
latency is three million cycles... Performing speculative execution could
more than halve the execution time of this example."

We build exactly that application and system and check the >2x claim.
"""

from __future__ import annotations

import dataclasses

from conftest import banner, once

from repro.fs.filesystem import FileSystem
from repro.harness.runner import build_system
from repro.params import (
    ArrayParams,
    BLOCK_SIZE,
    CacheParams,
    CpuParams,
    DiskParams,
    SystemConfig,
)
from repro.spechint.tool import SpecHintTool
from repro.vm.assembler import Assembler
from repro.vm.isa import SYS_EXIT, SYS_OPEN, SYS_READ, Reg

#: A ~three-million-cycle disk access on the 233 MHz processor.  Slightly
#: above 3M so the third hint lands strictly inside the first stall (the
#: paper's idealized example has speculation proceed at *exactly* normal
#: pace, a razor-edge tie).
DISK_CYCLES = 3_300_000
DISK_ACCESS_S = DISK_CYCLES / 233_000_000


def figure1_system_config() -> SystemConfig:
    from repro.params import SpecHintParams

    # The paper's example abstracts away every overhead: speculation runs
    # at exactly the pace of normal execution.
    idealized_cpu = CpuParams(
        syscall_cycles=0,
        hintlog_check_cycles=0,
        restart_request_cycles=0,
        spec_init_cycles=0,
        context_switch_cycles=0,
        read_copy_cycles_per_byte=0.0,
        page_reclaim_cycles=0,
        page_fault_cycles=0,
    )
    idealized_spechint = SpecHintParams(
        restart_fixed_cycles=0,
        restart_stack_copy_cycles_per_byte=0.0,
    )
    return SystemConfig(
        cpu=idealized_cpu,
        disk=DiskParams(
            positioning_s=DISK_ACCESS_S,
            transfer_bps=1e12,       # negligible transfer time
            track_buffer_bps=1e12,
            track_readahead_blocks=0,  # no drive read-ahead in the example
            overhead_s=0.0,
        ),
        array=ArrayParams(ndisks=3, stripe_unit=BLOCK_SIZE),
        cache=CacheParams(capacity_blocks=64, max_readahead_blocks=0),
        spechint=idealized_spechint,
    )


#: The four blocks read: 0, 1, 2 land on disks 0, 1, 2; block 9 is back on
#: disk 0 at a non-adjacent physical position (like the paper's Figure 1,
#: where disk 1 services both the first and the last read).
READ_BLOCKS = (0, 1, 2, 9)


def figure1_binary():
    asm = Assembler("figure1")
    asm.data_asciiz("path", "data")
    asm.data_space("buf", BLOCK_SIZE)
    asm.data_words("offsets", [b * BLOCK_SIZE for b in READ_BLOCKS])
    asm.entry("main")
    with asm.function("main"):
        asm.la(Reg.a0, "path")
        asm.syscall(SYS_OPEN)
        asm.mov(Reg.s1, Reg.v0)
        asm.li(Reg.s0, 0)
        asm.label("loop")
        asm.li(Reg.at, len(READ_BLOCKS))
        asm.bge(Reg.s0, Reg.at, "done")
        asm.cwork(1_000_000, 0, 0)  # one million cycles of processing
        asm.la(Reg.t0, "offsets")
        asm.shli(Reg.t1, Reg.s0, 3)
        asm.add(Reg.t0, Reg.t0, Reg.t1)
        asm.load(Reg.a1, Reg.t0, 0)
        asm.mov(Reg.a0, Reg.s1)
        asm.li(Reg.a2, 0)
        asm.syscall(6)  # lseek SEEK_SET
        asm.mov(Reg.a0, Reg.s1)
        asm.la(Reg.a1, "buf")
        asm.li(Reg.a2, BLOCK_SIZE)
        asm.syscall(SYS_READ)
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("loop")
        asm.label("done")
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
    return asm.finish()


def run(transform: bool) -> int:
    fs = FileSystem()
    fs.create("data", bytes(12 * BLOCK_SIZE))
    binary = figure1_binary()
    if transform:
        binary = SpecHintTool().transform(binary)
    system = build_system(figure1_system_config(), fs)
    system.kernel.spawn(binary)
    system.kernel.run()
    return system.clock.now


def test_fig1_intuition(benchmark):
    def experiment():
        return run(transform=False), run(transform=True)

    normal, speculating = once(benchmark, experiment)
    speedup = normal / speculating
    print(banner("Figure 1 - how speculative execution reduces stall time"))
    print(f"normal execution:      {normal / 1e6:7.2f} Mcycles "
          f"(paper: ~16 Mcycles)")
    print(f"speculative execution: {speculating / 1e6:7.2f} Mcycles "
          f"(paper: ~7 Mcycles)")
    print(f"speedup: {speedup:.2f}x  (paper: 'more than halve' => >2x)")
    assert normal >= 15_000_000  # 4 x (1M compute + ~3M stall)
    assert speedup > 2.0
