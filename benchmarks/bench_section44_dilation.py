"""Section 4.4: dilation factors and hint-rate analysis.

Paper: "the ratio between the median number of cycles between hint calls
and the median number of cycles between read calls — 7.5, 1.6 and 1.3 for
Agrep, Gnuld and XDataSlice ... larger than one mainly due to the
copy-on-write checks performed during speculative execution.  Accordingly,
of our three applications, the speculating Agrep generates hints at by far
the slowest rate."
"""

from conftest import banner, headline_matrix, once

from repro.harness import paper


def test_section44_dilation_factors(benchmark):
    matrix = once(benchmark, headline_matrix)
    print(banner("Section 4.4 - dilation factors"))
    print(f"{'benchmark':<12} {'read interval':>14} {'hint interval':>14} "
          f"{'dilation':>9} {'paper':>7}")
    dilations = {}
    for app in ("agrep", "gnuld", "xds"):
        result = matrix[app]["speculating"]
        dilations[app] = result.dilation_factor
        print(
            f"{app:<12} {result.median_read_interval:>13.0f}c "
            f"{result.median_hint_interval:>13.0f}c "
            f"{result.dilation_factor:>9.2f} "
            f"{paper.SECTION44_DILATION[app]:>7.1f}"
        )

    # Every dilation factor exceeds one (COW checks slow speculation).
    for app, dilation in dilations.items():
        assert dilation > 1.0, f"{app}: dilation {dilation:.2f} <= 1"

    # Agrep's load-dense search loop dilates by far the most.
    assert dilations["agrep"] > 2 * dilations["gnuld"]
    assert dilations["agrep"] > 2 * dilations["xds"]

    # Gnuld and XDataSlice sit in the paper's 1.3-1.6 neighbourhood.
    assert 1.0 < dilations["gnuld"] < 3.0
    assert 1.0 < dilations["xds"] < 3.0
