"""Extension: the Table 1 Postgres join, automatically transformed.

Table 1 lists Patterson's manually hinted Postgres join: 48 % improvement
with 20 % of outer tuples matching and 69 % with 80 %.  The paper never
ran SpecHint over it — this bench does, exercising a database access
pattern (sequential outer scan + data-dependent index probes) through the
whole pipeline.
"""

from conftest import banner, once

from repro.harness.config import ExperimentConfig, Variant
from repro.harness.runner import run_experiment

PAPER_MANUAL = {"postgres20": 48.0, "postgres80": 69.0}


def run_postgres():
    results = {}
    for app in ("postgres20", "postgres80"):
        results[app] = {
            v: run_experiment(ExperimentConfig(app=app, variant=v))
            for v in Variant
        }
    return results


def test_ext_postgres_join(benchmark):
    results = once(benchmark, run_postgres)
    print(banner("Extension - Postgres join (Table 1 workload)"))
    for app, matrix in results.items():
        original = matrix[Variant.ORIGINAL]
        spec = matrix[Variant.SPECULATING]
        manual = matrix[Variant.MANUAL]
        print(
            f"{app}: original {original.elapsed_s:6.2f}s | "
            f"speculating {spec.improvement_over(original):5.1f}% "
            f"(hints {spec.pct_calls_hinted:4.1f}%, "
            f"restarts {spec.spec_restarts}) | "
            f"manual {manual.improvement_over(original):5.1f}% "
            f"[paper manual: {PAPER_MANUAL[app]:.0f}%]"
        )

    for app, matrix in results.items():
        original = matrix[Variant.ORIGINAL]
        # Both hinting variants must win substantially.
        assert matrix[Variant.SPECULATING].improvement_over(original) > 25
        assert matrix[Variant.MANUAL].improvement_over(original) > 20

    # Table 1's shape: the high-selectivity join benefits more.
    def manual_improvement(app):
        matrix = results[app]
        return matrix[Variant.MANUAL].improvement_over(
            matrix[Variant.ORIGINAL]
        )

    assert manual_improvement("postgres80") > manual_improvement("postgres20")
