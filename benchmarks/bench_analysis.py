"""Static-analysis optimization suite: instrumentation-cost deltas and
the safety argument for eliding COW checks.

Not a paper figure — this quantifies what the PR's analysis pipeline
buys on each example application (COW store wrappers elided, check
cycles removed, transformed-size delta, computed transfers statically
redirected) and then proves the optimization is invisible: for every
application and every chaos profile the differential oracle must find
the analysis-optimized speculating run byte-identical to the original,
with zero isolation violations.
"""

from __future__ import annotations

import functools
from typing import Dict, Optional, Tuple

from conftest import banner, once

from repro.faults.plan import PROFILES
from repro.fs.filesystem import FileSystem
from repro.harness.oracle import OracleCell, run_oracle_cell
from repro.harness.runner import _BUILDERS
from repro.spechint.report import TransformReport
from repro.spechint.tool import SpecHintTool

APPS = ("agrep", "gnuld", "xds", "postgres20")
ORACLE_PROFILES = (None,) + tuple(sorted(n for n in PROFILES if n != "none"))
SCALE = 0.3


def _report(app: str, optimize: bool) -> TransformReport:
    binary = _BUILDERS[app](FileSystem(), SCALE, False)
    tool = SpecHintTool(optimize=optimize)
    return tool.transform(binary).spec_meta.report


@functools.lru_cache(maxsize=1)
def transform_reports() -> Dict[str, Tuple[TransformReport, TransformReport]]:
    """(mechanical, analysis-optimized) transform report per app."""
    return {app: (_report(app, False), _report(app, True)) for app in APPS}


@functools.lru_cache(maxsize=1)
def oracle_grid() -> Dict[Tuple[str, str], OracleCell]:
    """Differential oracle, analysis optimization on, every profile."""
    grid: Dict[Tuple[str, str], OracleCell] = {}
    for app in APPS:
        for profile in ORACLE_PROFILES:
            grid[(app, profile or "none")] = run_oracle_cell(
                app, profile, workload_scale=SCALE, analysis_optimize=True
            )
    return grid


def test_analysis_transformation_costs(benchmark):
    reports = once(benchmark, transform_reports)
    print(banner(f"Static analysis - instrumentation deltas (scale {SCALE})"))
    print(f"{'app':12s}{'stores':>8s}{'elided':>8s}{'pct':>6s}"
          f"{'chk cycles':>12s}{'emitted':>9s}{'saved':>7s}"
          f"{'size delta':>12s}{'resolved':>9s}")
    for app in APPS:
        plain, optimized = reports[app]
        wrapped_total = optimized.stores_wrapped + optimized.stores_elided
        size_delta = (optimized.transformed_size_bytes
                      - plain.transformed_size_bytes)
        print(f"{app:12s}{wrapped_total:>8d}{optimized.stores_elided:>8d}"
              f"{optimized.store_elision_pct:>5.0f}%"
              f"{optimized.check_cycles_baseline:>12,d}"
              f"{optimized.check_cycles_emitted:>9,d}"
              f"{optimized.check_cycles_saved_pct:>6.0f}%"
              f"{size_delta:>+12,d}"
              f"{optimized.transfers_statically_resolved:>9d}")

    for app in APPS:
        plain, optimized = reports[app]
        # The optimization only removes instrumentation: never adds it.
        assert optimized.check_cycles_emitted <= \
            optimized.check_cycles_baseline, app
        assert optimized.transformed_size_bytes <= \
            plain.transformed_size_bytes, app
        # Both halves report the same mechanical transformation.
        assert optimized.stores_wrapped + optimized.stores_elided == \
            plain.stores_wrapped, app

    # Acceptance floor: >=20% of COW store wrappers elided on at least
    # two apps, and at least one computed transfer statically resolved.
    winners = sum(
        1 for app in APPS if reports[app][1].store_elision_pct >= 20.0
    )
    resolved = sum(
        reports[app][1].transfers_statically_resolved for app in APPS
    )
    assert winners >= 2
    assert resolved >= 1


def test_analysis_security_lint(benchmark):
    """The speculation-security taint lint: every app provably clean,
    every crafted leak caught with a witness, the sanitized probe not
    flagged — the no-false-negative / no-false-positive matrix."""
    from repro.analysis import FIXTURES, LEAKY_FIXTURES, analyze_security

    def security_matrix():
        plans = {}
        for app in APPS:
            binary = _BUILDERS[app](FileSystem(), SCALE, False)
            plans[app] = analyze_security(binary)
        for name, builder in FIXTURES.items():
            if name.startswith("taint-"):
                plans[name] = analyze_security(builder())
        return plans

    plans = once(benchmark, security_matrix)
    print(banner(f"Static analysis - speculation-security lint "
                 f"(scale {SCALE})"))
    print(f"{'binary':24s}{'secrets':>8s}{'sites':>6s}{'leaks':>6s}"
          f"  channels")
    for name, plan in sorted(plans.items()):
        channels = sorted({
            ch for leak in plan.leaks for ch in leak.channels
        })
        print(f"{name:24s}{len(plan.secret_labels):>8d}"
              f"{len(plan.disclosure_sites):>6d}{len(plan.leaks):>6d}"
              f"  {', '.join(channels) or '-'}")

    for app in APPS:
        assert plans[app].clean, app
    for name in LEAKY_FIXTURES:
        assert not plans[name].clean, name
        assert all(leak.witness for leak in plans[name].leaks), name
    assert plans["taint-safe-fixture"].clean
    assert plans["taint-sanitized-fixture"].clean


def test_analysis_oracle_identity(benchmark):
    grid = once(benchmark, oracle_grid)
    print(banner(
        f"Static analysis - oracle identity under chaos (scale {SCALE})"
    ))
    print(f"{'app':12s}{'profile':18s}{'verdict':>8s}{'restarts':>9s}"
          f"{'violations':>11s}")
    failures = []
    for (app, profile), cell in sorted(grid.items()):
        spec = cell.speculating
        verdict = "ok" if cell.passed else "DIVERGED"
        print(f"{app:12s}{profile:18s}{verdict:>8s}"
              f"{spec.spec_restarts:>9d}{spec.isolation_violations:>11d}")
        if not cell.passed:
            failures.append((app, profile, cell.detail))
        # The write guard is the soundness oracle for every elision: it
        # must never have fired.
        assert spec.isolation_violations == 0, (app, profile)
    assert not failures, failures
