#!/usr/bin/env python
"""Trace-overhead guard: instrumentation must stay (nearly) free.

The observability layer's contract is that a simulation built with
tracing support but *disabled* (the ``NULL_TRACER`` path — what every
benchmark and test runs) pays only one boolean test per instrumentation
site.  This guard makes that contract a CI failure instead of a slow
drift:

1. **Calibration.**  Machines differ, so raw wall time is meaningless
   across CI runners.  A fixed pure-Python spin loop is timed first and
   the workload's wall time is expressed as a multiple of it.  The
   normalized figure is stable across hardware to within a few percent.
2. **Workload.**  One deterministic benchmark run (agrep, speculating,
   full scale) with tracing disabled, best-of-N to shed scheduler noise.
3. **Verdict.**  The normalized time is compared against the recorded
   baseline in ``trace_overhead_baseline.json``; a regression beyond the
   tolerance (default 5%) exits non-zero.

The guard also smoke-tests the Chrome exporter: a traced run must produce
a ``trace_event`` JSON file Perfetto can load (every non-metadata event
carries name/ph/ts/pid/tid), and the traced run must be cycle-identical
to the untraced one.

Run ``--update-baseline`` after intentional changes to the simulator's
workload cost (new features legitimately make the simulation do more
work; the baseline records the new normal).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.harness.config import ExperimentConfig, Variant  # noqa: E402
from repro.harness.runner import run_experiment  # noqa: E402
from repro.sim.clock import SimClock  # noqa: E402
from repro.trace import Tracer, export_to_path  # noqa: E402

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "trace_overhead_baseline.json"
)

#: Iterations of the calibration spin loop (~0.5 s of pure Python).
CALIBRATION_ITERS = 4_000_000


def _workload_config() -> ExperimentConfig:
    return ExperimentConfig(
        app="agrep", workload_scale=1.0, variant=Variant.SPECULATING
    )


def calibrate(rounds: int = 5) -> float:
    """Best-of-``rounds`` wall time of the fixed spin loop, in seconds."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        acc = 0
        for i in range(CALIBRATION_ITERS):
            acc += i & 7
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    assert acc >= 0  # keep the loop un-elidable
    return best


def time_workload(rounds: int = 5) -> "tuple[float, int]":
    """Best-of-``rounds`` wall time of the untraced run; returns
    (seconds, simulated cycles)."""
    best = float("inf")
    cycles = 0
    for _ in range(rounds):
        start = time.perf_counter()
        result = run_experiment(_workload_config())
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        cycles = result.cycles
    return best, cycles


def chrome_export_smoke(expected_cycles: int) -> None:
    """Traced run: cycle-identical to untraced, valid Chrome export."""
    tracer = Tracer(SimClock())
    result = run_experiment(_workload_config(), tracer=tracer)
    if result.cycles != expected_cycles:
        raise SystemExit(
            f"FAIL: traced run took {result.cycles} cycles, untraced "
            f"{expected_cycles} — tracing perturbed the simulation"
        )
    if len(tracer) == 0:
        raise SystemExit("FAIL: traced run recorded no events")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trace.json")
        export_to_path(tracer, path, "chrome")
        with open(path) as handle:
            data = json.load(handle)
    events = data.get("traceEvents")
    if not events:
        raise SystemExit("FAIL: Chrome export has no traceEvents")
    required = {"name", "ph", "ts", "pid", "tid"}
    for event in events:
        keys = required if event["ph"] != "M" else {"name", "ph", "pid", "tid"}
        missing = keys - set(event)
        if missing:
            raise SystemExit(f"FAIL: event {event} missing {sorted(missing)}")
    print(f"chrome export smoke: ok ({len(events)} events, "
          f"cycle-identical at {expected_cycles:,} cycles)")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update-baseline", action="store_true",
                        help="record the current machine-normalized time "
                             "as the new baseline")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed fractional regression (default 0.05)")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path")
    args = parser.parse_args(argv)

    calibration = calibrate()
    wall, cycles = time_workload()
    normalized = wall / calibration
    print(f"calibration loop:  {calibration:.3f} s")
    print(f"untraced workload: {wall:.3f} s wall, {cycles:,} simulated cycles")
    print(f"normalized time:   {normalized:.3f} (workload / calibration)")

    chrome_export_smoke(cycles)

    if args.update_baseline:
        with open(args.baseline, "w") as handle:
            json.dump(
                {
                    "workload": "agrep speculating scale=1.0",
                    "normalized_time": round(normalized, 4),
                    "simulated_cycles": cycles,
                    "calibration_iters": CALIBRATION_ITERS,
                },
                handle, indent=2, sort_keys=True,
            )
            handle.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print(f"FAIL: no baseline at {args.baseline}; run with "
              f"--update-baseline first", file=sys.stderr)
        return 1

    if cycles != baseline["simulated_cycles"]:
        # Simulated work changed (a feature PR): flag it, don't fail on
        # wall time derived from a different workload.
        print(f"NOTE: simulated cycles changed "
              f"{baseline['simulated_cycles']:,} -> {cycles:,}; "
              f"baseline needs --update-baseline", file=sys.stderr)

    limit = baseline["normalized_time"] * (1.0 + args.tolerance)
    verdict = "ok" if normalized <= limit else "REGRESSION"
    print(f"baseline:          {baseline['normalized_time']:.3f} "
          f"(limit {limit:.3f}, +{args.tolerance * 100:.0f}%) -> {verdict}")
    if normalized > limit:
        print(f"FAIL: trace-overhead regression: normalized {normalized:.3f} "
              f"exceeds {limit:.3f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
