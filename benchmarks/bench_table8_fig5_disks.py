"""Table 8 and Figure 5: varying available I/O parallelism (1/2/4/10 disks).

Paper:
* Table 8 — the original, non-hinting applications "are unable to derive
  much benefit from additional disks";
* Figure 5 — the hinting applications' benefit grows with disks; all
  benchmarks gain much less with a single disk (prefetching can only
  overlap computation); the speculating Gnuld *degrades* with one disk
  (erroneous prefetches consume scarce bandwidth); and at 10 disks the
  speculating Agrep can no longer generate hints fast enough (its dilation
  factor), unlike its manual counterpart.
"""

from conftest import banner, once

from repro.harness import paper
from repro.harness.experiments import run_disk_sweep
from repro.harness.tables import format_improvement_series, format_table8


def test_table8_and_fig5_disks(benchmark):
    sweep = once(benchmark, lambda: run_disk_sweep((1, 2, 4, 10)))
    print(banner("Table 8 - original applications vs number of disks"))
    print(format_table8(sweep))
    print(banner("Figure 5 - improvement vs number of disks"))
    print(format_improvement_series(sweep, "number of disks"))
    print(f"\npaper notes: {paper.FIG5_NOTES}")

    def improvement(ndisks, app, variant):
        matrix = sweep[ndisks][app]
        return matrix[variant].improvement_over(matrix["original"])

    # Table 8 shape: originals gain comparatively little from extra disks
    # (< 45% from 1 to 10 disks; the paper sees < 15%, our Gnuld's useful
    # read-ahead overlaps a bit more).
    for app in ("agrep", "gnuld", "xds"):
        one = sweep[1][app]["original"].elapsed_s
        ten = sweep[10][app]["original"].elapsed_s
        assert ten > one * 0.55, f"{app}: original scales too well with disks"

    # Figure 5 shape: everything benefits much less with a single disk.
    for app in ("agrep", "xds"):
        for variant in ("speculating", "manual"):
            assert improvement(1, app, variant) < improvement(4, app, variant)

    # Speculating Gnuld with one disk: erroneous prefetches consume scarce
    # bandwidth — it trails its manual counterpart by far more than at
    # 4 disks (the paper even sees a net slowdown).
    assert improvement(1, "gnuld", "speculating") < \
        improvement(1, "gnuld", "manual") - 10
    assert improvement(1, "gnuld", "speculating") < \
        improvement(4, "gnuld", "speculating")

    # Manual improvements grow (weakly) with disk count for every app.
    for app in ("agrep", "gnuld", "xds"):
        assert improvement(10, app, "manual") >= \
            improvement(1, app, "manual")

    # At 10 disks, speculating Agrep trails its manual counterpart by more
    # than it does at 4 disks (hint generation cannot keep 10 disks busy).
    agrep_gap_4 = improvement(4, "agrep", "manual") - \
        improvement(4, "agrep", "speculating")
    agrep_gap_10 = improvement(10, "agrep", "manual") - \
        improvement(10, "agrep", "speculating")
    assert agrep_gap_10 >= agrep_gap_4 - 1.0
