"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures and
prints it with the paper's published values alongside.  Runs are fully
deterministic; pytest-benchmark measures the wall time of regenerating
each experiment once (``rounds=1`` — these are simulations, not
microbenchmarks).

The Figure 3 result matrix is shared by several tables (4, 5, 6), so it is
computed once per session and cached.
"""

from __future__ import annotations

import functools
from typing import Dict

from repro.harness.config import Variant
from repro.harness.experiments import run_matrix
from repro.harness.results import RunResult


@functools.lru_cache(maxsize=1)
def headline_matrix() -> Dict[str, Dict[str, RunResult]]:
    """The full-scale 3 apps x 3 variants grid (Figure 3 and Tables 4-6)."""
    return run_matrix()


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def banner(title: str) -> str:
    bar = "=" * len(title)
    return f"\n{bar}\n{title}\n{bar}"
