"""Table 1 (background): manually hinted applications under TIP.

The paper's Table 1 reports Patterson's results for manually modified
applications on the 4-disk testbed; the three applications this paper
evaluates appear there with 72% (Agrep), 66% (Gnuld) and 70% (XDataSlice)
reductions.  This bench regenerates the corresponding rows from our
manual-variant runs.
"""

from conftest import banner, headline_matrix, once

from repro.harness import paper


def test_table1_manual_hints(benchmark):
    matrix = once(benchmark, headline_matrix)
    print(banner("Table 1 (background) - manually hinted applications"))
    print(f"{'benchmark':<12} {'measured':>10} {'paper':>8}")
    for app in ("agrep", "gnuld", "xds"):
        results = matrix[app]
        measured = results["manual"].improvement_over(results["original"])
        expected = paper.TABLE1_MANUAL_IMPROVEMENT[app]
        print(f"{app:<12} {measured:>9.1f}% {expected:>7.0f}%")
        # Shape: the same order of magnitude as the paper's testbed and
        # comfortably large.
        assert measured > expected - 25
        assert measured < expected + 20
