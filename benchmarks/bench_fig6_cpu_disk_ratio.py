"""Figure 6: simulating a widening gap between processor and disk speeds.

Paper methodology: delay I/O completion *notification* by the ratio (with
at most one outstanding prefetch per disk) and scale the measurements back
down.  Expectations: manual improvements "increase steadily but
insignificantly"; speculating Agrep and XDataSlice track their manual
counterparts (Agrep catches up around a ratio of 3: 87% vs 84%); Gnuld's
data dependencies are independent of processor speed, so its speculating
curve stays offset below the manual one.
"""

from conftest import banner, once

from repro.harness import paper
from repro.harness.experiments import run_cpu_ratio_sweep
from repro.harness.tables import format_improvement_series

RATIOS = (1, 2, 3, 5, 7, 9)


def test_fig6_cpu_disk_ratio(benchmark):
    sweep = once(benchmark, lambda: run_cpu_ratio_sweep(RATIOS))
    print(banner("Figure 6 - widening processor/disk speed gap"))
    print(format_improvement_series(sweep, "processor/disk speed ratio"))

    def improvement(ratio, app, variant):
        matrix = sweep[ratio][app]
        return matrix[variant].improvement_over(matrix["original"])

    # Manual improvements never collapse as the gap widens.
    for app in ("agrep", "gnuld", "xds"):
        first = improvement(RATIOS[0], app, "manual")
        last = improvement(RATIOS[-1], app, "manual")
        assert last > first - 8, f"{app}: manual curve collapsed"

    # Speculating Agrep closes on manual as stalls lengthen (the paper's
    # ratio-3 crossover: more cycles per stall => more hints per stall).
    gap_at_1 = improvement(1, "agrep", "manual") - \
        improvement(1, "agrep", "speculating")
    gap_at_9 = improvement(9, "agrep", "manual") - \
        improvement(9, "agrep", "speculating")
    assert gap_at_9 <= gap_at_1 + 2

    # Gnuld's speculating curve stays offset below manual at every ratio:
    # its limits are data dependencies, which faster processors cannot fix.
    for ratio in RATIOS:
        assert improvement(ratio, "gnuld", "speculating") < \
            improvement(ratio, "gnuld", "manual")

    # XDataSlice speculation already keeps the disks busy at ratio 1;
    # it tracks manual within a modest band at every ratio.
    for ratio in RATIOS:
        gap = abs(
            improvement(ratio, "xds", "speculating")
            - improvement(ratio, "xds", "manual")
        )
        assert gap < 15
