"""Ablation (Section 3.2.1): copy-on-write region size.

Paper: "when we explored this flexibility by varying the copy-on-write
region size from 128B to 8192B, we discovered that it generally made no
significant difference to the performance improvements obtained — the only
difference larger than 5% was a 9% reduction in performance for Gnuld with
a region size of 8192B.  All of the results presented in this paper were
obtained using 1024B regions."
"""

import dataclasses

from conftest import banner, once

from repro.harness.config import ExperimentConfig, Variant
from repro.harness.runner import run_experiment
from repro.params import SpecHintParams, SystemConfig

REGION_SIZES = (128, 1024, 8192)


def run_region_sweep():
    results = {}
    for region in REGION_SIZES:
        system = SystemConfig(spechint=SpecHintParams(cow_region_size=region))
        results[region] = {}
        for app in ("agrep", "gnuld", "xds"):
            original = run_experiment(ExperimentConfig(
                app=app, variant=Variant.ORIGINAL, system=system))
            speculating = run_experiment(ExperimentConfig(
                app=app, variant=Variant.SPECULATING, system=system))
            results[region][app] = speculating.improvement_over(original)
    return results


def test_ablation_cow_region_size(benchmark):
    results = once(benchmark, run_region_sweep)
    print(banner("Ablation - COW region size (paper: 128B-8192B, no "
                 "significant difference; worst case Gnuld @8KB, -9%)"))
    print(f"{'region':>8}" + "".join(f"{app:>10}" for app in ("agrep", "gnuld", "xds")))
    for region in REGION_SIZES:
        row = "".join(f"{results[region][app]:>9.1f}%"
                      for app in ("agrep", "gnuld", "xds"))
        print(f"{region:>7}B{row}")

    # Shape: region size makes no dramatic difference anywhere.
    for app in ("agrep", "gnuld", "xds"):
        improvements = [results[region][app] for region in REGION_SIZES]
        assert max(improvements) - min(improvements) < 15, (
            f"{app}: COW region size changed improvement by "
            f"{max(improvements) - min(improvements):.1f} points"
        )
        assert all(i > 20 for i in improvements)
