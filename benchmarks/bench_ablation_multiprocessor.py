"""Ablation (Section 5): multiprocessor speculation.

Paper: "By performing speculative execution in parallel with normal
execution, disk-bound applications that cannot be automatically
parallelized ... may still be able to take advantage of the additional
processing capabilities of a multiprocessor."

With a second CPU the speculating thread no longer waits for stalls; it
also speculates during computation.  Hint discovery no longer competes
with hint consumption — most visible for Agrep at high disk counts, where
the uniprocessor speculating thread cannot generate hints fast enough
(Figure 5's 10-disk gap).
"""

import dataclasses

from conftest import banner, once

from repro.harness.config import ExperimentConfig, Variant
from repro.harness.runner import run_experiment
from repro.params import ArrayParams, SystemConfig


def run_mp_comparison():
    results = {}
    for ncpus in (1, 2):
        system = SystemConfig(array=ArrayParams(ndisks=10), ncpus=ncpus)
        original = run_experiment(ExperimentConfig(
            app="agrep", variant=Variant.ORIGINAL, system=system))
        speculating = run_experiment(ExperimentConfig(
            app="agrep", variant=Variant.SPECULATING, system=system))
        results[ncpus] = (original, speculating)
    return results


def test_ablation_multiprocessor_agrep_10_disks(benchmark):
    results = once(benchmark, run_mp_comparison)
    print(banner("Ablation - multiprocessor speculation (Agrep, 10 disks)"))
    for ncpus, (original, speculating) in results.items():
        print(
            f"{ncpus} CPU(s): improvement "
            f"{speculating.improvement_over(original):6.1f}%  "
            f"hints={speculating.spec_hints_issued:5d}  "
            f"restarts(behind)={speculating.spec_restarts:4d}"
        )

    up = results[1][1].improvement_over(results[1][0])
    mp = results[2][1].improvement_over(results[2][0])

    # The second CPU lets hint generation keep up with 10 disks: fewer
    # fell-behind restarts and at least as good an improvement.
    assert results[2][1].spec_restarts <= results[1][1].spec_restarts
    assert mp >= up - 2.0
    print(f"uniprocessor {up:.1f}% -> multiprocessor {mp:.1f}%")
