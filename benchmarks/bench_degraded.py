#!/usr/bin/env python
"""Degraded-mode guard: rebuild completion, slowdown ceiling, determinism.

The degraded-mode contract has three halves, and this guard turns each
into a CI failure instead of a slow drift:

1. **Survival.**  Under every survivable permanent-death profile the run
   must produce byte-identical output to the healthy run, serve demand
   reads through parity reconstruction, and finish the background rebuild
   on the simulation clock.  The double-fault profile must fail loudly
   with a typed :class:`DataLossError` in *both* variants — silent
   corruption (or asymmetric survival) is the one unforgivable outcome.
2. **Bounded slowdown.**  A degraded array is slower — reconstruction
   fans one read into ``ndisks - 1`` peer reads, speculation is
   suspended, and the rebuild steals bandwidth — but the
   workload-completion slowdown versus the healthy array must stay under
   the per-profile ceiling in :data:`SLOWDOWN_CEILINGS` (rebuild-storm's
   is far higher because the profile hands the rebuild 90% of the
   bandwidth by design).  The rebuild drain tail after workload exit is
   excluded: it scales with array capacity, not workload size.
3. **Determinism.**  The simulation is seeded, so the canonical digest
   (sha256 over the sorted JSON of every cell's result) is
   machine-independent and compared against the committed baseline in
   ``BENCH_degraded.json``; any drift means degraded-mode results moved.

``--quick`` runs the one-app disk-death leg only (CI smoke);
``--update-baseline`` records the current digests after an intentional
simulation change.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.errors import DataLossError  # noqa: E402
from repro.harness.config import ExperimentConfig, Variant  # noqa: E402
from repro.harness.runner import run_experiment  # noqa: E402

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_degraded.json"
)

SCALE = 0.3
#: Degraded workload-completion time may not exceed this multiple of the
#: healthy run.  Observed today: disk-death ~3.2-3.6x (reconstruction
#: fan-out plus suspended speculation), rebuild-storm ~5-11x (the profile
#: gives the rebuild a 0.9 bandwidth share on top of transient errors).
SLOWDOWN_CEILINGS = {"disk-death": 5.0, "rebuild-storm": 15.0}
FULL_APPS = ("agrep", "gnuld")
QUICK_APPS = ("agrep",)
DEATH_PROFILES = ("disk-death", "rebuild-storm")


def run_cell(app: str, profile: str | None):
    return run_experiment(ExperimentConfig(
        app=app, variant=Variant.SPECULATING, workload_scale=SCALE,
        fault_profile=profile,
    ))


def digest_of(results) -> str:
    canonical = json.dumps(
        {key: result.to_jsonable() for key, result in results.items()},
        sort_keys=True,
    ).encode()
    return hashlib.sha256(canonical).hexdigest()


def check_survival(apps, profiles) -> "tuple[dict, int]":
    """Healthy + degraded cells; returns (results, failure count)."""
    failures = 0
    results = {}
    for app in apps:
        healthy = run_cell(app, None)
        results[f"{app}/none"] = healthy
        for profile in profiles:
            degraded = run_cell(app, profile)
            results[f"{app}/{profile}"] = degraded
            # Slowdown is judged on workload completion, not total elapsed:
            # total elapsed includes the rebuild drain tail, which scales
            # with array capacity rather than workload size.
            slowdown = degraded.workload_elapsed_s / healthy.elapsed_s
            rebuild = (
                f"rebuild @{degraded.rebuild_completed_cycle / degraded.cpu_hz:.3f}s"
                if degraded.rebuild_completed else "rebuild INCOMPLETE"
            )
            print(f"  {app:8s} {profile:14s} healthy {healthy.elapsed_s:6.3f}s "
                  f"degraded {degraded.workload_elapsed_s:6.3f}s "
                  f"({slowdown:4.2f}x)  "
                  f"recon {degraded.reconstructed_blocks:4d}  {rebuild}")
            if degraded.output != healthy.output:
                print(f"FAIL: {app}/{profile}: output diverged from the "
                      f"healthy run", file=sys.stderr)
                failures += 1
            if not degraded.rebuild_completed:
                print(f"FAIL: {app}/{profile}: rebuild did not complete",
                      file=sys.stderr)
                failures += 1
            if degraded.degraded_reads <= 0:
                print(f"FAIL: {app}/{profile}: no degraded reads recorded — "
                      f"the profile injected nothing", file=sys.stderr)
                failures += 1
            ceiling = SLOWDOWN_CEILINGS[profile]
            if slowdown > ceiling:
                print(f"FAIL: {app}/{profile}: degraded slowdown "
                      f"{slowdown:.2f}x exceeds the {ceiling:.1f}x "
                      f"ceiling", file=sys.stderr)
                failures += 1
    return results, failures


def check_double_fault() -> int:
    """Both variants must fail loudly with the typed error."""
    failures = 0
    for variant in (Variant.ORIGINAL, Variant.SPECULATING):
        try:
            run_experiment(ExperimentConfig(
                app="agrep", variant=variant, workload_scale=SCALE,
                fault_profile="double-fault",
            ))
        except DataLossError as exc:
            print(f"  double-fault {variant.value:12s} DataLossError: "
                  f"{str(exc)[:60]}…")
        else:
            print(f"FAIL: double-fault {variant.value} completed instead of "
                  f"raising DataLossError", file=sys.stderr)
            failures += 1
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="one app, disk-death only (CI smoke)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="record the current digest as the baseline")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path")
    args = parser.parse_args(argv)

    label = "quick" if args.quick else "full"
    apps = QUICK_APPS if args.quick else FULL_APPS
    profiles = DEATH_PROFILES[:1] if args.quick else DEATH_PROFILES
    ceilings = ", ".join(f"{name} {SLOWDOWN_CEILINGS[name]:.0f}x"
                         for name in profiles)
    print(f"{label} degraded-mode guard (scale {SCALE:g}, "
          f"slowdown ceilings: {ceilings})")

    results, failures = check_survival(apps, profiles)
    failures += check_double_fault()

    digest = digest_of(results)
    digest_key = f"digest_{label}"
    print(f"digest {digest[:16]}… over {len(results)} cells")

    if args.update_baseline:
        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
        except (OSError, ValueError):
            baseline = {}
        baseline.update({
            "workload": f"healthy vs permanent-death profiles, scale={SCALE:g}",
            "slowdown_ceilings": SLOWDOWN_CEILINGS,
            digest_key: digest,
        })
        with open(args.baseline, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline updated: {args.baseline} ({digest_key})")
        return 1 if failures else 0

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print(f"FAIL: no baseline at {args.baseline}; run with "
              f"--update-baseline first", file=sys.stderr)
        return 1
    expected = baseline.get(digest_key)
    if expected is None:
        print(f"FAIL: baseline has no {digest_key!r}; run this mode with "
              f"--update-baseline", file=sys.stderr)
        failures += 1
    elif digest != expected:
        print(f"FAIL: result digest {digest} does not match the baseline "
              f"{expected} — degraded-mode results changed; update the "
              f"baseline if intentional", file=sys.stderr)
        failures += 1
    else:
        print("baseline digest: ok")

    if failures:
        print(f"FAIL: {failures} degraded-mode check(s) failed",
              file=sys.stderr)
        return 1
    print("degraded-mode guard: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
