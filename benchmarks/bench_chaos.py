"""Chaos suite: graceful degradation under every built-in fault profile.

Not a paper figure — this is the safety argument of Section 2 made
empirical.  Speculation and hints are pure optimization, so for every
benchmark application and every fault profile (flaky disks, a stuck disk,
a disk offline mid-run, a lossy/corrupting hint channel, a forced restart
storm) the application output must be byte-identical to the fault-free
run.  And because every fault decision is drawn from seeded streams, a
given fault seed must reproduce the exact same fault-event counts.
"""

from __future__ import annotations

import functools
from typing import Dict, Tuple

from conftest import banner, once

from repro.faults.plan import PROFILES
from repro.harness.config import ExperimentConfig, Variant
from repro.harness.results import RunResult
from repro.harness.runner import run_experiment

APPS = ("agrep", "gnuld", "xds", "postgres20")
# Every survivable profile; data-loss profiles (double faults) raise a
# typed DataLossError by design and are exercised by bench_degraded.py.
CHAOS_PROFILES = tuple(sorted(
    name for name in PROFILES
    if name != "none" and not PROFILES[name].expects_data_loss
))
SCALE = 0.3


def _config(app: str, profile_name: str = None) -> ExperimentConfig:
    return ExperimentConfig(
        app=app,
        variant=Variant.SPECULATING,
        workload_scale=SCALE,
        fault_profile=profile_name,
    )


@functools.lru_cache(maxsize=1)
def chaos_grid() -> Dict[Tuple[str, str], RunResult]:
    """Every app fault-free plus under every chaos profile."""
    grid: Dict[Tuple[str, str], RunResult] = {}
    for app in APPS:
        grid[(app, "none")] = run_experiment(_config(app))
        for name in CHAOS_PROFILES:
            grid[(app, name)] = run_experiment(_config(app, name))
    return grid


def test_chaos_output_identity(benchmark):
    grid = once(benchmark, chaos_grid)
    print(banner(f"Chaos suite - output identity (scale {SCALE})"))
    header = f"{'app':12s}{'profile':18s}{'elapsed':>9s}{'faults':>8s}" \
             f"{'retries':>9s}{'dropped':>9s}  watchdog"
    print(header)
    for app in APPS:
        clean = grid[(app, "none")]
        print(f"{app:12s}{'(fault-free)':18s}{clean.elapsed_s:8.3f}s"
              f"{'-':>8s}{'-':>9s}{'-':>9s}  -")
        for name in CHAOS_PROFILES:
            result = grid[(app, name)]
            print(f"{'':12s}{name:18s}{result.elapsed_s:8.3f}s"
                  f"{result.disk_faults:8d}{result.io_retries:9d}"
                  f"{result.prefetches_dropped:9d}"
                  f"  {result.watchdog_tripped or '-'}")

            # The invariant: no fault profile may change what the
            # application computed.
            assert result.output == clean.output, \
                f"{app}/{name}: output diverged from fault-free run"
            assert result.read_bytes == clean.read_bytes
            # Demand reads always recovered (no profile is fatal).
            assert result.c("array.demand_failures") == 0, f"{app}/{name}"
            # The profile actually injected something.
            assert result.fault_events(), f"{app}/{name}: no faults injected"


def test_chaos_fault_determinism(benchmark):
    grid = chaos_grid()

    def rerun():
        return {
            (app, name): run_experiment(_config(app, name))
            for app in APPS
            for name in CHAOS_PROFILES
        }

    second = once(benchmark, rerun)
    print(banner("Chaos suite - seeded fault determinism"))
    total = 0
    for key, result in second.items():
        first = grid[key]
        assert result.fault_events() == first.fault_events(), \
            f"{key}: fault events differ between identical runs"
        assert result.cycles == first.cycles
        assert result.counters == first.counters
        assert result.output == first.output
        total += sum(result.fault_events().values())
    print(f"{len(second)} app x profile replays bit-identical "
          f"({total} fault events reproduced)")


def test_chaos_watchdog_restores_baseline(benchmark):
    """Under a full-length restart storm the watchdog trips and the run
    completes vanilla — never worse than simply losing speculation."""

    def run():
        storm = run_experiment(ExperimentConfig(
            app="agrep", variant=Variant.SPECULATING,
            fault_profile="restart-storm",
        ))
        clean = run_experiment(ExperimentConfig(
            app="agrep", variant=Variant.SPECULATING,
        ))
        original = run_experiment(ExperimentConfig(
            app="agrep", variant=Variant.ORIGINAL,
        ))
        return storm, clean, original

    storm, clean, original = once(benchmark, run)
    print(banner("Chaos suite - restart storm watchdog"))
    print(f"clean speculating: {clean.elapsed_s:.3f}s, "
          f"storm: {storm.elapsed_s:.3f}s, original: {original.elapsed_s:.3f}s")
    print(f"watchdog: {storm.watchdog_tripped}, "
          f"divergences forced: {storm.c('faults.spec_divergence')}")
    assert storm.watchdog_tripped == "restart_storm"
    assert storm.c("spec.watchdog_disabled") == 1
    assert storm.output == clean.output == original.output
    # Degraded, but bounded: between the clean speculating run and a
    # small overhead past the unhinted original.
    assert storm.cycles >= clean.cycles
    assert storm.cycles < original.cycles * 1.5
