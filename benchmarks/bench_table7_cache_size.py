"""Table 7: elapsed time as the file cache size is varied (6/12/64 MB).

Paper: the cache size barely matters for Agrep and XDataSlice (little
reuse, read-ahead rarely fetches far-future data), but the original Gnuld
improves significantly with a 64 MB cache, shrinking the benefit available
to prefetching — the speculating Gnuld's relative gain drops (29% -> 20%)
while many of the reads it cannot hint keep stalling.
"""

from conftest import banner, once

from repro.harness.experiments import run_cache_size_sweep
from repro.harness.tables import format_table7


#: Our large-cache point: at the paper's 64 MB the ~8x-scaled cache would
#: exceed the scaled datasets entirely (everything cached after one pass);
#: 32 MB preserves the paper's 64 MB regime (cache large relative to reuse
#: but smaller than the data).
CACHE_POINTS = (6.0, 12.0, 32.0)


def test_table7_cache_size(benchmark):
    sweep = once(benchmark, lambda: run_cache_size_sweep(CACHE_POINTS))
    print(banner("Table 7 - varying the file cache size"))
    print(format_table7(sweep))

    small, default, big = CACHE_POINTS

    def improvement(mb, app, variant):
        matrix = sweep[mb][app]
        return matrix[variant].improvement_over(matrix["original"])

    # Gnuld's original run benefits from a big cache...
    gnuld_small = sweep[small]["gnuld"]["original"].elapsed_s
    gnuld_big = sweep[big]["gnuld"]["original"].elapsed_s
    assert gnuld_big < gnuld_small * 0.9

    # ...which shrinks the manual Gnuld's relative benefit (paper: 68% ->
    # 55%) and keeps the speculating one from growing (paper: 30% -> 20%).
    assert improvement(big, "gnuld", "manual") < \
        improvement(small, "gnuld", "manual")
    assert improvement(big, "gnuld", "speculating") < \
        improvement(small, "gnuld", "speculating") + 5

    # Agrep stays flat across cache sizes (no reuse at all).
    agrep_originals = [sweep[mb]["agrep"]["original"].elapsed_s
                       for mb in CACHE_POINTS]
    assert max(agrep_originals) < min(agrep_originals) * 1.15

    # Hinting keeps winning at every cache size.
    for mb in CACHE_POINTS:
        for app in ("agrep", "gnuld", "xds"):
            assert improvement(mb, app, "manual") > 15
            assert improvement(mb, app, "speculating") > 15
