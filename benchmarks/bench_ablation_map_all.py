"""Ablation: lifting the handling routine's function-address limitation.

Section 3.2.1: the dynamic control-transfer handling routine "can only map
function addresses"; a speculating thread that returns above its restart
frame through a stale original-text return address is parked until the
next restart.  Our tool's ``map_all_addresses`` option lifts that
limitation (mechanically trivial in our 1:1 shadow layout) — an ablation
showing how much the restriction costs on the real benchmarks.
"""

from conftest import banner, once

from repro.harness.config import ExperimentConfig, Variant
from repro.harness.runner import run_experiment


def run_map_all_comparison():
    results = {}
    for map_all in (False, True):
        results[map_all] = {}
        for app in ("agrep", "gnuld", "xds"):
            original = run_experiment(ExperimentConfig(
                app=app, variant=Variant.ORIGINAL))
            speculating = run_experiment(ExperimentConfig(
                app=app, variant=Variant.SPECULATING,
                map_all_addresses=map_all))
            results[map_all][app] = (
                speculating.improvement_over(original),
                speculating.c("spec.park.left_shadow"),
            )
    return results


def test_ablation_map_all_addresses(benchmark):
    results = once(benchmark, run_map_all_comparison)
    print(banner("Ablation - handling routine address mapping"))
    print(f"{'':14}{'function-entries only':>24}{'map all addresses':>22}")
    for app in ("agrep", "gnuld", "xds"):
        restricted = results[False][app]
        lifted = results[True][app]
        print(f"{app:<14}{restricted[0]:>15.1f}% ({restricted[1]:>3} parks)"
              f"{lifted[0]:>15.1f}% ({lifted[1]:>3} parks)")

    # Lifting the restriction eliminates left-shadow parks entirely.
    for app in ("agrep", "gnuld", "xds"):
        assert results[True][app][1] == 0

    # And never hurts the improvement materially.
    for app in ("agrep", "gnuld", "xds"):
        assert results[True][app][0] >= results[False][app][0] - 3
