"""Table 3: transformed application statistics.

Paper: SpecHint modified the benchmarks in 21-151 s, growing the
executables by 138% (XDataSlice) to 610% (Agrep) — the smaller the binary,
the larger the relative growth from shadow code + SpecHint objects +
threading libraries.
"""

from conftest import banner, once

from repro.apps.agrep import AgrepWorkload, build_agrep
from repro.apps.gnuld import GnuldWorkload, build_gnuld
from repro.apps.xdataslice import XdsWorkload, build_xdataslice
from repro.fs.filesystem import FileSystem
from repro.harness.tables import format_table3
from repro.spechint.tool import SpecHintTool


def transform_all():
    tool = SpecHintTool()
    reports = []
    for build, workload in (
        (build_agrep, AgrepWorkload()),
        (build_gnuld, GnuldWorkload()),
        (build_xdataslice, XdsWorkload()),
    ):
        binary = build(FileSystem(), workload)
        reports.append(tool.transform(binary).spec_meta.report)
    return reports


def test_table3_transformation(benchmark):
    reports = once(benchmark, transform_all)
    print(banner("Table 3 - transformation statistics"))
    print(format_table3(reports))

    by_name = {r.binary_name: r for r in reports}
    agrep, gnuld, xds = by_name["agrep"], by_name["gnuld"], by_name["xds"]

    # Shape: every transformation succeeds quickly and grows the binary.
    for report in reports:
        assert report.modification_time_s < 60
        assert report.size_increase_pct > 50
        assert report.shadow_insns == report.original_insns

    # Shape: relative growth is ordered by original binary size
    # (Agrep 610% > Gnuld 349% > XDataSlice 138% in the paper).
    assert agrep.size_increase_pct > gnuld.size_increase_pct
    assert gnuld.size_increase_pct > xds.size_increase_pct
