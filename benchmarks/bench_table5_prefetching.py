"""Table 5: prefetching and caching statistics.

Paper signatures:
* the original XDataSlice's sequential read-ahead is "entirely too
  aggressive": 58% of its prefetched blocks go unused, while the hinting
  XDataSlices almost eliminate unused prefetches (0.3% / 0.0%);
* the speculating Gnuld sees far more *partial* prefetches than the manual
  one (its data-dependent hints arrive late) and far more *unused* blocks
  (erroneous hints);
* cache-block reuse figures stay close across variants ("erroneous
  prefetching did not significantly harm caching behavior").
"""

from conftest import banner, headline_matrix, once

from repro.harness.tables import format_table5


def test_table5_prefetching(benchmark):
    matrix = once(benchmark, headline_matrix)
    print(banner("Table 5 - prefetching and caching statistics"))
    print(format_table5(matrix))

    xds = matrix["xds"]
    xds_orig_unused = xds["original"].prefetched_unused / max(
        1, xds["original"].prefetched_blocks
    )
    xds_manual_unused = xds["manual"].prefetched_unused / max(
        1, xds["manual"].prefetched_blocks
    )
    assert xds_orig_unused > 0.30, "read-ahead should waste heavily on XDS"
    assert xds_manual_unused < xds_orig_unused / 3

    gnuld = matrix["gnuld"]
    # Erroneous speculation leaves unused prefetched blocks behind.
    assert gnuld["speculating"].prefetched_unused > \
        gnuld["manual"].prefetched_unused

    # Hint-driven prefetching raises the fully-prefetched share for the
    # well-behaved applications.
    for app in ("agrep", "xds"):
        results = matrix[app]
        spec_fully = results["speculating"].prefetched_fully / max(
            1, results["speculating"].prefetched_blocks
        )
        orig_fully = results["original"].prefetched_fully / max(
            1, results["original"].prefetched_blocks
        )
        assert spec_fully > orig_fully

    # Cache reuse is not destroyed by speculation (within 2x).
    for app, results in matrix.items():
        orig_reuse = results["original"].cache_block_reuses
        spec_reuse = results["speculating"].cache_block_reuses
        assert spec_reuse >= orig_reuse * 0.5
