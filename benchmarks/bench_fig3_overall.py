"""Figure 3: overall performance improvement.

Paper (4 disks, 12 MB cache): speculative execution reduces execution time
by 69% (Agrep), 29% (Gnuld) and 70% (XDataSlice); for Agrep and XDataSlice
it matches the manually modified applications, for Gnuld it falls well
short of manual (66%) but still far outperforms the original.
"""

from conftest import banner, headline_matrix, once

from repro.harness import paper
from repro.harness.tables import format_fig3


def test_fig3_overall_performance(benchmark):
    matrix = once(benchmark, headline_matrix)
    print(banner("Figure 3 - overall performance"))
    print(format_fig3(matrix))

    for app, results in matrix.items():
        original = results["original"]
        spec_imp = results["speculating"].improvement_over(original)
        manual_imp = results["manual"].improvement_over(original)

        # Shape 1: both hinting variants are large wins.
        assert spec_imp > 25, f"{app}: speculating improvement {spec_imp:.0f}%"
        assert manual_imp > 55, f"{app}: manual improvement {manual_imp:.0f}%"

    # Shape 2: Agrep/XDataSlice speculating ~= manual (within 10 points).
    for app in ("agrep", "xds"):
        results = matrix[app]
        original = results["original"]
        gap = abs(
            results["speculating"].improvement_over(original)
            - results["manual"].improvement_over(original)
        )
        assert gap < 10, f"{app}: spec/manual gap {gap:.1f} points"

    # Shape 3: Gnuld's data dependences hold speculation below manual.
    gnuld = matrix["gnuld"]
    original = gnuld["original"]
    assert gnuld["speculating"].improvement_over(original) < \
        gnuld["manual"].improvement_over(original) - 5
