"""Ablation (Section 5): the cancel-triggered speculation throttle.

Paper: "even a simple, ad-hoc mechanism — disabling speculative execution
for a brief time after some number of cancel requests have been issued —
was sufficient to eliminate the performance penalty of performing
speculative execution in Gnuld when the I/O system offered no parallelism."

We run the 1-disk Gnuld (where erroneous prefetches hurt most) with the
throttle off and on.
"""

import dataclasses

from conftest import banner, once

from repro.harness.config import ExperimentConfig, Variant
from repro.harness.runner import run_experiment
from repro.params import ArrayParams, SpecHintParams, SystemConfig


def one_disk_system(throttled: bool) -> SystemConfig:
    spechint = SpecHintParams(
        throttle_cancel_limit=4 if throttled else 0,
        throttle_disable_reads=48,
    )
    return SystemConfig(array=ArrayParams(ndisks=1), spechint=spechint)


def run_throttle_comparison():
    runs = {}
    for throttled in (False, True):
        system = one_disk_system(throttled)
        original = run_experiment(ExperimentConfig(
            app="gnuld", variant=Variant.ORIGINAL, system=system))
        speculating = run_experiment(ExperimentConfig(
            app="gnuld", variant=Variant.SPECULATING, system=system))
        runs[throttled] = (original, speculating)
    return runs


def test_ablation_throttle_one_disk_gnuld(benchmark):
    runs = once(benchmark, run_throttle_comparison)
    print(banner("Ablation - cancel-triggered throttle (Gnuld, 1 disk)"))
    for throttled, (original, speculating) in runs.items():
        label = "throttle on " if throttled else "throttle off"
        print(
            f"{label}: improvement "
            f"{speculating.improvement_over(original):6.1f}%  "
            f"cancels={speculating.spec_cancel_calls:4d}  "
            f"inaccurate hints={speculating.inaccurate_hints:6d}  "
            f"unused prefetched={speculating.prefetched_unused:4d}"
        )

    free = runs[False][1]
    throttled = runs[True][1]

    # The throttle suppresses erroneous speculation...
    assert throttled.inaccurate_hints < free.inaccurate_hints
    assert throttled.spec_cancel_calls < free.spec_cancel_calls

    # ...without destroying (and ideally improving) the 1-disk result.
    free_improvement = free.improvement_over(runs[False][0])
    throttled_improvement = throttled.improvement_over(runs[True][0])
    assert throttled_improvement > free_improvement - 5
