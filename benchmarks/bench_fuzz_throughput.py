#!/usr/bin/env python
"""Fuzz throughput guard: campaign determinism first, cells/minute second.

The chaos engine (``repro fuzz``) is only useful if a budget buys real
coverage, so this guard tracks two things:

1. **Determinism.**  The same ``(budget, seed)`` campaign must produce an
   identical campaign digest — every cell digest, the coverage ledger —
   whether it runs serially or across ``--jobs N`` workers, and that
   digest is compared against the committed baseline in
   ``BENCH_fuzz.json``.  The simulation is seeded end to end, so a digest
   change means generated schedules or cell behavior moved: update the
   baseline only for an intentional change (it also invalidates nothing
   else — corpus entries carry their own plans verbatim).
2. **Throughput.**  Cells/minute at ``--jobs 4`` is recorded in the
   baseline and a serial run must stay within a generous regression
   window (0.5x) of its recorded serial throughput — fuzzing that gets
   twice as slow halves what every CI budget actually covers.

``--quick`` runs a smaller budget and checks determinism only;
``--update-baseline`` records current digests and throughput.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.harness.fuzz import run_fuzz  # noqa: E402

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_fuzz.json"
)

SEED = 7
BUDGET_FULL = 30
BUDGET_QUICK = 6


def timed_campaign(budget: int, jobs: int):
    start = time.perf_counter()
    report = run_fuzz(budget, seed=SEED, jobs=jobs)
    return report, time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count of the parallel leg (default 4)")
    parser.add_argument("--quick", action="store_true",
                        help="small budget at --jobs 2, determinism only")
    parser.add_argument("--update-baseline", action="store_true",
                        help="record current digest and throughput")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path")
    args = parser.parse_args(argv)

    jobs = 2 if args.quick else args.jobs
    budget = BUDGET_QUICK if args.quick else BUDGET_FULL
    label = "quick" if args.quick else "full"
    print(f"{label} campaign: --budget {budget} --seed {SEED}, "
          f"serial vs --jobs {jobs}")

    serial, serial_s = timed_campaign(budget, jobs=1)
    parallel, parallel_s = timed_campaign(budget, jobs=jobs)

    for name, report in (("serial", serial), ("parallel", parallel)):
        if report.quarantined:
            print(f"FAIL: {name} campaign quarantined cells: "
                  f"{sorted(report.quarantined)}", file=sys.stderr)
            return 1
        if not report.passed:
            print(f"FAIL: {name} campaign found violations on a healthy "
                  f"tree: {[c.key for c in report.failures()]}",
                  file=sys.stderr)
            return 1

    # -- determinism ---------------------------------------------------------
    serial_rate = 60.0 * budget / serial_s if serial_s > 0 else 0.0
    parallel_rate = 60.0 * budget / parallel_s if parallel_s > 0 else 0.0
    print(f"serial:   {serial_s:7.2f} s ({serial_rate:6.1f} cells/min)  "
          f"digest {serial.digest}")
    print(f"parallel: {parallel_s:7.2f} s ({parallel_rate:6.1f} cells/min)  "
          f"digest {parallel.digest}")
    if serial.digest != parallel.digest:
        diverging = [
            (a.key, a.digest, b.digest)
            for a, b in zip(serial.cells, parallel.cells)
            if a.digest != b.digest
        ]
        print(f"FAIL: parallel campaign diverged from serial in "
              f"{len(diverging)} cell(s): {diverging[:5]}", file=sys.stderr)
        return 1
    if serial.ledger.to_jsonable() != parallel.ledger.to_jsonable():
        print("FAIL: coverage ledgers diverged between serial and parallel",
              file=sys.stderr)
        return 1
    print("determinism: ok (parallel campaign byte-identical to serial)")

    # -- baseline ------------------------------------------------------------
    digest_key = f"digest_{label}"
    if args.update_baseline:
        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
        except (OSError, ValueError):
            baseline = {}
        baseline.update({
            "seed": SEED,
            "budget_full": BUDGET_FULL,
            "budget_quick": BUDGET_QUICK,
            digest_key: serial.digest,
            f"serial_cells_per_min_{label}": round(serial_rate, 1),
            f"parallel_cells_per_min_{label}": round(parallel_rate, 1),
            f"parallel_jobs_{label}": jobs,
        })
        with open(args.baseline, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline updated: {args.baseline} ({digest_key})")
        return 0

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print(f"FAIL: no baseline at {args.baseline}; run with "
              f"--update-baseline first", file=sys.stderr)
        return 1
    expected = baseline.get(digest_key)
    if expected is None:
        print(f"FAIL: baseline has no {digest_key!r}; run this mode with "
              f"--update-baseline", file=sys.stderr)
        return 1
    if serial.digest != expected:
        print(f"FAIL: campaign digest {serial.digest} does not match the "
              f"baseline {expected} — generated schedules or cell behavior "
              f"changed; update the baseline if intentional", file=sys.stderr)
        return 1
    print("baseline digest: ok")

    # -- throughput (wall-clock: advisory window, not a hard gate) -----------
    if args.quick:
        print("throughput: skipped (--quick checks determinism only)")
        return 0
    recorded = baseline.get(f"serial_cells_per_min_{label}")
    if recorded:
        ratio = serial_rate / float(recorded)
        verdict = "ok" if ratio >= 0.5 else "REGRESSION"
        print(f"throughput: {serial_rate:.1f} cells/min serial vs "
              f"{recorded} recorded ({ratio:.2f}x) -> {verdict}")
        if ratio < 0.5:
            print(f"FAIL: fuzz throughput fell below half the recorded "
                  f"baseline ({serial_rate:.1f} vs {recorded} cells/min)",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
