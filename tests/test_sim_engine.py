"""Tests for the event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.engine import EventEngine


@pytest.fixture
def engine():
    return EventEngine(SimClock())


class TestScheduling:
    def test_schedule_at_future(self, engine):
        engine.schedule_at(10, lambda: None)
        assert engine.pending == 1
        assert engine.next_event_time() == 10

    def test_schedule_in_past_rejected(self, engine):
        engine.clock.advance(5)
        with pytest.raises(SimulationError):
            engine.schedule_at(4, lambda: None)

    def test_schedule_after_relative(self, engine):
        engine.clock.advance(5)
        engine.schedule_after(3, lambda: None)
        assert engine.next_event_time() == 8

    def test_schedule_after_negative_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule_after(-1, lambda: None)

    def test_horizon_tracks_earliest(self, engine):
        engine.schedule_at(20, lambda: None)
        engine.schedule_at(10, lambda: None)
        assert engine.horizon == 10

    def test_horizon_no_events_sentinel(self, engine):
        assert engine.next_event_time() is None
        assert engine.horizon == EventEngine.NO_EVENTS


class TestDispatch:
    def test_dispatch_due_runs_callbacks(self, engine):
        fired = []
        engine.schedule_at(5, lambda: fired.append("a"))
        engine.schedule_at(7, lambda: fired.append("b"))
        engine.clock.advance(6)
        assert engine.dispatch_due() == 1
        assert fired == ["a"]

    def test_dispatch_fifo_order_on_ties(self, engine):
        fired = []
        engine.schedule_at(5, lambda: fired.append(1))
        engine.schedule_at(5, lambda: fired.append(2))
        engine.schedule_at(5, lambda: fired.append(3))
        engine.clock.advance(5)
        engine.dispatch_due()
        assert fired == [1, 2, 3]

    def test_dispatch_counts(self, engine):
        engine.schedule_at(1, lambda: None)
        engine.schedule_at(2, lambda: None)
        engine.clock.advance(10)
        assert engine.dispatch_due() == 2
        assert engine.dispatched == 2

    def test_callbacks_may_schedule_more(self, engine):
        fired = []

        def first():
            fired.append("first")
            engine.schedule_at(engine.clock.now, lambda: fired.append("second"))

        engine.schedule_at(5, first)
        engine.clock.advance(5)
        engine.dispatch_due()
        assert fired == ["first", "second"]

    def test_advance_to_next_jumps_clock(self, engine):
        fired = []
        engine.schedule_at(100, lambda: fired.append("x"))
        assert engine.advance_to_next()
        assert engine.clock.now == 100
        assert fired == ["x"]

    def test_advance_to_next_empty_returns_false(self, engine):
        assert not engine.advance_to_next()
        assert engine.clock.now == 0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, engine):
        fired = []
        event = engine.schedule_at(5, lambda: fired.append("x"))
        event.cancel()
        engine.clock.advance(10)
        engine.dispatch_due()
        assert fired == []

    def test_cancelled_not_counted_pending(self, engine):
        event = engine.schedule_at(5, lambda: None)
        engine.schedule_at(6, lambda: None)
        event.cancel()
        assert engine.pending == 1

    def test_next_event_time_skips_cancelled(self, engine):
        event = engine.schedule_at(5, lambda: None)
        engine.schedule_at(9, lambda: None)
        event.cancel()
        assert engine.next_event_time() == 9

    def test_advance_to_next_skips_cancelled(self, engine):
        fired = []
        event = engine.schedule_at(5, lambda: fired.append("a"))
        engine.schedule_at(9, lambda: fired.append("b"))
        event.cancel()
        assert engine.advance_to_next()
        assert engine.clock.now == 9
        assert fired == ["b"]

    def test_horizon_refreshes_after_dispatch(self, engine):
        engine.schedule_at(5, lambda: None)
        engine.schedule_at(50, lambda: None)
        engine.clock.advance(10)
        engine.dispatch_due()
        assert engine.horizon == 50
