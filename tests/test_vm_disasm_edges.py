"""Disassembler edge cases: function-boundary control flow and
jump-table operand rendering."""

from repro.vm.assembler import Assembler
from repro.vm.disasm import format_insn, listing
from repro.vm.isa import SYS_EXIT, Reg


def build_boundary_binary():
    """`spin` ends on a branch; `broken` falls through into `main`."""
    asm = Assembler("edges")
    asm.entry("main")
    with asm.function("spin"):
        asm.label("spin_top")
        asm.addi(Reg.t0, Reg.t0, 1)
        asm.blt(Reg.t0, Reg.t1, "spin_top")  # last insn of the function
    with asm.function("broken"):
        asm.li(Reg.t2, 7)                    # falls into main
    with asm.function("main"):
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
    return asm.finish()


class TestFunctionBoundaries:
    def test_branch_at_last_instruction_renders_its_target(self):
        binary = build_boundary_binary()
        spin = binary.functions[0]
        text = format_insn(binary.text[spin.end - 1], binary)
        # The taken target is the function's own entry, so the label
        # resolves to the function name rather than a raw index.
        assert text.startswith("blt")
        assert "spin" in text

    def test_branch_target_outside_entries_renders_raw_index(self):
        binary = build_boundary_binary()
        # spin_top is index 0 == spin's entry; craft a mid-function view
        # by formatting without the binary: no label resolution at all.
        text = format_insn(binary.text[1])
        assert "@0" in text

    def test_fallthrough_into_next_function_shows_both_labels(self):
        binary = build_boundary_binary()
        lines = listing(binary)
        broken_pos = lines.index("broken:")
        main_pos = lines.index("main:")
        assert broken_pos < main_pos
        # Exactly one instruction between the two labels: the listing
        # makes the missing return visible.
        between = [
            line for line in lines[broken_pos:main_pos].splitlines()
            if line.strip() and not line.endswith(":")
        ]
        assert len(between) == 1
        assert "li" in between[0]


class TestJumpTableOperands:
    def _binary(self, ncases=2, recognized=True):
        asm = Assembler("tables")
        asm.entry("main")
        with asm.function("main"):
            labels = [f"case{i}" for i in range(ncases)]
            table = asm.jump_table(labels, recognized=recognized)
            asm.li(Reg.t0, 0)
            asm.switch(Reg.t0, table)
            for label in labels:
                asm.label(label)
                asm.nop()
            asm.li(Reg.a0, 0)
            asm.syscall(SYS_EXIT)
        return asm.finish()

    def _switch_line(self, binary):
        (index,) = [i for i, insn in enumerate(binary.text)
                    if insn.op.name == "SWITCH"]
        return format_insn(binary.text[index], binary)

    def test_recognized_table_lists_targets(self):
        line = self._switch_line(self._binary())
        assert "table#0" in line
        assert "[@2, @3]" in line
        assert "unrecognized" not in line

    def test_unrecognized_table_is_tagged(self):
        line = self._switch_line(self._binary(recognized=False))
        assert "unrecognized; [" in line

    def test_long_tables_are_truncated(self):
        line = self._switch_line(self._binary(ncases=9))
        assert line.count("@") == 6
        assert "..." in line

    def test_without_binary_only_table_id(self):
        binary = self._binary()
        (index,) = [i for i, insn in enumerate(binary.text)
                    if insn.op.name == "SWITCH"]
        line = format_insn(binary.text[index])
        assert line.strip().endswith("table#0")
