"""Tests for the Postgres join extension benchmark."""

import pytest

from repro.apps.postgres import (
    KEYS_PER_LEAF,
    PAGE,
    PostgresWorkload,
    generate_postgres_relations,
)
from repro.fs.filesystem import FileSystem
from repro.harness.config import ExperimentConfig, Variant
from repro.harness.runner import run_experiment


class TestRelationGenerator:
    def test_outer_keys_are_a_permutation(self):
        fs = FileSystem()
        workload = PostgresWorkload(outer_pages=8, inner_pages=16)
        generate_postgres_relations(fs, workload)
        data = fs.lookup("db/outer.heap").data
        keys = set()
        for slot in range(workload.ntuples):
            at = slot * (PAGE // 16)
            keys.add(int.from_bytes(data[at:at + 8], "little"))
        assert keys == set(range(workload.ntuples))

    def test_selectivity_approximate(self):
        fs = FileSystem()
        workload = PostgresWorkload(outer_pages=24, selectivity_pct=20)
        generate_postgres_relations(fs, workload)
        data = fs.lookup("db/outer.heap").data
        matches = 0
        for slot in range(workload.ntuples):
            at = slot * (PAGE // 16)
            matches += int.from_bytes(data[at + 8:at + 16], "little")
        rate = matches / workload.ntuples
        assert 0.12 < rate < 0.28

    def test_index_chains_to_inner_heap(self):
        fs = FileSystem()
        workload = PostgresWorkload(outer_pages=8, inner_pages=16)
        generate_postgres_relations(fs, workload)
        index = fs.lookup("db/inner.idx").data
        inner_size = fs.lookup("db/inner.heap").size
        for key in range(0, workload.ntuples, 17):
            leaf_off = int.from_bytes(
                index[(key // KEYS_PER_LEAF) * 8:][:8], "little"
            )
            assert leaf_off % PAGE == 0
            at = leaf_off + (key % KEYS_PER_LEAF) * 8
            inner_off = int.from_bytes(index[at:at + 8], "little")
            assert 0 <= inner_off < inner_size


@pytest.fixture(scope="module")
def results():
    out = {}
    for app in ("postgres20", "postgres80"):
        out[app] = {
            v: run_experiment(ExperimentConfig(app=app, variant=v,
                                               workload_scale=0.5))
            for v in Variant
        }
    return out


class TestJoinBehaviour:
    @pytest.mark.parametrize("app", ["postgres20", "postgres80"])
    def test_all_variants_agree_on_result(self, results, app):
        outputs = {v: results[app][v].output for v in Variant}
        assert outputs[Variant.ORIGINAL] == outputs[Variant.SPECULATING]
        assert outputs[Variant.ORIGINAL] == outputs[Variant.MANUAL]

    def test_higher_selectivity_means_more_reads(self, results):
        assert results["postgres80"][Variant.ORIGINAL].read_calls > \
            results["postgres20"][Variant.ORIGINAL].read_calls * 1.5

    @pytest.mark.parametrize("app", ["postgres20", "postgres80"])
    def test_hinting_wins(self, results, app):
        original = results[app][Variant.ORIGINAL]
        for variant in (Variant.SPECULATING, Variant.MANUAL):
            assert results[app][variant].improvement_over(original) > 10

    def test_more_matches_more_benefit(self, results):
        """Table 1's shape: the 80% join gains more from hints than the
        20% one (more probes => more prefetchable I/O)."""
        def manual_improvement(app):
            matrix = results[app]
            return matrix[Variant.MANUAL].improvement_over(
                matrix[Variant.ORIGINAL]
            )

        assert manual_improvement("postgres80") > manual_improvement("postgres20")

    @pytest.mark.parametrize("app", ["postgres20", "postgres80"])
    def test_speculation_hints_most_probes(self, results, app):
        spec = results[app][Variant.SPECULATING]
        assert spec.pct_calls_hinted > 70

    def test_dependent_inner_reads_produce_erroneous_hints(self, results):
        """The leaf -> inner-heap chain is data dependent: restarted
        speculation mispredicts some inner offsets."""
        spec = results["postgres20"][Variant.SPECULATING]
        assert spec.spec_restarts > 3
        assert spec.inaccurate_hints > 10
