"""Property-based end-to-end test of the SpecHint correctness goal.

Section 3.1, design goal *Correct*: "the results of executing a
transformed application should match those of executing the original
application."  We generate random little disk-bound programs — arbitrary
arithmetic, buffer loads/stores, computation phases, and a file-reading
loop whose control flow depends on the data read — and check that the
SpecHint-transformed executable produces bit-identical output and final
memory on an identical machine.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs.filesystem import FileSystem
from repro.params import BLOCK_SIZE
from repro.spechint.tool import SpecHintTool
from repro.vm.assembler import Assembler
from repro.vm.isa import SYS_EXIT, SYS_OPEN, SYS_READ, Reg
from repro.vm.stdlib import emit_stdlib

from tests.conftest import make_system, small_system_config

#: Registers random code may freely clobber.
SCRATCH = [Reg.t0, Reg.t1, Reg.t2, Reg.t3, Reg.t4, Reg.t5]

REG = st.sampled_from(SCRATCH)

#: One random operation: (kind, reg_a, reg_b, immediate).
OPERATION = st.tuples(
    st.sampled_from(["add", "sub", "mul", "xor", "shl", "li",
                     "load", "store", "cwork", "divsafe"]),
    REG,
    REG,
    st.integers(0, 255),
)

PROGRAM = st.lists(OPERATION, min_size=1, max_size=25)


def emit_random_ops(asm, ops, unique):
    """Emit the generated operations (all safe by construction)."""
    asm.data_space(f"scratch{unique}", 4096)
    asm.la(Reg.s3, f"scratch{unique}")
    for kind, ra, rb, imm in ops:
        if kind == "add":
            asm.add(ra, rb, ra)
        elif kind == "sub":
            asm.sub(ra, ra, rb)
        elif kind == "mul":
            asm.muli(ra, rb, imm)
        elif kind == "xor":
            asm.xor(ra, ra, rb)
        elif kind == "shl":
            asm.shli(ra, rb, imm % 8)
        elif kind == "li":
            asm.li(ra, imm * 1_000_003)
        elif kind == "load":
            asm.load(ra, Reg.s3, (imm % 500) * 8)
        elif kind == "store":
            asm.store(ra, Reg.s3, (imm % 500) * 8)
        elif kind == "cwork":
            asm.cwork(100 + imm * 10, imm, imm // 4)
        elif kind == "divsafe":
            asm.ori(Reg.at, rb, 1)  # divisor never zero
            asm.div(ra, ra, Reg.at)


def build_program(ops):
    """A program that reads a 3-block file, mixing in the random ops; the
    checksum it prints depends on both the data and the ops."""
    asm = Assembler("random")
    emit_stdlib(asm)
    asm.data_asciiz("path", "input")
    asm.data_space("buf", BLOCK_SIZE)
    asm.entry("main")
    with asm.function("main"):
        asm.la(Reg.a0, "path")
        asm.syscall(SYS_OPEN)
        asm.mov(Reg.s1, Reg.v0)
        asm.li(Reg.s5, 0)
        asm.label("reads")
        asm.mov(Reg.a0, Reg.s1)
        asm.la(Reg.a1, "buf")
        asm.li(Reg.a2, BLOCK_SIZE)
        asm.syscall(SYS_READ)
        asm.beq(Reg.v0, Reg.zero, "done")
        asm.la(Reg.t9, "buf")
        asm.loadb(Reg.t8, Reg.t9, 1)
        asm.add(Reg.s5, Reg.s5, Reg.t8)
        emit_random_ops(asm, ops, unique=asm.here)
        # Fold the scratch registers into the checksum.
        for reg in SCRATCH:
            asm.add(Reg.s5, Reg.s5, reg)
        asm.jmp("reads")
        asm.label("done")
        asm.mov(Reg.a0, Reg.s5)
        asm.call("print_num")
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
    return asm.finish()


def run_binary(binary):
    fs = FileSystem(allocation_jitter_blocks=4, seed=3)
    fs.create("input", bytes((7 * i) % 256 for i in range(3 * BLOCK_SIZE)))
    system = make_system(fs, small_system_config(cache_blocks=16))
    process = system.kernel.spawn(binary)
    system.kernel.run()
    return system, process


@given(ops=PROGRAM)
@settings(max_examples=40, deadline=None)
def test_transformed_program_is_correct(ops):
    original_system, original = run_binary(build_program(ops))
    spec_system, speculating = run_binary(
        SpecHintTool().transform(build_program(ops))
    )
    # Identical observable output and exit status.
    assert bytes(speculating.output) == bytes(original.output)
    assert speculating.exit_code == original.exit_code
    # Identical final data-segment contents (speculation never leaked).
    size = max(1, len(original.binary.data))
    assert speculating.mem.read_bytes(original.mem.data_start, size) == \
        original.mem.read_bytes(original.mem.data_start, size)


@given(ops=PROGRAM)
@settings(max_examples=15, deadline=None)
def test_transformed_program_never_slower_by_much(ops):
    """Design goal *Free*: at worst insignificantly slower (here: hints
    enabled, so the transformed run should in fact win or tie)."""
    original_system, _ = run_binary(build_program(ops))
    spec_system, _ = run_binary(SpecHintTool().transform(build_program(ops)))
    assert spec_system.clock.now <= original_system.clock.now * 1.08
