"""Focused tests of TIP's cost-benefit eviction policy."""

from repro.fs.cache import BlockCache
from repro.fs.filesystem import FileSystem
from repro.fs.readahead import SequentialReadAhead
from repro.params import (
    ArrayParams,
    BLOCK_SIZE,
    CpuParams,
    DiskParams,
    TipParams,
)
from repro.sim.clock import SimClock
from repro.sim.engine import EventEngine
from repro.sim.stats import StatRegistry
from repro.storage.striping import StripedArray
from repro.tip.hints import HintSegment, Ioctl
from repro.tip.manager import TipManager

PID = 1


def make_tip(cache_blocks=4, horizon=8, file_blocks=128):
    fs = FileSystem()
    fs.create("f", bytes(file_blocks * BLOCK_SIZE))
    clock = SimClock()
    engine = EventEngine(clock)
    stats = StatRegistry()
    array = StripedArray(
        fs.total_blocks, ArrayParams(), DiskParams(), CpuParams(),
        engine, stats,
    )
    cache = BlockCache(cache_blocks, stats)
    params = TipParams(prefetch_horizon=horizon, max_inflight_per_disk=16)
    manager = TipManager(fs, array, cache, SequentialReadAhead(), stats, params)
    return manager, fs.lookup("f"), engine, stats


def fill_valid(manager, inode, blocks, engine):
    for b in blocks:
        manager.access_block(inode, b, lambda: None)
    while engine.advance_to_next():
        pass


def hint_blocks(manager, inode, blocks):
    for b in blocks:
        manager.hint_segments(
            PID,
            [HintSegment(inode, b * BLOCK_SIZE, BLOCK_SIZE, PID,
                         Ioctl.TIPIO_FD_SEG)],
        )


class TestVictimSelection:
    def test_prefers_unhinted_lru(self):
        manager, inode, engine, _ = make_tip()
        fill_valid(manager, inode, [60, 61, 62, 63], engine)
        # Hint (and thereby protect) blocks 61-63 but not 60.
        hint_blocks(manager, inode, [61, 62, 63])
        victim = manager.find_victim()
        assert victim is not None
        assert victim.key == (inode.ino, 60)

    def test_hinted_within_horizon_protected(self):
        manager, inode, engine, _ = make_tip(horizon=8)
        fill_valid(manager, inode, [60, 61], engine)
        hint_blocks(manager, inode, [60, 61])
        # Both hinted near the queue front: no victim available.
        assert manager.find_victim() is None

    def test_hinted_beyond_horizon_evictable(self):
        """Blocks whose hints sit far beyond the prefetch horizon may be
        displaced by prefetches for the front of the queue."""
        manager, inode, engine, stats = make_tip(cache_blocks=2, horizon=4)
        fill_valid(manager, inode, [100, 101], engine)
        # One disclosure: 30 near-future blocks, then the two cached ones.
        segments = [
            HintSegment(inode, b * BLOCK_SIZE, BLOCK_SIZE, PID,
                        Ioctl.TIPIO_FD_SEG)
            for b in list(range(0, 30)) + [100, 101]
        ]
        manager.hint_segments(PID, segments)
        # Prefetching the queue front evicted the far-future hinted blocks.
        assert stats.get("tip.hinted_evictions") >= 1
        assert not manager.peek_valid(inode, 100) or \
            not manager.peek_valid(inode, 101)

    def test_closest_hint_position_counts(self):
        """A block hinted both soon and late is protected by the soon one."""
        manager, inode, engine, _ = make_tip(cache_blocks=1, horizon=4)
        fill_valid(manager, inode, [100], engine)
        hint_blocks(manager, inode, [100] + list(range(0, 20)) + [100])
        assert manager.find_victim() is None


class TestQueueHygiene:
    def test_consumed_hints_release_protection(self):
        manager, inode, engine, _ = make_tip()
        fill_valid(manager, inode, [60], engine)
        hint_blocks(manager, inode, [60])
        assert manager.find_victim() is None
        manager.consume_hints(PID, inode, 60, 60, 60 * BLOCK_SIZE, BLOCK_SIZE)
        victim = manager.find_victim()
        assert victim is not None and victim.key == (inode.ino, 60)

    def test_cancel_releases_protection(self):
        manager, inode, engine, _ = make_tip()
        fill_valid(manager, inode, [60], engine)
        hint_blocks(manager, inode, [60])
        manager.cancel_all(PID)
        assert manager.find_victim() is not None

    def test_stale_entries_eventually_dropped(self):
        manager, inode, engine, stats = make_tip(file_blocks=128)
        hint_blocks(manager, inode, [99])  # never read
        state = manager._proc(PID)
        state.queue[0].skips = manager.STALE_SKIP_LIMIT + 1
        manager.consume_hints(PID, inode, 0, 0, 0, 64)
        assert stats.get("tip.hints_stale_dropped") == 1
        assert manager.outstanding_hints(PID) == 0
