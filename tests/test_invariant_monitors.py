"""Each invariant monitor trips on its forged failure and only on it.

The monitors duck-type their way into the system (``getattr`` chains),
so these tests forge minimal fakes: a real audit table with one tampered
record, a real lifecycle ledger driven into double-terminal, a TIP
manager that lies about its queue.  A final test runs a real clean cell
and asserts total silence — the monitors must never cry wolf.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.errors import DataLossError
from repro.faults.plan import FaultPlan
from repro.harness.invariants import (
    DEFAULT_MONITORS,
    AuditChainMonitor,
    CancelDrainMonitor,
    CellObservation,
    ClockMonotonicityMonitor,
    HintLifecycleMonitor,
    SpecIdentityMonitor,
    TypedErrorMonitor,
    VariantObservation,
    Violation,
    check_all,
)
from repro.spechint.auditor import AuditTable


def _plan(**kwargs) -> FaultPlan:
    return FaultPlan(name="forged", seed=3, **kwargs)


def _cell(variants, plan=None) -> CellObservation:
    return CellObservation(app="agrep", plan=plan or _plan(),
                           variants=variants)


def _vobs_with_process(process, **kwargs) -> VariantObservation:
    system = SimpleNamespace(
        kernel=SimpleNamespace(processes=[process]),
        manager=kwargs.pop("manager", None),
    )
    return VariantObservation(variant="speculating", system=system, **kwargs)


class TestAuditChainMonitor:
    def _process(self, table):
        return SimpleNamespace(
            pid=1, spec=SimpleNamespace(auditor=SimpleNamespace(table=table))
        )

    def test_intact_chain_is_silent(self):
        table = AuditTable()
        table.record("restart", "cancelled=3")
        table.record("quarantine", "cow escape")
        obs = _cell({"speculating": _vobs_with_process(self._process(table))})
        assert AuditChainMonitor().check(obs) == []

    def test_forged_record_trips(self):
        table = AuditTable()
        table.record("restart", "cancelled=3")
        table.record("restart", "cancelled=5")
        table.records()[0].detail = "cancelled=999"  # forge history
        obs = _cell({"speculating": _vobs_with_process(self._process(table))})
        violations = AuditChainMonitor().check(obs)
        assert len(violations) == 1
        assert violations[0].monitor == "audit-chain"
        assert "chain" in violations[0].detail

    def test_no_auditor_is_silent(self):
        process = SimpleNamespace(pid=1, spec=None)
        obs = _cell({"speculating": _vobs_with_process(process)})
        assert AuditChainMonitor().check(obs) == []


class _FakeLifecycle:
    """Just the surface HintLifecycleMonitor/CancelDrainMonitor read."""

    def __init__(self, disclosed=0, terminals=None, open_by_pid=None,
                 capacity=1 << 17, records=()):
        self.disclosed_total = disclosed
        self.terminal_counts = dict(terminals or {})
        self.capacity = capacity
        self._records = list(records)
        self._open_by_pid = dict(open_by_pid or {})

    @property
    def open_total(self):
        return self.disclosed_total - sum(self.terminal_counts.values())

    def open_for(self, pid):
        return self._open_by_pid.get(pid, 0)

    def records(self):
        return list(self._records)

    def summary_counts(self):
        return {"disclosed": self.disclosed_total, **self.terminal_counts}


def _vobs_with_lifecycle(lifecycle, error=None) -> VariantObservation:
    system = SimpleNamespace(manager=SimpleNamespace(lifecycle=lifecycle),
                             kernel=SimpleNamespace(processes=[]))
    return VariantObservation(variant="speculating", system=system,
                              error=error)


class TestHintLifecycleMonitor:
    def test_balanced_books_are_silent(self):
        lifecycle = _FakeLifecycle(
            disclosed=2, terminals={"consumed": 2},
            records=[
                SimpleNamespace(seq=0, terminal="consumed",
                                disclosed_ts=5, terminal_ts=9),
                SimpleNamespace(seq=1, terminal="consumed",
                                disclosed_ts=6, terminal_ts=12),
            ],
        )
        obs = _cell({"speculating": _vobs_with_lifecycle(lifecycle)})
        assert HintLifecycleMonitor().check(obs) == []

    def test_open_hint_after_clean_finish_trips(self):
        lifecycle = _FakeLifecycle(disclosed=3, terminals={"consumed": 2})
        obs = _cell({"speculating": _vobs_with_lifecycle(lifecycle)})
        violations = HintLifecycleMonitor().check(obs)
        assert any("still open" in v.detail for v in violations)

    def test_double_terminal_trips(self):
        # 1 disclosed, 2 terminals: some hint terminated twice.
        lifecycle = _FakeLifecycle(
            disclosed=1, terminals={"consumed": 1, "cancelled": 1}
        )
        obs = _cell({"speculating": _vobs_with_lifecycle(lifecycle)})
        violations = HintLifecycleMonitor().check(obs)
        assert any("more than one terminal" in v.detail for v in violations)

    def test_aggregate_record_mismatch_trips(self):
        lifecycle = _FakeLifecycle(
            disclosed=2, terminals={"consumed": 2},
            records=[SimpleNamespace(seq=0, terminal="consumed",
                                     disclosed_ts=5, terminal_ts=9)],
        )
        obs = _cell({"speculating": _vobs_with_lifecycle(lifecycle)})
        violations = HintLifecycleMonitor().check(obs)
        assert any("do not balance" in v.detail for v in violations)

    def test_terminal_before_disclosure_trips(self):
        lifecycle = _FakeLifecycle(
            disclosed=1, terminals={"consumed": 1},
            records=[SimpleNamespace(seq=4, terminal="consumed",
                                     disclosed_ts=100, terminal_ts=40)],
        )
        obs = _cell({"speculating": _vobs_with_lifecycle(lifecycle)})
        violations = HintLifecycleMonitor().check(obs)
        assert any("before its disclosure" in v.detail for v in violations)

    def test_open_hints_excused_when_run_escaped(self):
        lifecycle = _FakeLifecycle(
            disclosed=3, terminals={"consumed": 2},
            records=[
                SimpleNamespace(seq=0, terminal="consumed",
                                disclosed_ts=5, terminal_ts=9),
                SimpleNamespace(seq=1, terminal="consumed",
                                disclosed_ts=6, terminal_ts=12),
                SimpleNamespace(seq=2, terminal=None,
                                disclosed_ts=7, terminal_ts=0),
            ],
        )
        obs = _cell({"speculating": _vobs_with_lifecycle(
            lifecycle, error=DataLossError("gone")
        )})
        assert HintLifecycleMonitor().check(obs) == []


class TestCancelDrainMonitor:
    def _obs(self, manager, process=None, error=None):
        system = SimpleNamespace(
            manager=manager,
            kernel=SimpleNamespace(
                processes=[process] if process is not None else []
            ),
        )
        vobs = VariantObservation(variant="speculating", system=system,
                                  error=error)
        return _cell({"speculating": vobs})

    def test_undrained_queue_at_end_trips(self):
        manager = SimpleNamespace(
            outstanding_hints=lambda pid: 3, lifecycle=None,
            cancelled_total=0,
        )
        process = SimpleNamespace(pid=1, spec=None)
        violations = CancelDrainMonitor().check(self._obs(manager, process))
        assert any("still queued" in v.detail for v in violations)

    def test_restart_without_audit_record_trips(self):
        table = AuditTable()
        table.record("restart", "cancelled=2")
        process = SimpleNamespace(
            pid=1,
            spec=SimpleNamespace(
                restarts=2, auditor=SimpleNamespace(table=table)
            ),
        )
        manager = SimpleNamespace(outstanding_hints=lambda pid: 0,
                                  lifecycle=None, cancelled_total=0)
        violations = CancelDrainMonitor().check(self._obs(manager, process))
        assert any("skipped its cancel-drain audit" in v.detail
                   for v in violations)

    def test_ledger_cancel_mismatch_trips(self):
        lifecycle = _FakeLifecycle(disclosed=4, terminals={"cancelled": 1,
                                                           "consumed": 3})
        manager = SimpleNamespace(outstanding_hints=lambda pid: 0,
                                  lifecycle=lifecycle, cancelled_total=4)
        violations = CancelDrainMonitor().check(self._obs(manager))
        assert any("ledger recorded" in v.detail for v in violations)

    def test_clean_books_are_silent(self):
        table = AuditTable()
        table.record("restart", "cancelled=2")
        lifecycle = _FakeLifecycle(disclosed=2, terminals={"cancelled": 2})
        process = SimpleNamespace(
            pid=1,
            spec=SimpleNamespace(
                restarts=1, auditor=SimpleNamespace(table=table)
            ),
        )
        manager = SimpleNamespace(outstanding_hints=lambda pid: 0,
                                  lifecycle=lifecycle, cancelled_total=2)
        assert CancelDrainMonitor().check(self._obs(manager, process)) == []


def _result(output=b"out", read_trace=((1, 0, 10),), cycles=100):
    return SimpleNamespace(output=output, read_trace=read_trace,
                           cycles=cycles)


class TestSpecIdentityMonitor:
    def _obs(self, original, speculating, plan=None):
        return _cell({"original": original, "speculating": speculating},
                     plan=plan)

    def test_identical_runs_are_silent(self):
        obs = self._obs(
            VariantObservation("original", result=_result()),
            VariantObservation("speculating", result=_result()),
        )
        assert SpecIdentityMonitor().check(obs) == []

    def test_tampered_output_trips(self):
        obs = self._obs(
            VariantObservation("original", result=_result(output=b"good")),
            VariantObservation("speculating", result=_result(output=b"evil")),
        )
        violations = SpecIdentityMonitor().check(obs)
        assert len(violations) == 1
        assert "output divergence" in violations[0].detail

    def test_diverged_read_trace_trips(self):
        obs = self._obs(
            VariantObservation("original",
                               result=_result(read_trace=((1, 0, 10),))),
            VariantObservation("speculating",
                               result=_result(read_trace=((1, 0, 11),))),
        )
        violations = SpecIdentityMonitor().check(obs)
        assert any("demand-read divergence" in v.detail for v in violations)

    def test_asymmetric_escape_trips(self):
        obs = self._obs(
            VariantObservation("original", result=_result()),
            VariantObservation("speculating", error=DataLossError("x")),
        )
        violations = SpecIdentityMonitor().check(obs)
        assert any("asymmetric" in v.detail for v in violations)

    def test_double_fault_plan_requires_symmetric_data_loss(self):
        plan = _plan(dead_disk=0, dead_at_s=0.001,
                     second_dead_disk=1, second_dead_at_s=0.002)
        obs = self._obs(
            VariantObservation("original", error=DataLossError("a")),
            VariantObservation("speculating", result=_result()),
            plan=plan,
        )
        violations = SpecIdentityMonitor().check(obs)
        assert any("symmetric DataLossError" in v.detail for v in violations)

    def test_double_fault_with_symmetric_loss_is_silent(self):
        plan = _plan(dead_disk=0, dead_at_s=0.001,
                     second_dead_disk=1, second_dead_at_s=0.002)
        obs = self._obs(
            VariantObservation("original", error=DataLossError("a")),
            VariantObservation("speculating", error=DataLossError("b")),
            plan=plan,
        )
        assert SpecIdentityMonitor().check(obs) == []


class TestTypedErrorMonitor:
    def test_untyped_escape_trips(self):
        obs = _cell({"speculating": VariantObservation(
            "speculating", error=ValueError("oops")
        )})
        violations = TypedErrorMonitor().check(obs)
        assert any("untyped ValueError" in v.detail for v in violations)

    def test_unexpected_data_loss_trips(self):
        obs = _cell({"speculating": VariantObservation(
            "speculating", error=DataLossError("gone")
        )})
        violations = TypedErrorMonitor().check(obs)
        assert any("without a double-fault plan" in v.detail
                   for v in violations)

    def test_expected_data_loss_is_silent(self):
        plan = _plan(dead_disk=0, dead_at_s=0.001,
                     second_dead_disk=1, second_dead_at_s=0.002)
        obs = _cell({"speculating": VariantObservation(
            "speculating", error=DataLossError("gone")
        )}, plan=plan)
        assert TypedErrorMonitor().check(obs) == []


class TestClockMonotonicityMonitor:
    def test_forward_clock_is_silent(self):
        obs = _cell({"speculating": VariantObservation(
            "speculating", result=_result(cycles=50),
            clock_samples=[("built", 0), ("end", 50)],
        )})
        assert ClockMonotonicityMonitor().check(obs) == []

    def test_backwards_clock_trips(self):
        obs = _cell({"speculating": VariantObservation(
            "speculating",
            clock_samples=[("built", 100), ("end", 40)],
        )})
        violations = ClockMonotonicityMonitor().check(obs)
        assert any("ran backwards" in v.detail for v in violations)

    def test_result_clock_mismatch_trips(self):
        obs = _cell({"speculating": VariantObservation(
            "speculating", result=_result(cycles=999),
            clock_samples=[("built", 0), ("end", 50)],
        )})
        violations = ClockMonotonicityMonitor().check(obs)
        assert any("clock ended" in v.detail for v in violations)


class TestViolationSerde:
    def test_round_trip(self):
        violation = Violation("audit-chain", "broken", {"pid": 1})
        back = Violation.from_jsonable(violation.to_jsonable())
        assert back.monitor == "audit-chain"
        assert back.detail == "broken"
        assert back.witness == {"pid": 1}
        assert str(back) == "[audit-chain] broken"


class TestSilenceOnCleanRuns:
    def test_all_monitors_silent_on_real_clean_cell(self):
        from repro.faults.generate import FuzzCase
        from repro.harness.fuzz import run_fuzz_case

        case = FuzzCase(index=0, app="agrep",
                        plan=FaultPlan(name="clean", seed=1))
        result = run_fuzz_case(case)
        assert result.passed, [str(v) for v in result.violations]

    def test_all_monitors_silent_under_builtin_chaos(self):
        from repro.faults.generate import FuzzCase
        from repro.harness.fuzz import run_fuzz_case

        case = FuzzCase(index=0, app="agrep",
                        plan=profile_plan("hint-corruption"))
        result = run_fuzz_case(case)
        assert result.passed, [str(v) for v in result.violations]


def profile_plan(name: str) -> FaultPlan:
    from repro.faults.plan import profile

    return profile(name, seed=7)


def test_check_all_concatenates_in_monitor_order():
    obs = _cell({"speculating": VariantObservation(
        "speculating", error=ValueError("oops"),
        clock_samples=[("built", 10), ("end", 5)],
    )})
    violations = check_all(obs, DEFAULT_MONITORS)
    names = [v.monitor for v in violations]
    assert "typed-errors" in names
    assert "clock-monotonic" in names
    assert names.index("typed-errors") < names.index("clock-monotonic")
