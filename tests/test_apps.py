"""Tests for the three benchmark applications.

These run scaled-down workloads end to end in all variants and check the
paper's qualitative properties: correctness across variants, hinting
behaviour, and the application-specific signatures (Agrep's EOF reads,
Gnuld's data-dependent restarts and erroneous hints, XDataSlice's
near-total hint coverage).
"""

import pytest

from repro.harness.config import ExperimentConfig, Variant
from repro.harness.runner import run_experiment

#: Workload scales chosen so benchmarks stay out-of-cache (tiny runs fit
#: in the file cache and stop being disk-bound) while tests remain fast.
SCALE = {"agrep": 0.3, "gnuld": 1.0, "xds": 0.3}


def run(app, variant, **kwargs):
    cfg = ExperimentConfig(
        app=app, variant=variant, workload_scale=SCALE[app], **kwargs
    )
    return run_experiment(cfg)


@pytest.fixture(scope="module")
def matrix():
    return {
        app: {v: run(app, v) for v in Variant}
        for app in ("agrep", "gnuld", "xds")
    }


class TestCorrectnessAcrossVariants:
    @pytest.mark.parametrize("app", ["agrep", "gnuld", "xds"])
    def test_speculating_output_matches_original(self, matrix, app):
        original = matrix[app][Variant.ORIGINAL]
        speculating = matrix[app][Variant.SPECULATING]
        assert speculating.output == original.output
        assert len(original.output) > 0

    @pytest.mark.parametrize("app", ["agrep", "xds"])
    def test_manual_output_matches_original(self, matrix, app):
        # (Manual Gnuld is restructured; its read order differs but its
        # written artifact is checked separately below.)
        assert matrix[app][Variant.MANUAL].output == \
            matrix[app][Variant.ORIGINAL].output

    @pytest.mark.parametrize("app", ["agrep", "gnuld", "xds"])
    def test_read_totals_identical_original_vs_speculating(self, matrix, app):
        original = matrix[app][Variant.ORIGINAL]
        speculating = matrix[app][Variant.SPECULATING]
        assert speculating.read_calls == original.read_calls
        assert speculating.read_bytes == original.read_bytes


class TestImprovements:
    @pytest.mark.parametrize("app", ["agrep", "gnuld", "xds"])
    def test_both_hinting_variants_beat_original(self, matrix, app):
        original = matrix[app][Variant.ORIGINAL]
        for variant in (Variant.SPECULATING, Variant.MANUAL):
            assert matrix[app][variant].improvement_over(original) > 10

    def test_gnuld_speculating_trails_manual(self, matrix):
        """The paper's headline asymmetry: data dependencies hold the
        speculating Gnuld well below the manually restructured one."""
        original = matrix["gnuld"][Variant.ORIGINAL]
        spec = matrix["gnuld"][Variant.SPECULATING].improvement_over(original)
        manual = matrix["gnuld"][Variant.MANUAL].improvement_over(original)
        assert spec < manual


class TestAgrepSignatures:
    def test_eof_read_per_file(self, matrix):
        result = matrix["agrep"][Variant.ORIGINAL]
        # read calls = data reads + one EOF read per file.
        assert result.read_calls > result.c("app.open_calls")
        assert result.c("app.open_calls") == 48  # 160 * 0.3

    def test_no_erroneous_hints(self, matrix):
        """Agrep's accesses are fully argument-determined."""
        assert matrix["agrep"][Variant.SPECULATING].inaccurate_hints <= 2

    def test_high_dilation_factor(self, matrix):
        result = matrix["agrep"][Variant.SPECULATING]
        assert result.dilation_factor > 3.0

    def test_no_writes(self, matrix):
        assert matrix["agrep"][Variant.ORIGINAL].write_blocks == 0


class TestGnuldSignatures:
    def test_speculation_restarts_repeatedly(self, matrix):
        assert matrix["gnuld"][Variant.SPECULATING].spec_restarts > 10

    def test_erroneous_hints_generated(self, matrix):
        assert matrix["gnuld"][Variant.SPECULATING].inaccurate_hints > 50

    def test_writes_produced(self, matrix):
        result = matrix["gnuld"][Variant.ORIGINAL]
        assert result.write_calls > 0
        assert result.write_bytes > 0

    def test_output_file_identical_all_variants(self):
        """All three variants must link the same output contents."""
        contents = {}
        for variant in Variant:
            cfg = ExperimentConfig(app="gnuld", variant=variant,
                                   workload_scale=0.1)
            # Rebuild the world and capture the output file contents.
            from repro.apps.gnuld import GnuldWorkload, build_gnuld
            from repro.fs.filesystem import FileSystem
            from repro.harness.runner import build_system
            from repro.spechint.tool import SpecHintTool

            fs = FileSystem(allocation_jitter_blocks=24, seed=1999)
            binary = build_gnuld(fs, GnuldWorkload().scaled(0.1),
                                 manual_hints=variant is Variant.MANUAL)
            if variant is Variant.SPECULATING:
                binary = SpecHintTool().transform(binary)
            system = build_system(cfg.resolved_system(), fs)
            system.kernel.spawn(binary)
            system.kernel.run()
            contents[variant] = bytes(fs.lookup("out/kernel").data)
        assert contents[Variant.ORIGINAL] == contents[Variant.SPECULATING]
        assert contents[Variant.ORIGINAL] == contents[Variant.MANUAL]

    def test_cache_reuse_present(self, matrix):
        """Pass-1 reads share blocks; debug reads cluster."""
        assert matrix["gnuld"][Variant.ORIGINAL].cache_block_reuses > 50

    def test_low_dilation_factor(self, matrix):
        result = matrix["gnuld"][Variant.SPECULATING]
        assert 1.0 < result.dilation_factor < 3.0


class TestXdsSignatures:
    def test_nearly_all_reads_hinted(self, matrix):
        assert matrix["xds"][Variant.SPECULATING].pct_calls_hinted > 80

    def test_readahead_wasteful_for_original(self, matrix):
        result = matrix["xds"][Variant.ORIGINAL]
        assert result.prefetched_blocks > 0
        waste = result.prefetched_unused / max(1, result.prefetched_blocks)
        assert waste > 0.3

    def test_hinting_nearly_eliminates_waste(self, matrix):
        original = matrix["xds"][Variant.ORIGINAL]
        manual = matrix["xds"][Variant.MANUAL]
        assert manual.prefetched_unused < original.prefetched_unused / 2

    def test_little_reuse(self, matrix):
        result = matrix["xds"][Variant.ORIGINAL]
        assert result.cache_block_reuses < result.cache_block_reads / 2


class TestTransformReports:
    @pytest.mark.parametrize("app", ["agrep", "gnuld", "xds"])
    def test_transform_report_attached(self, matrix, app):
        report = matrix[app][Variant.SPECULATING].transform_report
        assert report is not None
        assert report.size_increase_pct > 50
        assert report.reads_substituted >= 1
