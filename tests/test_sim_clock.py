"""Tests for the simulation clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_starts_at_given_time(self):
        assert SimClock(start=100).now == 100

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimClock(start=-1)

    def test_advance_moves_forward(self):
        clock = SimClock()
        assert clock.advance(10) == 10
        assert clock.now == 10

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(3)
        clock.advance(4)
        assert clock.now == 7

    def test_advance_zero_is_noop(self):
        clock = SimClock(start=5)
        clock.advance(0)
        assert clock.now == 5

    def test_advance_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(SimulationError):
            clock.advance(-1)

    def test_advance_to_absolute(self):
        clock = SimClock()
        clock.advance_to(42)
        assert clock.now == 42

    def test_advance_to_present_is_noop(self):
        clock = SimClock(start=10)
        clock.advance_to(10)
        assert clock.now == 10

    def test_advance_to_past_rejected(self):
        clock = SimClock(start=10)
        with pytest.raises(SimulationError):
            clock.advance_to(9)

    def test_seconds_conversion(self):
        clock = SimClock(start=233_000_000)
        assert clock.seconds(233_000_000) == pytest.approx(1.0)

    def test_repr_contains_time(self):
        assert "42" in repr(SimClock(start=42))
