"""Tests for parameter helpers and the table formatters."""

import pytest

from repro.harness import paper
from repro.harness.config import Variant
from repro.harness.results import RunResult
from repro.harness.tables import (
    format_fig3,
    format_fig4,
    format_improvement_series,
    format_table4,
    format_table5,
    format_table6,
    format_table8,
)
from repro.params import (
    BLOCK_SIZE,
    BLOCKS_PER_STRIPE_UNIT,
    DiskParams,
    STRIPE_UNIT,
    SystemConfig,
    scaled_cache_blocks,
)


class TestParams:
    def test_stripe_unit_geometry(self):
        assert STRIPE_UNIT == 8 * BLOCK_SIZE
        assert BLOCKS_PER_STRIPE_UNIT == 8

    def test_scaled_cache_blocks(self):
        # Paper 12 MB at 8x scaling = 1.5 MB = 192 blocks of 8 KB.
        assert scaled_cache_blocks(12.0) == 192
        assert scaled_cache_blocks(6.0) == 96

    def test_scaled_cache_floor(self):
        assert scaled_cache_blocks(0.001) == 8

    def test_disk_scaled_speeds_everything(self):
        base = DiskParams()
        fast = DiskParams.scaled(4.0)
        assert fast.positioning_s == pytest.approx(base.positioning_s / 4)
        assert fast.overhead_s == pytest.approx(base.overhead_s / 4)
        assert fast.transfer_bps == pytest.approx(base.transfer_bps * 4)
        assert fast.track_buffer_bps == pytest.approx(base.track_buffer_bps * 4)
        assert fast.track_readahead_blocks == base.track_readahead_blocks

    def test_cpu_seconds_cycles_roundtrip(self):
        cpu = SystemConfig().cpu
        assert cpu.cycles(cpu.seconds(1_000_000)) == 1_000_000

    def test_replace_keeps_original(self):
        config = SystemConfig()
        other = config.replace(ncpus=2)
        assert other.ncpus == 2
        assert config.ncpus == 1


def fake_matrix():
    matrix = {}
    for app in ("agrep", "gnuld", "xds"):
        matrix[app] = {}
        for i, variant in enumerate(v.value for v in Variant):
            counters = {
                "app.read_calls": 100,
                "app.read_blocks": 120,
                "app.read_bytes": 1_000_000,
                "tip.hinted_read_calls": 60,
                "tip.hinted_read_bytes": 700_000,
                "tip.hints_consumed": 80,
                "cache.block_reads": 130,
                "cache.prefetched_blocks": 50,
                "cache.prefetched_fully": 30,
                "cache.prefetched_partial": 15,
                "cache.prefetched_unused": 5,
                "cache.block_reuses": 10,
            }
            result = RunResult(
                app=app, variant=variant, cycles=1000 - 100 * i,
                cpu_hz=1000, counters=counters,
            )
            result.footprint_bytes = 64 * 1024
            matrix[app][variant] = result
    return matrix


class TestFormatters:
    def test_fig3_mentions_every_app_and_paper_values(self):
        text = format_fig3(fake_matrix())
        for label in ("Agrep", "Gnuld", "XDataSlice"):
            assert label in text
        assert "paper 69%" in text

    def test_fig4_format(self):
        text = format_fig4({"agrep": 1.5, "gnuld": 2.0, "xds": 0.5})
        assert "1.50%" in text
        assert "<= 4%" in text

    def test_table4_format(self):
        text = format_table4(fake_matrix())
        assert "60.0%" in text  # pct calls hinted
        assert "2336" in text   # paper's Gnuld inaccurate hints

    def test_table5_format(self):
        text = format_table5(fake_matrix())
        assert "60.0%" in text  # fully / prefetched = 30/50
        assert "paper:" in text

    def test_table6_format(self):
        text = format_table6(fake_matrix())
        assert "64 KB" in text

    def test_table8_format(self):
        sweep = {1: fake_matrix(), 4: fake_matrix()}
        text = format_table8(sweep)
        assert "1d" in text and "4d" in text
        assert "paper" in text

    def test_improvement_series_format(self):
        sweep = {1: fake_matrix(), 2: fake_matrix()}
        text = format_improvement_series(sweep, "disks")
        assert "Agrep - speculating" in text
        assert "disks" in text


class TestPaperConstants:
    def test_fig3_consistent_with_table1(self):
        """Table 1's manual improvements match Figure 3's manual column."""
        for app, (spec, manual) in paper.FIG3_IMPROVEMENT.items():
            assert abs(manual - paper.TABLE1_MANUAL_IMPROVEMENT[app]) <= 4

    def test_table5_percentages_partition(self):
        for app, variants in paper.TABLE5.items():
            for variant, row in variants.items():
                fully, partially, unused = row[2], row[3], row[4]
                assert 99.0 <= fully + partially + unused <= 101.0

    def test_elapsed_matches_improvements(self):
        for app, (orig, spec, manual) in paper.FIG3_ELAPSED.items():
            spec_imp, manual_imp = paper.FIG3_IMPROVEMENT[app]
            assert abs(100 * (orig - spec) / orig - spec_imp) < 3
            assert abs(100 * (orig - manual) / orig - manual_imp) < 3
