"""Multiprogramming tests (Section 5 / Section 3's contention caveat).

The kernel supports multiple processes; TIP keeps per-process hint queues.
The paper warns that "if there is contention for the processor ... then
speculative execution will have less opportunity to improve performance" —
under strict priorities, any runnable original thread starves every
speculating thread.
"""

from repro.harness.runner import build_system
from repro.params import SystemConfig
from repro.spechint.tool import SpecHintTool
from repro.vm.assembler import Assembler
from repro.vm.isa import SYS_EXIT, Reg

from tests.conftest import small_system_config
from tests.test_spechint_runtime import corpus_fs, reader_binary


def spinner_binary(iterations=400):
    """A pure-compute process that monopolizes the CPU for a while."""
    asm = Assembler("spinner")
    asm.entry("main")
    with asm.function("main"):
        asm.li(Reg.s0, 0)
        asm.label("spin")
        asm.li(Reg.at, iterations)
        asm.bge(Reg.s0, Reg.at, "done")
        asm.cwork(50_000, 0, 0)
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("spin")
        asm.label("done")
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
    return asm.finish()


def run_speculating_reader(with_spinner: bool):
    fs = corpus_fs(nfiles=8)
    system = build_system(small_system_config(cache_blocks=64), fs)
    reader = system.kernel.spawn(
        SpecHintTool().transform(reader_binary(nfiles=8))
    )
    if with_spinner:
        system.kernel.spawn(spinner_binary())
    system.kernel.run()
    return system, reader


class TestTwoProcesses:
    def test_both_processes_complete_correctly(self):
        fs = corpus_fs(nfiles=8)
        system = build_system(SystemConfig(), fs)
        a = system.kernel.spawn(
            SpecHintTool().transform(reader_binary(nfiles=8, name="A"))
        )
        b = system.kernel.spawn(
            SpecHintTool().transform(reader_binary(nfiles=8, name="B"))
        )
        system.kernel.run()
        assert a.exited and b.exited
        assert bytes(a.output) == bytes(b.output)  # same files, same sums

    def test_tip_keeps_per_process_hint_state(self):
        fs = corpus_fs(nfiles=8)
        system = build_system(SystemConfig(), fs)
        a = system.kernel.spawn(
            SpecHintTool().transform(reader_binary(nfiles=8, name="A"))
        )
        b = system.kernel.spawn(
            SpecHintTool().transform(reader_binary(nfiles=8, name="B"))
        )
        system.kernel.run()
        acc_a = system.manager.accuracy_of(a.pid)
        acc_b = system.manager.accuracy_of(b.pid)
        assert acc_a.consumed > 0
        assert acc_b.consumed > 0

    def test_second_process_shares_the_cache(self):
        """Process B's reads hit blocks process A brought in."""
        fs = corpus_fs(nfiles=6)
        system = build_system(small_system_config(cache_blocks=64), fs)
        a = system.kernel.spawn(reader_binary(nfiles=6, name="A"))
        b = system.kernel.spawn(reader_binary(nfiles=6, name="B"))
        system.kernel.run()
        assert system.stats.get("cache.block_reuses") > 0


class TestCpuContention:
    def test_contention_starves_speculation(self):
        """A runnable compute-bound process preempts the speculating
        thread (strict priorities), shrinking its CPU share."""
        _, alone = run_speculating_reader(with_spinner=False)
        _, contended = run_speculating_reader(with_spinner=True)
        assert contended.spec_thread.cpu_cycles < \
            alone.spec_thread.cpu_cycles

    def test_contention_reduces_hinting(self):
        alone_sys, alone = run_speculating_reader(with_spinner=False)
        cont_sys, contended = run_speculating_reader(with_spinner=True)
        assert contended.spec.hints_issued <= alone.spec.hints_issued

    def test_reader_still_correct_under_contention(self):
        _, alone = run_speculating_reader(with_spinner=False)
        _, contended = run_speculating_reader(with_spinner=True)
        assert bytes(contended.output) == bytes(alone.output)
