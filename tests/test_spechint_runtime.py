"""End-to-end tests of the SpecHint runtime: correctness, hint generation,
the restart protocol, side-effect suppression, and signals."""


from repro.fs.filesystem import FileSystem
from repro.params import BLOCK_SIZE, SpecHintParams
from repro.spechint.tool import SpecHintTool
from repro.vm.assembler import Assembler
from repro.vm.isa import (
    SYS_CLOSE,
    SYS_EXIT,
    SYS_OPEN,
    SYS_READ,
    SYS_WRITE,
    Reg,
)
from repro.vm.stdlib import emit_stdlib

from tests.conftest import make_system, small_system_config


def corpus_fs(nfiles=6, blocks_each=3):
    fs = FileSystem(allocation_jitter_blocks=8, seed=1)
    for i in range(nfiles):
        payload = bytes((i * 7 + j) % 256 for j in range(blocks_each * BLOCK_SIZE))
        fs.create(f"in{i}", payload)
    return fs


def reader_binary(nfiles=6, per_block_cycles=20_000, name="reader"):
    """A mini-Agrep: read every file sequentially, sum first bytes, print."""
    asm = Assembler(name)
    emit_stdlib(asm)
    paths = [asm.data_asciiz(f"p{i}", f"in{i}") for i in range(nfiles)]
    asm.data_words("paths", paths)
    asm.data_space("buf", BLOCK_SIZE)
    asm.entry("main")
    with asm.function("main"):
        asm.li(Reg.s0, 0)
        asm.li(Reg.s5, 0)
        asm.label("files")
        asm.li(Reg.at, nfiles)
        asm.bge(Reg.s0, Reg.at, "done")
        asm.la(Reg.t0, "paths")
        asm.shli(Reg.t1, Reg.s0, 3)
        asm.add(Reg.t0, Reg.t0, Reg.t1)
        asm.load(Reg.a0, Reg.t0, 0)
        asm.syscall(SYS_OPEN)
        asm.mov(Reg.s1, Reg.v0)
        asm.label("reads")
        asm.mov(Reg.a0, Reg.s1)
        asm.la(Reg.a1, "buf")
        asm.li(Reg.a2, BLOCK_SIZE)
        asm.syscall(SYS_READ)
        asm.beq(Reg.v0, Reg.zero, "next")
        asm.la(Reg.t2, "buf")
        asm.loadb(Reg.t3, Reg.t2, 0)
        asm.add(Reg.s5, Reg.s5, Reg.t3)
        asm.cwork(per_block_cycles, 500, 50)
        asm.jmp("reads")
        asm.label("next")
        asm.mov(Reg.a0, Reg.s1)
        asm.syscall(SYS_CLOSE)
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("files")
        asm.label("done")
        asm.mov(Reg.a0, Reg.s5)
        asm.call("print_num")
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
    return asm.finish()


def run_binary(binary, fs):
    system = make_system(fs, small_system_config(cache_blocks=48))
    process = system.kernel.spawn(binary)
    system.kernel.run()
    return system, process


def run_pair(make_binary, make_fs=corpus_fs, spechint_params=None, **tool_kwargs):
    """Run original and transformed variants on identical file systems."""
    original_system, original_proc = run_binary(make_binary(), make_fs())
    tool = SpecHintTool(params=spechint_params or SpecHintParams(), **tool_kwargs)
    transformed = tool.transform(make_binary())
    spec_system, spec_proc = run_binary(transformed, make_fs())
    return (original_system, original_proc), (spec_system, spec_proc)


class TestCorrectness:
    """Design goal 1 (Section 3.1): results must match the original."""

    def test_output_identical(self):
        (o_sys, o_proc), (s_sys, s_proc) = run_pair(reader_binary)
        assert bytes(s_proc.output) == bytes(o_proc.output)
        assert s_proc.exit_code == o_proc.exit_code

    def test_speculation_actually_happened(self):
        _, (s_sys, s_proc) = run_pair(reader_binary)
        assert s_proc.spec is not None
        assert s_proc.spec.restarts >= 1
        assert s_proc.spec.hints_issued > 0

    def test_transformed_is_faster_with_hints(self):
        (o_sys, _), (s_sys, _) = run_pair(reader_binary)
        assert s_sys.clock.now < o_sys.clock.now

    def test_original_memory_not_corrupted_by_garbage_speculation(self):
        """Dependent-read program: speculation computes garbage, the
        program's final answer must still be exact."""
        (o_sys, o_proc), (s_sys, s_proc) = run_pair(chained_binary, chain_fs)
        assert bytes(s_proc.output) == bytes(o_proc.output)


class TestHintGeneration:
    def test_hints_reach_tip(self):
        _, (s_sys, s_proc) = run_pair(reader_binary)
        assert s_sys.stats.get("tip.hinted_blocks") > 0
        assert s_sys.stats.get("tip.prefetches_issued") > 0

    def test_hinted_reads_counted(self):
        _, (s_sys, _) = run_pair(reader_binary)
        assert s_sys.stats.get("tip.hinted_read_calls") > 0

    def test_spec_open_produces_by_name_hints(self):
        """Files the original thread has not opened yet are hinted via
        TIPIO_SEG through the speculative fd table."""
        _, (s_sys, s_proc) = run_pair(reader_binary)
        # The speculating thread opened files ahead of normal execution.
        assert s_proc.spec.predictions > 0
        assert s_sys.stats.get("app.hint_calls") > 0

    def test_eof_reads_predicted_but_not_hinted(self):
        _, (s_sys, s_proc) = run_pair(reader_binary)
        assert s_proc.spec.predictions > s_proc.spec.hints_issued


class TestRestartProtocol:
    def test_independent_reads_stay_on_track(self):
        """A program with no data-dependent reads should restart once
        (the initial restart) or very few times."""
        _, (s_sys, s_proc) = run_pair(reader_binary)
        assert s_proc.spec.restarts <= 3

    def test_dependent_reads_cause_restarts(self):
        _, (s_sys, s_proc) = run_pair(chained_binary, chain_fs)
        # Every chained read strays speculation off track.
        assert s_proc.spec.restarts >= 4

    def test_cancel_called_on_mismatch_restarts(self):
        _, (s_sys, s_proc) = run_pair(chained_binary, chain_fs)
        assert s_proc.spec.cancel_calls == s_proc.spec.restarts
        assert s_sys.stats.get("tip.hints_cancelled") > 0

    def test_erroneous_hints_recorded(self):
        _, (s_sys, s_proc) = run_pair(chained_binary, chain_fs)
        cancelled = s_sys.stats.get("tip.hints_cancelled")
        unconsumed = s_sys.stats.get("tip.hints_unconsumed_at_end")
        assert cancelled + unconsumed > 0


class TestSideEffectSuppression:
    def test_spec_writes_suppressed(self):
        """Output must not be duplicated by the speculating thread."""
        (o_sys, o_proc), (s_sys, s_proc) = run_pair(writer_binary)
        assert bytes(s_proc.output) == bytes(o_proc.output)

    def test_output_routine_stripped_not_executed(self):
        _, (s_sys, s_proc) = run_pair(reader_binary)
        # print_num is only called once (by the original thread at exit).
        assert bytes(s_proc.output).count(b"\n") == 1


class TestSignals:
    def test_garbage_division_becomes_signal(self):
        (o_sys, o_proc), (s_sys, s_proc) = run_pair(divider_binary, chain_fs)
        assert bytes(s_proc.output) == bytes(o_proc.output)
        # Speculation divided by a stale (zero) value at least once.
        assert s_proc.spec.signals >= 1

    def test_signals_do_not_crash_the_run(self):
        _, (s_sys, s_proc) = run_pair(divider_binary, chain_fs)
        assert s_proc.exited
        assert s_proc.exit_code == 0


class TestThrottleIntegration:
    def test_throttle_reduces_cancels(self):
        params = SpecHintParams(throttle_cancel_limit=2, throttle_disable_reads=16)
        _, (s_sys_throttled, p_throttled) = run_pair(
            chained_binary, chain_fs, spechint_params=params
        )
        _, (s_sys_free, p_free) = run_pair(chained_binary, chain_fs)
        assert p_throttled.spec.throttle.trips >= 1
        assert p_throttled.spec.cancel_calls < p_free.spec.cancel_calls


class TestMapAllAddresses:
    def test_default_parks_on_unmappable_return(self):
        _, (s_sys, s_proc) = run_pair(deep_return_binary, chain_fs)
        assert s_sys.stats.get("spec.park.left_shadow") > 0

    def test_map_all_extension_survives(self):
        _, (s_sys, s_proc) = run_pair(
            deep_return_binary, chain_fs, map_all_addresses=True
        )
        assert s_sys.stats.get("spec.park.left_shadow") == 0


# ---------------------------------------------------------------------------
# Helper programs
# ---------------------------------------------------------------------------

def chain_fs():
    """Files forming a pointer chain: each block's first word is the
    offset of the next read."""
    fs = FileSystem(allocation_jitter_blocks=8, seed=2)
    nblocks = 40
    blob = bytearray(nblocks * BLOCK_SIZE)
    offsets = [((i * 17) % nblocks) * BLOCK_SIZE for i in range(1, 13)]
    cursor = 0
    for next_offset in offsets:
        blob[cursor:cursor + 8] = next_offset.to_bytes(8, "little")
        cursor = next_offset
    fs.create("chain", bytes(blob))
    return fs


def _chain_prologue(asm):
    asm.data_asciiz("path", "chain")
    asm.data_space("buf", 512)
    asm.la(Reg.a0, "path")
    asm.syscall(SYS_OPEN)
    asm.mov(Reg.s1, Reg.v0)
    asm.li(Reg.s2, 0)  # current offset
    asm.li(Reg.s3, 0)  # iteration count
    asm.li(Reg.s5, 0)  # checksum


def _chain_loop(asm, iterations, body_between=None):
    asm.label("chain_loop")
    asm.li(Reg.at, iterations)
    asm.bge(Reg.s3, Reg.at, "chain_done")
    asm.mov(Reg.a0, Reg.s1)
    asm.mov(Reg.a1, Reg.s2)
    asm.li(Reg.a2, 0)
    asm.syscall(6)  # SYS_LSEEK / SEEK_SET
    asm.mov(Reg.a0, Reg.s1)
    asm.la(Reg.a1, "buf")
    asm.li(Reg.a2, 512)
    asm.syscall(SYS_READ)
    asm.la(Reg.t0, "buf")
    asm.load(Reg.s2, Reg.t0, 0)  # next offset: data dependence!
    asm.add(Reg.s5, Reg.s5, Reg.s2)
    if body_between is not None:
        body_between(asm)
    asm.cwork(8000, 200, 40)
    asm.addi(Reg.s3, Reg.s3, 1)
    asm.jmp("chain_loop")
    asm.label("chain_done")


def chained_binary():
    asm = Assembler("chained")
    emit_stdlib(asm)
    asm.entry("main")
    with asm.function("main"):
        _chain_prologue(asm)
        _chain_loop(asm, 12)
        asm.mov(Reg.a0, Reg.s5)
        asm.call("print_num")
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
    return asm.finish()


def divider_binary():
    """Chained reader that divides by a value read from disk; speculation
    sees a stale zero and faults."""

    def divide(asm):
        asm.la(Reg.t0, "buf")
        asm.load(Reg.t1, Reg.t0, 0)  # real chain offsets are never zero,
        asm.li(Reg.t2, 1000)         # but the stale buffer starts as zeros
        asm.div(Reg.t4, Reg.t2, Reg.t1)
        asm.add(Reg.s5, Reg.s5, Reg.t4)

    asm = Assembler("divider")
    emit_stdlib(asm)
    asm.entry("main")
    with asm.function("main"):
        _chain_prologue(asm)
        _chain_loop(asm, 12, body_between=divide)
        asm.mov(Reg.a0, Reg.s5)
        asm.call("print_num")
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
    return asm.finish()


def writer_binary():
    """Reads files and writes a line of output per file."""
    asm = Assembler("writer")
    emit_stdlib(asm)
    nfiles = 4
    paths = [asm.data_asciiz(f"p{i}", f"in{i}") for i in range(nfiles)]
    asm.data_words("paths", paths)
    asm.data_space("buf", BLOCK_SIZE)
    asm.data_asciiz("line", "done\n")
    asm.entry("main")
    with asm.function("main"):
        asm.li(Reg.s0, 0)
        asm.label("files")
        asm.li(Reg.at, nfiles)
        asm.bge(Reg.s0, Reg.at, "done")
        asm.la(Reg.t0, "paths")
        asm.shli(Reg.t1, Reg.s0, 3)
        asm.add(Reg.t0, Reg.t0, Reg.t1)
        asm.load(Reg.a0, Reg.t0, 0)
        asm.syscall(SYS_OPEN)
        asm.mov(Reg.s1, Reg.v0)
        asm.mov(Reg.a0, Reg.s1)
        asm.la(Reg.a1, "buf")
        asm.li(Reg.a2, BLOCK_SIZE)
        asm.syscall(SYS_READ)
        # Raw write syscall (not via an output routine): the speculating
        # thread must suppress it.
        asm.li(Reg.a0, 1)
        asm.la(Reg.a1, "line")
        asm.li(Reg.a2, 5)
        asm.syscall(SYS_WRITE)
        asm.mov(Reg.a0, Reg.s1)
        asm.syscall(SYS_CLOSE)
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.cwork(5000, 100, 10)
        asm.jmp("files")
        asm.label("done")
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
    return asm.finish()


def deep_return_binary():
    """The read happens inside a helper function; after a restart the
    speculating thread eventually returns *above* the restart frame
    through a stale (original-text) return address, which the handling
    routine cannot map unless map_all_addresses is enabled."""
    asm = Assembler("deep")
    emit_stdlib(asm)
    asm.data_asciiz("path", "chain")
    asm.data_space("buf", 512)
    asm.entry("main")
    with asm.function("read_one"):
        # a0 = fd, a1 = offset
        asm.push(Reg.ra)
        asm.mov(Reg.t5, Reg.a0)
        asm.li(Reg.a2, 0)
        asm.syscall(6)  # lseek SEEK_SET
        asm.mov(Reg.a0, Reg.t5)
        asm.la(Reg.a1, "buf")
        asm.li(Reg.a2, 512)
        asm.syscall(SYS_READ)
        asm.pop(Reg.ra)
        asm.ret()
    with asm.function("main"):
        asm.la(Reg.a0, "path")
        asm.syscall(SYS_OPEN)
        asm.mov(Reg.s1, Reg.v0)
        asm.li(Reg.s3, 0)
        asm.label("loop")
        asm.li(Reg.at, 8)
        asm.bge(Reg.s3, Reg.at, "done")
        asm.mov(Reg.a0, Reg.s1)
        asm.muli(Reg.a1, Reg.s3, BLOCK_SIZE)
        asm.call("read_one")
        asm.cwork(4000, 80, 10)
        asm.addi(Reg.s3, Reg.s3, 1)
        asm.jmp("loop")
        asm.label("done")
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
    return asm.finish()
