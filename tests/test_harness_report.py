"""Tests for the markdown report generator."""

from repro.harness.config import Variant
from repro.harness.report import build_report, write_report
from repro.harness.results import RunResult


def fake_matrix():
    matrix = {}
    for app in ("agrep", "gnuld", "xds"):
        matrix[app] = {}
        for i, variant in enumerate(v.value for v in Variant):
            result = RunResult(
                app=app, variant=variant, cycles=1000 - 200 * i,
                cpu_hz=1000,
                counters={
                    "app.read_calls": 10,
                    "tip.hinted_read_calls": 7,
                },
            )
            result.median_read_interval = 100
            result.median_hint_interval = 150
            result.footprint_bytes = (i + 1) * 8192
            matrix[app][variant] = result
    return matrix


class TestBuildReport:
    def test_contains_all_sections(self):
        text = build_report(fake_matrix())
        assert "Figure 3" in text
        assert "Table 4" in text
        assert "dilation" in text
        assert "Table 6" in text

    def test_contains_measured_improvements(self):
        text = build_report(fake_matrix())
        # speculating cycles 800 vs original 1000 -> 20.0 %
        assert "20.0 %" in text

    def test_contains_paper_reference_values(self):
        text = build_report(fake_matrix())
        assert "| 29 %" in text  # paper's speculating Gnuld

    def test_valid_markdown_tables(self):
        for line in build_report(fake_matrix()).splitlines():
            if line.startswith("|"):
                assert line.endswith("|")


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        target = write_report(tmp_path / "report.md", fake_matrix())
        assert target.exists()
        content = target.read_text()
        assert content.startswith("# SpecHint reproduction")
