"""Tests for the synthetic workload generators."""

from repro.apps.datasets import (
    OBJ_MAGIC,
    generate_agrep_corpus,
    generate_gnuld_objects,
    generate_xds_dataset,
    xds_slice_plan,
)
from repro.fs.filesystem import FileSystem
from repro.params import BLOCK_SIZE


class TestAgrepCorpus:
    def test_file_count(self):
        fs = FileSystem()
        inodes = generate_agrep_corpus(fs, 20, seed=1)
        assert len(inodes) == 20
        assert fs.nfiles == 20

    def test_size_bounds(self):
        fs = FileSystem()
        for inode in generate_agrep_corpus(fs, 50, seed=1, min_kb=4, max_kb=64):
            assert 4 * 1024 <= inode.size <= 64 * 1024

    def test_heavy_tail(self):
        fs = FileSystem()
        sizes = [i.size for i in generate_agrep_corpus(fs, 200, seed=1)]
        small = sum(1 for s in sizes if s < 16 * 1024)
        assert small > len(sizes) // 2

    def test_deterministic(self):
        sizes1 = [i.size for i in generate_agrep_corpus(FileSystem(), 30, seed=9)]
        sizes2 = [i.size for i in generate_agrep_corpus(FileSystem(), 30, seed=9)]
        assert sizes1 == sizes2


class TestGnuldObjects:
    def _specs(self, nfiles=10, seed=3):
        fs = FileSystem()
        return fs, generate_gnuld_objects(fs, nfiles, seed)

    def test_header_fields_parse_back(self):
        fs, specs = self._specs()
        for spec in specs:
            data = fs.lookup(spec.path).data
            assert int.from_bytes(data[0:8], "little") == OBJ_MAGIC
            symhdr_off = int.from_bytes(data[8:16], "little")
            assert int.from_bytes(data[16:24], "little") == spec.size
            nsect = int.from_bytes(data[symhdr_off + 32:symhdr_off + 40], "little")
            assert nsect == spec.nsections

    def test_symtab_records_match_spec(self):
        fs, specs = self._specs()
        for spec in specs:
            data = fs.lookup(spec.path).data
            symhdr_off = int.from_bytes(data[8:16], "little")
            symtab_off = int.from_bytes(data[symhdr_off:symhdr_off + 8], "little")
            for s in range(spec.nsections):
                at = symtab_off + s * 16
                assert int.from_bytes(data[at:at + 8], "little") == \
                    spec.section_offsets[s]
                assert int.from_bytes(data[at + 8:at + 16], "little") == \
                    spec.section_lengths[s]

    def test_reloc_pointers_in_sections(self):
        fs, specs = self._specs()
        for spec in specs:
            data = fs.lookup(spec.path).data
            for s in range(spec.nsections):
                at = spec.section_offsets[s]
                assert int.from_bytes(data[at:at + 8], "little") == \
                    spec.reloc_offsets[s]
                assert int.from_bytes(data[at + 8:at + 16], "little") == \
                    spec.reloc_lengths[s]

    def test_all_regions_within_file(self):
        fs, specs = self._specs(nfiles=20)
        for spec in specs:
            size = fs.lookup(spec.path).size
            for off, length in zip(spec.section_offsets, spec.section_lengths):
                assert off + length <= size
            for off, length in zip(spec.reloc_offsets, spec.reloc_lengths):
                assert off + length <= size
            for off, length in zip(spec.debug_offsets, spec.debug_lengths):
                assert off + length <= size

    def test_symbol_header_not_in_block_zero(self):
        """The data dependence only bites if the symbol header needs a
        separate disk block from the file header."""
        fs, specs = self._specs(nfiles=20)
        for spec in specs:
            data = fs.lookup(spec.path).data
            symhdr_off = int.from_bytes(data[8:16], "little")
            assert symhdr_off >= BLOCK_SIZE

    def test_debug_count_range(self):
        _, specs = self._specs(nfiles=20)
        for spec in specs:
            assert 6 <= spec.ndebug <= 9
            assert 4 <= spec.nsections <= 9


class TestXdsDataset:
    def test_size_is_cube(self):
        fs = FileSystem()
        inode = generate_xds_dataset(fs, 32, seed=1)
        assert inode.size == 32 ** 3 * 4

    def test_slice_plan_shape(self):
        plan = xds_slice_plan(64, 10, seed=2)
        assert len(plan) == 20
        axes = plan[0::2]
        positions = plan[1::2]
        assert all(a in (1, 2) for a in axes)
        assert all(0 <= p < 64 for p in positions)

    def test_plan_deterministic(self):
        assert xds_slice_plan(64, 10, seed=2) == xds_slice_plan(64, 10, seed=2)
        assert xds_slice_plan(64, 10, seed=2) != xds_slice_plan(64, 10, seed=3)
