"""Tests for the process address space."""

import pytest

from repro.errors import IllegalAddress
from repro.vm.memory import (
    DATA_BASE,
    SPEC_HEAP_BASE,
    STACK_TOP,
    AddressSpace,
)


@pytest.fixture
def mem():
    return AddressSpace(b"hello world" + b"\x00" * 100)


class TestLayout:
    def test_data_image_loaded(self, mem):
        assert mem.read_bytes(DATA_BASE, 5) == b"hello"

    def test_null_guard_faults(self, mem):
        with pytest.raises(IllegalAddress):
            mem.load_word(0)
        with pytest.raises(IllegalAddress):
            mem.load_byte(100)

    def test_stack_range_valid(self, mem):
        mem.store_word(STACK_TOP - 8, 42)
        assert mem.load_word(STACK_TOP - 8) == 42

    def test_below_stack_limit_faults(self, mem):
        with pytest.raises(IllegalAddress):
            mem.store_word(mem.stack_limit - 8, 1)

    def test_gap_between_heap_and_stack_faults(self, mem):
        with pytest.raises(IllegalAddress):
            mem.load_word(mem.heap_max + 8)


class TestSbrk:
    def test_sbrk_returns_old_break(self, mem):
        old = mem.brk
        assert mem.sbrk(4096) == old
        assert mem.brk == old + 4096

    def test_sbrk_zero_queries(self, mem):
        old = mem.brk
        assert mem.sbrk(0) == old
        assert mem.brk == old

    def test_sbrk_grows_valid_region(self, mem):
        addr = mem.sbrk(64)
        mem.store_word(addr, 7)
        assert mem.load_word(addr) == 7

    def test_sbrk_negative_rejected(self, mem):
        with pytest.raises(IllegalAddress):
            mem.sbrk(-8)

    def test_sbrk_beyond_limit_rejected(self, mem):
        with pytest.raises(IllegalAddress):
            mem.sbrk(1 << 40)

    def test_spec_sbrk_separate_region(self, mem):
        addr = mem.spec_sbrk(128)
        assert addr == SPEC_HEAP_BASE
        mem.store_word(addr, 9)
        assert mem.load_word(addr) == 9
        # Process heap untouched.
        assert mem.brk < SPEC_HEAP_BASE


class TestTypedAccess:
    def test_word_roundtrip(self, mem):
        mem.store_word(DATA_BASE + 32, 0xDEADBEEF)
        assert mem.load_word(DATA_BASE + 32) == 0xDEADBEEF

    def test_word_wraps_to_64_bits(self, mem):
        mem.store_word(DATA_BASE + 32, (1 << 64) + 5)
        assert mem.load_word(DATA_BASE + 32) == 5

    def test_byte_roundtrip(self, mem):
        mem.store_byte(DATA_BASE + 8, 0x1FF)
        assert mem.load_byte(DATA_BASE + 8) == 0xFF

    def test_little_endian(self, mem):
        mem.store_word(DATA_BASE + 40, 0x0102030405060708)
        assert mem.load_byte(DATA_BASE + 40) == 0x08

    def test_read_cstring(self, mem):
        assert mem.read_cstring(DATA_BASE + 6) == b"world"

    def test_read_cstring_unterminated(self):
        mem = AddressSpace(b"x" * 16)  # no NUL before data end... padded 0s
        # Fill a region with non-zero bytes right up to the break.
        mem.write_bytes(DATA_BASE, b"\x01" * (mem.brk - DATA_BASE))
        with pytest.raises(IllegalAddress):
            mem.read_cstring(DATA_BASE, max_len=mem.brk - DATA_BASE)

    def test_write_bytes_validates(self, mem):
        with pytest.raises(IllegalAddress):
            mem.write_bytes(mem.brk, b"xx")

    def test_raw_access_skips_validation(self, mem):
        # raw_read of an unmapped region returns stale zeroes, no fault.
        assert mem.raw_read(mem.heap_max + 64, 4) == b"\x00" * 4
