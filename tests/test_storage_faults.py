"""Degraded-mode storage tests: retry/backoff, timeouts, prefetch dropping.

These drive the striped array (and, at the end, a whole small system)
under hostile :class:`FaultPlan`\\ s and check the paper-level invariant:
demand reads either eventually succeed or fail with a *typed* error, and
prefetch failures are always absorbed silently.
"""

import pytest

from repro.errors import DiskFaultError, IOTimeoutError, RetriesExhausted
from repro.faults.injector import FAULT_TIMEOUT, FaultInjector
from repro.faults.plan import FaultPlan
from repro.params import (
    BLOCKS_PER_STRIPE_UNIT,
    ArrayParams,
    CpuParams,
    DiskParams,
)
from repro.sim.clock import SimClock
from repro.sim.engine import EventEngine
from repro.sim.stats import StatRegistry
from repro.storage.request import IOKind, IORequest
from repro.storage.striping import StripedArray
from repro.vm.isa import SYS_OPEN, SYS_READ, Reg

from tests.conftest import make_populated_fs, small_system_config


def make_chaos_array(plan, nblocks=1024, **array_kwargs):
    """A striped array wired to a fault injector for ``plan``."""
    clock = SimClock()
    engine = EventEngine(clock)
    stats = StatRegistry()
    cpu = CpuParams()
    injector = FaultInjector(plan, cpu, clock, stats)
    array = StripedArray(
        nblocks, ArrayParams(**array_kwargs), DiskParams(), cpu,
        engine, stats, injector=injector,
    )
    return array, engine, stats


def drain(engine):
    while engine.advance_to_next():
        pass


class TestRetryBackoff:
    def test_demand_survives_transient_faults(self):
        plan = FaultPlan(disk_error_rate=0.5)
        array, engine, stats = make_chaos_array(plan)
        done = []
        for unit in range(8):
            array.submit(unit * BLOCKS_PER_STRIPE_UNIT, IOKind.DEMAND,
                         done.append)
        drain(engine)
        assert len(done) == 8
        assert all(r.done and not r.failed for r in done)
        # At a 50% error rate, 8 requests essentially cannot all pass clean.
        assert stats.get("array.retries") > 0
        assert max(r.attempts for r in done) > 1

    def test_retries_exhausted_marks_demand_failed(self):
        plan = FaultPlan(disk_error_rate=1.0)
        array, engine, stats = make_chaos_array(plan, retry_max_attempts=3)
        done = []
        array.submit(0, IOKind.DEMAND, done.append)
        drain(engine)
        (req,) = done
        assert req.failed and req.done
        assert req.attempts == 3
        assert stats.get("array.demand_failures") == 1
        assert isinstance(StripedArray.failure_cause(req), DiskFaultError)

    def test_failed_prefetch_dropped_silently(self):
        plan = FaultPlan(disk_error_rate=1.0)
        array, engine, stats = make_chaos_array(plan, prefetch_retry_attempts=2)
        done = []
        array.submit(0, IOKind.PREFETCH, done.append)
        drain(engine)
        (req,) = done
        assert req.failed
        assert req.attempts == 2  # prefetches get the short retry budget
        assert stats.get("array.prefetches_dropped") == 1
        assert stats.get("array.demand_failures") == 0

    def test_backoff_rides_out_offline_window(self):
        # Disk 0 offline for 2 ms from t=0; backoff must outlast the window.
        plan = FaultPlan(offline_disk=0, offline_start_s=0.0,
                         offline_duration_s=0.002)
        array, engine, stats = make_chaos_array(plan)
        done = []
        array.submit(0, IOKind.DEMAND, done.append)
        drain(engine)
        (req,) = done
        assert req.done and not req.failed
        assert req.attempts > 1
        assert stats.get("faults.disk_offline_rejects") > 0
        assert stats.get("array.retries") > 0

    def test_demand_joining_backed_off_prefetch_is_promoted(self):
        """A demand read that coalesces onto a prefetch waiting out its
        retry backoff must flip it to demand — otherwise the waiter could
        ride a droppable prefetch and never wake."""
        plan = FaultPlan(disk_error_rate=1.0)
        array, engine, stats = make_chaos_array(
            plan, retry_max_attempts=4, prefetch_retry_attempts=2,
        )
        done = []
        prefetch = array.submit(0, IOKind.PREFETCH, done.append)
        # Step until the prefetch has faulted and sits in its backoff window.
        while prefetch.fault is None:
            assert engine.advance_to_next()
        joined = array.submit(0, IOKind.DEMAND, done.append)
        assert joined is prefetch
        assert prefetch.is_demand
        drain(engine)
        # The demand retry budget (4) now applies, not the prefetch one (2).
        assert prefetch.attempts == 4
        assert stats.get("array.demand_failures") == 1
        assert stats.get("array.prefetches_dropped") == 0


class TestTimeouts:
    def test_timeout_not_armed_without_injector(self):
        clock = SimClock()
        engine = EventEngine(clock)
        array = StripedArray(1024, ArrayParams(), DiskParams(), CpuParams(),
                             engine, StatRegistry())
        req = array.submit(0, IOKind.DEMAND, lambda r: None)
        assert req.timeout_event is None
        drain(engine)

    def test_stuck_disk_times_out_and_recovers(self):
        # Service times inside the window are stretched 1000x (normal is
        # ~3.4M cycles); a timeout above normal but far below the stuck
        # service aborts the stuck attempt, and the retry after the window
        # completes normally.
        plan = FaultPlan(slow_factor=1000.0, slow_start_s=0.0,
                         slow_duration_s=0.02)
        array, engine, stats = make_chaos_array(
            plan,
            request_timeout_cycles=5_000_000,
            retry_backoff_cycles=5_000_000,
        )
        done = []
        req = array.submit(0, IOKind.DEMAND, done.append)
        assert req.timeout_event is not None
        drain(engine)
        assert done and done[0].done and not done[0].failed
        assert stats.get("array.timeouts") >= 1
        assert stats.get("disk0.aborted") >= 1

    def test_timeout_failure_cause_is_typed(self):
        req = IORequest(lbn=0, kind=IOKind.DEMAND)
        req.failed = True
        req.fault = FAULT_TIMEOUT
        assert isinstance(StripedArray.failure_cause(req), IOTimeoutError)


class TestSystemDegradation:
    """Whole-system checks through kernel + cache manager."""

    def _read_program(self, nbytes=3 * 8192):
        def body(asm):
            asm.data_space("buf", nbytes)
            asm.data_asciiz("path", "f0.dat")
            asm.la(Reg.a0, "path")
            asm.syscall(SYS_OPEN)
            asm.mov(Reg.s1, Reg.v0)
            asm.mov(Reg.a0, Reg.s1)
            asm.la(Reg.a1, "buf")
            asm.li(Reg.a2, nbytes)
            asm.syscall(SYS_READ)
            asm.mov(Reg.s0, Reg.v0)

        return body

    def _run(self, plan, **config_kwargs):
        from repro.harness.runner import build_system
        from tests.conftest import assemble

        fs = make_populated_fs()
        system = build_system(small_system_config(**config_kwargs), fs,
                              fault_plan=plan)
        binary = assemble(self._read_program())
        process = system.kernel.spawn(binary)
        system.kernel.run()
        return system, process

    def test_demand_read_succeeds_under_transient_faults(self):
        system, process = self._run(FaultPlan(disk_error_rate=0.6))
        assert process.original_thread.reg(Reg.s0) == 3 * 8192
        assert system.stats.get("faults.disk_transient_errors") > 0
        assert system.stats.get("array.retries") > 0
        assert system.stats.get("array.demand_failures") == 0

    def test_unrecoverable_demand_read_raises_typed_error(self):
        import dataclasses

        config = small_system_config()
        config = config.replace(
            array=dataclasses.replace(config.array, retry_max_attempts=2),
        )
        from repro.harness.runner import build_system
        from tests.conftest import assemble

        fs = make_populated_fs()
        system = build_system(config, fs,
                              fault_plan=FaultPlan(disk_error_rate=1.0))
        process = system.kernel.spawn(assemble(self._read_program()))
        with pytest.raises(RetriesExhausted):
            system.kernel.run()
