"""Property-based tests of the copy-on-write invariants.

The central safety property of the whole design: *no sequence of
speculative loads and stores ever changes what the original thread sees*,
and speculation always observes its own writes (sequential consistency of
the speculative view).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import SpecHintParams
from repro.spechint.cow import CowMap
from repro.vm.memory import DATA_BASE, AddressSpace

REGION_SIZES = st.sampled_from([128, 256, 512, 1024, 2048, 8192])

#: Speculative operations: (is_store, offset, value).
OPS = st.lists(
    st.tuples(st.booleans(), st.integers(0, 4000), st.integers(0, (1 << 64) - 1)),
    max_size=60,
)


def make(region_size):
    mem = AddressSpace(bytes(range(256)) * 20)
    cow = CowMap(mem, SpecHintParams(cow_region_size=region_size))
    return mem, cow


@given(region_size=REGION_SIZES, ops=OPS)
@settings(max_examples=150, deadline=None)
def test_main_memory_never_changes(region_size, ops):
    mem, cow = make(region_size)
    snapshot = mem.raw_read(DATA_BASE, 5000)
    for is_store, offset, value in ops:
        addr = DATA_BASE + offset
        if is_store:
            cow.store_word(addr, value)
        else:
            cow.load_word(addr)
    assert mem.raw_read(DATA_BASE, 5000) == snapshot


@given(region_size=REGION_SIZES, ops=OPS)
@settings(max_examples=150, deadline=None)
def test_speculative_view_matches_shadow_model(region_size, ops):
    """The COW view equals a reference model: main memory overlaid with
    every speculative store."""
    mem, cow = make(region_size)
    model = bytearray(mem.raw_read(0, DATA_BASE + 8192))
    for is_store, offset, value in ops:
        addr = DATA_BASE + offset
        if is_store:
            cow.store_word(addr, value)
            model[addr:addr + 8] = value.to_bytes(8, "little")
        else:
            expected = int.from_bytes(model[addr:addr + 8], "little")
            assert cow.load_word(addr) == expected
    # Final full sweep.
    for check in range(0, 4096, 97):
        addr = DATA_BASE + check
        expected = int.from_bytes(model[addr:addr + 8], "little")
        assert cow.load_word(addr) == expected


@given(region_size=REGION_SIZES, ops=OPS)
@settings(max_examples=100, deadline=None)
def test_clear_restores_pristine_view(region_size, ops):
    mem, cow = make(region_size)
    for is_store, offset, value in ops:
        addr = DATA_BASE + offset
        if is_store:
            cow.store_word(addr, value)
    cow.clear()
    for check in range(0, 4096, 131):
        addr = DATA_BASE + check
        assert cow.load_word(addr) == mem.load_word(addr)


@given(
    region_size=REGION_SIZES,
    offsets=st.lists(st.integers(0, 4000), min_size=1, max_size=30),
)
@settings(max_examples=100, deadline=None)
def test_copied_bytes_bounded_by_distinct_regions(region_size, offsets):
    mem, cow = make(region_size)
    for offset in offsets:
        cow.store_byte(DATA_BASE + offset, 0xEE)
    distinct = {(DATA_BASE + o) // region_size for o in offsets}
    assert cow.copied_regions == len(distinct)
    assert cow.copied_bytes == len(distinct) * region_size


@given(
    byte_ops=st.lists(
        st.tuples(st.integers(0, 2000), st.integers(0, 255)), max_size=50
    )
)
@settings(max_examples=100, deadline=None)
def test_byte_and_word_ops_consistent(byte_ops):
    mem, cow = make(1024)
    model = {}
    for offset, value in byte_ops:
        cow.store_byte(DATA_BASE + offset, value)
        model[offset] = value
    for offset, value in model.items():
        assert cow.load_byte(DATA_BASE + offset) == value
