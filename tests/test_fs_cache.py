"""Tests for the block cache mechanism and its Table 5 accounting."""

import pytest

from repro.fs.cache import BlockCache, EntryState, FetchOrigin
from repro.sim.stats import StatRegistry


@pytest.fixture
def stats():
    return StatRegistry()


@pytest.fixture
def cache(stats):
    return BlockCache(4, stats)


KEY = (0, 0)
KEY2 = (0, 1)


class TestLifecycle:
    def test_insert_fetching_pinned(self, cache):
        entry = cache.insert_fetching(KEY, FetchOrigin.DEMAND)
        assert entry.state is EntryState.FETCHING
        assert entry.pinned == 1
        assert not cache.contains_valid(KEY)

    def test_mark_valid_unpins(self, cache):
        cache.insert_fetching(KEY, FetchOrigin.DEMAND)
        entry = cache.mark_valid(KEY)
        assert entry.state is EntryState.VALID
        assert entry.pinned == 0
        assert cache.contains_valid(KEY)

    def test_mark_valid_unknown_returns_none(self, cache):
        assert cache.mark_valid(KEY) is None

    def test_free_blocks(self, cache):
        assert cache.free_blocks == 4
        cache.insert_fetching(KEY, FetchOrigin.DEMAND)
        assert cache.free_blocks == 3

    def test_overcommit_counted(self, cache, stats):
        for i in range(5):
            cache.insert_fetching((0, i), FetchOrigin.DEMAND)
        assert stats.get("cache.overcommitted_inserts") == 1


class TestTable5Accounting:
    def test_fully_prefetched_counted_at_first_access(self, cache, stats):
        cache.insert_fetching(KEY, FetchOrigin.HINT)
        cache.mark_valid(KEY)
        # Not yet requested: could still become "unused".
        assert stats.get("cache.prefetched_fully") == 0
        cache.note_access(KEY)
        assert stats.get("cache.prefetched_fully") == 1
        cache.note_access(KEY)
        assert stats.get("cache.prefetched_fully") == 1  # only once
        assert stats.get("cache.prefetched_partial") == 0

    def test_partially_prefetched(self, cache, stats):
        entry = cache.insert_fetching(KEY, FetchOrigin.READAHEAD)
        entry.demand_waiters += 1  # application blocked mid-prefetch
        cache.mark_valid(KEY)
        assert stats.get("cache.prefetched_partial") == 1

    def test_demand_fetch_not_counted_as_prefetch(self, cache, stats):
        cache.insert_fetching(KEY, FetchOrigin.DEMAND)
        cache.mark_valid(KEY)
        assert stats.get("cache.prefetched_blocks") == 0
        assert stats.get("cache.prefetched_fully") == 0

    def test_unused_prefetch_on_evict(self, cache, stats):
        cache.insert_fetching(KEY, FetchOrigin.HINT)
        cache.mark_valid(KEY)
        cache.evict(KEY)
        assert stats.get("cache.prefetched_unused") == 1

    def test_used_prefetch_not_unused(self, cache, stats):
        cache.insert_fetching(KEY, FetchOrigin.HINT)
        cache.mark_valid(KEY)
        cache.note_access(KEY)
        cache.evict(KEY)
        assert stats.get("cache.prefetched_unused") == 0

    def test_finalize_counts_residual_unused(self, cache, stats):
        cache.insert_fetching(KEY, FetchOrigin.HINT)
        cache.mark_valid(KEY)
        cache.insert_fetching(KEY2, FetchOrigin.HINT)
        cache.mark_valid(KEY2)
        cache.note_access(KEY2)
        cache.finalize()
        assert stats.get("cache.prefetched_unused") == 1
        assert len(cache) == 0

    def test_block_reads_and_reuses(self, cache, stats):
        cache.insert_fetching(KEY, FetchOrigin.DEMAND)
        cache.mark_valid(KEY)
        cache.note_access(KEY)
        cache.note_access(KEY)
        cache.note_access(KEY)
        assert stats.get("cache.block_reads") == 3
        assert stats.get("cache.block_reuses") == 2


class TestLruOrdering:
    def _fill_valid(self, cache, n):
        for i in range(n):
            cache.insert_fetching((0, i), FetchOrigin.DEMAND)
            cache.mark_valid((0, i))

    def test_lru_victim_is_least_recent(self, cache):
        self._fill_valid(cache, 3)
        cache.note_access((0, 0))  # 0 becomes most recent
        victim = cache.find_lru_victim()
        assert victim.key == (0, 1)

    def test_lru_victim_skips_pinned(self, cache):
        self._fill_valid(cache, 2)
        cache.pin((0, 0))
        assert cache.find_lru_victim().key == (0, 1)
        cache.unpin((0, 0))
        assert cache.find_lru_victim().key == (0, 0)

    def test_lru_victim_skips_fetching(self, cache):
        cache.insert_fetching((0, 0), FetchOrigin.DEMAND)  # stays FETCHING
        cache.insert_fetching((0, 1), FetchOrigin.DEMAND)
        cache.mark_valid((0, 1))
        assert cache.find_lru_victim().key == (0, 1)

    def test_no_victim_when_all_pinned(self, cache):
        cache.insert_fetching(KEY, FetchOrigin.DEMAND)
        assert cache.find_lru_victim() is None

    def test_entries_in_lru_order(self, cache):
        self._fill_valid(cache, 3)
        cache.note_access((0, 0))
        keys = [e.key for e in cache.entries()]
        assert keys == [(0, 1), (0, 2), (0, 0)]

    def test_touch_lru_position_without_access_count(self, cache):
        self._fill_valid(cache, 2)
        cache.touch_lru_position((0, 0))
        assert cache.find_lru_victim().key == (0, 1)
        assert cache.get((0, 0)).access_count == 0
