"""Tests for deterministic RNG and the statistics registry."""

from repro.sim.rng import DeterministicRng
from repro.sim.stats import Counter, Distribution, StatRegistry


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(1, "x")
        b = DeterministicRng(1, "x")
        assert [a.randint(0, 1000) for _ in range(20)] == [
            b.randint(0, 1000) for _ in range(20)
        ]

    def test_different_streams_differ(self):
        a = DeterministicRng(1, "x")
        b = DeterministicRng(1, "y")
        assert [a.randint(0, 10 ** 9) for _ in range(5)] != [
            b.randint(0, 10 ** 9) for _ in range(5)
        ]

    def test_fork_is_deterministic(self):
        a = DeterministicRng(7).fork("sub")
        b = DeterministicRng(7).fork("sub")
        assert a.bytes(16) == b.bytes(16)

    def test_fork_differs_from_parent(self):
        parent = DeterministicRng(7)
        child = parent.fork("sub")
        assert parent.bytes(16) != child.bytes(16)

    def test_pareto_int_bounds(self):
        rng = DeterministicRng(3)
        for _ in range(200):
            value = rng.pareto_int(1.3, 10, 100)
            assert 10 <= value <= 100

    def test_pareto_heavy_tail_shape(self):
        rng = DeterministicRng(3)
        values = [rng.pareto_int(1.3, 10, 10_000) for _ in range(2000)]
        small = sum(1 for v in values if v < 50)
        # Most draws should be near the minimum (heavy-tailed).
        assert small > len(values) / 2

    def test_shuffle_and_sample(self):
        rng = DeterministicRng(5)
        items = list(range(10))
        rng.shuffle(items)
        assert sorted(items) == list(range(10))
        picked = rng.sample(range(100), 5)
        assert len(set(picked)) == 5


class TestCounter:
    def test_starts_zero(self):
        assert Counter("c").value == 0

    def test_add_default_one(self):
        c = Counter("c")
        c.add()
        c.add()
        assert c.value == 2

    def test_add_amount(self):
        c = Counter("c")
        c.add(5)
        assert c.value == 5


class TestDistribution:
    def test_empty_distribution(self):
        d = Distribution("d")
        assert d.count == 0
        assert d.mean == 0.0
        assert d.median == 0.0

    def test_median_odd(self):
        d = Distribution("d")
        for v in (5, 1, 9):
            d.observe(v)
        assert d.median == 5

    def test_percentiles(self):
        d = Distribution("d")
        for v in range(101):
            d.observe(v)
        assert d.percentile(0) == 0
        assert d.percentile(100) == 100
        assert d.percentile(50) == 50

    def test_min_max_total(self):
        d = Distribution("d")
        for v in (4, 2, 6):
            d.observe(v)
        assert d.minimum == 2
        assert d.maximum == 6
        assert d.total == 12
        assert d.mean == 4

    def test_empty_percentile_is_zero(self):
        d = Distribution("d")
        assert d.percentile(0) == 0.0
        assert d.percentile(50) == 0.0
        assert d.percentile(100) == 0.0
        assert d.minimum == 0.0 and d.maximum == 0.0 and d.total == 0.0

    def test_single_observation_is_every_percentile(self):
        d = Distribution("d")
        d.observe(42)
        for pct in (0, 1, 50, 99, 100):
            assert d.percentile(pct) == 42
        assert d.median == 42

    def test_out_of_range_percentiles_clamp(self):
        d = Distribution("d")
        for v in (10, 20, 30):
            d.observe(v)
        assert d.percentile(-5) == 10
        assert d.percentile(250) == 30

    def test_sort_cache_invalidated_by_observe(self):
        d = Distribution("d")
        d.observe(5)
        assert d.median == 5  # populates the sort cache
        d.observe(1)
        d.observe(9)
        assert d.median == 5
        d.observe(100)
        d.observe(200)
        assert d.percentile(100) == 200

    def test_negative_values_tracked(self):
        d = Distribution("d")
        for v in (-3, 7, -8):
            d.observe(v)
        assert d.minimum == -8
        assert d.maximum == 7
        assert d.total == -4


class TestStatRegistry:
    def test_counter_created_on_first_use(self):
        reg = StatRegistry()
        reg.counter("a.b").add(3)
        assert reg.get("a.b") == 3

    def test_counter_identity_preserved(self):
        reg = StatRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_get_missing_returns_default(self):
        reg = StatRegistry()
        assert reg.get("missing", default=7) == 7

    def test_snapshot_is_plain_dict(self):
        reg = StatRegistry()
        reg.counter("a").add(1)
        reg.counter("b").add(2)
        snap = reg.snapshot()
        assert snap == {"a": 1, "b": 2}
        reg.counter("a").add(1)
        assert snap["a"] == 1  # snapshot decoupled

    def test_counters_sorted(self):
        reg = StatRegistry()
        reg.counter("z").add()
        reg.counter("a").add()
        assert [name for name, _ in reg.counters()] == ["a", "z"]

    def test_distribution_or_none(self):
        reg = StatRegistry()
        assert reg.distribution_or_none("d") is None
        reg.distribution("d").observe(1)
        assert reg.distribution_or_none("d") is not None
