"""Tests for the abstract-interpretation domain (intervals, pointers)."""

from repro.analysis import ValueKind, analyze_function, build_cfg
from repro.analysis.absint import (
    AbsState,
    TOP,
    const,
    eval_alu,
    interval,
    join,
    range_avoids,
    range_within,
    refine_branch,
    stack_ptr,
    step,
    widen,
)
from repro.vm.assembler import Assembler
from repro.vm.isa import Insn, Op, Reg, SYS_EXIT, SYS_READ
from repro.vm.memory import DATA_BASE


class TestValues:
    def test_const_is_degenerate_interval(self):
        v = const(7)
        assert v.is_const and v.lo == v.hi == 7

    def test_join_widens_interval(self):
        assert join(const(1), const(5)) == interval(1, 5)

    def test_join_of_mismatched_kinds_is_top(self):
        assert join(const(1), stack_ptr(8)) is TOP

    def test_widen_jumps_unstable_bound_to_infinity(self):
        old, new = interval(0, 4), interval(0, 8)
        widened = widen(old, new)
        assert widened.lo == 0
        assert widened.hi is None  # upper bound unstable -> +inf
        # The stable direction survives widening.
        assert widen(interval(0, 4), interval(0, 4)) == interval(0, 4)

    def test_alu_interval_arithmetic(self):
        assert eval_alu(Op.ADD, interval(1, 3), const(10)) == interval(11, 13)
        assert eval_alu(Op.SUB, interval(5, 9), interval(1, 2)) == interval(3, 8)
        v = eval_alu(Op.ANDI, TOP, const(0xFF))
        assert v.kind is ValueKind.NUM and (v.lo, v.hi) == (0, 0xFF)

    def test_stack_pointer_arithmetic(self):
        v = eval_alu(Op.ADD, stack_ptr(-16), const(8))
        assert v.kind is ValueKind.STACK and v.delta == -8

    def test_range_predicates(self):
        assert range_within(interval(100, 200), 100, 201)
        assert not range_within(interval(100, 200), 100, 200)
        assert range_avoids(interval(0, 99), 100, 200)
        assert not range_avoids(interval(50, 150), 100, 200)
        assert not range_avoids(TOP, 100, 200)


class TestStep:
    def test_store_to_stack_slot_then_load(self):
        state = AbsState()
        # store t0, -8(sp); load t1, -8(sp)
        state.set(int(Reg.t0), const(42))
        step(state, Insn(Op.STORE, int(Reg.t0), int(Reg.sp), -8))
        step(state, Insn(Op.LOAD, int(Reg.t1), int(Reg.sp), -8))
        assert state.get(int(Reg.t1)) == const(42)

    def test_unknown_store_clobbers_slots(self):
        state = AbsState()
        state.set(int(Reg.t0), const(1))
        step(state, Insn(Op.STORE, int(Reg.t0), int(Reg.sp), -8))
        assert state.slots
        # A store through an unconstrained pointer may alias the stack.
        step(state, Insn(Op.STORE, int(Reg.t0), int(Reg.t5), 0))
        assert not state.slots

    def test_call_clobbers_temporaries_not_sp(self):
        state = AbsState()
        state.set(int(Reg.t0), const(3))
        step(state, Insn(Op.CALL, 0, 0, 10))
        assert state.get(int(Reg.t0)) is TOP
        assert state.get(int(Reg.sp)).kind is ValueKind.STACK

    def test_read_syscall_into_stack_buffer_clears_slots(self):
        state = AbsState()
        state.set(int(Reg.t0), const(1))
        step(state, Insn(Op.STORE, int(Reg.t0), int(Reg.sp), -8))
        state.set(int(Reg.a1), TOP)  # buffer could be anywhere
        step(state, Insn(Op.SYSCALL, 0, 0, SYS_READ))
        assert not state.slots


class TestBranchRefinement:
    def test_blt_taken_narrows_upper_bound(self):
        state = AbsState()
        state.set(int(Reg.t0), interval(0, None))
        state.set(int(Reg.t1), const(10))
        insn = Insn(Op.BLT, int(Reg.t0), int(Reg.t1), 0)
        refined = refine_branch(state, insn, taken=True)
        assert refined.get(int(Reg.t0)) == interval(0, 9)
        fall = refine_branch(state, insn, taken=False)
        assert fall.get(int(Reg.t0)) == interval(10, None)

    def test_beq_taken_intersects(self):
        state = AbsState()
        state.set(int(Reg.t0), interval(0, 100))
        state.set(int(Reg.t1), const(7))
        insn = Insn(Op.BEQ, int(Reg.t0), int(Reg.t1), 0)
        refined = refine_branch(state, insn, taken=True)
        assert refined.get(int(Reg.t0)) == const(7)

    def test_infeasible_edge_is_none(self):
        state = AbsState()
        state.set(int(Reg.t0), const(1))
        state.set(int(Reg.t1), const(2))
        insn = Insn(Op.BEQ, int(Reg.t0), int(Reg.t1), 0)
        assert refine_branch(state, insn, taken=True) is None


def _facts_for(build):
    asm = Assembler("ai")
    asm.entry("main")
    with asm.function("main"):
        build(asm)
    binary = asm.finish()
    cfg = build_cfg(binary, binary.functions[0])
    return binary, analyze_function(binary, cfg)


class TestAnalyzeFunction:
    def test_data_segment_store_address_resolved(self):
        def body(asm):
            asm.data_word("cell")
            asm.la(Reg.t1, "cell")              # 0
            asm.li(Reg.t0, 5)                   # 1
            asm.store(Reg.t0, Reg.t1, 0)        # 2
            asm.syscall(SYS_EXIT)               # 3

        binary, facts = _facts_for(body)
        addr = facts.store_addr[2]
        assert addr.is_const and addr.lo >= DATA_BASE

    def test_function_pointer_tracked_through_register(self):
        asm = Assembler("fp")
        asm.entry("main")
        with asm.function("callee"):
            asm.ret()
        with asm.function("main"):
            asm.la(Reg.t2, "callee")
            asm.callr(Reg.t2)
            asm.syscall(SYS_EXIT)
        binary = asm.finish()
        main = binary.functions[1]
        facts = analyze_function(binary, build_cfg(binary, main))
        (value,) = [facts.transfer_val[i] for i in facts.transfer_val]
        assert value.kind is ValueKind.FUNC
        assert value.entry == binary.functions[0].entry

    def test_jr_on_return_address(self):
        def body(asm):
            asm.jr(Reg.ra)  # 0

        binary, facts = _facts_for(body)
        assert facts.transfer_val[0].kind is ValueKind.RETADDR

    def test_read_buffer_recorded(self):
        def body(asm):
            asm.data_space("buf", 64)
            asm.li(Reg.a0, 0)                  # 0
            asm.la(Reg.a1, "buf")              # 1
            asm.li(Reg.a2, 64)                 # 2
            asm.syscall(SYS_READ)              # 3
            asm.syscall(SYS_EXIT)              # 4

        binary, facts = _facts_for(body)
        buf = facts.read_buf[3]
        assert buf.is_const and buf.lo >= DATA_BASE

    def test_loop_converges_with_widening(self):
        def body(asm):
            asm.data_space("arr", 256)
            asm.li(Reg.t0, 0)                      # 0
            asm.li(Reg.t1, 32)                     # 1
            asm.label("w_top")
            asm.la(Reg.t2, "arr")                  # 2
            asm.add(Reg.t2, Reg.t2, Reg.t0)        # 3
            asm.store(Reg.t0, Reg.t2, 0)           # 4
            asm.addi(Reg.t0, Reg.t0, 8)            # 5
            asm.blt(Reg.t0, Reg.t1, "w_top")       # 6
            asm.syscall(SYS_EXIT)                  # 7

        binary, facts = _facts_for(body)
        addr = facts.store_addr[4]
        # Widening may lose the upper bound but the base stays provable.
        assert addr.kind is ValueKind.NUM
        assert addr.lo is not None and addr.lo >= DATA_BASE

    def test_nested_loops_converge_with_widening(self):
        # Two natural loops sharing state: the inner counter restarts
        # each outer iteration, the outer bound narrows the inner base.
        # Convergence here exercises widening at two loop heads at once.
        def body(asm):
            asm.data_space("arr", 4096)
            asm.li(Reg.t0, 0)                      # 0  i = 0
            asm.label("outer")
            asm.li(Reg.t1, 0)                      # 1  j = 0
            asm.label("inner")
            asm.la(Reg.t2, "arr")                  # 2
            asm.add(Reg.t2, Reg.t2, Reg.t1)        # 3
            asm.store(Reg.t1, Reg.t2, 0)           # 4
            asm.addi(Reg.t1, Reg.t1, 8)            # 5
            asm.li(Reg.at, 64)                     # 6
            asm.blt(Reg.t1, Reg.at, "inner")       # 7
            asm.addi(Reg.t0, Reg.t0, 1)            # 8
            asm.li(Reg.at, 16)                     # 9
            asm.blt(Reg.t0, Reg.at, "outer")       # 10
            asm.syscall(SYS_EXIT)                  # 11

        binary, facts = _facts_for(body)
        addr = facts.store_addr[4]
        assert addr.kind is ValueKind.NUM
        # The inner store's base never leaves the data segment, and the
        # lower bound stays at the array base across both widenings.
        assert addr.lo is not None and addr.lo >= DATA_BASE

    def test_decreasing_counter_widens_lower_bound(self):
        # A count-down loop is the mirror case: the *lower* bound is the
        # unstable direction, so widening must drop it to -inf while the
        # stable upper bound survives.
        def body(asm):
            asm.li(Reg.t0, 64)                     # 0  n = 64
            asm.label("down")
            asm.addi(Reg.t0, Reg.t0, -8)           # 1  n -= 8
            asm.bge(Reg.t0, Reg.zero, "down")      # 2  while n >= 0
            asm.syscall(SYS_EXIT)                  # 3

        binary, facts = _facts_for(body)
        # Also check the widen operator directly in the decreasing
        # direction: lo unstable -> -inf, hi stable -> kept.
        widened = widen(interval(0, 64), interval(-8, 64))
        assert widened.lo is None
        assert widened.hi == 64
        # The analysis terminated (facts exist) despite the decreasing
        # counter — the loop body was actually visited.
        assert facts.transfer_val is not None
