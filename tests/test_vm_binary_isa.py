"""Tests for the binary format validation and ISA helpers."""

import pytest

from repro.errors import AssemblyError
from repro.vm.binary import Binary, Function, JumpTable
from repro.vm.isa import (
    MASK64,
    SHADOW_ONLY_OPS,
    SYSCALL_NAMES,
    SPEC_ALLOWED_SYSCALLS,
    SYS_FSTAT,
    SYS_OPEN,
    SYS_READ,
    SYS_SBRK,
    Insn,
    Op,
    Reg,
    to_signed,
)


def make_binary(text, jump_tables=None, entry=0, functions=None):
    return Binary(
        "t", text, b"", {}, functions or [], jump_tables or [], entry
    )


class TestBinaryValidation:
    def test_entry_out_of_range(self):
        with pytest.raises(AssemblyError):
            make_binary([Insn(Op.NOP)], entry=5)

    def test_branch_target_out_of_range(self):
        with pytest.raises(AssemblyError):
            make_binary([Insn(Op.JMP, c=9)])

    def test_jump_table_target_out_of_range(self):
        table = JumpTable(0, [7])
        with pytest.raises(AssemblyError):
            make_binary([Insn(Op.SWITCH, a=0, c=0)], jump_tables=[table])

    def test_unknown_jump_table(self):
        with pytest.raises(AssemblyError):
            make_binary([Insn(Op.SWITCH, a=0, c=3)])

    def test_valid_binary_accepted(self):
        binary = make_binary([Insn(Op.JMP, c=0), Insn(Op.HALT)])
        assert binary.text_bytes == 8

    def test_function_lookup(self):
        f = Function("f", 0, 2)
        binary = make_binary([Insn(Op.NOP), Insn(Op.HALT)], functions=[f])
        assert binary.function("f") is f
        with pytest.raises(AssemblyError):
            binary.function("g")
        assert binary.function_containing(1) is f
        assert binary.function_containing(5) is None
        assert binary.function_at_entry(0) is f
        assert binary.function_at_entry(1) is None


class TestInsn:
    def test_clone_copies_meta(self):
        insn = Insn(Op.LOAD, 1, 2, 3, meta={"stack": True})
        twin = insn.clone()
        twin.meta["stack"] = False
        assert insn.get_meta("stack") is True

    def test_clone_without_meta(self):
        insn = Insn(Op.NOP)
        assert insn.clone().meta is None

    def test_get_meta_default(self):
        assert Insn(Op.NOP).get_meta("x", 42) == 42


class TestIsaHelpers:
    def test_to_signed_boundaries(self):
        assert to_signed(0) == 0
        assert to_signed(MASK64) == -1
        assert to_signed(1 << 63) == -(1 << 63)
        assert to_signed((1 << 63) - 1) == (1 << 63) - 1

    def test_shadow_only_ops_disjoint_from_assembler_ops(self):
        assembler_ops = {
            Op.NOP, Op.HALT, Op.LI, Op.LA, Op.MOV, Op.ADD, Op.LOAD,
            Op.STORE, Op.BEQ, Op.JMP, Op.CALL, Op.SYSCALL, Op.CWORK,
        }
        assert not (SHADOW_ONLY_OPS & assembler_ops)

    def test_syscall_names_cover_spec_allowed(self):
        for num in SPEC_ALLOWED_SYSCALLS:
            assert num in SYSCALL_NAMES

    def test_spec_allowed_is_paper_set(self):
        """Section 3.2.1: hints, fstat and sbrk only (open/close/lseek are
        emulated in user space; read becomes the hint call itself)."""
        assert SYS_FSTAT in SPEC_ALLOWED_SYSCALLS
        assert SYS_SBRK in SPEC_ALLOWED_SYSCALLS
        assert SYS_OPEN not in SPEC_ALLOWED_SYSCALLS
        assert SYS_READ not in SPEC_ALLOWED_SYSCALLS

    def test_register_conventions(self):
        assert int(Reg.zero) == 0
        assert int(Reg.sp) == 29
        assert int(Reg.ra) == 31
        assert len(Reg) == 32
