"""Machine-level tests of shadow-code execution: COW dispatch, SCWORK,
dynamic control transfers, budget mode, and speculative fault handling."""


from repro.fs.filesystem import FileSystem
from repro.kernel.thread import ThreadState
from repro.spechint.tool import SpecHintTool
from repro.vm.assembler import Assembler
from repro.vm.isa import Reg, SYS_EXIT

from tests.conftest import make_system, small_system_config


def build_and_spawn(body, fs=None, data=None):
    """Assemble, transform, spawn; return (system, process)."""
    asm = Assembler("shadowtest")
    if data:
        data(asm)
    asm.entry("main")
    with asm.function("main"):
        body(asm)
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
    binary = SpecHintTool().transform(asm.finish())
    system = make_system(fs or FileSystem(), small_system_config())
    process = system.kernel.spawn(binary)
    return system, process


def run_spec_thread(system, process, max_steps=5):
    """Execute the speculating thread at its shadow entry point."""
    thread = process.spec_thread
    thread.state = ThreadState.RUNNABLE
    thread.pc = process.binary.spec_meta.shadow_base
    # Give it a stack so pushes work.
    thread.regs[int(Reg.sp)] = process.mem.stack_top
    reason = system.kernel.machine.execute(thread, budget=10_000_000)
    return thread, reason


class TestCowDispatch:
    def test_shadow_store_isolated_from_memory(self):
        def data(asm):
            asm.data_word("g", 111)

        def body(asm):
            asm.la(Reg.t0, "g")
            asm.li(Reg.t1, 999)
            asm.store(Reg.t1, Reg.t0, 0)
            asm.load(Reg.s0, Reg.t0, 0)

        system, process = build_and_spawn(body, data=data)
        g_addr = process.binary.data_symbols["g"]
        thread, reason = run_spec_thread(system, process)
        # Speculation saw its own write...
        assert thread.reg(Reg.s0) == 999
        # ...but main memory still holds the original value.
        assert process.mem.load_word(g_addr) == 111
        assert reason == "spec_idle"  # parked at the guarded exit

    def test_shadow_byte_ops(self):
        def data(asm):
            asm.data_space("buf", 16)

        def body(asm):
            asm.la(Reg.t0, "buf")
            asm.li(Reg.t1, 0x5A)
            asm.storeb(Reg.t1, Reg.t0, 2)
            asm.loadb(Reg.s0, Reg.t0, 2)

        system, process = build_and_spawn(body, data=data)
        thread, _ = run_spec_thread(system, process)
        assert thread.reg(Reg.s0) == 0x5A
        buf = process.binary.data_symbols["buf"]
        assert process.mem.load_byte(buf + 2) == 0

    def test_cow_check_cost_charged(self):
        """A COW load costs more speculative cycles than a plain ALU op."""
        def data(asm):
            asm.data_word("g", 1)

        def body(asm):
            asm.la(Reg.t0, "g")
            asm.load(Reg.s0, Reg.t0, 0)

        system, process = build_and_spawn(body, data=data)
        thread, _ = run_spec_thread(system, process)
        params = system.config.spechint
        assert thread.cpu_cycles >= params.cow_load_check_cycles


class TestScwork:
    def test_scwork_consumes_dilated_cycles(self):
        def body(asm):
            asm.cwork(10_000, 1_000, 0)

        system, process = build_and_spawn(body)
        thread, _ = run_spec_thread(system, process)
        params = system.config.spechint
        expected = 10_000 + 1_000 * params.cow_load_check_cycles
        assert thread.cpu_cycles >= expected

    def test_budget_mode_interrupts_scwork(self):
        def body(asm):
            asm.cwork(1_000_000, 0, 0)

        system, process = build_and_spawn(body)
        thread = process.spec_thread
        thread.state = ThreadState.RUNNABLE
        thread.pc = process.binary.spec_meta.shadow_base
        reason = system.kernel.machine.execute(thread, budget=10_000)
        assert reason == "budget"
        assert thread.cwork_remaining > 0
        # Global clock untouched in budget mode.
        assert system.clock.now == 0


class TestDynamicTransfers:
    def test_spec_callr_maps_function_entry(self):
        def body(asm):
            asm.jmp("start")
            asm.label("start")
            asm.la(Reg.t0, "helper")  # original-text function address
            asm.callr(Reg.t0)
            asm.li(Reg.s2, 1)
            asm.jmp("end")
            asm.label("end")
            asm.nop()

        def data(asm):
            pass

        # Build with a helper function.
        asm = Assembler("callrtest")
        asm.entry("main")
        with asm.function("helper"):
            asm.li(Reg.s0, 77)
            asm.ret()
        with asm.function("main"):
            asm.la(Reg.t0, "helper")
            asm.callr(Reg.t0)
            asm.li(Reg.a0, 0)
            asm.syscall(SYS_EXIT)
        binary = SpecHintTool().transform(asm.finish())
        system = make_system(FileSystem(), small_system_config())
        process = system.kernel.spawn(binary)

        thread = process.spec_thread
        thread.state = ThreadState.RUNNABLE
        meta = binary.spec_meta
        thread.pc = meta.function_map[binary.function("main").entry]
        thread.regs[int(Reg.sp)] = process.mem.stack_top
        system.kernel.machine.execute(thread, budget=1_000_000)
        # The handling routine mapped the original entry to shadow code
        # and the helper ran speculatively.
        assert thread.reg(Reg.s0) == 77

    def test_spec_jr_to_wild_address_parks(self):
        def body(asm):
            asm.li(Reg.t0, 7)  # mid-text, not a function entry
            asm.jr(Reg.t0)
            asm.nop()
            asm.nop()
            asm.nop()
            asm.nop()
            asm.nop()
            asm.nop()
            asm.nop()

        system, process = build_and_spawn(body)
        thread, reason = run_spec_thread(system, process)
        assert reason == "spec_idle"
        assert system.stats.get("spec.park.left_shadow") == 1


class TestSpeculativeFaults:
    def test_division_fault_becomes_signal(self):
        def body(asm):
            asm.li(Reg.t0, 1)
            asm.div(Reg.t1, Reg.t0, Reg.zero)

        system, process = build_and_spawn(body)
        thread, reason = run_spec_thread(system, process)
        assert reason == "spec_idle"
        assert process.spec.signals == 1
        assert thread.state is ThreadState.SPEC_IDLE

    def test_wild_address_becomes_signal(self):
        def body(asm):
            asm.li(Reg.t0, 64)  # null-guard page
            asm.load(Reg.t1, Reg.t0, 0)

        system, process = build_and_spawn(body)
        thread, reason = run_spec_thread(system, process)
        assert reason == "spec_idle"
        assert process.spec.signals == 1

    def test_switch_out_of_range_becomes_signal(self):
        asm = Assembler("switchtest")
        asm.entry("main")
        with asm.function("main"):
            table = asm.jump_table(["case0"])
            asm.li(Reg.t0, 99)
            asm.switch(Reg.t0, table)
            asm.label("case0")
            asm.li(Reg.a0, 0)
            asm.syscall(SYS_EXIT)
        binary = SpecHintTool().transform(asm.finish())
        system = make_system(FileSystem(), small_system_config())
        process = system.kernel.spawn(binary)
        thread = process.spec_thread
        thread.state = ThreadState.RUNNABLE
        thread.pc = binary.spec_meta.shadow_base
        reason = system.kernel.machine.execute(thread, budget=1_000_000)
        assert reason == "spec_idle"
        assert process.spec.signals == 1
