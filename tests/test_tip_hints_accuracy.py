"""Tests for hint segments (Table 2 types) and accuracy tracking."""

import pytest

from repro.fs.filesystem import Inode
from repro.params import BLOCK_SIZE
from repro.tip.accuracy import HintAccuracyTracker
from repro.tip.hints import HintSegment, Ioctl


def inode(nbytes):
    return Inode(3, "f", bytes(nbytes), 0)


class TestHintSegment:
    def test_block_range_single_block(self):
        seg = HintSegment(inode(BLOCK_SIZE * 4), 100, 200, 1, Ioctl.TIPIO_SEG)
        assert seg.block_range() == (0, 0)

    def test_block_range_spanning(self):
        seg = HintSegment(
            inode(BLOCK_SIZE * 4), BLOCK_SIZE - 1, 2, 1, Ioctl.TIPIO_FD_SEG
        )
        assert seg.block_range() == (0, 1)

    def test_block_range_clamped_to_file(self):
        seg = HintSegment(inode(BLOCK_SIZE + 1), 0, 100 * BLOCK_SIZE, 1, Ioctl.TIPIO_SEG)
        assert seg.block_range() == (0, 1)

    def test_empty_segment(self):
        seg = HintSegment(inode(BLOCK_SIZE), 0, 0, 1, Ioctl.TIPIO_SEG)
        assert seg.block_range() == (0, -1)
        assert seg.blocks() == []

    def test_offset_past_eof(self):
        seg = HintSegment(inode(10), 20, 5, 1, Ioctl.TIPIO_SEG)
        assert seg.blocks() == []

    def test_blocks_keys(self):
        seg = HintSegment(inode(BLOCK_SIZE * 3), 0, 3 * BLOCK_SIZE, 1, Ioctl.TIPIO_SEG)
        assert seg.blocks() == [(3, 0), (3, 1), (3, 2)]


class TestHintAccuracyTracker:
    def test_starts_optimistic(self):
        assert HintAccuracyTracker().value == 1.0

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            HintAccuracyTracker(alpha=0.0)
        with pytest.raises(ValueError):
            HintAccuracyTracker(alpha=1.5)

    def test_consumed_keeps_high(self):
        tracker = HintAccuracyTracker()
        tracker.observe_consumed(50)
        assert tracker.value == pytest.approx(1.0)
        assert tracker.consumed == 50

    def test_cancelled_decays(self):
        tracker = HintAccuracyTracker()
        tracker.observe_cancelled(50)
        assert tracker.value < 0.2
        assert tracker.cancelled == 50

    def test_stale_decays(self):
        tracker = HintAccuracyTracker()
        tracker.observe_stale(50)
        assert tracker.value < 0.2

    def test_mixed_converges_to_rate(self):
        tracker = HintAccuracyTracker(alpha=0.05)
        for _ in range(400):
            tracker.observe_consumed()
            tracker.observe_cancelled()
        assert tracker.value == pytest.approx(0.5, abs=0.15)

    def test_inaccurate_total(self):
        tracker = HintAccuracyTracker()
        tracker.observe_cancelled(3)
        tracker.observe_stale(4)
        assert tracker.inaccurate == 7

    def test_recovery_after_bad_patch(self):
        tracker = HintAccuracyTracker()
        tracker.observe_cancelled(50)
        low = tracker.value
        tracker.observe_consumed(100)
        assert tracker.value > low
        assert tracker.value > 0.9
