"""Tests for the cache-manager base mechanics and the baseline UBC."""


from repro.fs.cache import BlockCache, FetchOrigin
from repro.fs.filesystem import FileSystem
from repro.fs.readahead import SequentialReadAhead
from repro.fs.ubc import UbcManager
from repro.params import ArrayParams, BLOCK_SIZE, CpuParams, DiskParams
from repro.sim.clock import SimClock
from repro.sim.engine import EventEngine
from repro.sim.stats import StatRegistry
from repro.storage.striping import StripedArray

PID = 1


def make_ubc(cache_blocks=8, file_blocks=64):
    fs = FileSystem()
    fs.create("f", bytes(file_blocks * BLOCK_SIZE))
    clock = SimClock()
    engine = EventEngine(clock)
    stats = StatRegistry()
    array = StripedArray(
        fs.total_blocks, ArrayParams(), DiskParams(), CpuParams(), engine, stats
    )
    cache = BlockCache(cache_blocks, stats)
    manager = UbcManager(fs, array, cache, SequentialReadAhead(), stats, )
    return manager, fs.lookup("f"), engine, stats


def drain(engine):
    while engine.advance_to_next():
        pass


class TestAccessBlock:
    def test_miss_then_hit(self):
        manager, inode, engine, stats = make_ubc()
        ready = []
        assert not manager.access_block(inode, 0, lambda: ready.append(1))
        drain(engine)
        assert ready == [1]
        assert manager.access_block(inode, 0, lambda: ready.append(2))
        assert ready == [1]  # hit: callback not invoked

    def test_join_inflight_fetch(self):
        manager, inode, engine, stats = make_ubc()
        ready = []
        manager.access_block(inode, 0, lambda: ready.append("a"))
        manager.access_block(inode, 0, lambda: ready.append("b"))
        assert stats.get("cache.demand_joins_inflight") == 1
        drain(engine)
        assert sorted(ready) == ["a", "b"]

    def test_demand_evicts_lru_when_full(self):
        manager, inode, engine, stats = make_ubc(cache_blocks=2)
        for block in (0, 1):
            manager.access_block(inode, block, lambda: None)
        drain(engine)
        manager.access_block(inode, 2, lambda: None)
        drain(engine)
        assert not manager.peek_valid(inode, 0)  # LRU victim
        assert manager.peek_valid(inode, 1)
        assert manager.peek_valid(inode, 2)

    def test_demand_overcommits_when_no_victim(self):
        manager, inode, engine, stats = make_ubc(cache_blocks=1)
        # Two concurrent demand fetches: the second finds no VALID victim.
        manager.access_block(inode, 0, lambda: None)
        manager.access_block(inode, 1, lambda: None)
        assert stats.get("cache.overcommitted_inserts") == 1
        drain(engine)


class TestPrefetchMechanics:
    def test_start_prefetch_and_peek(self):
        manager, inode, engine, stats = make_ubc()
        assert manager.start_prefetch(inode, 3, FetchOrigin.READAHEAD)
        assert not manager.peek_valid(inode, 3)  # still in flight
        drain(engine)
        assert manager.peek_valid(inode, 3)

    def test_prefetch_skips_present_block(self):
        manager, inode, engine, _ = make_ubc()
        manager.start_prefetch(inode, 3, FetchOrigin.READAHEAD)
        assert not manager.start_prefetch(inode, 3, FetchOrigin.READAHEAD)

    def test_prefetch_denied_without_victim(self):
        manager, inode, engine, stats = make_ubc(cache_blocks=1)
        manager.access_block(inode, 0, lambda: None)  # pins the only slot
        assert not manager.start_prefetch(inode, 1, FetchOrigin.READAHEAD)
        assert stats.get("cache.prefetch_denied_no_room") == 1
        drain(engine)

    def test_prefetch_evicts_when_full_of_valid(self):
        manager, inode, engine, _ = make_ubc(cache_blocks=1)
        manager.access_block(inode, 0, lambda: None)
        drain(engine)
        assert manager.start_prefetch(inode, 1, FetchOrigin.READAHEAD)
        drain(engine)
        assert not manager.peek_valid(inode, 0)
        assert manager.peek_valid(inode, 1)


class TestReadCallCompleted:
    def test_unhinted_sequential_reads_trigger_readahead(self):
        manager, inode, engine, stats = make_ubc(cache_blocks=32)
        from repro.fs.readahead import ReadAheadState

        state = ReadAheadState()
        for block in range(4):
            manager.read_call_completed(PID, state, inode, block, block,
                                        hinted=False)
        drain(engine)
        assert stats.get("cache.prefetched_blocks") > 0

    def test_hinted_reads_do_not_invoke_readahead(self):
        manager, inode, engine, stats = make_ubc(cache_blocks=32)
        from repro.fs.readahead import ReadAheadState

        state = ReadAheadState()
        for block in range(4):
            manager.read_call_completed(PID, state, inode, block, block,
                                        hinted=True)
        drain(engine)
        assert stats.get("cache.prefetched_blocks") == 0

    def test_ubc_ignores_hints(self):
        manager, inode, _, _ = make_ubc()
        assert manager.hint_segments(PID, []) == 0
        assert manager.cancel_all(PID) == 0
        assert not manager.consume_hints(PID, inode, 0, 0, 0, 10)
