"""CLI tests for chaos mode and ReproError handling."""

import pytest

from repro.cli import build_parser, main
from repro.errors import RetriesExhausted


class TestChaosFlags:
    def test_chaos_choices_are_the_profiles(self):
        args = build_parser().parse_args(
            ["run", "agrep", "--chaos", "transient-errors"])
        assert args.chaos == "transient-errors"
        assert args.fault_seed == 7

    def test_unknown_profile_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "agrep", "--chaos", "gremlins"])

    def test_run_with_chaos_prints_fault_summary(self, capsys):
        assert main(["run", "agrep", "--scale", "0.2",
                     "--chaos", "transient-errors"]) == 0
        out = capsys.readouterr().out
        assert "chaos:" in out
        assert "transient-errors" in out
        assert "retries" in out

    def test_run_without_chaos_omits_fault_summary(self, capsys):
        assert main(["run", "agrep", "--scale", "0.2"]) == 0
        assert "chaos:" not in capsys.readouterr().out

    def test_chaos_none_is_fault_free(self, capsys):
        assert main(["run", "agrep", "--scale", "0.2",
                     "--chaos", "none"]) == 0
        assert "chaos:" not in capsys.readouterr().out

    def test_compare_accepts_chaos(self, capsys):
        assert main(["compare", "agrep", "--scale", "0.2",
                     "--chaos", "stuck-disk"]) == 0
        assert "improvement" in capsys.readouterr().out


class TestErrorExit:
    def test_repro_error_exits_one_with_one_line(self, capsys, monkeypatch):
        import repro.cli as cli

        def boom(cfg):
            raise RetriesExhausted("demand read for lbn 5 failed after 12 attempts")

        monkeypatch.setattr(cli, "run_experiment", boom)
        assert main(["run", "agrep"]) == 1
        captured = capsys.readouterr()
        assert captured.err.count("\n") == 1  # exactly one line
        assert "repro: error: RetriesExhausted" in captured.err
        assert "lbn 5" in captured.err
        assert "Traceback" not in captured.err

    def test_main_module_maps_error_to_exit_status(self):
        import subprocess
        import sys

        # A run that cannot succeed: total disk failure would raise
        # RetriesExhausted out of the library; __main__ must turn it into
        # exit status 1 and a single stderr line.
        code = (
            "import sys; sys.argv = ['repro', 'run', 'agrep']\n"
            "from unittest import mock\n"
            "import repro.cli as cli\n"
            "from repro.errors import DiskFaultError\n"
            "def boom(cfg): raise DiskFaultError('disk 0 gave up')\n"
            "cli.run_experiment = boom\n"
            "sys.exit(cli.main(['run', 'agrep']))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "repro: error: DiskFaultError: disk 0 gave up" in proc.stderr
        assert "Traceback" not in proc.stderr
