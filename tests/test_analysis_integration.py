"""Integration tests: the static-analysis elision plan applied by the
SpecHint tool, surfaced by the runtime, checked by the oracle, and
reachable from the CLI.
"""

import json

import pytest

from repro.analysis import analyze_binary
from repro.apps.agrep import ANALYSIS_EXPECTATIONS as AGREP_EXPECT
from repro.apps.postgres import ANALYSIS_EXPECTATIONS as PG_EXPECT
from repro.cli import main
from repro.errors import MachineFault
from repro.fs.filesystem import FileSystem
from repro.harness.oracle import run_oracle_cell
from repro.harness.runner import _BUILDERS
from repro.spechint.tool import SpecHintTool
from repro.vm.isa import Op
from repro.vm.machine import Machine, SpeculationFault

from tests.test_spechint_runtime import reader_binary, corpus_fs, run_binary

SCALE = 0.3


def _build(app):
    return _BUILDERS[app](FileSystem(), SCALE, False)


class TestToolOptimize:
    def test_without_optimize_no_analysis_counters(self):
        report = SpecHintTool().transform(_build("agrep")).spec_meta.report
        assert not report.analysis_applied
        assert report.stores_elided == 0
        # Instrumentation cost is reported either way; without the
        # analysis nothing is saved.
        assert report.check_cycles_emitted == report.check_cycles_baseline

    def test_agrep_elides_expected_store_wrappers(self):
        transformed = SpecHintTool(optimize=True).transform(_build("agrep"))
        report = transformed.spec_meta.report
        assert report.analysis_applied
        assert report.stores_elided == AGREP_EXPECT["elidable_stores"]
        assert report.stores_wrapped == \
            AGREP_EXPECT["wrapped_stores"] - AGREP_EXPECT["elidable_stores"]
        assert report.store_elision_pct >= 20.0
        # Elided stores are plain clones in the shadow: the write guard
        # is their safety net, not a COW wrapper.
        shadow = transformed.text[transformed.spec_meta.shadow_base:]
        assert any(insn.op is Op.STORE for insn in shadow)

    def test_original_half_untouched_by_optimization(self):
        transformed = SpecHintTool(optimize=True).transform(_build("agrep"))
        original = _build("agrep")
        for i, insn in enumerate(original.text):
            twin = transformed.text[i]
            assert twin.op == insn.op
            assert (twin.a, twin.b, twin.c) == (insn.a, insn.b, insn.c)

    def test_check_cycle_deltas_match_the_analysis(self):
        binary = _build("agrep")
        analysis = analyze_binary(binary)
        report = SpecHintTool(optimize=True).transform(binary) \
            .spec_meta.report
        assert report.check_cycles_baseline == analysis.check_cycles_baseline
        assert report.check_cycles_emitted == analysis.check_cycles_optimized
        assert report.check_cycles_emitted < report.check_cycles_baseline

    def test_postgres_callr_statically_redirected(self):
        binary = _build("postgres20")
        analysis = analyze_binary(binary)
        transformed = SpecHintTool(optimize=True).transform(binary)
        meta = transformed.spec_meta
        report = meta.report
        assert report.transfers_statically_resolved == \
            PG_EXPECT["resolved_transfers"]
        ((site, target),) = analysis.elision_plan.resolved.items()
        shadow_insn = transformed.text[meta.shadow_base + site]
        assert shadow_insn.op is Op.CALL
        assert shadow_insn.c == target + meta.shadow_base
        assert shadow_insn.get_meta("call_target") == "cmp_keys"
        # The unoptimized tool routes the same site dynamically.
        baseline = SpecHintTool().transform(_build("postgres20"))
        assert baseline.text[meta.shadow_base + site].op is Op.SPEC_CALLR

    def test_map_all_addresses_disables_the_plan(self):
        report = SpecHintTool(optimize=True, map_all_addresses=True) \
            .transform(_build("agrep")).spec_meta.report
        assert report.analysis_applied
        assert report.stores_elided == 0
        assert report.transfers_statically_resolved == 0
        assert report.check_cycles_emitted == report.check_cycles_baseline


class _FakeThread:
    def __init__(self, is_spec):
        self.is_spec = is_spec


class TestSpecMemFault:
    """With COW wrappers elided, a plain memory fault on the speculating
    thread must park speculation, never crash the machine."""

    def test_spec_thread_fault_becomes_speculation_fault(self):
        with pytest.raises(SpeculationFault):
            Machine._spec_mem_fault(_FakeThread(True), MachineFault("boom"))

    def test_normal_thread_fault_reraises(self):
        with pytest.raises(MachineFault):
            Machine._spec_mem_fault(_FakeThread(False), MachineFault("boom"))


class TestRuntimeWithAnalysis:
    def test_output_identical_and_counters_surfaced(self):
        o_sys, o_proc = run_binary(reader_binary(), corpus_fs())
        transformed = SpecHintTool(optimize=True).transform(reader_binary())
        s_sys, s_proc = run_binary(transformed, corpus_fs())
        assert bytes(s_proc.output) == bytes(o_proc.output)
        assert s_proc.exit_code == o_proc.exit_code
        assert s_proc.spec is not None
        assert s_proc.spec.hints_issued > 0
        # The runtime surfaces the analysis deltas as first-class stats
        # and an audit-table record.
        assert s_sys.stats.get("spechint.analysis.stores_elided") > 0
        assert s_sys.stats.get("spechint.analysis.check_cycles_saved") > 0
        assert any(r.kind == "analysis"
                   for r in s_proc.spec.auditor.table.records())

    def test_no_isolation_violations_with_elisions(self):
        transformed = SpecHintTool(optimize=True).transform(reader_binary())
        s_sys, s_proc = run_binary(transformed, corpus_fs())
        assert s_sys.stats.get("spec.isolation_violations") == 0
        assert s_proc.spec.isolation_violations == 0
        assert not s_proc.spec.quarantine_state.active


class TestOracleWithAnalysis:
    def test_fault_free_cell_byte_identical(self):
        cell = run_oracle_cell("agrep", None, workload_scale=SCALE,
                               analysis_optimize=True)
        assert cell.passed, cell.detail

    def test_chaos_cell_byte_identical(self):
        cell = run_oracle_cell("agrep", "transient-errors",
                               workload_scale=SCALE, analysis_optimize=True)
        assert cell.passed, cell.detail


class TestAnalyzeCLI:
    def test_lint_ok_on_shipped_app(self, capsys):
        assert main(["analyze", "agrep", "--scale", str(SCALE),
                     "--lint"]) == 0
        out = capsys.readouterr().out
        assert "lint: ok" in out

    def test_lint_fails_on_unsafe_fixture(self, capsys):
        assert main(["analyze", "unsafe-fixture", "--lint"]) == 1
        captured = capsys.readouterr()
        assert "unmappable-transfer" in captured.out
        assert "error(s)" in captured.err

    def test_safe_fixture_clean(self, capsys):
        assert main(["analyze", "safe-fixture", "--lint"]) == 0

    def test_json_output_parses(self, capsys):
        assert main(["analyze", "agrep", "--scale", str(SCALE),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["binary"] == "agrep"
        assert payload["elision"]["wrapped_stores"] == \
            AGREP_EXPECT["wrapped_stores"]

    def test_transform_optimize_prints_analysis_line(self, capsys):
        assert main(["transform", "postgres20", "--scale", str(SCALE),
                     "--optimize"]) == 0
        out = capsys.readouterr().out
        assert "analysis:" in out
        assert "transfers resolved" in out
