"""Tests for the tracing / observability subsystem (repro.trace)."""

import json

import pytest

from repro.errors import TraceError
from repro.fs.cache import BlockCache
from repro.fs.filesystem import FileSystem
from repro.fs.readahead import SequentialReadAhead
from repro.harness.config import ExperimentConfig, Variant
from repro.harness.results import RunResult
from repro.harness.runner import run_experiment, run_experiment_with_system
from repro.params import (
    ArrayParams,
    BLOCK_SIZE,
    CpuParams,
    DiskParams,
    SystemConfig,
    TipParams,
)
from repro.sim.clock import SimClock
from repro.sim.engine import EventEngine
from repro.sim.stats import StatRegistry
from repro.storage.striping import StripedArray
from repro.tip.hints import HintSegment, Ioctl
from repro.tip.manager import TipManager
from repro.trace import (
    ALL_CATEGORIES,
    CAT_HINT,
    CAT_KERNEL,
    CAT_SPEC,
    HintLifecycle,
    NULL_TRACER,
    StallBreakdown,
    TraceAnalyzer,
    Tracer,
    chrome_trace,
    export_to_path,
    parse_categories,
    stall_breakdown,
)

SCALE = 0.3
PID = 1


class TestTracerCore:
    def test_records_instants_spans_counters(self):
        clock = SimClock()
        tracer = Tracer(clock)
        tracer.instant(CAT_KERNEL, "sys.read", tid=0, pid=1)
        clock.advance(100)
        tracer.complete(CAT_KERNEL, "read.stall", 10, 90, tid=0)
        tracer.counter(CAT_KERNEL, "depth", 3)
        events = list(tracer.events())
        assert [e.ph for e in events] == ["i", "X", "C"]
        assert events[0].ts == 0 and events[1].ts == 10
        assert events[1].dur == 90
        assert events[2].args == {"value": 3}

    def test_category_filter(self):
        tracer = Tracer(SimClock(), categories=(CAT_HINT,))
        tracer.instant(CAT_KERNEL, "sys.read")
        tracer.instant(CAT_HINT, "hint.disclosed")
        assert len(tracer) == 1
        assert next(tracer.events()).category == CAT_HINT
        assert tracer.wants(CAT_HINT) and not tracer.wants(CAT_KERNEL)

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(SimClock(), capacity=4)
        for i in range(10):
            tracer.instant(CAT_KERNEL, f"e{i}")
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert [e.name for e in tracer.events()] == ["e6", "e7", "e8", "e9"]

    def test_unknown_category_rejected(self):
        with pytest.raises(TraceError):
            Tracer(SimClock(), categories=("bogus",))

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(TraceError):
            Tracer(SimClock(), capacity=0)

    def test_bind_clock_refused_after_first_event(self):
        tracer = Tracer(SimClock())
        tracer.instant(CAT_KERNEL, "e")
        with pytest.raises(TraceError):
            tracer.bind_clock(SimClock())

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.instant(CAT_KERNEL, "e")
        NULL_TRACER.complete(CAT_KERNEL, "e", 0, 10)
        NULL_TRACER.counter(CAT_KERNEL, "e", 1)
        assert len(NULL_TRACER) == 0
        assert not NULL_TRACER.wants(CAT_KERNEL)

    def test_parse_categories(self):
        assert parse_categories("hint, storage") == ("hint", "storage")
        with pytest.raises(TraceError):
            parse_categories("hint,typo")

    def test_stats_plane_queryable_midrun(self):
        stats = StatRegistry()
        tracer = Tracer(SimClock(), stats=stats)
        stats.counter("x").add(3)
        stats.distribution("d").observe(7)
        assert tracer.query_counter("x") == 3
        assert tracer.query_counter("missing", default=-1) == -1
        assert tracer.query_distribution("d").count == 1
        assert tracer.query_distribution("missing") is None


class TestExport:
    def _traced(self):
        clock = SimClock()
        tracer = Tracer(clock)
        tracer.instant(CAT_KERNEL, "sys.read", tid=0, pid=1)
        tracer.complete(CAT_KERNEL, "read.stall", 0, 50, tid=0)
        tracer.counter(CAT_KERNEL, "disk0.queue_depth", 2, tid=100)
        return tracer

    def test_jsonl_one_object_per_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        export_to_path(self._traced(), str(path), "jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        for line in lines:
            event = json.loads(line)
            assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(event)

    def test_chrome_trace_shape(self):
        data = chrome_trace(self._traced())
        events = data["traceEvents"]
        # Every non-metadata event carries the required trace_event keys.
        for event in events:
            if event["ph"] == "M":
                continue
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
        # Track names are announced for each tid seen.
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["tid"] for e in meta} == {0, 100}
        assert data["otherData"]["dropped_events"] == 0

    def test_chrome_export_is_valid_json(self, tmp_path):
        path = tmp_path / "t.json"
        export_to_path(self._traced(), str(path), "chrome")
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == 5  # 3 events + 2 thread_name metas

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            export_to_path(self._traced(), str(tmp_path / "t"), "pprof")

    def test_unwritable_path_raises_typed_error(self, tmp_path):
        with pytest.raises(TraceError):
            export_to_path(self._traced(), str(tmp_path / "no/such/dir/t"),
                           "jsonl")


class TestHintLifecycleUnit:
    def test_full_consumed_path(self):
        clock = SimClock()
        cycle = HintLifecycle(clock)
        cycle.disclosed(1, (5, 0), PID)
        clock.advance(10)
        cycle.prefetch_issued((5, 0))
        clock.advance(10)
        cycle.filled((5, 0))
        clock.advance(10)
        cycle.consumed(1, PID)
        (record,) = cycle.records()
        assert record.issued_ts == 10 and record.filled_ts == 20
        assert record.terminal == "consumed" and record.lead_cycles == 30
        assert record.ready_before_demand
        assert cycle.summary_counts() == {
            "disclosed": 1, "consumed": 1, "cancelled": 0, "wasted": 0,
            "open": 0,
        }
        assert cycle.pct_ready_before_demand == 100.0

    def test_double_terminal_asserts(self):
        cycle = HintLifecycle(SimClock())
        cycle.disclosed(1, (5, 0), PID)
        cycle.consumed(1, PID)
        with pytest.raises(AssertionError):
            cycle.cancelled(1, PID)

    def test_dropped_prefetch_resets_issue_stamp(self):
        clock = SimClock()
        cycle = HintLifecycle(clock)
        cycle.disclosed(1, (5, 0), PID)
        cycle.prefetch_issued((5, 0))
        cycle.prefetch_dropped((5, 0))
        (record,) = cycle.records()
        assert record.issued_ts is None
        assert cycle.prefetches_dropped == 1
        assert cycle.open_for(PID) == 1  # still open: TIP may re-issue

    def test_aggregates_exact_past_detail_capacity(self):
        clock = SimClock()
        cycle = HintLifecycle(clock, capacity=2)
        for seq in range(5):
            cycle.disclosed(seq, (1, seq), PID)
        assert len(cycle.records()) == 2  # detail capped...
        assert cycle.disclosed_total == 5  # ...aggregates exact
        assert cycle.open_for(PID) == 5
        for seq in range(5):
            cycle.consumed(seq, PID)
        assert cycle.open_total == 0 and cycle.open_for(PID) == 0

    def test_stats_mirroring(self):
        clock = SimClock()
        stats = StatRegistry()
        cycle = HintLifecycle(clock, stats=stats)
        cycle.disclosed(1, (5, 0), PID)
        cycle.filled((5, 0))
        clock.advance(4)
        cycle.consumed(1, PID)
        assert stats.get("tip.hints_ready_before_demand") == 1
        assert stats.distribution_or_none("tip.hint_lead_cycles").count == 1


class TestStallBreakdown:
    def test_jsonable_round_trip(self):
        breakdown = StallBreakdown(wall=100, compute=40, checks=10,
                                   demand_stall=45, speculation=30, other=5)
        again = StallBreakdown.from_jsonable(breakdown.to_jsonable())
        assert again == breakdown
        assert again.pct(45) == 45.0

    def test_phases_cover_wall_time(self):
        cfg = ExperimentConfig(app="agrep", workload_scale=SCALE,
                               variant=Variant.SPECULATING)
        result, system = run_experiment_with_system(cfg)
        breakdown = stall_breakdown(system.kernel)
        assert breakdown.wall == result.cycles > 0
        assert breakdown.demand_stall > 0
        assert breakdown.compute > 0
        # The four original-thread phases partition wall time exactly.
        total = (breakdown.compute + breakdown.checks
                 + breakdown.demand_stall + breakdown.other)
        assert total == breakdown.wall
        # Speculation overlaps; it is not part of the partition.
        assert breakdown.speculation > 0


def make_tip_with_lifecycle(cache_blocks=16, file_blocks=32):
    fs = FileSystem()
    fs.create("f0", bytes(file_blocks * BLOCK_SIZE))
    clock = SimClock()
    engine = EventEngine(clock)
    stats = StatRegistry()
    array = StripedArray(
        fs.total_blocks, ArrayParams(), DiskParams(), CpuParams(), engine, stats
    )
    cache = BlockCache(cache_blocks, stats)
    manager = TipManager(
        fs, array, cache, SequentialReadAhead(), stats, TipParams()
    )
    return manager, fs, engine


class TestLifecycleReconciliation:
    """lifecycle.open_for(pid) must track TipManager.outstanding_hints."""

    def test_reconciles_through_cancel_all(self):
        manager, fs, engine = make_tip_with_lifecycle()
        ino = fs.lookup("f0")
        manager.hint_segments(
            PID,
            [HintSegment(ino, 0, 5 * BLOCK_SIZE, PID, Ioctl.TIPIO_FD_SEG)],
        )
        assert manager.outstanding_hints(PID) == 5
        assert manager.lifecycle.open_for(PID) == 5
        manager.cancel_all(PID)
        assert manager.outstanding_hints(PID) == 0
        assert manager.lifecycle.open_for(PID) == 0
        assert manager.lifecycle.summary_counts()["cancelled"] == 5

    def test_reconciles_through_consumption(self):
        manager, fs, engine = make_tip_with_lifecycle()
        ino = fs.lookup("f0")
        manager.hint_segments(
            PID,
            [HintSegment(ino, 0, 3 * BLOCK_SIZE, PID, Ioctl.TIPIO_FD_SEG)],
        )
        while engine.advance_to_next():
            pass
        manager.consume_hints(PID, ino, 0, 2, 0, 3 * BLOCK_SIZE)
        assert manager.outstanding_hints(PID) == manager.lifecycle.open_for(PID) == 0

    def test_finalize_closes_every_hint(self):
        manager, fs, engine = make_tip_with_lifecycle()
        ino = fs.lookup("f0")
        manager.hint_segments(
            PID,
            [HintSegment(ino, 0, 4 * BLOCK_SIZE, PID, Ioctl.TIPIO_FD_SEG)],
        )
        while engine.advance_to_next():
            pass
        manager.finalize()
        counts = manager.lifecycle.summary_counts()
        assert counts["open"] == 0
        assert counts["wasted"] == 4


APPS = ("agrep", "gnuld", "xds", "postgres20")
LIFECYCLE_PROFILES = (None, "restart-storm", "hint-corruption")


class TestLifecycleInvariantsEndToEnd:
    """Every disclosed hint ends in exactly one terminal state — across
    every app, fault-free and under chaos."""

    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("profile", LIFECYCLE_PROFILES)
    def test_ledger_balances(self, app, profile):
        cfg = ExperimentConfig(
            app=app,
            workload_scale=SCALE,
            variant=Variant.SPECULATING,
            fault_profile=profile,
        )
        result, system = run_experiment_with_system(cfg)
        counts = system.manager.lifecycle.summary_counts()
        assert counts["open"] == 0, counts
        assert (counts["consumed"] + counts["cancelled"] + counts["wasted"]
                == counts["disclosed"]), counts
        assert result.hint_lifecycle == counts


class TestZeroPerturbation:
    def test_traced_run_cycle_identical(self):
        cfg = ExperimentConfig(app="agrep", workload_scale=SCALE,
                               variant=Variant.SPECULATING)
        plain = run_experiment(cfg)
        tracer = Tracer(SimClock())
        traced = run_experiment(cfg, tracer=tracer)
        assert traced.cycles == plain.cycles
        assert traced.output == plain.output
        assert traced.counters == plain.counters
        assert len(tracer) > 0

    def test_category_filter_does_not_perturb(self):
        cfg = ExperimentConfig(app="agrep", workload_scale=SCALE,
                               variant=Variant.SPECULATING)
        plain = run_experiment(cfg)
        tracer = Tracer(SimClock(), categories=(CAT_SPEC,))
        traced = run_experiment(cfg, tracer=tracer)
        assert traced.cycles == plain.cycles
        assert all(e.category == CAT_SPEC for e in tracer.events())


class TestAnalyzer:
    def _run(self):
        cfg = ExperimentConfig(app="agrep", workload_scale=SCALE,
                               variant=Variant.SPECULATING)
        tracer = Tracer(SimClock())
        result, system = run_experiment_with_system(cfg, tracer=tracer)
        return result, system, tracer

    def test_summary_metrics(self):
        result, system, tracer = self._run()
        analyzer = TraceAnalyzer(
            tracer,
            lifecycle=system.manager.lifecycle,
            breakdown=stall_breakdown(system.kernel),
        )
        summary = analyzer.summary()
        assert summary["events"] == len(tracer)
        assert summary["hints"]["open"] == 0
        assert summary["hint_lead_cycles_median"] > 0
        assert 0.0 <= summary["pct_prefetches_before_demand"] <= 100.0
        # Speculation ran strictly inside demand stalls on one CPU.
        overlap = summary["overlapped_speculation_cycles"]
        assert 0 < overlap <= stall_breakdown(system.kernel).demand_stall
        assert summary["disk_utilization"]  # every disk saw traffic
        text = analyzer.render_summary()
        assert "stall breakdown" in text and "hint lead time" in text

    def test_top_hints_ordering(self):
        _, system, tracer = self._run()
        analyzer = TraceAnalyzer(tracer, lifecycle=system.manager.lifecycle)
        top = analyzer.top_hints(5)
        assert len(top) == 5
        leads = [record.lead_cycles for record in top]
        assert leads == sorted(leads, reverse=True)
        assert all(record.terminal == "consumed" for record in top)


class TestRunResultSerialization:
    def test_observability_fields_round_trip(self):
        cfg = ExperimentConfig(app="agrep", workload_scale=SCALE,
                               variant=Variant.SPECULATING)
        result = run_experiment(cfg)
        assert result.stall_breakdown["wall"] == result.cycles
        assert result.hint_lifecycle["open"] == 0
        assert result.hint_lead_median > 0
        again = RunResult.from_jsonable(result.to_jsonable())
        assert again.stall_breakdown == result.stall_breakdown
        assert again.hint_lifecycle == result.hint_lifecycle
        assert again.hint_lead_median == result.hint_lead_median
        assert (again.pct_prefetches_before_demand
                == result.pct_prefetches_before_demand)


class TestOracleTraceDump:
    def test_divergence_dumps_both_traces(self, tmp_path, monkeypatch):
        from repro.harness import oracle as oracle_mod

        real = oracle_mod.run_experiment

        def tamper(cfg, tracer=NULL_TRACER):
            result = real(cfg, tracer=tracer)
            if cfg.variant is Variant.SPECULATING:
                result.output = result.output + b"X"  # forced divergence
            return result

        monkeypatch.setattr(oracle_mod, "run_experiment", tamper)
        cell = oracle_mod.run_oracle_cell(
            "agrep", None, workload_scale=SCALE, trace_dir=str(tmp_path)
        )
        assert not cell.passed
        dumps = sorted(p.name for p in tmp_path.iterdir())
        assert dumps == ["agrep-fault-free-original.jsonl",
                        "agrep-fault-free-speculating.jsonl"]
        for path in tmp_path.iterdir():
            lines = path.read_text().splitlines()
            assert lines and all(json.loads(line) for line in lines)
        assert "traces in" in cell.detail

    def test_passing_cell_dumps_nothing(self, tmp_path):
        from repro.harness.oracle import run_oracle_cell

        cell = run_oracle_cell("agrep", None, workload_scale=SCALE,
                               trace_dir=str(tmp_path / "dumps"))
        assert cell.passed
        assert not (tmp_path / "dumps").exists()


class TestTraceCli:
    def test_trace_command_chrome_export(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "t.json"
        rc = main(["trace", "agrep", "--scale", str(SCALE),
                   "--export", "chrome", "--out", str(out),
                   "--summary", "--top-hints", "3"])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["traceEvents"]
        printed = capsys.readouterr().out
        assert "stall breakdown" in printed
        assert "top 3 hints" in printed
        assert "Perfetto" in printed

    def test_trace_command_category_filter(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "t.jsonl"
        rc = main(["trace", "agrep", "--scale", str(SCALE),
                   "--categories", "hint,tip", "--out", str(out)])
        assert rc == 0
        cats = {json.loads(line)["cat"] for line in out.read_text().splitlines()}
        assert cats <= {"hint", "tip"}

    def test_trace_command_bad_category_fails_clean(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["trace", "agrep", "--scale", str(SCALE),
                   "--categories", "nope",
                   "--out", str(tmp_path / "t.jsonl")])
        assert rc == 1
        assert "unknown trace category" in capsys.readouterr().err

    def test_run_trace_out_writes_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run.jsonl"
        rc = main(["run", "agrep", "--scale", str(SCALE),
                   "--trace-out", str(out)])
        assert rc == 0
        assert out.exists() and out.read_text().strip()
        assert "trace written" in capsys.readouterr().out

    def test_all_categories_documented(self):
        # The CLI help string and the category tuple must not drift apart.
        from repro.cli import build_parser

        parser = build_parser()
        help_text = parser.format_help()
        assert "trace" in help_text
        for name in ALL_CATEGORIES:
            assert name  # categories are non-empty strings
