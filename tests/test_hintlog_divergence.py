"""Hint-log divergence edge cases (Section 3.2.2's off-track detection).

The original thread's pre-read check has exactly three outcomes: the next
entry matches (on track), the next entry differs (strayed), or the log is
empty (behind).  These tests pin down each divergence shape and the
restart bookkeeping around them.
"""

from repro.harness.config import ExperimentConfig, Variant
from repro.harness.runner import run_experiment
from repro.spechint.hintlog import HintLog


class TestFirstEntryDivergence:
    def test_mismatch_on_first_entry(self):
        log = HintLog()
        log.append(ino=1, offset=0, length=100, hinted=True)
        assert not log.check_and_consume(2, 0, 100)
        assert log.mismatched_total == 1
        assert log.matched_total == 0
        # The mismatched entry is NOT consumed: a restart will reset it.
        assert log.unconsumed == 1

    def test_offset_mismatch_on_first_entry(self):
        log = HintLog()
        log.append(ino=1, offset=0, length=100, hinted=True)
        assert not log.check_and_consume(1, 8192, 100)
        assert log.mismatched_total == 1

    def test_length_mismatch_on_first_entry(self):
        log = HintLog()
        log.append(ino=1, offset=0, length=100, hinted=True)
        assert not log.check_and_consume(1, 0, 101)
        assert log.mismatched_total == 1


class TestDivergenceAfterStreak:
    def test_mismatch_after_match_streak(self):
        log = HintLog()
        for i in range(5):
            log.append(ino=1, offset=i * 100, length=100, hinted=True)
        for i in range(4):
            assert log.check_and_consume(1, i * 100, 100)
        # Speculation strays on the fifth prediction.
        assert not log.check_and_consume(1, 999_999, 100)
        assert log.matched_total == 4
        assert log.mismatched_total == 1
        assert log.unconsumed == 1

    def test_streak_resumes_after_reset(self):
        log = HintLog()
        log.append(1, 0, 100, True)
        assert log.check_and_consume(1, 0, 100)
        assert not log.check_and_consume(1, 100, 100)  # empty -> behind
        log.reset()  # the restart protocol
        assert len(log) == 0
        assert log.unconsumed == 0
        log.append(1, 100, 100, True)
        assert log.check_and_consume(1, 100, 100)
        assert log.matched_total == 2


class TestEmptyLogRestart:
    def test_empty_log_counts_as_behind(self):
        log = HintLog()
        assert not log.check_and_consume(1, 0, 100)
        assert log.empty_total == 1
        assert log.mismatched_total == 0

    def test_drained_log_counts_as_behind(self):
        log = HintLog()
        log.append(1, 0, 100, True)
        assert log.check_and_consume(1, 0, 100)
        assert not log.check_and_consume(1, 100, 100)
        assert log.empty_total == 1

    def test_reset_after_empty_restart_clears_counters_index(self):
        log = HintLog()
        log.append(1, 0, 100, True)
        log.check_and_consume(1, 0, 100)
        log.reset()
        # Lifetime counters survive the reset; the entries do not.
        assert log.matched_total == 1
        assert len(log) == 0
        assert log.next_entry() is None


class TestDivergenceEndToEnd:
    """The empty-log restart at startup is how speculation boots: the very
    first read finds no prediction and requests the kick-off restart."""

    def test_startup_empty_log_triggers_first_restart(self):
        result = run_experiment(ExperimentConfig(
            app="agrep", variant=Variant.SPECULATING, workload_scale=0.3
        ))
        assert result.spec_restarts >= 1
        assert result.c("spec.restart_requests") >= 1
