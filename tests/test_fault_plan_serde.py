"""FaultPlan JSON round-trips: every generated plan survives the wire.

The fuzz pool ships cases to worker processes as JSON and the corpus
stores shrunk reproducers as JSON, so ``to_jsonable``/``from_jsonable``
must be lossless over the whole generated fault space — and loudly typed
(:class:`~repro.errors.InvalidFaultPlan`) about anything else.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import FuzzError, InvalidFaultPlan, ReproError
from repro.faults.generate import FaultPlanGenerator, FuzzCase
from repro.faults.plan import PROFILES, FaultPlan, profile


def _generated_plans(count: int = 200):
    plans = []
    for seed in (7, 11, 23, 99):
        generator = FaultPlanGenerator(seed, apps=("agrep", "xds"))
        plans.extend(case.plan for case in generator.cases(count // 4))
    return plans


class TestRoundTrip:
    def test_200_generated_plans_round_trip(self):
        plans = _generated_plans(200)
        assert len(plans) == 200
        for plan in plans:
            data = plan.to_jsonable()
            back = FaultPlan.from_jsonable(data)
            assert back == plan
            # And the round-trip is a fixpoint.
            assert back.to_jsonable() == data

    def test_builtin_profiles_round_trip(self):
        for name in PROFILES:
            plan = profile(name, seed=13)
            assert FaultPlan.from_jsonable(plan.to_jsonable()) == plan

    def test_derived_properties_survive(self):
        generator = FaultPlanGenerator(7, apps=("agrep",))
        for case in generator.cases(60):
            back = FaultPlan.from_jsonable(case.plan.to_jsonable())
            assert back.active == case.plan.active
            assert back.expects_data_loss == case.plan.expects_data_loss
            assert back.permanent_death == case.plan.permanent_death


class TestTypedRejection:
    def test_unknown_key_is_typed_and_named(self):
        data = FaultPlan(name="x", seed=1).to_jsonable()
        data["hind_drop_rate"] = 0.5  # typo for hint_drop_rate
        with pytest.raises(InvalidFaultPlan, match="hind_drop_rate"):
            FaultPlan.from_jsonable(data)

    def test_unknown_key_is_a_repro_error(self):
        data = FaultPlan(name="x", seed=1).to_jsonable()
        data["bogus"] = 1
        with pytest.raises(ReproError):
            FaultPlan.from_jsonable(data)

    def test_non_dict_rejected(self):
        with pytest.raises(InvalidFaultPlan):
            FaultPlan.from_jsonable([1, 2, 3])

    def test_wrong_value_types_rejected(self):
        base = FaultPlan(name="x", seed=1).to_jsonable()
        for key, bad in (
            ("disk_error_rate", "0.5"),
            ("seed", 1.5),
            ("seed", True),
            ("name", 7),
        ):
            data = dict(base)
            data[key] = bad
            with pytest.raises(InvalidFaultPlan):
                FaultPlan.from_jsonable(data)

    def test_int_accepted_for_float_field(self):
        data = FaultPlan(name="x", seed=1).to_jsonable()
        data["slow_factor"] = 2
        plan = FaultPlan.from_jsonable(data)
        assert plan.slow_factor == 2.0


class TestValidate:
    def test_out_of_range_rate_rejected(self):
        with pytest.raises(InvalidFaultPlan):
            FaultPlan(name="x", seed=1, hint_drop_rate=1.5).validate()

    def test_negative_time_rejected(self):
        with pytest.raises(InvalidFaultPlan):
            FaultPlan(name="x", seed=1, dead_at_s=-0.1).validate()

    def test_second_death_requires_first(self):
        with pytest.raises(InvalidFaultPlan):
            FaultPlan(name="x", seed=1, second_dead_disk=1).validate()

    def test_second_death_must_differ(self):
        with pytest.raises(InvalidFaultPlan):
            FaultPlan(
                name="x", seed=1, dead_disk=1, dead_at_s=0.001,
                second_dead_disk=1, second_dead_at_s=0.002,
            ).validate()

    def test_from_jsonable_validates(self):
        data = FaultPlan(name="x", seed=1).to_jsonable()
        data["disk_error_rate"] = 2.0
        with pytest.raises(InvalidFaultPlan):
            FaultPlan.from_jsonable(data)


class TestFuzzCaseSerde:
    def test_case_round_trip(self):
        generator = FaultPlanGenerator(7, apps=("agrep",))
        for case in generator.cases(40):
            back = FuzzCase.from_jsonable(case.to_jsonable())
            assert back.index == case.index
            assert back.app == case.app
            assert back.plan == case.plan
            assert back.spec_overrides == case.spec_overrides

    def test_unknown_override_key_rejected(self):
        case = FaultPlanGenerator(7).case(0)
        data = case.to_jsonable()
        data["spec_overrides"] = {"watchdog_retsart_limit": 3}
        with pytest.raises(FuzzError, match="watchdog_retsart_limit"):
            FuzzCase.from_jsonable(data)

    def test_version_mismatch_rejected(self):
        data = FaultPlanGenerator(7).case(0).to_jsonable()
        data["version"] = 999
        with pytest.raises(FuzzError, match="version"):
            FuzzCase.from_jsonable(data)

    def test_missing_plan_rejected(self):
        data = FaultPlanGenerator(7).case(0).to_jsonable()
        del data["plan"]
        with pytest.raises(FuzzError, match="plan"):
            FuzzCase.from_jsonable(data)

    def test_plans_are_frozen(self):
        plan = FaultPlan(name="x", seed=1)
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.seed = 2  # type: ignore[misc]
