"""Focused tests of SpecProcessState internals: the speculative fd table,
user-space syscall emulation, the restart handshake, and peek-copy."""


from repro.fs.filesystem import FileSystem
from repro.kernel.thread import ThreadState
from repro.params import BLOCK_SIZE
from repro.spechint.tool import SpecHintTool
from repro.vm.assembler import Assembler
from repro.vm.isa import (
    SEEK_SET,
    SYS_CLOSE,
    SYS_EXIT,
    SYS_FSTAT,
    SYS_LSEEK,
    SYS_OPEN,
    SYS_READ,
    SYS_SBRK,
    Reg,
)

from tests.conftest import make_system, small_system_config


def simple_fs():
    fs = FileSystem()
    fs.create("a", bytes(range(256)) * 64)  # 2 blocks
    fs.create("b", b"\x55" * BLOCK_SIZE)
    return fs


def spawn_spec(binary_builder, fs=None):
    """Spawn a transformed binary; returns (system, process) WITHOUT
    running, so tests can drive the runtime directly."""
    system = make_system(fs or simple_fs(), small_system_config())
    binary = SpecHintTool().transform(binary_builder())
    process = system.kernel.spawn(binary)
    return system, process


def trivial_binary():
    asm = Assembler("trivial")
    asm.data_space("buf", BLOCK_SIZE)
    asm.data_asciiz("path_a", "a")
    asm.entry("main")
    with asm.function("main"):
        asm.la(Reg.a0, "path_a")
        asm.syscall(SYS_OPEN)
        asm.mov(Reg.s1, Reg.v0)
        asm.mov(Reg.a0, Reg.s1)
        asm.la(Reg.a1, "buf")
        asm.li(Reg.a2, 64)
        asm.syscall(SYS_READ)
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
    return asm.finish()


class TestBeforeRead:
    def test_first_read_requests_restart(self):
        system, process = spawn_spec(trivial_binary)
        spec = process.spec
        thread = process.original_thread
        fdstate = process.open_fd(system.fs.lookup("a"), "a")

        cost = spec.before_read(thread, fdstate.fd, 64)
        assert spec.restart_flag
        assert cost > system.config.cpu.hintlog_check_cycles
        assert process.spec_thread.state is ThreadState.RUNNABLE

    def test_matching_log_entry_keeps_on_track(self):
        system, process = spawn_spec(trivial_binary)
        spec = process.spec
        thread = process.original_thread
        inode = system.fs.lookup("a")
        fdstate = process.open_fd(inode, "a")

        spec.hint_log.append(inode.ino, 0, 64, hinted=True)
        cost = spec.before_read(thread, fdstate.fd, 64)
        assert not spec.restart_flag
        assert cost == system.config.cpu.hintlog_check_cycles

    def test_mismatching_entry_requests_restart(self):
        system, process = spawn_spec(trivial_binary)
        spec = process.spec
        thread = process.original_thread
        inode = system.fs.lookup("a")
        fdstate = process.open_fd(inode, "a")

        spec.hint_log.append(inode.ino, 512, 64, hinted=True)  # wrong offset
        spec.before_read(thread, fdstate.fd, 64)
        assert spec.restart_flag

    def test_throttle_suppresses_restart(self):
        system, process = spawn_spec(trivial_binary)
        spec = process.spec
        spec.throttle.cancel_limit = 1
        spec.throttle.disable_reads = 10
        spec.throttle.note_cancel(5)
        thread = process.original_thread
        fdstate = process.open_fd(system.fs.lookup("a"), "a")
        spec.before_read(thread, fdstate.fd, 64)
        assert not spec.restart_flag


class TestPerformRestart:
    def _request_and_restart(self, system, process, length=64):
        spec = process.spec
        thread = process.original_thread
        thread.regs[int(Reg.sp)] = process.mem.stack_top - 64
        fdstate = process.open_fd(system.fs.lookup("a"), "a")
        spec.before_read(thread, fdstate.fd, length)
        cost = spec.perform_restart(process.spec_thread)
        return spec, fdstate, cost

    def test_restart_resumes_in_shadow(self):
        system, process = spawn_spec(trivial_binary)
        spec, fdstate, cost = self._request_and_restart(system, process)
        spec_thread = process.spec_thread
        meta = process.binary.spec_meta
        assert spec_thread.pc >= meta.shadow_base
        assert not spec.restart_flag
        assert cost >= spec.params.restart_fixed_cycles

    def test_restart_sets_predicted_return_value(self):
        system, process = spawn_spec(trivial_binary)
        spec, _, _ = self._request_and_restart(system, process, length=64)
        assert process.spec_thread.regs[int(Reg.v0)] == 64

    def test_restart_builds_spec_fd_table(self):
        system, process = spawn_spec(trivial_binary)
        spec, fdstate, _ = self._request_and_restart(system, process)
        sfd = spec.spec_fds[fdstate.fd]
        assert sfd.inode is fdstate.inode
        # Offset reflects the predicted completion of the blocked read.
        assert sfd.offset == 64

    def test_restart_copies_stack(self):
        system, process = spawn_spec(trivial_binary)
        spec, _, _ = self._request_and_restart(system, process)
        sp = process.spec_thread.regs[int(Reg.sp)]
        assert spec.cow.is_copied(sp)

    def test_restart_clears_cow_and_log(self):
        system, process = spawn_spec(trivial_binary)
        spec = process.spec
        spec.cow.store_word(process.mem.data_start, 1)
        spec.hint_log.append(1, 0, 1, hinted=True)
        self._request_and_restart(system, process)
        assert spec.cow.copied_regions >= 0  # cleared then stack re-copied
        assert spec.hint_log.unconsumed == 0


class TestSpecSyscalls:
    def _spec_thread(self, system, process):
        thread = process.spec_thread
        thread.pc = process.binary.spec_meta.shadow_base
        return thread

    def test_spec_open_creates_pseudo_fd(self):
        system, process = spawn_spec(trivial_binary)
        thread = self._spec_thread(system, process)
        path_addr = process.binary.data_symbols["path_a"]
        thread.regs[int(Reg.a0)] = path_addr
        process.spec.spec_syscall(thread, SYS_OPEN)
        fd = thread.regs[int(Reg.v0)]
        assert fd >= 1000  # pseudo-fd space
        assert process.spec.spec_fds[fd].pseudo
        assert fd not in process.fds  # invisible to the real fd table

    def test_spec_open_missing_returns_minus_one(self):
        system, process = spawn_spec(trivial_binary)
        thread = self._spec_thread(system, process)
        # Point at a NUL byte: empty path.
        process.mem.store_byte(process.mem.data_start + 4000, 0)
        thread.regs[int(Reg.a0)] = process.mem.data_start + 4000
        process.spec.spec_syscall(thread, SYS_OPEN)
        assert thread.regs[int(Reg.v0)] == (1 << 64) - 1

    def test_spec_close_removes_fd(self):
        system, process = spawn_spec(trivial_binary)
        thread = self._spec_thread(system, process)
        thread.regs[int(Reg.a0)] = process.binary.data_symbols["path_a"]
        process.spec.spec_syscall(thread, SYS_OPEN)
        fd = thread.regs[int(Reg.v0)]
        thread.regs[int(Reg.a0)] = fd
        process.spec.spec_syscall(thread, SYS_CLOSE)
        assert fd not in process.spec.spec_fds

    def test_spec_lseek_and_fstat(self):
        system, process = spawn_spec(trivial_binary)
        thread = self._spec_thread(system, process)
        thread.regs[int(Reg.a0)] = process.binary.data_symbols["path_a"]
        process.spec.spec_syscall(thread, SYS_OPEN)
        fd = thread.regs[int(Reg.v0)]

        thread.regs[int(Reg.a0)] = fd
        thread.regs[int(Reg.a1)] = 128
        thread.regs[int(Reg.a2)] = SEEK_SET
        process.spec.spec_syscall(thread, SYS_LSEEK)
        assert process.spec.spec_fds[fd].offset == 128

        thread.regs[int(Reg.a0)] = fd
        process.spec.spec_syscall(thread, SYS_FSTAT)
        assert thread.regs[int(Reg.v0)] == system.fs.lookup("a").size

    def test_spec_sbrk_uses_private_heap(self):
        system, process = spawn_spec(trivial_binary)
        thread = self._spec_thread(system, process)
        old_brk = process.mem.brk
        thread.regs[int(Reg.a0)] = 4096
        process.spec.spec_syscall(thread, SYS_SBRK)
        assert process.mem.brk == old_brk  # process heap untouched
        assert process.mem.spec_brk > 0x0090_0000

    def test_forbidden_syscall_parks(self):
        system, process = spawn_spec(trivial_binary)
        thread = self._spec_thread(system, process)
        result = process.spec.spec_syscall(thread, SYS_OPEN + 90)
        assert result == -1
        assert thread.state is ThreadState.SPEC_IDLE

    def test_spec_exit_parks(self):
        system, process = spawn_spec(trivial_binary)
        thread = self._spec_thread(system, process)
        process.spec.spec_syscall(thread, SYS_EXIT)
        assert thread.state is ThreadState.SPEC_IDLE
        assert not process.exited  # real exit must not happen


class TestResolveControlTarget:
    def test_shadow_addresses_pass_through(self):
        system, process = spawn_spec(trivial_binary)
        meta = process.binary.spec_meta
        target = meta.shadow_base + 3
        assert process.spec.resolve_control_target(target) == target

    def test_function_entries_map(self):
        system, process = spawn_spec(trivial_binary)
        meta = process.binary.spec_meta
        entry = next(iter(meta.function_map))
        assert process.spec.resolve_control_target(entry) == \
            meta.function_map[entry]

    def test_mid_function_addresses_unmappable(self):
        system, process = spawn_spec(trivial_binary)
        meta = process.binary.spec_meta
        mid = max(meta.function_map) + 1  # inside some function's body
        if mid not in meta.function_map and mid < meta.original_text_len:
            assert process.spec.resolve_control_target(mid) is None

    def test_wild_addresses_unmappable(self):
        system, process = spawn_spec(trivial_binary)
        assert process.spec.resolve_control_target(1 << 40) is None
