"""Tests for the differential correctness oracle."""

import pytest

from repro.errors import OracleMismatch
from repro.harness import oracle as oracle_mod
from repro.harness.config import Variant
from repro.harness.oracle import (
    ORACLE_PROFILES,
    OracleCell,
    OracleReport,
    _first_output_diff,
    _first_trace_diff,
    run_oracle,
    run_oracle_cell,
)
from repro.harness.results import RunResult

SCALE = 0.3


class TestDiffDescriptions:
    def test_first_output_byte_diff(self):
        msg = _first_output_diff(b"abc", b"abd")
        assert "byte 2" in msg

    def test_output_length_diff(self):
        msg = _first_output_diff(b"abc", b"abcd")
        assert "length" in msg

    def test_first_trace_diff(self):
        msg = _first_trace_diff([(1, 0, 10), (1, 10, 10)],
                                [(1, 0, 10), (2, 10, 10)])
        assert "read #1" in msg

    def test_trace_count_diff(self):
        msg = _first_trace_diff([(1, 0, 10)], [(1, 0, 10), (1, 10, 10)])
        assert "count" in msg


class TestProfiles:
    def test_oracle_profiles_cover_all_chaos_modes(self):
        from repro.faults.plan import PROFILES

        assert None in ORACLE_PROFILES  # fault-free baseline included
        named = {p for p in ORACLE_PROFILES if p is not None}
        assert named == {name for name in PROFILES if name != "none"}


class TestOracleCell:
    def test_fault_free_cell_passes(self):
        cell = run_oracle_cell("agrep", None, workload_scale=SCALE)
        assert cell.passed, cell.detail
        assert cell.original is not None and cell.speculating is not None
        assert cell.original.output == cell.speculating.output
        assert len(cell.original.read_trace) > 0
        assert cell.original.read_trace == cell.speculating.read_trace
        assert cell.profile_name == "fault-free"

    def test_chaos_cell_passes(self):
        cell = run_oracle_cell("agrep", "transient-errors",
                               workload_scale=SCALE)
        assert cell.passed, cell.detail

    def test_cell_jsonable_shape(self):
        cell = run_oracle_cell("agrep", None, workload_scale=SCALE)
        entry = cell.to_jsonable()
        assert entry["app"] == "agrep"
        assert entry["passed"] is True
        assert "isolation_violations" in entry


def _fake_run_experiment(output_by_variant, trace_by_variant=None):
    trace_by_variant = trace_by_variant or {}

    def fake(cfg):
        variant = cfg.variant.value
        return RunResult(
            app=cfg.app, variant=variant, cycles=1, cpu_hz=1,
            output=output_by_variant[variant],
            read_trace=trace_by_variant.get(variant, ()),
        )

    return fake


class TestMismatchDetection:
    def test_output_divergence_detected(self, monkeypatch):
        monkeypatch.setattr(oracle_mod, "run_experiment", _fake_run_experiment({
            Variant.ORIGINAL.value: b"good",
            Variant.SPECULATING.value: b"bad!",
        }))
        cell = run_oracle_cell("agrep", None)
        assert not cell.passed
        assert "output" in cell.detail

    def test_trace_divergence_detected(self, monkeypatch):
        monkeypatch.setattr(oracle_mod, "run_experiment", _fake_run_experiment(
            {Variant.ORIGINAL.value: b"same", Variant.SPECULATING.value: b"same"},
            {Variant.ORIGINAL.value: ((1, 0, 10),),
             Variant.SPECULATING.value: ((1, 0, 20),)},
        ))
        cell = run_oracle_cell("agrep", None)
        assert not cell.passed
        assert "demand read" in cell.detail

    def test_strict_mode_raises_typed_error(self, monkeypatch):
        monkeypatch.setattr(oracle_mod, "run_experiment", _fake_run_experiment({
            Variant.ORIGINAL.value: b"good",
            Variant.SPECULATING.value: b"bad!",
        }))
        with pytest.raises(OracleMismatch, match="agrep under fault-free"):
            run_oracle(("agrep",), profiles=(None,), strict=True)

    def test_collect_mode_records_failures(self, monkeypatch):
        monkeypatch.setattr(oracle_mod, "run_experiment", _fake_run_experiment({
            Variant.ORIGINAL.value: b"good",
            Variant.SPECULATING.value: b"bad!",
        }))
        report = run_oracle(("agrep",), profiles=(None, "transient-errors"))
        assert not report.passed
        assert len(report.failures()) == 2
        assert "FAIL" in report.summary()


class TestOracleReport:
    def test_empty_report_passes(self):
        assert OracleReport().passed

    def test_jsonable_roundtrips_through_json(self):
        import json

        report = OracleReport(cells=[
            OracleCell(app="agrep", profile=None, passed=True),
            OracleCell(app="gnuld", profile="stuck-disk", passed=False,
                       detail="output byte 0"),
        ])
        blob = json.dumps(report.to_jsonable())
        data = json.loads(blob)
        assert data["passed"] is False
        assert len(data["cells"]) == 2
