"""Tests for the SpecHint binary modification tool."""

import pytest

from repro.errors import UnsupportedBinary
from repro.params import SpecHintParams
from repro.spechint.tool import SpecHintTool, SpeculatingBinary
from repro.vm.assembler import Assembler
from repro.vm.isa import Op, Reg, SYS_READ, SYS_EXIT
from repro.vm.stdlib import emit_stdlib


def build_sample():
    asm = Assembler("sample")
    emit_stdlib(asm)
    asm.data_space("buf", 64)
    asm.data_asciiz("msg", "hi")
    asm.entry("main")
    with asm.function("helper"):
        asm.load(Reg.t0, Reg.a0, 0)
        asm.store(Reg.t0, Reg.a0, 8)
        asm.load(Reg.t1, Reg.sp, 0)
        asm.ret()
    with asm.function("main"):
        table = asm.jump_table(["c0", "c1"])
        weird = asm.jump_table(["c0"], recognized=False)
        asm.cwork(1000, 50, 20)
        asm.la(Reg.t2, "helper")
        asm.callr(Reg.t2)
        asm.call("helper")
        asm.la(Reg.a0, "msg")
        asm.li(Reg.a1, 2)
        asm.call("print_str")
        asm.li(Reg.a0, 3)
        asm.la(Reg.a1, "buf")
        asm.li(Reg.a2, 16)
        asm.syscall(SYS_READ)
        asm.li(Reg.t3, 0)
        asm.switch(Reg.t3, table)
        asm.label("c0")
        asm.switch(Reg.t3, weird)
        asm.label("c1")
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
    return asm.finish()


@pytest.fixture
def transformed():
    return SpecHintTool().transform(build_sample())


class TestRestrictions:
    def test_no_relocations_rejected(self):
        binary = build_sample()
        binary.has_relocations = False
        with pytest.raises(UnsupportedBinary):
            SpecHintTool().transform(binary)

    def test_multithreaded_rejected(self):
        binary = build_sample()
        binary.single_threaded = False
        with pytest.raises(UnsupportedBinary):
            SpecHintTool().transform(binary)

    def test_dynamic_linking_rejected(self):
        binary = build_sample()
        binary.statically_linked = False
        with pytest.raises(UnsupportedBinary):
            SpecHintTool().transform(binary)

    def test_double_transform_rejected(self, transformed):
        with pytest.raises(UnsupportedBinary):
            SpecHintTool().transform(transformed)


class TestShadowStructure:
    def test_text_doubles(self, transformed):
        assert isinstance(transformed, SpeculatingBinary)
        meta = transformed.spec_meta
        assert len(transformed.text) == 2 * meta.original_text_len
        assert meta.shadow_base == meta.original_text_len

    def test_original_half_untouched(self, transformed):
        original = build_sample()
        for i, insn in enumerate(original.text):
            twin = transformed.text[i]
            assert twin.op == insn.op
            assert (twin.a, twin.b, twin.c) == (insn.a, insn.b, insn.c)

    def test_loads_stores_wrapped(self, transformed):
        meta = transformed.spec_meta
        shadow = transformed.text[meta.shadow_base:]
        ops = {insn.op for insn in shadow}
        assert Op.COW_LOAD in ops
        assert Op.COW_STORE in ops
        assert Op.LOAD not in ops
        assert Op.STORE not in ops

    def test_stack_relative_loads_carry_no_check_cost(self, transformed):
        meta = transformed.spec_meta
        shadow = transformed.text[meta.shadow_base:]
        stack_loads = [
            insn for insn in shadow
            if insn.op is Op.COW_LOAD and insn.get_meta("stack")
        ]
        assert stack_loads
        assert all(insn.d == 0 for insn in stack_loads)

    def test_ordinary_loads_carry_check_cost(self, transformed):
        params = SpecHintParams()
        meta = transformed.spec_meta
        shadow = transformed.text[meta.shadow_base:]
        plain_loads = [
            insn for insn in shadow
            if insn.op is Op.COW_LOAD and not insn.get_meta("stack")
            and insn.get_meta("func") in ("main", "helper")
        ]
        assert plain_loads
        assert all(insn.d == params.cow_load_check_cycles for insn in plain_loads)

    def test_cwork_dilated(self, transformed):
        params = SpecHintParams()
        meta = transformed.spec_meta
        original = build_sample()
        for i, insn in enumerate(original.text):
            if insn.op is Op.CWORK and insn.get_meta("func") == "main":
                twin = transformed.text[meta.shadow_base + i]
                assert twin.op is Op.SCWORK
                expected = (
                    insn.a
                    + insn.b * params.cow_load_check_cycles
                    + insn.c * params.cow_store_check_cycles
                )
                assert twin.a == expected

    def test_optimized_stdlib_reduced_checks(self, transformed):
        params = SpecHintParams()
        meta = transformed.spec_meta
        original = build_sample()
        memcpy = original.function("memcpy")
        reduced = max(1, params.cow_load_check_cycles
                      // params.optimized_stdlib_check_divisor)
        for i in range(memcpy.entry, memcpy.end):
            twin = transformed.text[meta.shadow_base + i]
            if twin.op is Op.COW_LOAD and not twin.get_meta("stack"):
                assert twin.d == reduced

    def test_static_transfers_redirected(self, transformed):
        meta = transformed.spec_meta
        original = build_sample()
        for i, insn in enumerate(original.text):
            if insn.op is Op.JMP:
                twin = transformed.text[meta.shadow_base + i]
                assert twin.c == insn.c + meta.shadow_base

    def test_call_to_output_routine_stripped(self, transformed):
        meta = transformed.spec_meta
        original = build_sample()
        stripped = [
            transformed.text[meta.shadow_base + i]
            for i, insn in enumerate(original.text)
            if insn.op is Op.CALL and insn.get_meta("call_target") == "print_str"
        ]
        assert stripped
        assert all(insn.op is Op.NOP for insn in stripped)

    def test_ordinary_calls_redirected(self, transformed):
        meta = transformed.spec_meta
        original = build_sample()
        helper_entry = original.function("helper").entry
        redirected = [
            transformed.text[meta.shadow_base + i]
            for i, insn in enumerate(original.text)
            if insn.op is Op.CALL and insn.get_meta("call_target") == "helper"
        ]
        assert redirected
        assert all(insn.c == helper_entry + meta.shadow_base for insn in redirected)

    def test_read_becomes_spec_read(self, transformed):
        meta = transformed.spec_meta
        shadow = transformed.text[meta.shadow_base:]
        assert any(insn.op is Op.SPEC_READ for insn in shadow)

    def test_other_syscalls_guarded(self, transformed):
        meta = transformed.spec_meta
        shadow = transformed.text[meta.shadow_base:]
        guarded = [insn for insn in shadow if insn.op is Op.SPEC_SYSCALL]
        assert guarded
        assert not any(insn.op is Op.SYSCALL for insn in shadow)

    def test_dynamic_transfers_routed(self, transformed):
        meta = transformed.spec_meta
        shadow = transformed.text[meta.shadow_base:]
        ops = {insn.op for insn in shadow}
        assert Op.SPEC_JR in ops
        assert Op.SPEC_CALLR in ops
        assert Op.JR not in ops
        assert Op.CALLR not in ops

    def test_recognized_jump_table_duplicated(self, transformed):
        meta = transformed.spec_meta
        original = build_sample()
        # A shadow twin with shifted targets exists.
        twins = [
            t for t in transformed.jump_tables
            if t.targets == [x + meta.shadow_base
                             for x in original.jump_tables[0].targets]
        ]
        assert len(twins) == 1

    def test_unrecognized_table_routed_dynamically(self, transformed):
        meta = transformed.spec_meta
        shadow = transformed.text[meta.shadow_base:]
        spec_switches = [insn for insn in shadow if insn.op is Op.SPEC_SWITCH]
        assert len(spec_switches) == 1
        # It still points at the *original* (unrecognized) table.
        assert spec_switches[0].c == 1

    def test_la_of_function_keeps_original_entry(self, transformed):
        meta = transformed.spec_meta
        original = build_sample()
        helper_entry = original.function("helper").entry
        for i, insn in enumerate(original.text):
            if insn.op is Op.LA and insn.get_meta("funcaddr") == "helper":
                twin = transformed.text[meta.shadow_base + i]
                assert twin.c == helper_entry  # NOT redirected

    def test_function_map_covers_all_functions(self, transformed):
        meta = transformed.spec_meta
        original = build_sample()
        for f in original.functions:
            assert meta.function_map[f.entry] == f.entry + meta.shadow_base


class TestReport:
    def test_report_statistics(self, transformed):
        report = transformed.spec_meta.report
        assert report.binary_name == "sample"
        assert report.modification_time_s >= 0
        assert report.loads_wrapped > 0
        assert report.stores_wrapped > 0
        assert report.stack_relative_skipped > 0
        assert report.reads_substituted == 1
        assert report.output_calls_stripped >= 1
        assert report.jump_tables_remapped == 1
        assert report.jump_tables_unrecognized == 1
        assert report.transformed_size_bytes > report.original_size_bytes
        assert report.size_increase_pct > 0
        assert "sample" in report.row()

    def test_declared_size_honoured(self):
        binary = build_sample()
        binary.declared_size_bytes = 1_000_000
        report = SpecHintTool().transform(binary).spec_meta.report
        assert report.original_size_bytes == 1_000_000
