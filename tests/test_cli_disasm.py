"""Tests for the CLI and the disassembler."""

import pytest

from repro.cli import build_parser, main
from repro.spechint.tool import SpecHintTool
from repro.vm.disasm import format_insn, listing
from repro.vm.isa import Insn, Op, Reg

from tests.conftest import assemble


class TestDisasm:
    def _sample(self):
        def body(asm):
            asm.data_space("buf", 64)
            asm.la(Reg.t0, "buf")
            asm.li(Reg.t1, 5)
            asm.store(Reg.t1, Reg.t0, 8)
            asm.load(Reg.t2, Reg.t0, 8)
            asm.cwork(100, 10, 2)
            asm.label("loop")
            asm.bne(Reg.t1, Reg.zero, "loop")

        return assemble(body, with_stdlib=True)

    def test_format_basic_insns(self):
        assert format_insn(Insn(Op.NOP)) == "nop"
        assert "li" in format_insn(Insn(Op.LI, int(Reg.t0), 0, 42))
        assert "42" in format_insn(Insn(Op.LI, int(Reg.t0), 0, 42))
        assert "t1" in format_insn(Insn(Op.MOV, int(Reg.t0), int(Reg.t1)))

    def test_format_memory_with_cow_cost(self):
        plain = format_insn(Insn(Op.LOAD, int(Reg.t0), int(Reg.t1), 8))
        cow = format_insn(Insn(Op.COW_LOAD, int(Reg.t0), int(Reg.t1), 8, 5))
        assert "8(t1)" in plain
        assert "cow" in cow and "+5c" in cow

    def test_format_syscall_names(self):
        text = format_insn(Insn(Op.SYSCALL, 0, 0, 4))
        assert "read" in text

    def test_listing_has_function_labels(self):
        binary = self._sample()
        text = listing(binary)
        assert "main:" in text
        assert "memcpy:" in text

    def test_listing_marks_shadow_boundary(self):
        binary = SpecHintTool().transform(self._sample())
        text = listing(binary)
        assert "shadow code" in text
        assert "main@shadow:" in text
        assert "scwork" in text

    def test_listing_resolves_call_targets(self):
        binary = self._sample()
        text = listing(binary)
        # Branch target rendered as an index reference.
        assert "@" in text

    def test_every_opcode_formats(self):
        """No opcode may crash the disassembler."""
        for op in Op:
            text = format_insn(Insn(op, 1, 2, 0, 0))
            assert isinstance(text, str) and text


class TestCliParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "agrep"])
        assert args.variant == "speculating"
        assert args.disks == 4

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "notepad"])


class TestCliCommands:
    def test_run_command(self, capsys):
        assert main(["run", "agrep", "--scale", "0.1",
                     "--variant", "original"]) == 0
        out = capsys.readouterr().out
        assert "agrep/original" in out
        assert "elapsed" in out

    def test_run_speculating_prints_spec_stats(self, capsys):
        assert main(["run", "agrep", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "speculation:" in out
        assert "restarts" in out

    def test_compare_command(self, capsys):
        assert main(["compare", "agrep", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "speculating" in out and "manual" in out
        assert "improvement" in out

    def test_transform_command(self, capsys):
        assert main(["transform", "agrep", "--scale", "0.1",
                     "--disasm", "8"]) == 0
        out = capsys.readouterr().out
        assert "wrapped:" in out
        assert "shadow code" in out

    def test_paper_command(self, capsys):
        assert main(["paper"]) == 0
        out = capsys.readouterr().out
        assert "OSDI 1999" in out
        assert "gnuld" in out

    def test_sweep_cache_small(self, capsys):
        assert main(["sweep", "cache", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Table 7" in out
