"""Tests for Process, FdState, and process-level accounting."""

import pytest

from repro.errors import BadFileDescriptor
from repro.fs.filesystem import FileSystem
from repro.kernel.process import FIRST_FD, STDOUT_FD, Process
from repro.kernel.thread import PRIO_ORIGINAL, ThreadState
from repro.spechint.tool import SpecHintTool
from repro.vm.assembler import Assembler
from repro.vm.isa import Reg, SYS_EXIT


def tiny_binary(name="tiny", declared_size=None):
    asm = Assembler(name)
    asm.data_bytes("d", b"data!")
    asm.entry("main")
    with asm.function("main"):
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
    binary = asm.finish()
    if declared_size:
        binary.declared_size_bytes = declared_size
    return binary


@pytest.fixture
def process():
    return Process(1, tiny_binary())


class TestProcessSetup:
    def test_main_thread_at_entry(self, process):
        main = process.original_thread
        assert main.pc == process.binary.entry_point
        assert main.priority == PRIO_ORIGINAL
        assert main.runnable

    def test_stack_pointer_initialized(self, process):
        assert process.original_thread.regs[int(Reg.sp)] == \
            process.mem.stack_top

    def test_data_image_loaded(self, process):
        assert process.mem.read_bytes(process.mem.data_start, 5) == b"data!"

    def test_stdio_fds_reserved(self, process):
        assert process.fds[STDOUT_FD].inode is None
        assert 0 not in process.fds

    def test_no_spec_thread_for_plain_binary(self, process):
        assert process.spec_thread is None
        assert process.spec is None


class TestFdTable:
    def test_open_fd_numbering(self, process):
        fs = FileSystem()
        inode = fs.create("f", b"x")
        first = process.open_fd(inode, "f")
        second = process.open_fd(inode, "f")
        assert first.fd == FIRST_FD
        assert second.fd == FIRST_FD + 1

    def test_fd_lookup_and_close(self, process):
        fs = FileSystem()
        inode = fs.create("f", b"x")
        state = process.open_fd(inode, "f")
        assert process.fd(state.fd) is state
        process.close_fd(state.fd)
        with pytest.raises(BadFileDescriptor):
            process.fd(state.fd)

    def test_close_unknown_fd_raises(self, process):
        with pytest.raises(BadFileDescriptor):
            process.close_fd(77)

    def test_fds_not_reused_after_close(self, process):
        fs = FileSystem()
        inode = fs.create("f", b"x")
        first = process.open_fd(inode, "f")
        process.close_fd(first.fd)
        second = process.open_fd(inode, "f")
        assert second.fd == first.fd + 1


class TestExit:
    def test_exit_terminates_all_threads(self):
        binary = SpecHintTool().transform(tiny_binary())
        process = Process(1, binary)
        spec_thread = process.add_spec_thread()
        process.exit(5)
        assert process.exited
        assert process.exit_code == 5
        assert process.original_thread.state is ThreadState.EXITED
        assert spec_thread.state is ThreadState.EXITED

    def test_wake_after_exit_is_noop(self, process):
        process.exit(0)
        process.original_thread.wake()
        assert process.original_thread.state is ThreadState.EXITED


class TestImageAccounting:
    def test_declared_size_drives_footprint(self):
        small = Process(1, tiny_binary("s"))
        big = Process(2, tiny_binary("b", declared_size=512 * 1024))
        assert big.vmstat.footprint_bytes > small.vmstat.footprint_bytes
        assert big.vmstat.footprint_bytes >= 512 * 1024

    def test_image_pages_do_not_fault(self):
        process = Process(1, tiny_binary(declared_size=256 * 1024))
        # Loader-mapped pages are resident but not demand-faulted.
        assert process.vmstat.faults <= 1  # only the data-segment touch

    def test_transformed_binary_has_bigger_image(self):
        plain = Process(1, tiny_binary())
        transformed = Process(2, SpecHintTool().transform(tiny_binary()))
        assert transformed.vmstat.footprint_bytes > \
            plain.vmstat.footprint_bytes

    def test_spec_thread_added_idle(self):
        binary = SpecHintTool().transform(tiny_binary())
        process = Process(1, binary)
        spec_thread = process.add_spec_thread()
        assert spec_thread.is_spec
        assert spec_thread.state is ThreadState.SPEC_IDLE
        assert process.spec_thread is spec_thread
