"""Property-based tests of substrate invariants: striping geometry, cache
accounting, page accounting, the read-ahead policy, and VM arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs.cache import BlockCache, FetchOrigin
from repro.fs.filesystem import Inode
from repro.fs.readahead import SequentialReadAhead
from repro.kernel.vmstat import PageAccounting
from repro.params import (
    ArrayParams,
    BLOCK_SIZE,
    CpuParams,
    DiskParams,
)
from repro.sim.clock import SimClock
from repro.sim.engine import EventEngine
from repro.sim.stats import StatRegistry
from repro.storage.striping import StripedArray
from repro.vm.isa import MASK64, to_signed


# ---------------------------------------------------------------------------
# Striping
# ---------------------------------------------------------------------------

@given(
    ndisks=st.integers(1, 12),
    nblocks=st.integers(1, 2048),
    unit_blocks=st.sampled_from([1, 2, 4, 8, 16]),
)
@settings(max_examples=100, deadline=None)
def test_striping_mapping_bijective_and_balanced(ndisks, nblocks, unit_blocks):
    clock = SimClock()
    array = StripedArray(
        nblocks,
        ArrayParams(ndisks=ndisks, stripe_unit=unit_blocks * BLOCK_SIZE),
        DiskParams(),
        CpuParams(),
        EventEngine(clock),
        StatRegistry(),
    )
    seen = set()
    per_disk = [0] * ndisks
    for lbn in range(nblocks):
        disk, physical = array.map_block(lbn)
        assert 0 <= disk < ndisks
        assert 0 <= physical < array.disks[disk].nblocks
        key = (disk, physical)
        assert key not in seen
        seen.add(key)
        per_disk[disk] += 1
    # Load balance: no disk holds more than one stripe unit above another
    # (when there are enough blocks to wrap around).
    if nblocks >= ndisks * unit_blocks:
        assert max(per_disk) - min(per_disk) <= unit_blocks


# ---------------------------------------------------------------------------
# Cache accounting
# ---------------------------------------------------------------------------

@given(
    events=st.lists(
        st.tuples(
            st.integers(0, 15),                      # block
            st.sampled_from(["demand", "hint", "readahead"]),
            st.booleans(),                           # accessed after arrival
        ),
        max_size=40,
    )
)
@settings(max_examples=100, deadline=None)
def test_cache_prefetch_accounting_partitions(events):
    """fully + partially + unused partitions the prefetched blocks
    (exactly as the paper's Table 5 columns do)."""
    stats = StatRegistry()
    cache = BlockCache(64, stats)
    for block, origin_name, accessed in events:
        key = (0, block)
        if cache.get(key) is not None:
            continue
        origin = {
            "demand": FetchOrigin.DEMAND,
            "hint": FetchOrigin.HINT,
            "readahead": FetchOrigin.READAHEAD,
        }[origin_name]
        cache.insert_fetching(key, origin)
        cache.mark_valid(key)
        if accessed:
            cache.note_access(key)
    cache.finalize()
    prefetched = stats.get("cache.prefetched_blocks")
    assert (
        stats.get("cache.prefetched_fully")
        + stats.get("cache.prefetched_partial")
        + stats.get("cache.prefetched_unused")
    ) == prefetched


# ---------------------------------------------------------------------------
# Page accounting
# ---------------------------------------------------------------------------

@given(pages=st.lists(st.integers(0, 50), max_size=200))
@settings(max_examples=100, deadline=None)
def test_vmstat_invariants(pages):
    vm = PageAccounting()
    for page in pages:
        vm.touch_page(page)
    distinct = len(set(pages))
    assert vm.faults == distinct
    assert vm.resident_pages == distinct
    # Reclaims can never exceed total touches minus first-touches.
    assert vm.reclaims <= max(0, len(pages) - distinct)
    # Mapped fraction bound (at least one page stays mapped).
    if distinct:
        assert 1 <= len(vm._mapped) <= max(1, (2 * distinct) // 3)


# ---------------------------------------------------------------------------
# Read-ahead policy
# ---------------------------------------------------------------------------

@given(reads=st.lists(st.integers(0, 99), min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_readahead_never_duplicates_within_run_and_respects_cap(reads):
    ra = SequentialReadAhead(max_blocks=64)
    state = ra.new_state()
    inode = Inode(0, "f", b"\x00" * (100 * BLOCK_SIZE), 0)
    for block in reads:
        issued = ra.on_read(state, inode, block, block)
        assert len(issued) <= 64
        assert all(0 <= b < inode.nblocks for b in issued)
        assert all(b > block for b in issued)
        assert len(set(issued)) == len(issued)


# ---------------------------------------------------------------------------
# VM arithmetic
# ---------------------------------------------------------------------------

@given(a=st.integers(0, MASK64), b=st.integers(0, MASK64))
@settings(max_examples=200, deadline=None)
def test_to_signed_roundtrip_and_order(a, b):
    sa, sb = to_signed(a), to_signed(b)
    assert sa & MASK64 == a
    assert -(1 << 63) <= sa < (1 << 63)
    # Signed comparison agrees with two's-complement interpretation.
    assert (sa < sb) == (to_signed(a) < to_signed(b))


@given(a=st.integers(0, MASK64), b=st.integers(1, MASK64))
@settings(max_examples=200, deadline=None)
def test_division_identity(a, b):
    """floor-div/mod identity as the DIV/MOD opcodes implement it."""
    q = (to_signed(a) // to_signed(b)) & MASK64
    r = (to_signed(a) % to_signed(b)) & MASK64
    lhs = (to_signed(q) * to_signed(b) + to_signed(r)) & MASK64
    assert lhs == a
