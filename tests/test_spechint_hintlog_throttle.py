"""Tests for the hint log and the cancel-triggered speculation throttle."""

from repro.spechint.hintlog import HintLog
from repro.spechint.throttle import SpeculationThrottle


class TestHintLog:
    def test_empty_log_is_off_track(self):
        log = HintLog()
        assert not log.check_and_consume(1, 0, 100)
        assert log.empty_total == 1

    def test_matching_entry_consumed(self):
        log = HintLog()
        log.append(1, 0, 100, hinted=True)
        assert log.check_and_consume(1, 0, 100)
        assert log.matched_total == 1
        assert log.unconsumed == 0

    def test_match_requires_all_fields(self):
        log = HintLog()
        log.append(1, 0, 100, hinted=True)
        assert not log.check_and_consume(2, 0, 100)  # wrong file
        log.reset()
        log.append(1, 0, 100, hinted=True)
        assert not log.check_and_consume(1, 8, 100)  # wrong offset
        log.reset()
        log.append(1, 0, 100, hinted=True)
        assert not log.check_and_consume(1, 0, 64)  # wrong length

    def test_mismatch_does_not_consume(self):
        log = HintLog()
        log.append(1, 0, 100, hinted=True)
        log.check_and_consume(2, 0, 100)
        assert log.unconsumed == 1
        assert log.mismatched_total == 1

    def test_entries_consumed_in_order(self):
        log = HintLog()
        log.append(1, 0, 10, hinted=True)
        log.append(1, 10, 10, hinted=True)
        assert log.check_and_consume(1, 0, 10)
        assert log.check_and_consume(1, 10, 10)
        assert not log.check_and_consume(1, 20, 10)

    def test_out_of_order_is_off_track(self):
        """The original thread only checks the *next* entry."""
        log = HintLog()
        log.append(1, 0, 10, hinted=True)
        log.append(1, 10, 10, hinted=True)
        assert not log.check_and_consume(1, 10, 10)

    def test_reset_clears_everything(self):
        log = HintLog()
        log.append(1, 0, 10, hinted=True)
        log.check_and_consume(1, 0, 10)
        log.reset()
        assert len(log) == 0
        assert log.unconsumed == 0
        assert not log.check_and_consume(1, 0, 10)

    def test_unhinted_predictions_match_too(self):
        """Zero-byte EOF reads are predicted but not hinted; they must
        still keep speculation on track (Agrep's extra reads)."""
        log = HintLog()
        log.append(1, 5000, 8192, hinted=False)
        assert log.check_and_consume(1, 5000, 8192)

    def test_appended_total_lifetime(self):
        log = HintLog()
        for i in range(3):
            log.append(1, i, 1, hinted=True)
        log.reset()
        log.append(1, 0, 1, hinted=True)
        assert log.appended_total == 4


class TestThrottle:
    def test_disabled_by_default_limit_zero(self):
        throttle = SpeculationThrottle(0, 32)
        assert not throttle.enabled
        for _ in range(100):
            throttle.note_cancel(10)
            assert throttle.allow_restart()

    def test_trips_after_limit(self):
        throttle = SpeculationThrottle(3, 5)
        for _ in range(3):
            throttle.note_cancel(1)
        assert throttle.currently_disabled
        assert throttle.trips == 1

    def test_empty_cancels_do_not_count(self):
        throttle = SpeculationThrottle(2, 5)
        for _ in range(10):
            throttle.note_cancel(0)
        assert not throttle.currently_disabled

    def test_disable_window_counts_down(self):
        throttle = SpeculationThrottle(1, 3)
        throttle.note_cancel(1)
        results = [throttle.allow_restart() for _ in range(4)]
        assert results == [False, False, False, True]
        assert throttle.suppressed_restarts == 3

    def test_rearms_after_window(self):
        throttle = SpeculationThrottle(1, 2)
        throttle.note_cancel(1)
        throttle.allow_restart()
        throttle.allow_restart()
        assert throttle.allow_restart()
        throttle.note_cancel(1)
        assert throttle.trips == 2
