"""Degraded-mode resilience: parity, reconstruction, rebuild, hedging.

The tentpole invariant: on a parity array any *single* disk loss is
survivable — demand reads are reconstructed from the survivors, a hot
spare is resilvered in the background, and application output stays
byte-identical.  A double fault must fail loudly with a typed
:class:`~repro.errors.DataLossError`, never corrupt silently.
"""

import pytest

from repro.errors import DataLossError, InvalidBlockError
from repro.faults.injector import FAULT_DATA_LOSS, FaultInjector
from repro.faults.plan import FaultPlan
from repro.harness.config import ExperimentConfig, Variant
from repro.harness.oracle import run_oracle_cell
from repro.harness.runner import run_experiment
from repro.params import (
    BLOCKS_PER_STRIPE_UNIT,
    ArrayParams,
    CpuParams,
    DiskParams,
)
from repro.sim.clock import SimClock
from repro.sim.engine import EventEngine
from repro.sim.stats import StatRegistry
from repro.storage.parity import ParityGeometry
from repro.storage.request import IOKind
from repro.storage.striping import StripedArray
from repro.faults.watchdog import SpeculationWatchdog

SCALE = 0.25


def make_parity_array(plan=None, nblocks=1024, hot_spares=1, **array_kwargs):
    """A parity array (optionally chaos-wired) plus its engine and stats."""
    clock = SimClock()
    engine = EventEngine(clock)
    stats = StatRegistry()
    cpu = CpuParams()
    injector = (
        FaultInjector(plan, cpu, clock, stats) if plan is not None else None
    )
    params = ArrayParams(
        redundancy="parity", hot_spares=hot_spares, **array_kwargs
    )
    array = StripedArray(nblocks, params, DiskParams(), cpu, engine, stats,
                         injector=injector)
    return array, engine, stats


def drain(engine):
    while engine.advance_to_next():
        pass


def lbn_on_disk(array, disk_id):
    """Some logical block whose home is ``disk_id``."""
    for lbn in range(array.nblocks):
        if array.map_block(lbn)[0] == disk_id:
            return lbn
    raise AssertionError(f"no block maps to disk {disk_id}")


class TestParityGeometry:
    def test_mapping_is_bijective(self):
        geometry = ParityGeometry(4, BLOCKS_PER_STRIPE_UNIT)
        seen = set()
        for lbn in range(1024):
            disk, physical = geometry.map_block(lbn)
            assert (disk, physical) not in seen
            seen.add((disk, physical))

    def test_parity_disk_rotates_and_holds_no_data(self):
        ndisks = 4
        geometry = ParityGeometry(ndisks, BLOCKS_PER_STRIPE_UNIT)
        for row in range(12):
            physical = row * BLOCKS_PER_STRIPE_UNIT
            assert geometry.parity_disk_of(physical) == row % ndisks
        # No data block ever lands on its row's parity disk.
        for lbn in range(4096):
            disk, physical = geometry.map_block(lbn)
            assert disk != geometry.parity_disk_of(physical)

    def test_peers_are_everyone_else(self):
        geometry = ParityGeometry(4, BLOCKS_PER_STRIPE_UNIT)
        assert sorted(geometry.peer_disks(2)) == [0, 1, 3]

    def test_parity_needs_two_disks(self):
        with pytest.raises(InvalidBlockError):
            ParityGeometry(1, BLOCKS_PER_STRIPE_UNIT)

    def test_single_disk_parity_array_rejected(self):
        with pytest.raises(InvalidBlockError):
            make_parity_array(ndisks=1)


class TestDegradedReads:
    def test_read_on_dead_disk_is_reconstructed(self):
        plan = FaultPlan(dead_disk=1, dead_at_s=0.0)
        array, engine, stats = make_parity_array(plan)
        done = []
        array.submit(lbn_on_disk(array, 1), IOKind.DEMAND, done.append)
        drain(engine)
        (req,) = done
        assert req.done and not req.failed
        assert req.reconstructed
        assert stats.get("array.disk_deaths") == 1
        assert stats.get("array.degraded_reads") >= 1
        assert stats.get("array.reconstructed_blocks") >= 1
        assert stats.get("faults.data_loss") == 0

    def test_reads_on_survivors_stay_normal(self):
        plan = FaultPlan(dead_disk=1, dead_at_s=0.0)
        array, engine, stats = make_parity_array(plan)
        done = []
        # Touch the dead disk once so the death is observed...
        array.submit(lbn_on_disk(array, 1), IOKind.DEMAND, done.append)
        # ...then read a block whose home survived.
        survivor_req = array.submit(lbn_on_disk(array, 2), IOKind.DEMAND,
                                    done.append)
        drain(engine)
        assert all(r.done and not r.failed for r in done)
        assert not survivor_req.reconstructed

    def test_death_without_parity_is_data_loss(self):
        plan = FaultPlan(dead_disk=0, dead_at_s=0.0)
        clock = SimClock()
        engine = EventEngine(clock)
        stats = StatRegistry()
        cpu = CpuParams()
        array = StripedArray(
            1024, ArrayParams(), DiskParams(), cpu, engine, stats,
            injector=FaultInjector(plan, cpu, clock, stats),
        )
        done = []
        array.submit(lbn_on_disk(array, 0), IOKind.DEMAND, done.append)
        drain(engine)
        (req,) = done
        assert req.failed
        assert req.fault == FAULT_DATA_LOSS
        assert isinstance(StripedArray.failure_cause(req), DataLossError)
        assert stats.get("faults.data_loss") == 1

    def test_degraded_property_tracks_death_and_rebuild(self):
        plan = FaultPlan(dead_disk=1, dead_at_s=0.0)
        array, engine, stats = make_parity_array(plan)
        assert not array.degraded
        array.submit(lbn_on_disk(array, 1), IOKind.DEMAND, lambda r: None)
        drain(engine)
        # Fully drained: the rebuild ran to completion, clearing degraded.
        assert stats.get("rebuild.completed") == 1
        assert not array.degraded


class TestRebuild:
    def test_rebuild_resilvers_every_block_onto_spare(self):
        plan = FaultPlan(dead_disk=1, dead_at_s=0.0)
        array, engine, stats = make_parity_array(plan)
        array.submit(lbn_on_disk(array, 1), IOKind.DEMAND, lambda r: None)
        drain(engine)
        (rebuild,) = array.rebuilds
        assert rebuild.complete
        assert rebuild.watermark == rebuild.total_blocks
        assert rebuild.spare_id == array.array.ndisks  # first hot spare
        assert stats.get("rebuild.blocks_resilvered") == rebuild.total_blocks
        assert stats.get("rebuild.completed_cycle") == rebuild.completed_at > 0

    def test_no_spare_means_no_rebuild_but_reads_survive(self):
        plan = FaultPlan(dead_disk=1, dead_at_s=0.0)
        array, engine, stats = make_parity_array(plan, hot_spares=0)
        done = []
        array.submit(lbn_on_disk(array, 1), IOKind.DEMAND, done.append)
        drain(engine)
        assert done[0].done and not done[0].failed
        assert stats.get("rebuild.started") == 0
        assert array.degraded  # stays degraded forever, but serves reads

    def test_resilvered_blocks_served_from_spare(self):
        plan = FaultPlan(dead_disk=1, dead_at_s=0.0)
        array, engine, stats = make_parity_array(plan)
        array.submit(lbn_on_disk(array, 1), IOKind.DEMAND, lambda r: None)
        drain(engine)  # rebuild completes
        done = []
        req = array.submit(lbn_on_disk(array, 1), IOKind.DEMAND, done.append)
        drain(engine)
        # Routed to the spare: a plain read, not a reconstruction.
        assert req.done and not req.failed and not req.reconstructed
        assert req.disk_id == array.array.ndisks

    def test_gentle_share_rebuilds_slower_than_flat_out(self):
        def completion_cycle(share):
            plan = FaultPlan(dead_disk=1, dead_at_s=0.0)
            array, engine, stats = make_parity_array(
                plan, rebuild_bandwidth_share=share,
            )
            array.submit(lbn_on_disk(array, 1), IOKind.DEMAND, lambda r: None)
            drain(engine)
            return stats.get("rebuild.completed_cycle")

        assert completion_cycle(0.1) > completion_cycle(1.0)

    def test_second_death_during_rebuild_raises_typed_error(self):
        plan = FaultPlan(dead_disk=1, dead_at_s=0.0,
                         second_dead_disk=2, second_dead_at_s=0.001)
        array, engine, stats = make_parity_array(plan)
        array.submit(lbn_on_disk(array, 1), IOKind.DEMAND, lambda r: None)
        with pytest.raises(DataLossError):
            drain(engine)


class TestHedging:
    # Primary dispatched at t=0 lands in a 1 ms stuck window (1000x
    # service); the hedge fires at 2 ms, after the window, so its peer
    # reads run at full speed and win the race by orders of magnitude.
    STUCK = dict(slow_factor=1000.0, slow_start_s=0.0, slow_duration_s=0.001)

    def test_hedge_wins_against_stuck_primary(self):
        plan = FaultPlan(hedge_after_s=0.002, **self.STUCK)
        array, engine, stats = make_parity_array(plan)
        done = []
        req = array.submit(0, IOKind.DEMAND, done.append)
        drain(engine)
        assert len(done) == 1  # exactly one completion
        assert req.done and not req.failed
        assert req.reconstructed
        assert stats.get("array.hedges_issued") == 1
        assert stats.get("array.hedges_won") == 1
        assert stats.get(f"disk{req.disk_id}.hedges") == 1
        assert stats.get("disk0.aborted") + stats.get("disk1.aborted") \
            + stats.get("disk2.aborted") + stats.get("disk3.aborted") >= 1

    def test_fast_primary_cancels_hedge(self):
        # Hedge armed almost immediately; the primary (no slow window)
        # started first on the same-speed disks and wins.
        plan = FaultPlan(hedge_after_s=0.000001, disk_error_rate=0.0,
                         hint_drop_rate=0.000001)  # active plan, clean disks
        array, engine, stats = make_parity_array(plan)
        done = []
        req = array.submit(0, IOKind.DEMAND, done.append)
        drain(engine)
        assert len(done) == 1
        assert req.done and not req.failed and not req.reconstructed
        assert stats.get("array.hedges_issued") == 1
        assert stats.get("array.hedges_won") == 0
        assert stats.get("array.hedges_cancelled") == 1

    def test_hedges_never_armed_for_prefetches(self):
        plan = FaultPlan(hedge_after_s=0.002, **self.STUCK)
        array, engine, stats = make_parity_array(plan)
        req = array.submit(0, IOKind.PREFETCH, lambda r: None)
        assert req.hedge_event is None
        drain(engine)
        assert stats.get("array.hedges_issued") == 0

    def test_hedges_need_parity(self):
        plan = FaultPlan(hedge_after_s=0.002, **self.STUCK)
        clock = SimClock()
        engine = EventEngine(clock)
        stats = StatRegistry()
        cpu = CpuParams()
        array = StripedArray(
            1024, ArrayParams(), DiskParams(), cpu, engine, stats,
            injector=FaultInjector(plan, cpu, clock, stats),
        )
        req = array.submit(0, IOKind.DEMAND, lambda r: None)
        assert req.hedge_event is None
        drain(engine)
        assert stats.get("array.hedges_issued") == 0

    def test_timeout_during_hedge_race_no_double_completion(self):
        """The satellite invariant: a primary timeout while the hedge
        races must retry the primary, let the hedge win, and complete the
        request exactly once with the timeout disarmed."""
        plan = FaultPlan(hedge_after_s=0.002, **self.STUCK)
        array, engine, stats = make_parity_array(
            plan,
            # Fires after the hedge spawns (~2M cycles) but long before
            # the stuck primary (~3.4G cycles) could finish.
            request_timeout_cycles=3_000_000,
            retry_backoff_cycles=50_000_000,
        )
        done = []
        req = array.submit(0, IOKind.DEMAND, done.append)
        assert req.timeout_event is not None
        drain(engine)
        assert len(done) == 1
        assert req.done and not req.failed
        assert req.timeout_event is None  # disarmed exactly once
        assert req.hedge is None and req.hedge_event is None
        assert stats.get("array.timeouts") == 1
        assert stats.get(f"disk{req.disk_id}.timeouts") == 1
        assert stats.get("array.hedges_won") == 1

    def test_timeout_resubmit_completes_when_hedge_lost_already(self):
        """A timed-out primary's resubmit still owns the request when no
        hedge survives: the retry (after the stuck window) completes it."""
        plan = FaultPlan(hedge_after_s=0.0, **self.STUCK)
        array, engine, stats = make_parity_array(
            plan,
            request_timeout_cycles=5_000_000,
            retry_backoff_cycles=5_000_000,
        )
        done = []
        req = array.submit(0, IOKind.DEMAND, done.append)
        drain(engine)
        assert len(done) == 1
        assert req.done and not req.failed
        assert req.attempts > 1
        assert stats.get("array.timeouts") >= 1
        assert stats.get("array.hedges_issued") == 0


class TestWatchdogSuspension:
    def test_suspend_resume_cycle(self):
        dog = SpeculationWatchdog()
        assert dog.set_degraded(True) == "suspended"
        assert dog.suspended
        assert dog.set_degraded(True) is None  # idempotent
        assert dog.set_degraded(False) == "resumed"
        assert not dog.suspended
        assert dog.suspensions == 1

    def test_suspension_is_not_a_trip(self):
        dog = SpeculationWatchdog()
        dog.set_degraded(True)
        assert not dog.disabled
        assert dog.trip_reason is None

    def test_repr_mentions_suspension(self):
        dog = SpeculationWatchdog()
        dog.set_degraded(True)
        assert "suspended" in repr(dog)


class TestAutoParity:
    def test_permanent_death_profile_enables_parity(self):
        cfg = ExperimentConfig(app="agrep", fault_profile="disk-death")
        system = cfg.resolved_system()
        assert system.array.redundancy == "parity"
        assert system.array.hot_spares >= 1

    def test_fault_free_config_stays_plain_striping(self):
        cfg = ExperimentConfig(app="agrep")
        assert cfg.resolved_system().array.redundancy == "none"

    def test_survivable_profiles_stay_plain_striping(self):
        cfg = ExperimentConfig(app="agrep", fault_profile="transient-errors")
        assert cfg.resolved_system().array.redundancy == "none"


class TestDegradedRuns:
    """Whole-system runs under the permanent-death profiles."""

    @pytest.fixture(scope="class")
    def clean(self):
        return run_experiment(ExperimentConfig(
            app="agrep", variant=Variant.SPECULATING, workload_scale=SCALE,
        ))

    @pytest.fixture(scope="class")
    def dead(self):
        return run_experiment(ExperimentConfig(
            app="agrep", variant=Variant.SPECULATING, workload_scale=SCALE,
            fault_profile="disk-death",
        ))

    def test_output_identical_and_rebuild_completes(self, clean, dead):
        assert dead.output == clean.output
        assert dead.disk_deaths == 1
        assert dead.degraded_reads > 0
        assert dead.reconstructed_blocks > 0
        assert dead.rebuild_completed
        assert dead.rebuild_completed_cycle > 0
        assert dead.data_loss_events == 0

    def test_speculation_sheds_load_while_degraded(self, dead):
        assert dead.prefetches_shed_degraded > 0
        assert dead.c("spec.degraded_suspensions") >= 1
        # Suspension is a policy pause, not a watchdog trip.
        assert dead.watchdog_tripped is None

    def test_same_seed_runs_are_bit_identical(self, dead):
        again = run_experiment(ExperimentConfig(
            app="agrep", variant=Variant.SPECULATING, workload_scale=SCALE,
            fault_profile="disk-death",
        ))
        assert again.cycles == dead.cycles
        assert again.counters == dead.counters
        assert again.output == dead.output

    def test_double_fault_raises_typed_error_in_both_variants(self):
        for variant in (Variant.ORIGINAL, Variant.SPECULATING):
            with pytest.raises(DataLossError):
                run_experiment(ExperimentConfig(
                    app="agrep", variant=variant, workload_scale=SCALE,
                    fault_profile="double-fault",
                ))

    def test_oracle_passes_on_survivable_death_profiles(self):
        for profile in ("disk-death", "rebuild-storm"):
            cell = run_oracle_cell("agrep", profile, workload_scale=SCALE)
            assert cell.passed, f"{profile}: {cell.detail}"

    def test_oracle_expects_symmetric_loss_on_double_fault(self):
        cell = run_oracle_cell("agrep", "double-fault", workload_scale=SCALE)
        assert cell.passed
        assert "both variants raised DataLossError" in cell.detail

    def test_per_disk_counters_surface_in_results(self):
        storm = run_experiment(ExperimentConfig(
            app="agrep", variant=Variant.SPECULATING, workload_scale=SCALE,
            fault_profile="rebuild-storm",
        ))
        per_disk = storm.per_disk_io_counters()
        assert per_disk, "rebuild-storm must record per-disk retries"
        for disk_id, counters in per_disk.items():
            assert isinstance(disk_id, int)
            assert set(counters) <= {"retries", "timeouts", "hedges"}
            assert all(v > 0 for v in counters.values())
