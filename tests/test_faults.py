"""Unit tests for the fault-injection subsystem: plans, injector, watchdog."""

import pytest

from repro.errors import (
    DiskFaultError,
    FaultError,
    IOTimeoutError,
    ReproError,
    RetriesExhausted,
)
from repro.faults.injector import (
    FAULT_OFFLINE,
    FAULT_TRANSIENT,
    FaultInjector,
)
from repro.faults.plan import PROFILES, FaultPlan, profile
from repro.faults.watchdog import SpeculationWatchdog
from repro.fs.filesystem import FileSystem
from repro.params import BLOCK_SIZE, CpuParams
from repro.sim.clock import SimClock
from repro.sim.stats import StatRegistry
from repro.storage.request import IOKind, IORequest


class TestErrorHierarchy:
    def test_fault_errors_are_repro_errors(self):
        for cls in (DiskFaultError, IOTimeoutError, RetriesExhausted):
            assert issubclass(cls, FaultError)
            assert issubclass(cls, ReproError)


class TestFaultPlan:
    def test_default_plan_is_inert(self):
        assert not FaultPlan().active

    def test_every_builtin_profile_except_none_is_active(self):
        for name, plan in PROFILES.items():
            assert plan.name == name
            assert plan.active == (name != "none")

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            profile("full-moon")

    def test_profile_reseeding(self):
        plan = profile("transient-errors", seed=99)
        assert plan.seed == 99
        assert PROFILES["transient-errors"].seed == 7  # original untouched

    def test_with_seed_preserves_rates(self):
        plan = PROFILES["hint-corruption"].with_seed(3)
        assert plan.hint_drop_rate == PROFILES["hint-corruption"].hint_drop_rate
        assert plan.seed == 3

    def test_slow_window_requires_duration(self):
        assert not FaultPlan(slow_factor=50.0).active
        assert FaultPlan(slow_factor=50.0, slow_duration_s=0.01).active

    def test_offline_requires_disk_and_duration(self):
        assert not FaultPlan(offline_disk=0).active
        assert FaultPlan(offline_disk=0, offline_duration_s=0.01).active

    def test_with_seed_round_trips(self):
        for name, plan in PROFILES.items():
            # Re-seeding with the original seed is the identity...
            assert plan.with_seed(plan.seed) == plan
            # ...and any re-seeding preserves everything but the seed.
            reseeded = plan.with_seed(plan.seed + 1)
            assert reseeded.active == plan.active
            assert reseeded.with_seed(plan.seed) == plan

    def test_unknown_profile_error_lists_every_known_profile(self):
        with pytest.raises(ValueError) as excinfo:
            profile("full-moon")
        message = str(excinfo.value)
        for name in PROFILES:
            assert name in message

    def test_permanent_death_makes_a_plan_active(self):
        plan = FaultPlan(dead_disk=0)
        assert plan.active
        assert plan.permanent_death
        assert not plan.expects_data_loss

    def test_data_loss_expected_only_for_double_faults(self):
        expecting = {name for name, plan in PROFILES.items()
                     if plan.expects_data_loss}
        assert expecting == {"double-fault"}
        # A second death without a first is not a double fault.
        assert not FaultPlan(second_dead_disk=1).expects_data_loss


def make_injector(plan):
    clock = SimClock()
    stats = StatRegistry()
    return FaultInjector(plan, CpuParams(), clock, stats), clock, stats


def request(lbn=0):
    return IORequest(lbn=lbn, kind=IOKind.DEMAND)


class TestInjectorDiskFaults:
    def test_inert_plan_never_faults(self):
        injector, _, stats = make_injector(FaultPlan())
        for lbn in range(50):
            cycles, fault = injector.on_disk_service(0, request(lbn), 1000)
            assert cycles == 1000 and fault is None
        assert stats.snapshot() == {}

    def test_transient_rate_roughly_respected(self):
        injector, _, stats = make_injector(FaultPlan(disk_error_rate=0.2))
        faults = sum(
            injector.on_disk_service(0, request(i), 1000)[1] == FAULT_TRANSIENT
            for i in range(500)
        )
        assert 50 < faults < 150  # ~100 expected
        assert stats.get("faults.disk_transient_errors") == faults

    def test_offline_window_fails_fast(self):
        plan = FaultPlan(offline_disk=1, offline_start_s=0.0,
                         offline_duration_s=0.001)
        injector, clock, stats = make_injector(plan)
        cycles, fault = injector.on_disk_service(1, request(), 1000)
        assert fault == FAULT_OFFLINE
        assert cycles < 1000  # command-overhead reject, no media access
        # Other disks are unaffected.
        assert injector.on_disk_service(0, request(), 1000) == (1000, None)
        # After the window the disk recovers.
        clock.advance(CpuParams().cycles(0.002))
        assert injector.on_disk_service(1, request(), 1000) == (1000, None)
        assert stats.get("faults.disk_offline_rejects") == 1

    def test_slow_window_stretches_service(self):
        plan = FaultPlan(slow_factor=10.0, slow_start_s=0.0,
                         slow_duration_s=0.001)
        injector, clock, stats = make_injector(plan)
        cycles, fault = injector.on_disk_service(0, request(), 1000)
        assert (cycles, fault) == (10_000, None)
        clock.advance(CpuParams().cycles(0.002))
        assert injector.on_disk_service(0, request(), 1000) == (1000, None)
        assert stats.get("faults.disk_slow_services") == 1

    def test_offline_window_open_past_end_of_run(self):
        """A window whose end lies beyond the run keeps the disk offline
        for the run's whole remainder — it must never wrap or re-enable."""
        plan = FaultPlan(offline_disk=0, offline_start_s=0.001,
                         offline_duration_s=1e9)
        injector, clock, stats = make_injector(plan)
        # Before the window opens the disk serves normally.
        assert injector.on_disk_service(0, request(), 1000) == (1000, None)
        clock.advance(CpuParams().cycles(0.002))
        assert injector.on_disk_service(0, request(), 1000)[1] == FAULT_OFFLINE
        # Arbitrarily far past any plausible end-of-run: still offline.
        clock.advance(CpuParams().cycles(3600.0))
        assert injector.on_disk_service(0, request(), 1000)[1] == FAULT_OFFLINE
        assert stats.get("faults.disk_offline_rejects") == 2

    def test_same_seed_same_decisions(self):
        plan = FaultPlan(disk_error_rate=0.3)
        a, _, _ = make_injector(plan)
        b, _, _ = make_injector(plan)
        decisions_a = [a.on_disk_service(0, request(i), 100) for i in range(200)]
        decisions_b = [b.on_disk_service(0, request(i), 100) for i in range(200)]
        assert decisions_a == decisions_b

    def test_different_seed_different_decisions(self):
        plan = FaultPlan(disk_error_rate=0.3)
        a, _, _ = make_injector(plan)
        b, _, _ = make_injector(plan.with_seed(8))
        decisions_a = [a.on_disk_service(0, request(i), 100)[1] for i in range(200)]
        decisions_b = [b.on_disk_service(0, request(i), 100)[1] for i in range(200)]
        assert decisions_a != decisions_b

    def test_disks_draw_from_independent_streams(self):
        plan = FaultPlan(disk_error_rate=0.3)
        a, _, _ = make_injector(plan)
        d0 = [a.on_disk_service(0, request(i), 100)[1] for i in range(200)]
        d1 = [a.on_disk_service(1, request(i), 100)[1] for i in range(200)]
        assert d0 != d1


class TestInjectorHintChannel:
    def _inode(self):
        fs = FileSystem()
        return fs.create("f.dat", bytes(4 * BLOCK_SIZE))

    def test_clean_channel_passes_hints_through(self):
        injector, _, _ = make_injector(FaultPlan())
        inode = self._inode()
        assert injector.filter_hint(inode, 100, 200) == (100, 200)

    def test_drop_rate_one_drops_everything(self):
        injector, _, stats = make_injector(FaultPlan(hint_drop_rate=1.0))
        inode = self._inode()
        for _ in range(10):
            assert injector.filter_hint(inode, 0, 100) is None
        assert stats.get("faults.hints_dropped") == 10

    def test_corruption_rewrites_but_never_drops(self):
        injector, _, stats = make_injector(FaultPlan(hint_corrupt_rate=1.0))
        inode = self._inode()
        for _ in range(20):
            delivered = injector.filter_hint(inode, 0, 100)
            assert delivered is not None
            offset, length = delivered
            assert length >= 1
        assert stats.get("faults.hints_corrupted") == 20


class TestInjectorSpecFaults:
    def test_zero_rate_never_diverges(self):
        injector, _, _ = make_injector(FaultPlan())
        assert not any(injector.force_divergence() for _ in range(100))

    def test_rate_one_always_diverges(self):
        injector, _, stats = make_injector(FaultPlan(spec_divergence_rate=1.0))
        assert all(injector.force_divergence() for _ in range(10))
        assert stats.get("faults.spec_divergence") == 10


class TestWatchdog:
    def test_restart_storm_trips_at_limit(self):
        dog = SpeculationWatchdog(restart_limit=3)
        assert not dog.note_restart()
        assert not dog.note_restart()
        assert dog.note_restart()
        assert dog.disabled
        assert dog.trip_reason == "restart_storm"

    def test_match_resets_consecutive_restarts(self):
        dog = SpeculationWatchdog(restart_limit=3)
        dog.note_restart()
        dog.note_restart()
        dog.note_check(matched=True)
        assert not dog.note_restart()
        assert not dog.disabled

    def test_mismatch_does_not_reset(self):
        dog = SpeculationWatchdog(restart_limit=3)
        dog.note_restart()
        dog.note_restart()
        dog.note_check(matched=False)
        assert dog.note_restart()

    def test_fault_storm_is_cumulative(self):
        dog = SpeculationWatchdog(fault_limit=5)
        for _ in range(4):
            assert not dog.note_fault()
        dog.note_check(matched=True)  # matches do not forgive faults
        assert dog.note_fault()
        assert dog.trip_reason == "fault_storm"

    def test_low_accuracy_needs_full_window(self):
        dog = SpeculationWatchdog(min_accuracy=0.5, accuracy_window=4)
        assert not dog.note_check(False)
        assert not dog.note_check(False)
        assert not dog.note_check(False)  # window not full yet
        assert dog.note_check(False)
        assert dog.trip_reason == "low_accuracy"

    def test_accurate_window_does_not_trip(self):
        dog = SpeculationWatchdog(min_accuracy=0.5, accuracy_window=4)
        for _ in range(8):
            dog.note_check(True)
        assert not dog.disabled
        assert dog.sliding_accuracy == 1.0

    def test_zero_limits_disable_triggers(self):
        dog = SpeculationWatchdog(restart_limit=0, fault_limit=0,
                                  min_accuracy=0.0)
        for _ in range(1000):
            dog.note_restart()
            dog.note_fault()
            dog.note_check(False)
        assert not dog.disabled

    def test_first_trip_reason_sticks(self):
        dog = SpeculationWatchdog(restart_limit=1, fault_limit=1)
        dog.note_restart()
        dog.note_fault()
        assert dog.trip_reason == "restart_storm"

    def test_repr_mentions_state(self):
        dog = SpeculationWatchdog(restart_limit=1)
        assert "armed" in repr(dog)
        dog.note_restart()
        assert "tripped:restart_storm" in repr(dog)
