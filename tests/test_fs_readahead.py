"""Tests for the Digital UNIX sequential read-ahead policy."""

from repro.fs.filesystem import Inode
from repro.fs.readahead import SequentialReadAhead
from repro.params import BLOCK_SIZE


def big_inode(nblocks=200):
    return Inode(0, "big", b"\x00" * (nblocks * BLOCK_SIZE), 0)


class TestSequentialRuns:
    def test_first_read_does_not_prefetch(self):
        """An isolated read is not yet a sequential run."""
        ra = SequentialReadAhead()
        state = ra.new_state()
        blocks = ra.on_read(state, big_inode(), 0, 0)
        assert blocks == []

    def test_window_grows_with_run(self):
        ra = SequentialReadAhead()
        state = ra.new_state()
        inode = big_inode()
        assert ra.on_read(state, inode, 0, 0) == []
        assert ra.on_read(state, inode, 1, 1) == []  # run of 2: still quiet
        # Run of 3: the window opens at the run length.
        assert ra.on_read(state, inode, 2, 2) == [3, 4, 5]
        assert ra.on_read(state, inode, 3, 3) == [6, 7]

    def test_window_capped_at_max(self):
        ra = SequentialReadAhead(max_blocks=4)
        state = ra.new_state()
        inode = big_inode()
        last = []
        for b in range(20):
            last = ra.on_read(state, inode, b, b)
        assert len(last) <= 4

    def test_rereading_tail_block_continues_run_without_growing(self):
        """Partial-block reads re-touch the previous block: the run is not
        broken, but no new sequential progress is counted either."""
        ra = SequentialReadAhead()
        state = ra.new_state()
        inode = big_inode()
        ra.on_read(state, inode, 0, 0)
        blocks = ra.on_read(state, inode, 0, 0)  # same block again
        assert state.run_blocks == 1
        assert blocks == []

    def test_nonsequential_read_resets_run(self):
        ra = SequentialReadAhead()
        state = ra.new_state()
        inode = big_inode()
        for b in range(5):
            ra.on_read(state, inode, b, b)
        assert state.run_blocks == 5
        ra.on_read(state, inode, 50, 50)
        assert state.run_blocks == 1

    def test_reset_run_prefetches_from_new_position(self):
        ra = SequentialReadAhead()
        state = ra.new_state()
        inode = big_inode()
        for b in range(5):
            ra.on_read(state, inode, b, b)
        assert ra.on_read(state, inode, 100, 100) == []  # run broken
        assert ra.on_read(state, inode, 101, 101) == []  # run of 2
        blocks = ra.on_read(state, inode, 102, 102)      # run re-established
        assert blocks == [103, 104, 105]

    def test_prefetch_clamped_to_file_end(self):
        ra = SequentialReadAhead()
        state = ra.new_state()
        inode = big_inode(nblocks=3)
        ra.on_read(state, inode, 0, 0)
        ra.on_read(state, inode, 1, 1)
        blocks = ra.on_read(state, inode, 2, 2)
        assert blocks == []

    def test_no_duplicate_prefetches_in_run(self):
        ra = SequentialReadAhead()
        state = ra.new_state()
        inode = big_inode()
        issued = []
        for b in range(10):
            issued.extend(ra.on_read(state, inode, b, b))
        assert len(issued) == len(set(issued))

    def test_multiblock_read_counts_whole_span(self):
        ra = SequentialReadAhead()
        state = ra.new_state()
        inode = big_inode()
        ra.on_read(state, inode, 0, 3)  # 4-block read
        assert state.run_blocks == 4
