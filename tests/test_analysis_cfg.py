"""Tests for the analysis CFG builder (blocks, dominators, loops).

Includes the disassembly-semantics edge cases the lint pass reports:
a branch sitting on the last instruction of a function, and a function
whose last block can fall through into the next function.
"""

from repro.analysis import build_cfg, build_cfgs
from repro.analysis.cfg import falls_through, intra_successors, is_terminator
from repro.vm.assembler import Assembler
from repro.vm.isa import SYS_EXIT, Reg


def build_loop_binary():
    asm = Assembler("loop")
    asm.entry("main")
    with asm.function("main"):
        asm.li(Reg.t0, 0)           # 0
        asm.li(Reg.t1, 10)          # 1
        asm.label("loop_top")
        asm.addi(Reg.t0, Reg.t0, 1)  # 2
        asm.blt(Reg.t0, Reg.t1, "loop_top")  # 3
        asm.li(Reg.a0, 0)           # 4
        asm.syscall(SYS_EXIT)       # 5
    return asm.finish()


class TestBlocks:
    def test_leaders_split_on_branch_and_target(self):
        binary = build_loop_binary()
        cfg = build_cfg(binary, binary.functions[0])
        starts = [b.start for b in cfg.blocks]
        assert starts == [0, 2, 4]
        assert cfg.block_at[3] == 1
        assert cfg.blocks[1].terminator == 3

    def test_edges(self):
        binary = build_loop_binary()
        cfg = build_cfg(binary, binary.functions[0])
        assert cfg.blocks[0].successors == [1]
        assert sorted(cfg.blocks[1].successors) == [1, 2]
        assert cfg.blocks[2].successors == []
        assert sorted(cfg.blocks[1].predecessors) == [0, 1]

    def test_exit_syscall_terminates(self):
        binary = build_loop_binary()
        func = binary.functions[0]
        assert is_terminator(binary, 5)
        assert not falls_through(binary, 5)
        assert intra_successors(binary, 5, func) == ()


class TestDominatorsAndLoops:
    def test_entry_dominates_everything(self):
        binary = build_loop_binary()
        cfg = build_cfg(binary, binary.functions[0])
        for block_id, doms in cfg.dominators.items():
            assert 0 in doms
            assert block_id in doms

    def test_natural_loop(self):
        binary = build_loop_binary()
        cfg = build_cfg(binary, binary.functions[0])
        assert len(cfg.loops) == 1
        loop = cfg.loops[0]
        assert loop.head == 1
        assert loop.body == frozenset({1})
        assert cfg.loop_heads == frozenset({1})

    def test_unreachable_block_excluded(self):
        asm = Assembler("dead")
        asm.entry("main")
        with asm.function("main"):
            asm.jmp("out")          # 0
            asm.li(Reg.t0, 7)       # 1 -- unreachable
            asm.label("out")
            asm.li(Reg.a0, 0)       # 2
            asm.syscall(SYS_EXIT)   # 3
        binary = asm.finish()
        cfg = build_cfg(binary, binary.functions[0])
        reachable = cfg.reachable_blocks()
        assert cfg.block_at[1] not in reachable
        assert cfg.block_at[2] in reachable


class TestFunctionBoundaryEdgeCases:
    def test_branch_at_last_instruction_of_function(self):
        """A branch on the function's final index has no fall successor
        (falling would leave the function) but still flags falls_off_end."""
        asm = Assembler("branch-last")
        asm.entry("main")
        with asm.function("spin"):
            asm.label("spin_top")
            asm.addi(Reg.t0, Reg.t0, 1)           # 0
            asm.blt(Reg.t0, Reg.t1, "spin_top")   # 1 -- last insn
        with asm.function("main"):
            asm.li(Reg.a0, 0)
            asm.syscall(SYS_EXIT)
        binary = asm.finish()
        spin = binary.functions[0]
        assert spin.end == 2
        assert intra_successors(binary, 1, spin) == (0,)
        cfg = build_cfg(binary, spin)
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].successors == [0]  # self loop only
        assert len(cfg.loops) == 1
        assert cfg.falls_off_end

    def test_fallthrough_into_next_function(self):
        """A function ending in a plain instruction can run off its end."""
        asm = Assembler("runs-off")
        asm.entry("main")
        with asm.function("broken"):
            asm.li(Reg.t0, 1)
        with asm.function("main"):
            asm.li(Reg.a0, 0)
            asm.syscall(SYS_EXIT)
        binary = asm.finish()
        cfgs = build_cfgs(binary)
        assert cfgs["broken"].falls_off_end
        assert not cfgs["main"].falls_off_end

    def test_returning_function_does_not_fall_off(self):
        asm = Assembler("clean")
        asm.entry("main")
        with asm.function("helper"):
            asm.li(Reg.v0, 1)
            asm.ret()
        with asm.function("main"):
            asm.li(Reg.a0, 0)
            asm.syscall(SYS_EXIT)
        binary = asm.finish()
        assert not build_cfgs(binary)["helper"].falls_off_end


class TestSwitchEdges:
    def test_switch_edges_go_to_table_targets(self):
        asm = Assembler("sw")
        asm.entry("main")
        with asm.function("main"):
            table = asm.jump_table(["case0", "case1"])
            asm.li(Reg.t0, 1)          # 0
            asm.switch(Reg.t0, table)  # 1
            asm.label("case0")
            asm.li(Reg.a0, 0)          # 2
            asm.syscall(SYS_EXIT)      # 3
            asm.label("case1")
            asm.li(Reg.a0, 1)          # 4
            asm.syscall(SYS_EXIT)      # 5
        binary = asm.finish()
        func = binary.functions[0]
        assert not falls_through(binary, 1)
        assert sorted(intra_successors(binary, 1, func)) == [2, 4]
        cfg = build_cfg(binary, func)
        succs = {cfg.blocks[b].start for b in cfg.blocks[cfg.block_at[1]].successors}
        assert succs == {2, 4}
