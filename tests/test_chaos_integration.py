"""End-to-end chaos tests: whole benchmark runs under fault profiles.

The load-bearing invariant from the paper's safety argument: speculation
and hints are *only* an optimization, so no injected fault — lost hints,
flaky disks, restart storms — may ever change application output.  Every
test here compares a chaos run against the fault-free run of the same
workload.
"""

import pytest

from repro.faults.plan import PROFILES
from repro.harness.config import ExperimentConfig, Variant
from repro.harness.runner import run_experiment
from repro.params import SpecHintParams, SystemConfig

SCALE = 0.3

# Output identity holds for every survivable profile — including the
# permanent-death ones, which auto-enable parity redundancy and recover
# through degraded reads.  Profiles that *expect* data loss (double
# faults) terminate with a typed DataLossError instead of output and are
# covered by tests/test_degraded_mode.py.
CHAOS_PROFILES = sorted(
    name for name in PROFILES
    if name != "none" and not PROFILES[name].expects_data_loss
)


def base_config(**kwargs):
    return ExperimentConfig(
        app="agrep", variant=Variant.SPECULATING, workload_scale=SCALE,
        **kwargs,
    )


@pytest.fixture(scope="module")
def clean_result():
    return run_experiment(base_config())


class TestOutputIdentity:
    @pytest.mark.parametrize("profile_name", CHAOS_PROFILES)
    def test_profile_preserves_output(self, profile_name, clean_result):
        result = run_experiment(base_config(fault_profile=profile_name))
        assert result.output == clean_result.output
        assert result.fault_profile == profile_name
        assert result.fault_events(), "profile injected nothing"

    def test_chaos_run_reads_same_data(self, clean_result):
        result = run_experiment(base_config(fault_profile="transient-errors"))
        assert result.read_calls == clean_result.read_calls
        assert result.read_bytes == clean_result.read_bytes


class TestDeterminism:
    def test_same_fault_seed_bit_for_bit(self):
        cfg = base_config(fault_profile="offline-disk")
        a = run_experiment(cfg)
        b = run_experiment(cfg)
        assert a.cycles == b.cycles
        assert a.counters == b.counters
        assert a.output == b.output
        assert a.fault_events() == b.fault_events()

    def test_different_fault_seed_different_faults(self):
        a = run_experiment(base_config(fault_profile="transient-errors"))
        b = run_experiment(base_config(fault_profile="transient-errors",
                                       fault_seed=1234))
        assert a.output == b.output  # output identity holds for any seed
        assert a.fault_events() != b.fault_events()

    def test_none_profile_matches_no_profile(self, clean_result):
        result = run_experiment(base_config(fault_profile="none"))
        assert result.cycles == clean_result.cycles
        assert result.counters == clean_result.counters
        assert result.output == clean_result.output

    def test_fault_free_run_records_no_fault_events(self, clean_result):
        assert clean_result.fault_events() == {}
        assert clean_result.watchdog_tripped is None


class TestDegradation:
    def test_transient_errors_survived_by_retries(self, clean_result):
        result = run_experiment(base_config(fault_profile="transient-errors"))
        assert result.io_retries > 0
        assert result.c("array.demand_failures") == 0
        assert result.output == clean_result.output

    def test_offline_disk_drops_prefetches_not_reads(self, clean_result):
        result = run_experiment(base_config(fault_profile="offline-disk"))
        assert result.disk_faults > 0
        assert result.c("array.demand_failures") == 0
        assert result.output == clean_result.output

    def test_hint_corruption_degrades_not_breaks(self, clean_result):
        result = run_experiment(base_config(fault_profile="hint-corruption"))
        assert (result.c("faults.hints_dropped")
                + result.c("faults.hints_corrupted")) > 0
        # Garbage hints may cost hint coverage, never correctness.
        assert result.pct_calls_hinted <= clean_result.pct_calls_hinted + 1e-9
        assert result.output == clean_result.output

    def test_stuck_disk_costs_time_not_correctness(self, clean_result):
        result = run_experiment(base_config(fault_profile="stuck-disk"))
        assert result.c("faults.disk_slow_services") > 0
        assert result.cycles > clean_result.cycles
        assert result.output == clean_result.output


class TestWatchdog:
    def _storm_config(self, restart_limit):
        system = SystemConfig(
            spechint=SpecHintParams(watchdog_restart_limit=restart_limit),
        )
        return base_config(system=system, fault_profile="restart-storm")

    def test_restart_storm_trips_watchdog(self, clean_result):
        result = run_experiment(self._storm_config(restart_limit=4))
        assert result.watchdog_tripped == "restart_storm"
        assert result.c("spec.watchdog_disabled") == 1
        assert result.c("spec.watchdog_trip.restart_storm") == 1
        # The run still completes, vanilla, with identical output.
        assert result.output == clean_result.output

    def test_watchdog_defaults_never_trip_clean_runs(self, clean_result):
        assert clean_result.c("spec.watchdog_disabled") == 0

    def test_disabled_speculation_stops_hinting(self):
        tripped = run_experiment(self._storm_config(restart_limit=2))
        untripped = run_experiment(self._storm_config(restart_limit=0))
        # Once disabled, the spec thread stays parked: fewer hints issued
        # and fewer restarts paid for than when the storm runs unchecked.
        assert tripped.spec_restarts < untripped.spec_restarts
