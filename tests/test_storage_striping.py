"""Tests for the striping pseudodevice."""

import pytest

from repro.errors import InvalidBlockError
from repro.params import (
    BLOCKS_PER_STRIPE_UNIT,
    ArrayParams,
    CpuParams,
    DiskParams,
)
from repro.sim.clock import SimClock
from repro.sim.engine import EventEngine
from repro.sim.stats import StatRegistry
from repro.storage.request import IOKind
from repro.storage.striping import StripedArray


def make_array(nblocks=1024, **array_kwargs):
    clock = SimClock()
    engine = EventEngine(clock)
    stats = StatRegistry()
    array = StripedArray(
        nblocks,
        ArrayParams(**array_kwargs),
        DiskParams(),
        CpuParams(),
        engine,
        stats,
    )
    return array, engine, stats


def drain(engine):
    while engine.advance_to_next():
        pass


class TestGeometry:
    def test_stripe_unit_must_be_block_multiple(self):
        with pytest.raises(InvalidBlockError):
            make_array(stripe_unit=1000)

    def test_needs_at_least_one_disk(self):
        with pytest.raises(InvalidBlockError):
            make_array(ndisks=0)

    def test_blocks_within_unit_on_same_disk(self):
        array, _, _ = make_array(ndisks=4)
        disks = {array.disk_of(lbn) for lbn in range(BLOCKS_PER_STRIPE_UNIT)}
        assert len(disks) == 1

    def test_consecutive_units_round_robin(self):
        array, _, _ = make_array(ndisks=4)
        unit_disks = [
            array.disk_of(u * BLOCKS_PER_STRIPE_UNIT) for u in range(8)
        ]
        assert unit_disks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_mapping_is_injective(self):
        array, _, _ = make_array(nblocks=512, ndisks=3)
        seen = set()
        for lbn in range(512):
            key = array.map_block(lbn)
            assert key not in seen
            seen.add(key)

    def test_out_of_range_lbn_rejected(self):
        array, _, _ = make_array(nblocks=16)
        with pytest.raises(InvalidBlockError):
            array.map_block(16)
        with pytest.raises(InvalidBlockError):
            array.map_block(-1)

    def test_single_disk_array(self):
        array, _, _ = make_array(ndisks=1)
        assert all(array.disk_of(lbn) == 0 for lbn in range(0, 200, 17))


class TestRequestPath:
    def test_demand_completes_with_callback(self):
        array, engine, _ = make_array()
        done = []
        array.submit(5, IOKind.DEMAND, done.append)
        drain(engine)
        assert len(done) == 1
        assert done[0].done
        assert done[0].notify_time == done[0].finish_time

    def test_coalescing_same_block(self):
        array, engine, stats = make_array()
        done = []
        first = array.submit(5, IOKind.DEMAND, lambda r: done.append("a"))
        second = array.submit(5, IOKind.DEMAND, lambda r: done.append("b"))
        assert first is second
        drain(engine)
        assert done == ["a", "b"]
        assert stats.get("array.completed") == 1

    def test_outstanding_tracking(self):
        array, engine, _ = make_array()
        array.submit(5, IOKind.DEMAND, lambda r: None)
        assert array.outstanding_for(5) is not None
        assert array.total_outstanding == 1
        drain(engine)
        assert array.outstanding_for(5) is None
        assert array.total_outstanding == 0

    def test_demand_promotes_outstanding_prefetch(self):
        array, engine, _ = make_array()
        # Make the target disk busy so the prefetch queues.
        blocker_lbn = 0
        target_lbn = BLOCKS_PER_STRIPE_UNIT * 4  # same disk 0, next unit
        array.submit(blocker_lbn, IOKind.DEMAND, lambda r: None)
        prefetch = array.submit(target_lbn, IOKind.PREFETCH, lambda r: None)
        assert not prefetch.is_demand
        array.submit(target_lbn, IOKind.DEMAND, lambda r: None)
        assert prefetch.is_demand
        drain(engine)

    def test_parallelism_across_disks(self):
        """Blocks on different disks overlap in time."""
        array, engine, _ = make_array(ndisks=4)
        done = []
        for unit in range(4):
            array.submit(unit * BLOCKS_PER_STRIPE_UNIT, IOKind.DEMAND,
                         lambda r: done.append(r))
        drain(engine)
        finish_times = {r.finish_time for r in done}
        # All four serviced concurrently: identical finish times.
        assert len(finish_times) == 1


class TestFigure6Knobs:
    def test_completion_delay_factor(self):
        fast, fast_engine, _ = make_array()
        slow, slow_engine, _ = make_array(completion_delay_factor=2.0)
        results = {}
        fast.submit(5, IOKind.DEMAND, lambda r: results.setdefault("fast", r))
        slow.submit(5, IOKind.DEMAND, lambda r: results.setdefault("slow", r))
        drain(fast_engine)
        drain(slow_engine)
        assert results["slow"].notify_time == pytest.approx(
            2 * results["fast"].notify_time, rel=0.01
        )

    def test_delay_applies_to_notification_not_media(self):
        array, engine, _ = make_array(completion_delay_factor=3.0)
        done = []
        array.submit(5, IOKind.DEMAND, done.append)
        drain(engine)
        req = done[0]
        assert req.notify_time > req.finish_time

    def test_prefetch_limit_holds_excess(self):
        array, engine, stats = make_array(ndisks=1, max_prefetches_per_disk=1)
        for lbn in (0, 8, 16):
            array.submit(lbn, IOKind.PREFETCH, lambda r: None)
        assert stats.get("array.prefetches_held") == 2
        drain(engine)
        assert stats.get("array.completed") == 3

    def test_held_prefetch_promoted_by_demand(self):
        array, engine, _ = make_array(ndisks=1, max_prefetches_per_disk=1)
        array.submit(0, IOKind.PREFETCH, lambda r: None)
        held = array.submit(8, IOKind.PREFETCH, lambda r: None)
        array.submit(8, IOKind.DEMAND, lambda r: None)
        assert held.is_demand
        drain(engine)
        assert held.done
