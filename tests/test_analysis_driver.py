"""Tests for the analysis driver: classification, reachability, lint,
elision planning, and the per-app expectations the CI lint gate relies on.
"""

import json

import pytest

from repro.analysis import (
    StoreClass,
    TransferKind,
    analyze_binary,
    build_safe_fixture,
    build_unsafe_fixture,
)
from repro.analysis.driver import CheckCosts, check_costs, spec_roots
from repro.apps import agrep as agrep_mod
from repro.apps import gnuld as gnuld_mod
from repro.apps import postgres as postgres_mod
from repro.apps import xdataslice as xds_mod
from repro.errors import AnalysisError
from repro.fs.filesystem import FileSystem
from repro.harness.runner import _BUILDERS
from repro.params import SpecHintParams
from repro.spechint.tool import SpecHintTool
from repro.vm.assembler import Assembler
from repro.vm.isa import SYS_EXIT, SYS_READ, Reg
from repro.vm.memory import SPEC_HEAP_BASE

SCALE = 0.3

_EXPECTATIONS = {
    "agrep": agrep_mod.ANALYSIS_EXPECTATIONS,
    "gnuld": gnuld_mod.ANALYSIS_EXPECTATIONS,
    "xds": xds_mod.ANALYSIS_EXPECTATIONS,
    "postgres20": postgres_mod.ANALYSIS_EXPECTATIONS,
}


def _app_analysis(app):
    binary = _BUILDERS[app](FileSystem(), SCALE, False)
    return analyze_binary(binary)


class TestCheckCosts:
    def test_plain_costs(self):
        params = SpecHintParams()
        costs = check_costs(params, optimized_stdlib=False)
        assert costs == CheckCosts(params.cow_load_check_cycles,
                                   params.cow_store_check_cycles)

    def test_optimized_stdlib_divisor(self):
        params = SpecHintParams()
        costs = check_costs(params, optimized_stdlib=True)
        divisor = max(1, params.optimized_stdlib_check_divisor)
        assert costs.load == max(1, params.cow_load_check_cycles // divisor)
        assert costs.store == max(1, params.cow_store_check_cycles // divisor)


class TestTransferClassification:
    def test_resolved_return_unmappable_unknown(self):
        asm = Assembler("transfers")
        asm.data_word("slot")
        asm.entry("main")
        with asm.function("callee"):
            asm.ret()                              # 1: jr ra -> RETURN
        with asm.function("main"):
            asm.la(Reg.t0, "callee")
            asm.callr(Reg.t0)                      # RESOLVED
            asm.li(Reg.t1, 3)
            asm.blt(Reg.zero, Reg.a0, "skip_bad")
            asm.jr(Reg.t1)                         # UNMAPPABLE (3 not entry)
            asm.label("skip_bad")
            asm.la(Reg.t2, "slot")
            asm.load(Reg.t3, Reg.t2, 0)
            asm.blt(Reg.zero, Reg.a1, "skip_unk")
            asm.jr(Reg.t3)                         # UNKNOWN (loaded value)
            asm.label("skip_unk")
            asm.syscall(SYS_EXIT)
        binary = asm.finish()
        analysis = analyze_binary(binary)
        kinds = sorted(t.kind.value for t in analysis.transfers.values())
        assert analysis.transfer_count(TransferKind.RESOLVED) == 1
        assert analysis.transfer_count(TransferKind.RETURN) == 1
        assert analysis.transfer_count(TransferKind.UNMAPPABLE) == 1
        assert analysis.transfer_count(TransferKind.UNKNOWN) == 1
        assert len(kinds) == 4
        resolved = [t for t in analysis.transfers.values()
                    if t.kind is TransferKind.RESOLVED]
        assert resolved[0].target == binary.functions[0].entry

    def test_jump_table_kinds(self):
        asm = Assembler("tables")
        asm.entry("main")
        with asm.function("main"):
            good = asm.jump_table(["c0", "c1"])
            weird = asm.jump_table(["c0"], recognized=False)
            asm.li(Reg.t0, 0)
            asm.switch(Reg.t0, good)        # TABLE_STATIC
            asm.label("c0")
            asm.switch(Reg.t0, weird)       # TABLE_UNMAPPABLE (c0 mid-func)
            asm.label("c1")
            asm.syscall(SYS_EXIT)
        binary = asm.finish()
        analysis = analyze_binary(binary)
        assert analysis.transfer_count(TransferKind.TABLE_STATIC) == 1
        assert analysis.transfer_count(TransferKind.TABLE_UNMAPPABLE) == 1


class TestSpecReachability:
    def _binary(self):
        asm = Assembler("reach")
        asm.data_space("buf", 64)
        asm.entry("main")
        with asm.function("emit", output_routine=True):
            asm.ret()
        with asm.function("main"):
            asm.li(Reg.t0, 1)               # before read: unreachable
            asm.li(Reg.a0, 0)
            asm.la(Reg.a1, "buf")
            asm.li(Reg.a2, 64)
            asm.syscall(SYS_READ)
            asm.li(Reg.t1, 2)               # root
            asm.call("emit")                # output call: not followed
            asm.li(Reg.a0, 0)
            asm.syscall(SYS_EXIT)
        return asm.finish()

    def test_roots_follow_blocking_reads(self):
        binary = self._binary()
        roots = spec_roots(binary)
        (read_index,) = [
            i for i, insn in enumerate(binary.text)
            if insn.op.name == "SYSCALL" and insn.c == SYS_READ
        ]
        assert roots == frozenset({read_index + 1})

    def test_code_before_read_is_dead(self):
        binary = self._binary()
        analysis = analyze_binary(binary)
        main = [f for f in binary.functions if f.name == "main"][0]
        assert main.entry not in analysis.spec_reachable
        assert min(analysis.spec_roots) in analysis.spec_reachable

    def test_output_routine_body_not_entered(self):
        binary = self._binary()
        analysis = analyze_binary(binary)
        emit = [f for f in binary.functions if f.name == "emit"][0]
        assert all(i not in analysis.spec_reachable
                   for i in range(emit.entry, emit.end))


class TestStoreClassification:
    def test_data_store_may_escape_and_heap_store_local(self):
        asm = Assembler("stores")
        asm.data_word("cell")
        asm.entry("main")
        with asm.function("main"):
            asm.la(Reg.t0, "cell")
            asm.store(Reg.t1, Reg.t0, 0)               # MAY_ESCAPE
            asm.li(Reg.t2, SPEC_HEAP_BASE)
            asm.store(Reg.t1, Reg.t2, 8)               # SPEC_LOCAL (heap)
            asm.push(Reg.t1)                           # SPEC_LOCAL (stack meta)
            asm.load(Reg.t3, Reg.t0, 0)
            asm.store(Reg.t1, Reg.t3, 0)               # UNKNOWN (loaded ptr)
            asm.syscall(SYS_EXIT)
        binary = asm.finish()
        analysis = analyze_binary(binary)
        assert analysis.store_count(StoreClass.MAY_ESCAPE) == 1
        assert analysis.store_count(StoreClass.SPEC_LOCAL) == 2
        assert analysis.store_count(StoreClass.UNKNOWN) == 1


class TestElisionPlan:
    def test_map_all_addresses_empties_the_plan(self):
        binary = _BUILDERS["agrep"](FileSystem(), SCALE, False)
        analysis = analyze_binary(binary, map_all_addresses=True)
        assert analysis.elision_plan.empty
        assert analysis.check_cycles_baseline == analysis.check_cycles_optimized
        # The report side is still fully populated.
        assert analysis.summaries

    def test_dead_code_dominates_plan_for_agrep(self):
        analysis = _app_analysis("agrep")
        plan = analysis.elision_plan
        assert plan.dead
        assert analysis.check_cycles_optimized < analysis.check_cycles_baseline
        assert 0 < analysis.check_cycles_saved_pct <= 100

    def test_transformed_binary_rejected(self):
        binary = _BUILDERS["agrep"](FileSystem(), SCALE, False)
        transformed = SpecHintTool().transform(binary)
        with pytest.raises(AnalysisError):
            analyze_binary(transformed)


class TestAppExpectations:
    """The numbers the CI analysis-lint gate and the PR claims rest on."""

    @pytest.mark.parametrize("app", sorted(_EXPECTATIONS))
    def test_matches_recorded_expectations(self, app):
        analysis = _app_analysis(app)
        expected = _EXPECTATIONS[app]
        warnings = [f for f in analysis.lint if f.severity == "warning"]
        assert analysis.wrapped_store_sites == expected["wrapped_stores"]
        assert analysis.elidable_store_sites == expected["elidable_stores"]
        assert len(analysis.elision_plan.resolved) == \
            expected["resolved_transfers"]
        assert len(analysis.lint_errors) == expected["lint_errors"]
        assert len(warnings) == expected["lint_warnings"]

    def test_acceptance_floor_two_apps_at_twenty_pct(self):
        """The headline claim: >=20% of COW store wrappers elided on at
        least two example applications."""
        winners = 0
        for app, expected in _EXPECTATIONS.items():
            wrapped = expected["wrapped_stores"]
            if wrapped and 100.0 * expected["elidable_stores"] / wrapped >= 20:
                winners += 1
        assert winners >= 2

    def test_postgres_resolves_the_comparator_callr(self):
        analysis = _app_analysis("postgres20")
        (target,) = set(analysis.elision_plan.resolved.values())
        func = analysis.binary.function_at_entry(target)
        assert func is not None and func.name == "cmp_keys"


class TestFixturesAndLint:
    def test_unsafe_fixture_has_both_error_kinds(self):
        analysis = analyze_binary(build_unsafe_fixture())
        codes = sorted(f.code for f in analysis.lint_errors)
        assert codes == ["unknown-syscall", "unmappable-transfer"]
        # Errors sort before warnings and formatting is stable.
        assert analysis.lint[0].severity == "error"
        assert analysis.lint[0].format().startswith("error: [")

    def test_safe_fixture_lints_clean(self):
        analysis = analyze_binary(build_safe_fixture())
        assert analysis.lint_errors == []

    def test_falls_off_end_warning(self):
        asm = Assembler("off-end")
        asm.data_space("buf", 8)
        asm.entry("main")
        with asm.function("broken"):
            asm.li(Reg.t0, 1)               # falls into main
        with asm.function("main"):
            asm.li(Reg.a0, 0)
            asm.syscall(SYS_EXIT)
        binary = asm.finish()
        analysis = analyze_binary(binary)
        assert any(f.code == "falls-off-end" and f.function == "broken"
                   for f in analysis.lint)

    def test_jsonable_report_round_trips(self):
        analysis = _app_analysis("agrep")
        payload = json.loads(json.dumps(analysis.to_jsonable()))
        assert payload["binary"] == "agrep"
        assert payload["elision"]["wrapped_stores"] == \
            analysis.wrapped_store_sites
        assert payload["check_cycles"]["baseline"] == \
            analysis.check_cycles_baseline
        assert {f["name"] for f in payload["functions"]} == \
            set(analysis.cfgs)

    def test_jsonable_syscall_reachability_detail(self):
        analysis = _app_analysis("agrep")
        payload = json.loads(json.dumps(analysis.to_jsonable()))
        reach = payload["syscall_reachability"]
        # Every function appears, mirroring the analysis verbatim.
        assert set(reach) == set(analysis.syscalls_per_function)
        for name, nums in analysis.syscalls_per_function.items():
            assert [e["num"] for e in reach[name]] == sorted(nums)
        # Entries carry both number and resolved name, sorted by number.
        main_names = {e["name"] for e in reach["main"]}
        assert {"open", "read"} <= main_names
        # A leaf function with no syscalls serializes as an empty list.
        assert [] in list(reach.values())

    def test_text_report_mentions_key_lines(self):
        analysis = _app_analysis("postgres20")
        text = analysis.format_text()
        assert text.startswith(f"analysis of {analysis.binary_name}")
        assert "COW store wrappers elidable" in text
        assert "resolved @" in text  # the cmp_keys callr line
