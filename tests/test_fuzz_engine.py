"""The fuzz engine and shrinker, including the planted-bug end-to-end.

The acceptance test for the whole chaos engine is here: plant an
isolation bug (a ``TIPIO_CANCEL_ALL`` that drains the queue but skips
the lifecycle bookkeeping — the runtime's own drain check stays green,
so only the invariant monitors can see it), fuzz until a monitor trips,
shrink the failing schedule to a handful of fault events, and verify the
reproducer replays red with the bug and green without it.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import FuzzError
from repro.faults.generate import FaultPlanGenerator, FuzzCase
from repro.faults.plan import FaultPlan
from repro.faults.shrink import (
    Reproducer,
    shrink_case,
    shrink_events,
)
from repro.harness.fuzz import (
    FuzzCellResult,
    run_fuzz,
    run_fuzz_case,
)
from repro.harness.invariants import Violation
from repro.tip.manager import TipManager


def _case(**plan_kwargs) -> FuzzCase:
    plan = FaultPlan(name="t", seed=3, **plan_kwargs)
    return FuzzCase(index=0, app="agrep", plan=plan)


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

class TestRunFuzz:
    def test_serial_and_parallel_digests_identical(self):
        serial = run_fuzz(4, seed=7, jobs=1)
        parallel = run_fuzz(4, seed=7, jobs=2)
        assert serial.digest == parallel.digest
        assert serial.ledger.to_jsonable() == parallel.ledger.to_jsonable()
        for a, b in zip(serial.cells, parallel.cells):
            assert a.key == b.key
            assert a.digest == b.digest

    def test_report_shape(self):
        report = run_fuzz(3, seed=7)
        assert report.passed
        assert len(report.cells) == 3
        assert not report.quarantined
        data = report.to_jsonable()
        assert data["digest"] == report.digest
        assert data["coverage"]["cases"] == 3
        assert "PASS" in report.summary()
        for cell in report.cells:
            back = FuzzCellResult.from_jsonable(cell.to_jsonable())
            assert back.digest == cell.digest
            assert back.case.key == cell.case.key

    def test_unknown_app_rejected(self):
        with pytest.raises(FuzzError, match="unknown fuzz app"):
            run_fuzz(2, seed=7, apps=("nonesuch",))


# ---------------------------------------------------------------------------
# Shrinker mechanics (synthetic evaluator: no simulation runs)
# ---------------------------------------------------------------------------

class TestShrinkMechanics:
    def _loaded_case(self) -> FuzzCase:
        plan = FaultPlan(
            name="loaded", seed=3, disk_error_rate=0.08,
            slow_factor=20.0, slow_start_s=0.001, slow_duration_s=0.01,
            offline_disk=1, offline_start_s=0.001, offline_duration_s=0.008,
            hint_drop_rate=0.3, hint_corrupt_rate=0.3,
            spec_divergence_rate=0.5,
        )
        return FuzzCase(index=0, app="agrep", plan=plan,
                        spec_overrides={"throttle_cancel_limit": 2})

    def test_shrinks_to_the_one_guilty_event(self):
        # The "bug" trips iff hints are being dropped at all.
        def evaluate(case):
            if case.plan.hint_drop_rate > 0.0:
                return [Violation("hint-lifecycle", "tripped")]
            return []

        result = shrink_case(self._loaded_case(), "hint-lifecycle", evaluate)
        assert result.events == ["hint-drop"]
        assert "transient-errors" in result.removed
        assert "throttle-params" in result.removed
        # The guilty rate was also reduced toward its floor.
        assert result.case.plan.hint_drop_rate < 0.3

    def test_dead_disk_removal_cascades(self):
        plan = FaultPlan(
            name="cascade", seed=3, dead_disk=0, dead_at_s=0.001,
            second_dead_disk=1, second_dead_at_s=0.002,
            rebuild_share=0.5, hedge_after_s=0.004, hint_drop_rate=0.2,
        )
        case = FuzzCase(index=0, app="agrep", plan=plan)

        def evaluate(c):
            if c.plan.hint_drop_rate > 0.0:
                return [Violation("hint-lifecycle", "tripped")]
            return []

        result = shrink_case(case, "hint-lifecycle", evaluate)
        assert result.events == ["hint-drop"]
        assert result.case.plan.dead_disk == -1
        assert result.case.plan.second_dead_disk == -1
        assert result.case.plan.rebuild_share == 0.0
        assert result.case.plan.hedge_after_s == 0.0

    def test_never_returns_a_passing_case(self):
        # Monitor trips only while BOTH drop and corrupt are active:
        # neither single removal may be accepted.
        def evaluate(case):
            plan = case.plan
            if plan.hint_drop_rate > 0.0 and plan.hint_corrupt_rate > 0.0:
                return [Violation("spec-identity", "tripped")]
            return []

        result = shrink_case(self._loaded_case(), "spec-identity", evaluate)
        assert "hint-drop" in result.events
        assert "hint-corrupt" in result.events
        assert evaluate(result.case)

    def test_passing_start_is_a_caller_bug(self):
        with pytest.raises(FuzzError, match="does not trip"):
            shrink_case(self._loaded_case(), "audit-chain", lambda c: [])

    def test_respects_evaluation_budget(self):
        calls = [0]

        def evaluate(case):
            calls[0] += 1
            return [Violation("typed-errors", "always")]

        shrink_case(self._loaded_case(), "typed-errors", evaluate,
                    max_evaluations=5)
        assert calls[0] <= 5

    def test_shrink_is_deterministic(self):
        def evaluate(case):
            if case.plan.spec_divergence_rate > 0.0:
                return [Violation("cancel-drain", "tripped")]
            return []

        a = shrink_case(self._loaded_case(), "cancel-drain", evaluate)
        b = shrink_case(self._loaded_case(), "cancel-drain", evaluate)
        assert a.case.to_jsonable() == b.case.to_jsonable()
        assert a.removed == b.removed and a.reduced == b.reduced

    def test_shrink_events_vocabulary(self):
        events = shrink_events(self._loaded_case())
        assert events == [
            "transient-errors", "slow-window", "offline-window",
            "hint-drop", "hint-corrupt", "restart-storm", "throttle-params",
        ]


# ---------------------------------------------------------------------------
# Reproducer persistence
# ---------------------------------------------------------------------------

class TestReproducer:
    def test_save_load_round_trip(self, tmp_path):
        case = FaultPlanGenerator(7).case(3)
        path = str(tmp_path / "repro.json")
        Reproducer(case=case, monitor="hint-lifecycle", detail="d",
                   workload_scale=0.25, note="n").save(path)
        back = Reproducer.load(path)
        assert back.case.to_jsonable() == case.to_jsonable()
        assert back.monitor == "hint-lifecycle"
        assert back.workload_scale == 0.25
        assert back.note == "n"

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(FuzzError, match="not valid JSON"):
            Reproducer.load(str(path))

    def test_load_rejects_missing_file(self):
        with pytest.raises(FuzzError, match="cannot read"):
            Reproducer.load("/nonexistent/repro.json")

    def test_load_rejects_missing_case(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text('{"version": 1, "monitor": "x"}')
        with pytest.raises(FuzzError, match="case"):
            Reproducer.load(str(path))

    def test_load_rejects_bad_plan(self, tmp_path):
        case = FaultPlanGenerator(7).case(0)
        data = Reproducer(case=case, monitor="x").to_jsonable()
        data["case"]["plan"]["hint_drop_rate"] = 3.0
        import json

        path = tmp_path / "invalid.json"
        path.write_text(json.dumps(data))
        with pytest.raises(FuzzError):
            Reproducer.load(str(path))


# ---------------------------------------------------------------------------
# Planted isolation bug: the acceptance loop end to end
# ---------------------------------------------------------------------------

def _leaky_cancel_all(self, pid):
    """cancel_all with its lifecycle bookkeeping deleted: the queue drains
    (so the runtime's own drain check passes) but cancelled hints never
    reach a terminal state in the ledger."""
    state = self._procs.get(pid)
    if state is None or not state.queue:
        return 0
    cancelled = len(state.queue)
    for entry in state.queue:
        self._forget_seq(entry.key, entry.seq)
    state.queue.clear()
    state.accuracy.observe_cancelled(cancelled)
    self.cancelled_total += cancelled
    return cancelled


class TestPlantedIsolationBug:
    BUDGET = 10  # the bug is found at cell 8 of seed 7

    def test_fuzz_catches_shrinks_and_replays(self, monkeypatch, tmp_path):
        monkeypatch.setattr(TipManager, "cancel_all", _leaky_cancel_all)

        # 1. A fuzz campaign (in-process: jobs=1 so the patch applies)
        #    catches the planted bug within budget.
        report = run_fuzz(self.BUDGET, seed=7, jobs=1)
        failures = report.failures()
        assert failures, "planted isolation bug survived the fuzz budget"
        cell = failures[0]
        monitors = {v.monitor for v in cell.violations}
        assert {"hint-lifecycle", "cancel-drain"} & monitors

        # 2. The failing schedule shrinks to a tiny reproducer.
        monitor = cell.violations[0].monitor
        shrunk = shrink_case(
            cell.case, monitor,
            lambda c: run_fuzz_case(c).violations,
        )
        assert len(shrunk.events) <= 3
        assert dataclasses.asdict(shrunk.case.plan)  # still a valid plan

        # 3. The reproducer replays red while the bug is in place...
        path = str(tmp_path / "repro.json")
        Reproducer(case=shrunk.case, monitor=monitor,
                   detail=cell.violations[0].detail).save(path)
        replayed = run_fuzz_case(Reproducer.load(path).case)
        assert not replayed.passed
        assert monitor in {v.monitor for v in replayed.violations}

    def test_reproducer_replays_green_without_the_bug(self, monkeypatch,
                                                      tmp_path):
        # Produce the reproducer under the bug, then undo the patch.
        monkeypatch.setattr(TipManager, "cancel_all", _leaky_cancel_all)
        report = run_fuzz(self.BUDGET, seed=7, jobs=1)
        cell = report.failures()[0]
        monitor = cell.violations[0].monitor
        shrunk = shrink_case(
            cell.case, monitor,
            lambda c: run_fuzz_case(c).violations,
        )
        monkeypatch.undo()

        result = run_fuzz_case(shrunk.case)
        assert result.passed, [str(v) for v in result.violations]
