"""Tests for the persistent run registry (ledger, lineage, tuning).

Covers the full registry stack: identity fingerprints, content-addressed
records, both store backends (JSONL append log and SQLite) with their
crash-safety semantics, payload classification, similarity search, the
baseline-population regression detector (including the planted-slowdown
acceptance scenario), garbage collection, the auto-tuner with provenance
replay, and the ``repro runs`` / ``--auto-tune`` CLI surface.
"""

import json
import os
import sqlite3

import pytest

from repro.errors import RegistryError, UnknownRunError
from repro.harness.config import ExperimentConfig, Variant
from repro.harness.results import (
    RESULT_SCHEMA_VERSION,
    RunResult,
)
from repro.harness.runner import run_experiment
from repro.registry.fingerprint import (
    TUNABLE_SPEC_PARAMS,
    chaos_key,
    code_version,
    digest_of,
    feature_vector,
    params_digest,
    plan_key,
    spec_tunables,
)
from repro.registry.record import (
    REGISTRY_SCHEMA_VERSION,
    RunRecord,
    group_key,
)
from repro.registry.recorder import (
    append_payload_records,
    record_payload,
    records_for_payload,
)
from repro.registry.regression import (
    check_all,
    check_run,
    parse_match_keys,
)
from repro.registry.similarity import similar_runs
from repro.registry.store import (
    JsonlStore,
    RunRegistry,
    SqliteStore,
    merge_worker_sidecars,
    open_store,
    sidecar_path,
)
from repro.registry.tuner import (
    AutoTuner,
    apply_proposal,
    apply_provenance,
    validate_spec_params,
)

SCALE = 0.1


# ---------------------------------------------------------------------------
# Synthetic payload / record factories
# ---------------------------------------------------------------------------

def run_payload(app="agrep", variant="speculating", seed=1999,
                cycles=4_000_000, lead=900_000.0, wasted=0, disclosed=27,
                pdigest="0123456789abcdef", chaos=None, spec_params=None,
                isolation=0, watchdog=False, **extra):
    payload = {
        "app": app,
        "variant": variant,
        "cycles": cycles,
        "counters": {"app.workload_completed_cycle": cycles},
        "hint_lead_median": lead,
        "hint_lifecycle": {"disclosed": disclosed, "consumed": disclosed,
                           "cancelled": 0, "wasted": wasted, "open": 0},
        "stall_breakdown": {"wall": cycles, "compute": cycles // 2,
                            "checks": cycles // 10,
                            "demand_stall": cycles // 4,
                            "other": cycles // 10},
        "pct_prefetches_before_demand": 80.0,
        "params_digest": pdigest,
        "seed": seed,
        "spec_params": spec_params or {"throttle_cancel_limit": 0,
                                       "throttle_disable_reads": 32},
        "fault_profile": chaos,
        "isolation_violations": isolation,
        "watchdog_tripped": watchdog,
    }
    payload.update(extra)
    return payload


def make_record(**kwargs):
    payload = run_payload(**{k: v for k, v in kwargs.items()
                             if k not in ("kind", "parent_id", "cell_key")})
    ctx = {k: kwargs[k] for k in ("kind", "parent_id") if k in kwargs}
    return records_for_payload(kwargs.get("cell_key"), payload, ctx)[0]


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------

class TestFingerprint:
    def test_params_digest_pools_seeds_but_not_scales(self):
        base = ExperimentConfig(app="agrep", workload_scale=SCALE)
        reseeded = base.with_(system=base.system.replace(seed=2003))
        other_app = base.with_(app="gnuld")
        rescaled = base.with_(workload_scale=0.2)
        assert params_digest(base) == params_digest(reseeded)
        assert params_digest(base) == params_digest(other_app)
        assert params_digest(base) != params_digest(rescaled)

    def test_chaos_keys(self):
        assert chaos_key(None) == "none"
        assert chaos_key("none") == "none"
        assert chaos_key("stuck-disk") == "stuck-disk"
        plan = {"name": "fuzz-7-0", "slow_factor": 10.0}
        key = chaos_key(None, plan)
        assert key.startswith("fuzz-7-0:")
        assert key == plan_key(plan)
        assert plan_key({"name": "fuzz-7-0", "slow_factor": 20.0}) != key

    def test_spec_tunables_covers_exactly_the_knobs(self):
        cfg = ExperimentConfig(app="agrep")
        tunables = spec_tunables(cfg.system.spechint)
        assert tuple(sorted(tunables)) == tuple(sorted(TUNABLE_SPEC_PARAMS))

    def test_feature_vector_is_normalized(self):
        vec = feature_vector(run_payload())
        assert len(vec) == 6
        assert abs(sum(vec[:4]) - 1.0) < 1e-9
        assert feature_vector({}) == (0.0,) * 6

    def test_code_version_env_override(self, monkeypatch):
        assert code_version() == "repro-fp1"
        monkeypatch.setenv("REPRO_CODE_VERSION", "deadbeef")
        assert code_version() == "deadbeef"

    def test_digest_is_order_insensitive(self):
        assert digest_of({"a": 1, "b": 2}) == digest_of({"b": 2, "a": 1})


# ---------------------------------------------------------------------------
# Records: content addressing + schema versioning
# ---------------------------------------------------------------------------

class TestRunRecord:
    def test_run_id_is_content_addressed(self):
        a = make_record(seed=1999)
        b = make_record(seed=1999)
        c = make_record(seed=2000)
        assert a.run_id == b.run_id
        assert a.run_id != c.run_id
        assert len(a.run_id) == 24

    def test_round_trip(self):
        record = make_record(kind="sweep-cell", cell_key="disks=4/agrep")
        data = record.to_jsonable()
        assert data["schema_version"] == REGISTRY_SCHEMA_VERSION
        again = RunRecord.from_jsonable(data)
        assert again == record
        assert again.run_id == record.run_id

    def test_unknown_schema_version_rejected(self):
        data = make_record().to_jsonable()
        data["schema_version"] = 99
        with pytest.raises(RegistryError, match="schema_version"):
            RunRecord.from_jsonable(data)

    def test_tampered_record_fails_content_check(self):
        data = make_record().to_jsonable()
        data["seed"] = 4242
        with pytest.raises(RegistryError, match="content check"):
            RunRecord.from_jsonable(data)

    def test_unknown_kind_rejected(self):
        with pytest.raises(RegistryError, match="kind"):
            make_record(kind="banana")

    def test_metric_values(self):
        values = make_record(cycles=1000, wasted=3, disclosed=30,
                             lead=250.0).metric_values()
        assert values == {"elapsed_cycles": 1000.0,
                          "hint_lead_median": 250.0,
                          "wasted_prefetch_fraction": 0.1}

    def test_metric_values_none_for_mapping_cycles(self):
        # Fuzz cells carry per-variant cycle mappings, not one scalar.
        record = make_record()
        record.result["cycles"] = {"original": 1, "speculating": 2}
        assert record.metric_values() is None

    def test_group_key_pools_identity(self):
        a = make_record(seed=1999)
        b = make_record(seed=2003)
        c = make_record(chaos="stuck-disk")
        assert group_key(a) == group_key(b)
        assert group_key(a) != group_key(c)


# ---------------------------------------------------------------------------
# Stores
# ---------------------------------------------------------------------------

class TestStores:
    @pytest.mark.parametrize("name", ["ledger.jsonl", "ledger.db"])
    def test_put_get_dedup_reload(self, tmp_path, name):
        path = str(tmp_path / name)
        record = make_record()
        store = open_store(path)
        assert store.put(record.to_jsonable()) is True
        assert store.put(record.to_jsonable()) is False  # content dedup
        store.close()
        store = open_store(path)
        assert store.ids() == [record.run_id]
        assert store.get(record.run_id) == record.to_jsonable()
        store.close()

    def test_open_store_dispatches_on_extension(self, tmp_path):
        assert isinstance(open_store(str(tmp_path / "a.jsonl")), JsonlStore)
        assert isinstance(open_store(str(tmp_path / "a.db")), SqliteStore)

    def test_jsonl_tolerates_torn_final_line(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        store = JsonlStore(path)
        store.put(make_record(seed=1).to_jsonable())
        store.put(make_record(seed=2).to_jsonable())
        store.close()
        with open(path, "a") as handle:
            handle.write('{"schema_version": 1, "app": "agr')  # torn write
        reloaded = JsonlStore(path)
        assert len(reloaded.ids()) == 2

    def test_jsonl_rejects_mid_file_corruption(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        store = JsonlStore(path)
        store.put(make_record(seed=1).to_jsonable())
        store.close()
        with open(path) as handle:
            good = handle.read()
        with open(path, "w") as handle:
            handle.write("garbage not json\n" + good)
        with pytest.raises(RegistryError):
            JsonlStore(path)

    def test_jsonl_rejects_sqlite_file(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE t (x)")
        conn.commit()
        conn.close()
        with pytest.raises(RegistryError, match="SQLite"):
            JsonlStore(path)

    def test_compact_is_canonical_sorted_form(self, tmp_path):
        a, b = make_record(seed=1), make_record(seed=2)
        first, second = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        for path, order in ((first, (a, b)), (second, (b, a))):
            store = JsonlStore(path)
            for record in order:
                store.put(record.to_jsonable())
            store.compact()
            store.close()
        with open(first, "rb") as handle:
            left = handle.read()
        with open(second, "rb") as handle:
            right = handle.read()
        assert left == right  # insertion order compacted away

    def test_registry_find_by_prefix(self, tmp_path):
        registry = RunRegistry.open(str(tmp_path / "r.jsonl"))
        record = make_record()
        registry.record(record)
        assert registry.find(record.run_id[:6]).run_id == record.run_id
        with pytest.raises(UnknownRunError, match="no registry record"):
            registry.find("ffffff")
        registry.close()

    def test_registry_find_ambiguous_prefix(self, tmp_path):
        registry = RunRegistry.open(str(tmp_path / "r.jsonl"))
        for seed in range(40):  # enough records to share a hex prefix
            registry.record(make_record(seed=seed))
        ids = sorted(r.run_id for r in registry.records())
        shared = os.path.commonprefix(ids[:2])
        if shared:
            with pytest.raises(UnknownRunError, match="ambiguous"):
                registry.find(shared[:1])
        registry.close()


# ---------------------------------------------------------------------------
# Lineage + GC
# ---------------------------------------------------------------------------

class TestLineageAndGc:
    def _family(self, registry):
        parent = RunRecord(app="", variant="", kind="sweep",
                           params_digest="", seed=0,
                           code_version=code_version(),
                           meta={"identity": "t"})
        registry.record(parent)
        children = [
            make_record(seed=seed, kind="sweep-cell",
                        parent_id=parent.run_id, cell_key=f"cell-{seed}")
            for seed in (1, 2, 3)
        ]
        for child in children:
            registry.record(child)
        return parent, children

    def test_lineage_tree(self, tmp_path):
        registry = RunRegistry.open(str(tmp_path / "r.jsonl"))
        parent, children = self._family(registry)
        assert {c.run_id for c in registry.children(parent.run_id)} == \
            {c.run_id for c in children}
        assert [a.run_id for a in registry.ancestors(children[0].run_id)] == \
            [parent.run_id]
        view = registry.lineage(parent.run_id)
        assert view["ancestors"] == []
        assert len(view["tree"]["children"]) == 3
        registry.close()

    def test_gc_keeps_n_per_population_and_prunes_orphans(self, tmp_path):
        registry = RunRegistry.open(str(tmp_path / "r.jsonl"))
        parent, children = self._family(registry)
        keep = sorted(children, key=lambda r: r.run_id)[-1:]
        dry = registry.gc(keep=1, dry_run=True)
        assert len(registry.records()) == 4  # dry run wrote nothing
        pruned = registry.gc(keep=1)
        assert sorted(pruned) == sorted(dry)
        remaining = {r.run_id for r in registry.records()}
        assert keep[0].run_id in remaining
        assert parent.run_id in remaining  # still has a child
        assert len(remaining) == 2
        with pytest.raises(RegistryError):
            registry.gc(keep=0)
        registry.close()


# ---------------------------------------------------------------------------
# Recorder: payload classification + sidecar merge
# ---------------------------------------------------------------------------

class TestRecorder:
    def test_unknown_payload_shape_rejected(self):
        with pytest.raises(RegistryError, match="no known shape"):
            records_for_payload("x", {"bogus": 1})

    def test_oracle_payload_yields_cell_and_variants(self, tmp_path):
        payload = {
            "app": "agrep", "profile": "stuck-disk", "passed": False,
            "detail": "output digests diverge",
            "original": run_payload(variant="original"),
            "speculating": run_payload(variant="speculating"),
        }
        records = records_for_payload("oracle/agrep/stuck-disk", payload)
        assert [r.kind for r in records] == \
            ["oracle-cell", "oracle-variant", "oracle-variant"]
        cell, first, second = records
        assert cell.chaos_profile == "stuck-disk"
        assert cell.verdicts[0]["monitor"] == "differential-oracle"
        assert "original" not in cell.result  # sub-payloads live in children
        assert first.parent_id == cell.run_id
        assert second.parent_id == cell.run_id

    def test_sidecar_merge_is_idempotent(self, tmp_path):
        base = str(tmp_path / "r.jsonl")
        registry = RunRegistry.open(base)
        payload = run_payload()
        ids = record_payload(registry, "cell-a", payload)
        append_payload_records(sidecar_path(base, 0), "cell-a", payload)
        append_payload_records(sidecar_path(base, 1), "cell-a", payload)
        merged = merge_worker_sidecars(registry, base)
        assert merged == 0  # parent already had the records
        assert [r.run_id for r in registry.records()] == ids
        assert not os.path.exists(sidecar_path(base, 0))  # consumed
        registry.close()


# ---------------------------------------------------------------------------
# Similarity
# ---------------------------------------------------------------------------

class TestSimilarity:
    def test_nearest_neighbor_ranks_same_config_first(self, tmp_path):
        registry = RunRegistry.open(str(tmp_path / "r.jsonl"))
        target = make_record(seed=1999)
        twin = make_record(seed=2000)
        cousin = make_record(app="gnuld", seed=1999, cycles=9_000_000)
        for record in (target, twin, cousin):
            registry.record(record)
        neighbors = similar_runs(registry, target)
        assert [n.record.run_id for n in neighbors] == \
            [twin.run_id, cousin.run_id]
        assert neighbors[0].score > neighbors[1].score
        assert any("same app" in why for why in neighbors[0].why)
        registry.close()


# ---------------------------------------------------------------------------
# Regression detection (the acceptance scenario)
# ---------------------------------------------------------------------------

class TestRegressionDetector:
    def _baseline(self, registry, cycles=4_000_000, count=5):
        for seed in range(1999, 1999 + count):
            # Small seed-dependent jitter, like real layout jitter.
            registry.record(make_record(
                seed=seed, cycles=cycles + 1000 * (seed % 7),
            ))

    def test_planted_slowdown_is_flagged(self, tmp_path):
        registry = RunRegistry.open(str(tmp_path / "r.jsonl"))
        self._baseline(registry)
        slow = make_record(seed=2042, cycles=int(4_000_000 * 1.15))
        registry.record(slow)
        report = check_run(registry, slow)
        assert not report.clean
        finding = report.findings[0]
        assert finding.metric == "elapsed_cycles"
        assert finding.run_id == slow.run_id
        assert finding.drift_pct > 10.0
        assert "elapsed_cycles" in finding.describe()
        registry.close()

    def test_identical_rerun_stays_silent(self, tmp_path):
        registry = RunRegistry.open(str(tmp_path / "r.jsonl"))
        self._baseline(registry)
        rerun = make_record(seed=1999, cycles=4_000_000 + 1000 * (1999 % 7))
        assert registry.record(rerun) in \
            {r.run_id for r in registry.records()}  # deduplicated
        report = check_all(registry)
        assert report.clean
        assert report.checked == 5
        registry.close()

    def test_improvement_is_not_flagged(self, tmp_path):
        registry = RunRegistry.open(str(tmp_path / "r.jsonl"))
        self._baseline(registry)
        fast = make_record(seed=2042, cycles=2_000_000)
        registry.record(fast)
        assert check_run(registry, fast).clean
        registry.close()

    def test_small_population_is_skipped(self, tmp_path):
        registry = RunRegistry.open(str(tmp_path / "r.jsonl"))
        self._baseline(registry, count=2)
        slow = make_record(seed=2042, cycles=40_000_000)
        registry.record(slow)
        report = check_run(registry, slow)
        assert report.clean
        assert report.skipped_no_baseline == 1
        registry.close()

    def test_chaos_runs_never_pool_with_fault_free(self, tmp_path):
        registry = RunRegistry.open(str(tmp_path / "r.jsonl"))
        self._baseline(registry)
        chaotic = make_record(seed=2042, chaos="stuck-disk",
                              cycles=40_000_000)
        registry.record(chaotic)
        assert check_run(registry, chaotic).skipped_no_baseline == 1
        loose = check_run(registry, chaotic,
                          parse_match_keys("app,variant"))
        assert not loose.clean  # relaxed keys pool it in, and it's 10x
        registry.close()

    def test_parse_match_keys_rejects_unknown(self):
        assert parse_match_keys(None) == \
            ("app", "variant", "kind", "chaos", "params")
        with pytest.raises(RegistryError, match="hostname"):
            parse_match_keys("app,hostname")


# ---------------------------------------------------------------------------
# Auto-tuner
# ---------------------------------------------------------------------------

class TestAutoTuner:
    FAST_PARAMS = {"throttle_cancel_limit": 2, "throttle_disable_reads": 64,
                   "watchdog_restart_limit": 64, "watchdog_fault_limit": 256,
                   "watchdog_min_accuracy": 0.02,
                   "watchdog_accuracy_window": 256}

    def test_proposes_fastest_healthy_same_chaos_run(self, tmp_path):
        registry = RunRegistry.open(str(tmp_path / "r.jsonl"))
        best = make_record(seed=1, chaos="stuck-disk", cycles=1_000_000,
                           spec_params=self.FAST_PARAMS)
        slower = make_record(seed=2, chaos="stuck-disk", cycles=2_000_000)
        tripped = make_record(seed=3, chaos="stuck-disk", cycles=500_000,
                              watchdog=True)
        fault_free = make_record(seed=4, cycles=100_000)
        for record in (best, slower, tripped, fault_free):
            registry.record(record)
        proposal = AutoTuner(registry).propose("agrep", "stuck-disk")
        assert proposal is not None
        assert proposal.spec_params == self.FAST_PARAMS
        assert best.run_id in proposal.source_run_ids
        assert tripped.run_id not in proposal.source_run_ids
        assert "stuck-disk" in proposal.basis
        registry.close()

    def test_falls_back_to_fault_free_tier(self, tmp_path):
        registry = RunRegistry.open(str(tmp_path / "r.jsonl"))
        registry.record(make_record(seed=4, cycles=100_000,
                                    spec_params=self.FAST_PARAMS))
        proposal = AutoTuner(registry).propose("agrep", "stuck-disk")
        assert proposal is not None
        assert "fallback from chaos profile 'none'" in proposal.basis
        registry.close()

    def test_empty_registry_proposes_nothing(self, tmp_path):
        registry = RunRegistry.open(str(tmp_path / "r.jsonl"))
        assert AutoTuner(registry).propose("agrep") is None
        registry.close()

    def test_validate_rejects_unknown_knob(self):
        with pytest.raises(RegistryError, match="cache_capacity"):
            validate_spec_params({"cache_capacity": 1})

    def test_provenance_version_gate(self):
        cfg = ExperimentConfig(app="agrep")
        with pytest.raises(RegistryError, match="version"):
            apply_provenance(cfg, {"provenance_version": 99})
        with pytest.raises(RegistryError, match="spec_params"):
            apply_provenance(cfg, {"provenance_version": 1})

    def test_proposal_and_provenance_replay_agree(self, tmp_path):
        registry = RunRegistry.open(str(tmp_path / "r.jsonl"))
        registry.record(make_record(seed=1, chaos="stuck-disk",
                                    cycles=1_000_000,
                                    spec_params=self.FAST_PARAMS))
        proposal = AutoTuner(registry).propose("agrep", "stuck-disk")
        base = ExperimentConfig(app="agrep", workload_scale=SCALE,
                                variant=Variant.SPECULATING,
                                fault_profile="stuck-disk")
        tuned = apply_proposal(base, proposal)
        assert spec_tunables(tuned.system.spechint) == self.FAST_PARAMS
        replayed = apply_provenance(base, tuned.tuning_provenance)
        assert replayed == tuned
        registry.close()


# ---------------------------------------------------------------------------
# End-to-end: real runs, tuned replay byte-identity (acceptance)
# ---------------------------------------------------------------------------

class TestEndToEnd:
    def test_tuned_postgres_chaos_run_replays_byte_identically(self, tmp_path):
        registry = RunRegistry.open(str(tmp_path / "r.jsonl"))
        base = ExperimentConfig(app="postgres20", workload_scale=SCALE,
                                variant=Variant.SPECULATING,
                                fault_profile="stuck-disk")
        seeded = base.with_(system=base.system.replace(seed=2000))
        record_payload(registry, None, run_experiment(seeded).to_jsonable())

        proposal = AutoTuner(registry).propose("postgres20", "stuck-disk")
        assert proposal is not None
        tuned_cfg = apply_proposal(base, proposal)
        tuned = run_experiment(tuned_cfg)
        assert tuned.tuning_provenance == proposal.to_provenance()
        (tuned_id,) = record_payload(registry, None, tuned.to_jsonable())

        # Replay purely from the registry's provenance record: same
        # payload bytes, same content-addressed id (deduplicated).
        provenance = registry.get(tuned_id).tuning
        replay_cfg = apply_provenance(base, provenance)
        replay = run_experiment(replay_cfg)
        assert replay.to_jsonable() == tuned.to_jsonable()
        (replay_id,) = record_payload(registry, None, replay.to_jsonable())
        assert replay_id == tuned_id
        registry.close()


# ---------------------------------------------------------------------------
# Satellite: RunResult schema versioning
# ---------------------------------------------------------------------------

class TestResultSchemaVersion:
    def _payload(self):
        cfg = ExperimentConfig(app="agrep", workload_scale=SCALE,
                               variant=Variant.SPECULATING)
        return run_experiment(cfg).to_jsonable()

    def test_v2_round_trips_registry_fields(self):
        data = self._payload()
        assert data["schema_version"] == RESULT_SCHEMA_VERSION
        again = RunResult.from_jsonable(data)
        assert again.params_digest == data["params_digest"]
        assert again.seed == data["seed"]
        assert again.spec_params == data["spec_params"]
        assert again.to_jsonable() == data

    def test_v1_payload_still_accepted(self):
        data = self._payload()
        del data["schema_version"]
        for name in ("params_digest", "seed", "spec_params",
                     "tuning_provenance"):
            data.pop(name, None)
        again = RunResult.from_jsonable(data)
        assert again.params_digest == ""
        assert again.cycles == data["cycles"]

    def test_unknown_version_rejected(self):
        data = self._payload()
        data["schema_version"] = 99
        with pytest.raises(RegistryError, match="schema_version"):
            RunResult.from_jsonable(data)


# ---------------------------------------------------------------------------
# Satellite: per-disk hedge counters in the trace summary
# ---------------------------------------------------------------------------

class TestHedgeCountersInTraceSummary:
    def test_summary_per_disk_io_includes_hedges_won(self):
        from repro.sim.clock import SimClock
        from repro.trace import TraceAnalyzer, Tracer

        cfg = ExperimentConfig(app="agrep", workload_scale=SCALE,
                               variant=Variant.SPECULATING)
        result = run_experiment(cfg)
        result.counters["disk2.hedges"] = 3
        result.counters["disk2.hedges_won"] = 2
        per_disk = result.per_disk_io_counters()
        assert per_disk[2] == {"hedges": 3, "hedges_won": 2}

        tracer = Tracer(SimClock())
        summary = TraceAnalyzer(tracer, result=result).summary()
        assert summary["per_disk_io"]["2"] == {"hedges": 3, "hedges_won": 2}


# ---------------------------------------------------------------------------
# CLI: the `repro runs` family
# ---------------------------------------------------------------------------

class TestRunsCli:
    @pytest.fixture()
    def populated(self, tmp_path):
        path = str(tmp_path / "registry.jsonl")
        registry = RunRegistry.open(path)
        for seed in range(1999, 2004):
            registry.record(make_record(
                seed=seed, cycles=4_000_000 + 1000 * (seed % 7)))
        slow = make_record(seed=2042, cycles=int(4_000_000 * 1.2))
        registry.record(slow)
        registry.compact()
        registry.close()
        return path, slow.run_id

    def _main(self, *argv):
        from repro.cli import main
        return main(list(argv))

    def test_list_show_diff_similar_lineage(self, populated, capsys):
        path, slow_id = populated
        assert self._main("runs", "list", "--registry", path) == 0
        assert "6 record(s)" in capsys.readouterr().out
        assert self._main("runs", "show", "--registry", path,
                          slow_id[:8]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["run_id"] == slow_id
        assert self._main("runs", "diff", "--registry", path,
                          slow_id, slow_id) == 0
        assert self._main("runs", "similar", "--registry", path,
                          slow_id) == 0
        assert "score" in capsys.readouterr().out
        assert self._main("runs", "lineage", "--registry", path,
                          slow_id) == 0

    def test_regressions_exit_code_and_filtering(self, populated, capsys):
        path, slow_id = populated
        # The planted 20% slowdown flips the exit code for CI.
        assert self._main("runs", "regressions", "--registry", path) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and slow_id[:12] in out
        # Checking only a healthy run stays green.
        assert self._main("runs", "regressions", "--registry", path,
                          "--min-baseline", "6") == 0

    def test_gc_dry_run(self, populated, capsys):
        path, _ = populated
        assert self._main("runs", "gc", "--registry", path,
                          "--keep", "2", "--dry-run") == 0
        assert "would prune 4" in capsys.readouterr().out

    def test_unknown_run_is_an_error_not_a_crash(self, populated, capsys):
        path, _ = populated
        assert self._main("runs", "show", "--registry", path, "ffff") == 1
        assert "UnknownRunError" in capsys.readouterr().err

    def test_run_flags_require_registry(self, capsys):
        assert self._main("run", "agrep", "--scale", "0.05",
                          "--auto-tune") == 1
        assert "--registry" in capsys.readouterr().err
