"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import pytest

from repro.fs.filesystem import FileSystem
from repro.harness.runner import System, build_system
from repro.kernel.process import Process
from repro.params import (
    ArrayParams,
    CacheParams,
    SpecHintParams,
    SystemConfig,
    TipParams,
)
from repro.vm.assembler import Assembler
from repro.vm.binary import Binary
from repro.vm.isa import SYS_EXIT, Reg
from repro.vm.stdlib import emit_stdlib


def small_system_config(
    ndisks: int = 4,
    cache_blocks: int = 64,
    ignore_hints: bool = False,
    ncpus: int = 1,
    spechint: Optional[SpecHintParams] = None,
) -> SystemConfig:
    """A small, fast system configuration for unit/integration tests."""
    return SystemConfig(
        array=ArrayParams(ndisks=ndisks),
        cache=CacheParams(capacity_blocks=cache_blocks),
        tip=TipParams(ignore_hints=ignore_hints),
        spechint=spechint or SpecHintParams(),
        ncpus=ncpus,
    )


def make_populated_fs(nfiles: int = 4, blocks_each: int = 4) -> FileSystem:
    """A file system with a few files of known content."""
    fs = FileSystem()
    for i in range(nfiles):
        payload = bytes([(i + j) % 256 for j in range(blocks_each * 8192)])
        fs.create(f"f{i}.dat", payload)
    return fs


def make_system(
    fs: Optional[FileSystem] = None,
    config: Optional[SystemConfig] = None,
) -> System:
    """A fully wired small system."""
    if fs is None:
        fs = make_populated_fs()
    return build_system(config or small_system_config(), fs)


def assemble(build: Callable[[Assembler], None], name: str = "test",
             with_stdlib: bool = False) -> Binary:
    """Assemble a tiny program.

    ``build`` receives the assembler inside an open ``main`` function;
    it must end with an exit (or the helper's trailing exit runs).
    """
    asm = Assembler(name)
    if with_stdlib:
        emit_stdlib(asm)
    asm.entry("main")
    with asm.function("main"):
        build(asm)
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
    return asm.finish()


def run_program(
    build: Callable[[Assembler], None],
    fs: Optional[FileSystem] = None,
    config: Optional[SystemConfig] = None,
    with_stdlib: bool = False,
) -> Tuple[System, Process]:
    """Assemble, spawn and run a tiny program; returns (system, process)."""
    system = make_system(fs, config)
    binary = assemble(build, with_stdlib=with_stdlib)
    process = system.kernel.spawn(binary)
    system.kernel.run()
    return system, process


@pytest.fixture
def system() -> System:
    return make_system()


@pytest.fixture
def fs() -> FileSystem:
    return make_populated_fs()
