"""Tests for the assembler and binary format."""

import pytest

from repro.errors import AssemblyError
from repro.vm.assembler import Assembler
from repro.vm.binary import INSN_BYTES
from repro.vm.isa import Op, Reg
from repro.vm.memory import DATA_BASE


def minimal(name="t"):
    asm = Assembler(name)
    asm.entry("main")
    return asm


class TestDataSection:
    def test_word_address_and_alignment(self):
        asm = minimal()
        asm.data_bytes("pad", b"xyz")
        addr = asm.data_word("w", 7)
        assert addr % 8 == 0
        assert addr >= DATA_BASE + 3

    def test_asciiz_nul_terminated(self):
        asm = minimal()
        asm.data_asciiz("s", "hi")
        with asm.function("main"):
            asm.halt()
        binary = asm.finish()
        offset = binary.data_symbols["s"] - DATA_BASE
        assert binary.data[offset:offset + 3] == b"hi\x00"

    def test_duplicate_symbol_rejected(self):
        asm = minimal()
        asm.data_word("x")
        with pytest.raises(AssemblyError):
            asm.data_word("x")

    def test_data_addr_lookup(self):
        asm = minimal()
        addr = asm.data_space("buf", 64)
        assert asm.data_addr("buf") == addr
        with pytest.raises(AssemblyError):
            asm.data_addr("missing")

    def test_data_words_array(self):
        asm = minimal()
        asm.data_words("arr", [1, 2, 3])
        with asm.function("main"):
            asm.halt()
        binary = asm.finish()
        offset = binary.data_symbols["arr"] - DATA_BASE
        assert binary.data[offset:offset + 8] == (1).to_bytes(8, "little")


class TestLabelsAndFixups:
    def test_branch_target_resolved(self):
        asm = minimal()
        with asm.function("main"):
            asm.label("top")
            asm.jmp("top")
        binary = asm.finish()
        jmp = binary.text[0]
        assert jmp.op is Op.JMP
        assert jmp.c == 0

    def test_forward_reference_resolved(self):
        asm = minimal()
        with asm.function("main"):
            asm.jmp("end")
            asm.nop()
            asm.label("end")
            asm.halt()
        binary = asm.finish()
        assert binary.text[0].c == 2

    def test_unknown_label_rejected(self):
        asm = minimal()
        with asm.function("main"):
            asm.jmp("nowhere")
        with pytest.raises(AssemblyError):
            asm.finish()

    def test_duplicate_label_rejected(self):
        asm = minimal()
        with asm.function("main"):
            asm.label("x")
            with pytest.raises(AssemblyError):
                asm.label("x")

    def test_missing_entry_rejected(self):
        asm = Assembler("t")
        with asm.function("main"):
            asm.halt()
        with pytest.raises(AssemblyError):
            asm.finish()


class TestFunctions:
    def test_function_extent_recorded(self):
        asm = minimal()
        with asm.function("f"):
            asm.nop()
            asm.ret()
        with asm.function("main"):
            asm.halt()
        binary = asm.finish()
        f = binary.function("f")
        assert (f.entry, f.end) == (0, 2)
        assert binary.function_at_entry(0) is f
        assert binary.function_containing(1) is f

    def test_nested_function_rejected(self):
        asm = minimal()
        with pytest.raises(AssemblyError):
            with asm.function("a"):
                with asm.function("b"):
                    pass

    def test_output_routine_flag(self):
        asm = minimal()
        with asm.function("printf", output_routine=True):
            asm.ret()
        with asm.function("main"):
            asm.halt()
        binary = asm.finish()
        assert "printf" in binary.output_routines

    def test_optimized_stdlib_flag(self):
        asm = minimal()
        with asm.function("memcpy", optimized_stdlib=True):
            asm.ret()
        with asm.function("main"):
            asm.halt()
        binary = asm.finish()
        assert "memcpy" in binary.optimized_stdlib


class TestMetadata:
    def test_stack_relative_marked(self):
        asm = minimal()
        with asm.function("main"):
            asm.load(Reg.t0, Reg.sp, 8)
            asm.load(Reg.t0, Reg.fp, 8)
            asm.load(Reg.t0, Reg.a0, 8)
            asm.halt()
        binary = asm.finish()
        assert binary.text[0].get_meta("stack")
        assert binary.text[1].get_meta("stack")
        assert not binary.text[2].get_meta("stack")

    def test_call_target_recorded(self):
        asm = minimal()
        with asm.function("f"):
            asm.ret()
        with asm.function("main"):
            asm.call("f")
            asm.halt()
        binary = asm.finish()
        call = binary.text[1]
        assert call.get_meta("call_target") == "f"
        assert call.c == 0

    def test_la_function_address(self):
        asm = minimal()
        with asm.function("f"):
            asm.ret()
        with asm.function("main"):
            asm.la(Reg.t0, "f")
            asm.halt()
        binary = asm.finish()
        la = binary.text[1]
        assert la.get_meta("funcaddr") == "f"
        assert la.c == 0  # the function's entry index

    def test_la_data_symbol(self):
        asm = minimal()
        asm.data_word("g", 0)
        with asm.function("main"):
            asm.la(Reg.t0, "g")
            asm.halt()
        binary = asm.finish()
        assert binary.text[0].c == binary.data_symbols["g"]

    def test_enclosing_function_recorded(self):
        asm = minimal()
        with asm.function("main"):
            asm.nop()
        binary = asm.finish()
        assert binary.text[0].get_meta("func") == "main"


class TestJumpTables:
    def test_recognized_table(self):
        asm = minimal()
        with asm.function("main"):
            table = asm.jump_table(["a", "b"])
            asm.switch(Reg.t0, table)
            asm.label("a")
            asm.nop()
            asm.label("b")
            asm.halt()
        binary = asm.finish()
        assert binary.jump_table(0).targets == [1, 2]
        assert binary.jump_table(0).recognized

    def test_unrecognized_flag(self):
        asm = minimal()
        with asm.function("main"):
            table = asm.jump_table(["a"], recognized=False)
            asm.switch(Reg.t0, table)
            asm.label("a")
            asm.halt()
        binary = asm.finish()
        assert not binary.jump_table(0).recognized


class TestRegisters:
    def test_register_by_name(self):
        asm = minimal()
        with asm.function("main"):
            asm.li("t3", 5)
            asm.halt()
        binary = asm.finish()
        assert binary.text[0].a == int(Reg.t3)

    def test_unknown_register_rejected(self):
        asm = minimal()
        with asm.function("main"):
            with pytest.raises(AssemblyError):
                asm.li("bogus", 1)
            asm.halt()

    def test_zero_register_not_writable(self):
        asm = minimal()
        with asm.function("main"):
            with pytest.raises(AssemblyError):
                asm.li(Reg.zero, 1)
            with pytest.raises(AssemblyError):
                asm.add(Reg.zero, Reg.t0, Reg.t1)
            with pytest.raises(AssemblyError):
                asm.load(Reg.zero, Reg.t0, 0)
            asm.halt()

    def test_zero_register_readable(self):
        asm = minimal()
        with asm.function("main"):
            asm.add(Reg.t0, Reg.zero, Reg.zero)  # reads are fine
            asm.store(Reg.zero, Reg.sp, -8)      # as a store *value* too
            asm.halt()
        asm.finish()

    def test_size_accounting(self):
        asm = minimal()
        asm.data_bytes("d", b"1234")
        with asm.function("main"):
            asm.nop()
            asm.halt()
        binary = asm.finish()
        assert binary.text_bytes == 2 * INSN_BYTES
        assert binary.data_bytes == 4
        assert binary.size_bytes == binary.text_bytes + 4 + 4096
