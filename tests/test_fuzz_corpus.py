"""Replay every committed fuzz reproducer; all must be green on main.

``tests/corpus/`` holds minimal fault schedules that once tripped an
invariant monitor (each file's ``note`` says which planted bug found
it).  On a healthy tree they replay clean — a red replay here means a
regression reintroduced the class of bug the reproducer documents.
``repro fuzz replay FILE`` runs the same check from the command line.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.faults.shrink import Reproducer
from repro.harness.fuzz import replay_case

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_seeded():
    assert len(CORPUS) >= 2, (
        "tests/corpus/ must hold at least two shrunk reproducers"
    )


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS]
)
def test_corpus_entry_replays_green(path):
    reproducer = Reproducer.load(path)
    assert reproducer.monitor, f"{path} lost its monitor name"
    assert reproducer.note, f"{path} must document the bug that found it"
    result = replay_case(
        reproducer.case, workload_scale=reproducer.workload_scale
    )
    assert result.passed, (
        f"{os.path.basename(path)} replayed RED: "
        + "; ".join(str(v) for v in result.violations)
    )
