"""Tests for the speculation isolation auditor.

Covers the three layers of the isolation contract — write containment,
the tamper-evident audit table, and the restart-boundary digest — plus the
graded quarantine response, and the end-to-end guarantee: a deliberately
broken COW hook is caught as a typed :class:`IsolationViolation` and
quarantined without corrupting the run's output.
"""

import pytest

from repro.errors import IsolationViolation
from repro.harness.config import ExperimentConfig, Variant
from repro.harness.runner import run_experiment
from repro.params import SpecHintParams
from repro.spechint.auditor import (
    AuditTable,
    IsolationAuditor,
    IsolationQuarantine,
)
from repro.spechint.cow import CowMap
from repro.vm.memory import (
    DATA_BASE,
    SPEC_HEAP_BASE,
    AddressSpace,
)


class _Proc:
    """Minimal process stand-in for auditor unit tests."""

    def __init__(self, data=b"\xAA" * 4096):
        self.mem = AddressSpace(data)
        self.fds = {}


class TestAuditTable:
    def test_empty_table_verifies(self):
        table = AuditTable()
        table.verify()
        assert len(table) == 0

    def test_records_chain_and_verify(self):
        table = AuditTable()
        table.record("write_suppressed", "fd=1 len=64")
        table.record("syscall_blocked", "num=9")
        table.record("restart", "cancelled=3")
        table.verify()
        assert table.records_total == 3
        assert len({r.digest for r in table.records()}) == 3

    def test_tampered_detail_breaks_chain(self):
        table = AuditTable()
        table.record("write_suppressed", "fd=1 len=64")
        table.record("restart", "cancelled=0")
        table.records()[0].detail = "fd=1 len=65"  # rewrite history
        with pytest.raises(IsolationViolation, match="tampered"):
            table.verify()

    def test_tampered_head_detected(self):
        table = AuditTable()
        table.record("restart")
        table.head_digest = "0" * 24
        with pytest.raises(IsolationViolation, match="head digest"):
            table.verify()

    def test_folding_keeps_chain_verifiable(self):
        table = AuditTable(capacity=4)
        for i in range(20):
            table.record("write_suppressed", f"n={i}")
        assert len(table) == 4
        assert table.records_total == 20
        table.verify()

    def test_tamper_after_fold_still_detected(self):
        table = AuditTable(capacity=4)
        for i in range(10):
            table.record("write_suppressed", f"n={i}")
        table.records()[-1].kind = "restart"
        with pytest.raises(IsolationViolation):
            table.verify()


class TestQuarantine:
    def test_inactive_initially(self):
        q = IsolationQuarantine(base_reads=4, max_violations=3)
        assert not q.active
        assert not q.tick_read()

    def test_windows_double_per_violation(self):
        q = IsolationQuarantine(base_reads=4, max_violations=5)
        q.impose("first")
        assert q.reads_remaining == 4
        q.impose("second")
        assert q.reads_remaining == 8
        q.impose("third")
        assert q.reads_remaining == 16

    def test_tick_releases_after_window(self):
        q = IsolationQuarantine(base_reads=3, max_violations=5)
        q.impose("x")
        assert q.active
        assert not q.tick_read()
        assert not q.tick_read()
        assert q.tick_read()  # third read releases
        assert not q.active

    def test_permanent_after_max_violations(self):
        q = IsolationQuarantine(base_reads=2, max_violations=2)
        q.impose("one")
        q.impose("two")
        assert q.permanent
        assert q.active
        assert not q.tick_read()  # never releases
        assert q.reasons == ["one", "two"]


class TestWriteContainment:
    def test_spec_heap_writes_permitted(self):
        proc = _Proc()
        auditor = IsolationAuditor(proc)
        proc.mem.spec_sbrk(128)
        auditor.arm(proc.mem)
        proc.mem.store_word(SPEC_HEAP_BASE, 42)  # no raise
        auditor.disarm(proc.mem)
        assert auditor.violations == 0

    def test_data_segment_write_vetoed_before_landing(self):
        proc = _Proc()
        auditor = IsolationAuditor(proc)
        before = proc.mem.raw_read(DATA_BASE, 8)
        auditor.arm(proc.mem)
        with pytest.raises(IsolationViolation, match="escaped COW containment"):
            proc.mem.store_word(DATA_BASE, 0xDEAD)
        auditor.disarm(proc.mem)
        # The veto fired before the bytes landed.
        assert proc.mem.raw_read(DATA_BASE, 8) == before
        assert auditor.violations == 1

    def test_raw_write_also_guarded(self):
        proc = _Proc()
        auditor = IsolationAuditor(proc)
        auditor.arm(proc.mem)
        with pytest.raises(IsolationViolation):
            proc.mem.raw_write(DATA_BASE, b"oops")
        auditor.disarm(proc.mem)

    def test_disarm_restores_normal_writes(self):
        proc = _Proc()
        auditor = IsolationAuditor(proc)
        auditor.arm(proc.mem)
        auditor.disarm(proc.mem)
        proc.mem.store_word(DATA_BASE, 7)  # no guard, no raise
        assert proc.mem.load_word(DATA_BASE) == 7


class TestCowContainment:
    def test_normal_cow_writes_pass(self):
        proc = _Proc()
        auditor = IsolationAuditor(proc)
        cow = CowMap(proc.mem, SpecHintParams(), auditor=auditor)
        cow.store_word(DATA_BASE, 1)
        cow.write_bytes(DATA_BASE + 100, b"contained")
        assert auditor.cow_writes_checked == 2
        assert auditor.violations == 0

    def test_uncopied_region_is_a_violation(self):
        proc = _Proc()
        auditor = IsolationAuditor(proc)
        cow = CowMap(proc.mem, SpecHintParams(), auditor=auditor)
        with pytest.raises(IsolationViolation, match="containment map"):
            auditor.check_cow_containment(cow, DATA_BASE, 8)


class TestRestartBoundary:
    def test_capture_then_verify_clean(self):
        proc = _Proc()
        auditor = IsolationAuditor(proc)
        regs = [0] * 32
        auditor.capture_boundary(regs)
        auditor.verify_restart_boundary(regs)
        assert auditor.boundary_verifies == 1

    def test_fd_binding_change_detected(self):
        from repro.kernel.process import FdState

        proc = _Proc()
        auditor = IsolationAuditor(proc)
        auditor.capture_boundary(None)
        proc.fds[3] = FdState(3, None, "sneaky")  # non-shadow state mutated
        with pytest.raises(IsolationViolation, match="non-shadow state"):
            auditor.verify_restart_boundary(None)

    def test_heap_break_change_detected(self):
        proc = _Proc()
        auditor = IsolationAuditor(proc)
        auditor.capture_boundary(None)
        proc.mem.sbrk(4096)
        with pytest.raises(IsolationViolation, match="non-shadow state"):
            auditor.verify_restart_boundary(None)

    def test_saved_regs_mutation_detected(self):
        proc = _Proc()
        auditor = IsolationAuditor(proc)
        regs = [0] * 32
        auditor.capture_boundary(regs)
        regs[5] = 999
        with pytest.raises(IsolationViolation, match="register snapshot"):
            auditor.verify_restart_boundary(regs)

    def test_spec_heap_growth_is_not_a_violation(self):
        """The speculative heap is shadow state: growing it between the
        capture and the restart is exactly what speculation is allowed
        to do."""
        proc = _Proc()
        auditor = IsolationAuditor(proc)
        auditor.capture_boundary(None)
        proc.mem.spec_sbrk(4096)
        auditor.verify_restart_boundary(None)  # no raise


SCALE = 0.3


def _result(app="agrep", variant=Variant.SPECULATING, **kwargs):
    return run_experiment(ExperimentConfig(
        app=app, variant=variant, workload_scale=SCALE, **kwargs
    ))


class TestEndToEnd:
    def test_clean_run_has_no_violations(self):
        result = _result()
        assert result.isolation_violations == 0
        assert result.quarantines == 0
        assert result.audit_records >= 0
        assert result.audit_head_digest
        # Every completed restart passed the cancel-drain verification.
        assert result.c("spec.cancel_drain_verified") == result.spec_restarts

    def test_broken_cow_hook_is_caught_and_quarantined(self, monkeypatch):
        """A COW hook rewritten (test-only) to write straight into main
        memory must be vetoed as an IsolationViolation, quarantined, and
        the run must still complete with baseline-identical output.

        Runs on xds rather than agrep: agrep's shadow code performs no
        wrapped stores at this scale, so its speculation never reaches the
        COW write path at all.
        """

        def broken_write(self, addr, payload):
            self.mem.raw_write(addr, payload)  # escape containment
            return 0

        monkeypatch.setattr(CowMap, "_write", broken_write)
        result = _result(app="xds")
        assert result.isolation_violations > 0
        assert result.quarantines > 0
        assert result.spec_parks.get("isolation_quarantine", 0) > 0

        baseline = _result(app="xds", variant=Variant.ORIGINAL)
        assert result.output == baseline.output
        assert result.read_trace == baseline.read_trace

    def test_broken_cow_hook_fault_events_recorded(self, monkeypatch):
        def broken_write(self, addr, payload):
            self.mem.raw_write(addr, payload)
            return 0

        monkeypatch.setattr(CowMap, "_write", broken_write)
        result = _result(app="xds")
        events = result.fault_events()
        assert events.get("spec.isolation_violations", 0) > 0
        assert events.get("spec.quarantines", 0) > 0

    def test_leaked_hints_at_restart_are_a_violation(self, monkeypatch):
        """If TIPIO_CANCEL_ALL fails to drain the queue, the restart's
        drain check must catch it — quarantine, not silent corruption."""
        from repro.tip.manager import TipManager

        monkeypatch.setattr(
            TipManager, "outstanding_hints", lambda self, pid: 3
        )
        result = _result()
        assert result.isolation_violations > 0
        assert result.spec_parks.get("isolation_quarantine", 0) > 0
        baseline = _result(variant=Variant.ORIGINAL)
        assert result.output == baseline.output

    def test_audit_disabled_param_runs_without_auditor(self):
        from repro.params import SystemConfig

        params = SpecHintParams(isolation_audit=False)
        system = SystemConfig(spechint=params)
        result = _result(system=system)
        assert result.audit_head_digest == ""
        assert result.isolation_violations == 0
