"""Tests for the TIP informed prefetching and caching manager."""


from repro.fs.cache import BlockCache
from repro.fs.filesystem import FileSystem
from repro.fs.readahead import SequentialReadAhead
from repro.params import (
    ArrayParams,
    BLOCK_SIZE,
    CpuParams,
    DiskParams,
    TipParams,
)
from repro.sim.clock import SimClock
from repro.sim.engine import EventEngine
from repro.sim.stats import StatRegistry
from repro.storage.striping import StripedArray
from repro.tip.hints import HintSegment, Ioctl
from repro.tip.manager import TipManager

PID = 1


def make_tip(cache_blocks=16, nfiles=2, file_blocks=32, tip_params=None):
    fs = FileSystem()
    for i in range(nfiles):
        fs.create(f"f{i}", bytes(file_blocks * BLOCK_SIZE))
    clock = SimClock()
    engine = EventEngine(clock)
    stats = StatRegistry()
    array = StripedArray(
        fs.total_blocks, ArrayParams(), DiskParams(), CpuParams(), engine, stats
    )
    cache = BlockCache(cache_blocks, stats)
    manager = TipManager(
        fs, array, cache, SequentialReadAhead(), stats, tip_params or TipParams()
    )
    return manager, fs, engine, stats


def seg(fs, path, offset, length, via=Ioctl.TIPIO_FD_SEG):
    return HintSegment(fs.lookup(path), offset, length, PID, via)


def drain(engine):
    while engine.advance_to_next():
        pass


class TestHintIntake:
    def test_hint_expands_to_blocks(self):
        manager, fs, _, stats = make_tip()
        accepted = manager.hint_segments(PID, [seg(fs, "f0", 0, 3 * BLOCK_SIZE)])
        assert accepted == 3
        assert stats.get("tip.hinted_blocks") == 3

    def test_zero_length_hint_accepted_empty(self):
        manager, fs, _, _ = make_tip()
        assert manager.hint_segments(PID, [seg(fs, "f0", 0, 0)]) == 0

    def test_hint_beyond_eof_clamped(self):
        manager, fs, _, _ = make_tip(file_blocks=2)
        accepted = manager.hint_segments(PID, [seg(fs, "f0", 0, 10 * BLOCK_SIZE)])
        assert accepted == 2

    def test_hint_offset_past_eof_empty(self):
        manager, fs, _, _ = make_tip(file_blocks=2)
        accepted = manager.hint_segments(PID, [seg(fs, "f0", 5 * BLOCK_SIZE, 100)])
        assert accepted == 0

    def test_ignore_hints_mode(self):
        manager, fs, _, stats = make_tip(tip_params=TipParams(ignore_hints=True))
        assert manager.hint_segments(PID, [seg(fs, "f0", 0, BLOCK_SIZE)]) == 0
        assert manager.outstanding_hints(PID) == 0
        assert stats.get("tip.hints_ignored") == 1


class TestPrefetching:
    def test_hints_trigger_prefetch(self):
        manager, fs, engine, stats = make_tip()
        manager.hint_segments(PID, [seg(fs, "f0", 0, 4 * BLOCK_SIZE)])
        assert stats.get("tip.prefetches_issued") == 4
        drain(engine)
        inode = fs.lookup("f0")
        assert all(manager.peek_valid(inode, b) for b in range(4))

    def test_prefetch_depth_limited_by_horizon(self):
        params = TipParams(prefetch_horizon=4, max_inflight_per_disk=16)
        manager, fs, _, stats = make_tip(cache_blocks=64, tip_params=params)
        manager.hint_segments(PID, [seg(fs, "f0", 0, 20 * BLOCK_SIZE)])
        assert stats.get("tip.prefetches_issued") == 4

    def test_inflight_per_disk_limit(self):
        params = TipParams(prefetch_horizon=64, max_inflight_per_disk=1)
        manager, fs, _, stats = make_tip(cache_blocks=64, tip_params=params)
        # f0's first 8 blocks live in one stripe unit = one disk.
        manager.hint_segments(PID, [seg(fs, "f0", 0, 8 * BLOCK_SIZE)])
        assert stats.get("tip.prefetches_issued") == 1

    def test_more_prefetches_after_arrival(self):
        params = TipParams(prefetch_horizon=64, max_inflight_per_disk=1)
        manager, fs, engine, stats = make_tip(cache_blocks=64, tip_params=params)
        manager.hint_segments(PID, [seg(fs, "f0", 0, 4 * BLOCK_SIZE)])
        drain(engine)
        assert stats.get("tip.prefetches_issued") == 4


class TestConsume:
    def test_matching_read_consumes(self):
        manager, fs, _, stats = make_tip()
        inode = fs.lookup("f0")
        manager.hint_segments(PID, [seg(fs, "f0", 0, 2 * BLOCK_SIZE)])
        hinted = manager.consume_hints(PID, inode, 0, 1, 0, 2 * BLOCK_SIZE)
        assert hinted
        assert stats.get("tip.hinted_read_calls") == 1
        assert stats.get("tip.hints_consumed") == 2
        assert manager.outstanding_hints(PID) == 0

    def test_unhinted_read_not_matched(self):
        manager, fs, _, _ = make_tip()
        inode = fs.lookup("f1")
        manager.hint_segments(PID, [seg(fs, "f0", 0, BLOCK_SIZE)])
        assert not manager.consume_hints(PID, inode, 0, 0, 0, 100)

    def test_no_hints_no_match(self):
        manager, fs, _, _ = make_tip()
        inode = fs.lookup("f0")
        assert not manager.consume_hints(PID, inode, 0, 0, 0, 100)

    def test_repeated_partial_block_reads_stay_hinted(self):
        """Several short reads of one hinted block all count as hinted."""
        manager, fs, _, _ = make_tip()
        inode = fs.lookup("f0")
        manager.hint_segments(PID, [seg(fs, "f0", 0, BLOCK_SIZE)])
        assert manager.consume_hints(PID, inode, 0, 0, 0, 512)
        assert manager.consume_hints(PID, inode, 0, 0, 512, 512)

    def test_match_deep_in_queue(self):
        manager, fs, _, _ = make_tip(file_blocks=64, cache_blocks=4)
        inode = fs.lookup("f0")
        manager.hint_segments(PID, [seg(fs, "f0", 0, 40 * BLOCK_SIZE)])
        # Read block 30 (well past the front of the queue).
        assert manager.consume_hints(
            PID, inode, 30, 30, 30 * BLOCK_SIZE, BLOCK_SIZE
        )

    def test_accuracy_improves_on_consume(self):
        manager, fs, _, _ = make_tip()
        inode = fs.lookup("f0")
        manager.hint_segments(PID, [seg(fs, "f0", 0, BLOCK_SIZE)])
        before = manager.accuracy_of(PID).consumed
        manager.consume_hints(PID, inode, 0, 0, 0, BLOCK_SIZE)
        assert manager.accuracy_of(PID).consumed == before + 1


class TestCancelAll:
    def test_cancel_empties_queue(self):
        manager, fs, _, stats = make_tip()
        manager.hint_segments(PID, [seg(fs, "f0", 0, 5 * BLOCK_SIZE)])
        assert manager.cancel_all(PID) == 5
        assert manager.outstanding_hints(PID) == 0
        assert stats.get("tip.hints_cancelled") == 5

    def test_cancel_counts_as_inaccurate(self):
        manager, fs, _, _ = make_tip()
        manager.hint_segments(PID, [seg(fs, "f0", 0, 2 * BLOCK_SIZE)])
        manager.cancel_all(PID)
        assert manager.accuracy_of(PID).cancelled == 2
        assert manager.accuracy_of(PID).value < 1.0

    def test_cancel_without_hints_is_zero(self):
        manager, _, _, _ = make_tip()
        assert manager.cancel_all(PID) == 0

    def test_issued_prefetches_proceed_after_cancel(self):
        manager, fs, engine, _ = make_tip()
        manager.hint_segments(PID, [seg(fs, "f0", 0, 2 * BLOCK_SIZE)])
        manager.cancel_all(PID)
        drain(engine)
        inode = fs.lookup("f0")
        assert manager.peek_valid(inode, 0)  # prefetch was not recalled


class TestAccuracyDiscount:
    def test_low_accuracy_shrinks_depth(self):
        manager, fs, _, _ = make_tip(cache_blocks=128, file_blocks=200)
        full_depth = manager.params.prefetch_horizon
        for _ in range(40):
            manager.hint_segments(PID, [seg(fs, "f0", 0, 4 * BLOCK_SIZE)])
            manager.cancel_all(PID)
        assert manager.accuracy_of(PID).value < 0.5
        assert manager.effective_depth(PID) < full_depth


class TestEviction:
    def test_unhinted_lru_evicted_first(self):
        manager, fs, engine, _ = make_tip(cache_blocks=4)
        inode = fs.lookup("f0")
        # Fill the cache with unhinted demand blocks.
        for b in range(4):
            manager.access_block(inode, b, lambda: None)
        drain(engine)
        manager.hint_segments(PID, [seg(fs, "f1", 0, BLOCK_SIZE)])
        drain(engine)
        # One unhinted block was evicted to make room.
        valid = [b for b in range(4) if manager.peek_valid(inode, b)]
        assert len(valid) == 3

    def test_hinted_blocks_protected_within_horizon(self):
        params = TipParams(prefetch_horizon=64)
        manager, fs, engine, stats = make_tip(cache_blocks=4, tip_params=params)
        manager.hint_segments(PID, [seg(fs, "f0", 0, 4 * BLOCK_SIZE)])
        drain(engine)
        # All 4 cached blocks are hinted within the horizon (well, their
        # hints were consumed... re-hint to protect them):
        manager.hint_segments(PID, [seg(fs, "f0", 0, 4 * BLOCK_SIZE)])
        assert manager.find_victim() is None

    def test_finalize_counts_unconsumed(self):
        manager, fs, _, stats = make_tip()
        manager.hint_segments(PID, [seg(fs, "f0", 0, 3 * BLOCK_SIZE)])
        manager.finalize()
        assert stats.get("tip.hints_unconsumed_at_end") == 3


class TestCancelDrain:
    """TIPIO_CANCEL_ALL's post-condition: the queue is provably drained
    (the restart protocol restarts speculation on the strength of this)."""

    def test_cancel_all_drains_outstanding_hints(self):
        manager, fs, _, stats = make_tip()
        manager.hint_segments(PID, [seg(fs, "f0", 0, 5 * BLOCK_SIZE)])
        assert manager.outstanding_hints(PID) == 5
        cancelled = manager.cancel_all(PID)
        assert cancelled == 5
        assert manager.outstanding_hints(PID) == 0
        assert manager.cancelled_total == 5
        assert stats.get("tip.cancel_drained") == 1

    def test_leaked_unconsumed_hint_is_cancelled(self):
        """A hint the application never consumed (leaked from its point of
        view) must still be drained by the cancel, not linger."""
        manager, fs, engine, _ = make_tip()
        manager.hint_segments(PID, [seg(fs, "f0", 0, 3 * BLOCK_SIZE)])
        drain(engine)
        # Consume two of three; the third leaks.
        inode = fs.lookup("f0")
        manager.consume_hints(PID, inode, 0, 1, 0, 2 * BLOCK_SIZE)
        assert manager.outstanding_hints(PID) == 1
        assert manager.cancel_all(PID) == 1
        assert manager.outstanding_hints(PID) == 0

    def test_cancel_idempotent_on_empty_queue(self):
        manager, fs, _, _ = make_tip()
        assert manager.cancel_all(PID) == 0
        manager.hint_segments(PID, [seg(fs, "f0", 0, BLOCK_SIZE)])
        manager.cancel_all(PID)
        assert manager.cancel_all(PID) == 0
        assert manager.cancelled_total == 1

    def test_cancelled_total_accumulates_across_calls(self):
        manager, fs, _, _ = make_tip()
        manager.hint_segments(PID, [seg(fs, "f0", 0, 2 * BLOCK_SIZE)])
        manager.cancel_all(PID)
        manager.hint_segments(PID, [seg(fs, "f1", 0, 3 * BLOCK_SIZE)])
        manager.cancel_all(PID)
        assert manager.cancelled_total == 5
