"""Tests for the worklist dataflow engine (reaching defs, liveness)."""

from repro.analysis import build_cfg, defs_uses, live_out, reaching_definitions
from repro.analysis.dataflow import CALL_CLOBBERS
from repro.vm.assembler import Assembler
from repro.vm.isa import Insn, Op, Reg, SYS_EXIT


class TestDefsUses:
    def test_li_defines_only(self):
        defs, uses = defs_uses(Insn(Op.LI, int(Reg.t0), 0, 5))
        assert defs == {int(Reg.t0)}
        assert uses == frozenset()

    def test_alu_three_reg(self):
        insn = Insn(Op.ADD, int(Reg.t0), int(Reg.t1), int(Reg.t2))
        defs, uses = defs_uses(insn)
        assert defs == {int(Reg.t0)}
        assert uses == {int(Reg.t1), int(Reg.t2)}

    def test_store_uses_value_and_base(self):
        insn = Insn(Op.STORE, int(Reg.t0), int(Reg.t1), 8)
        defs, uses = defs_uses(insn)
        assert defs == frozenset()
        assert uses == {int(Reg.t0), int(Reg.t1)}

    def test_load_defines_dest_uses_base(self):
        insn = Insn(Op.LOAD, int(Reg.t0), int(Reg.t1), 8)
        defs, uses = defs_uses(insn)
        assert defs == {int(Reg.t0)}
        assert uses == {int(Reg.t1)}

    def test_call_clobbers_caller_saved(self):
        defs, uses = defs_uses(Insn(Op.CALL, 0, 0, 42))
        assert defs == CALL_CLOBBERS
        assert int(Reg.ra) in defs
        assert int(Reg.sp) not in defs  # callee-saved survives
        assert int(Reg.sp) in uses

    def test_callr_also_uses_target_register(self):
        defs, uses = defs_uses(Insn(Op.CALLR, int(Reg.t5), 0, 0))
        assert int(Reg.t5) in uses
        assert defs == CALL_CLOBBERS

    def test_syscall_defines_v0(self):
        defs, uses = defs_uses(Insn(Op.SYSCALL, 0, 0, 4))
        assert defs == {int(Reg.v0)}
        assert uses == {int(Reg.a0), int(Reg.a1), int(Reg.a2)}


def _single_function(build):
    asm = Assembler("df")
    asm.entry("main")
    with asm.function("main"):
        build(asm)
    binary = asm.finish()
    return binary, build_cfg(binary, binary.functions[0])


class TestReachingDefinitions:
    def test_redefinition_kills(self):
        def body(asm):
            asm.li(Reg.t0, 1)        # 0
            asm.li(Reg.t0, 2)        # 1  kills def@0
            asm.mov(Reg.t1, Reg.t0)  # 2
            asm.syscall(SYS_EXIT)    # 3

        binary, cfg = _single_function(body)
        reach = reaching_definitions(binary, cfg)
        t0 = int(Reg.t0)
        assert (1, t0) in reach[2]
        assert (0, t0) not in reach[2]

    def test_defs_merge_over_branches(self):
        def body(asm):
            asm.li(Reg.t0, 1)                    # 0
            asm.beq(Reg.t1, Reg.t2, "skip")      # 1
            asm.li(Reg.t0, 2)                    # 2
            asm.label("skip")
            asm.mov(Reg.t3, Reg.t0)              # 3
            asm.syscall(SYS_EXIT)                # 4

        binary, cfg = _single_function(body)
        reach = reaching_definitions(binary, cfg)
        t0 = int(Reg.t0)
        # Both the fallthrough def and the branch-skipped def reach the join.
        assert (0, t0) in reach[3]
        assert (2, t0) in reach[3]

    def test_loop_carries_defs_backwards(self):
        def body(asm):
            asm.li(Reg.t0, 0)                    # 0
            asm.label("top")
            asm.addi(Reg.t0, Reg.t0, 1)          # 1
            asm.blt(Reg.t0, Reg.t1, "top")       # 2
            asm.syscall(SYS_EXIT)                # 3

        binary, cfg = _single_function(body)
        reach = reaching_definitions(binary, cfg)
        t0 = int(Reg.t0)
        # The loop-body def flows around the back edge to its own IN set.
        assert (1, t0) in reach[1]
        assert (0, t0) in reach[1]


class TestLiveness:
    def test_used_later_is_live(self):
        def body(asm):
            asm.li(Reg.t0, 1)         # 0
            asm.li(Reg.t1, 2)         # 1
            asm.add(Reg.a0, Reg.t0, Reg.t1)  # 2
            asm.syscall(SYS_EXIT)     # 3

        binary, cfg = _single_function(body)
        live = live_out(binary, cfg)
        assert int(Reg.t0) in live[0]
        assert int(Reg.t0) in live[1]
        assert int(Reg.t0) not in live[2]

    def test_dead_def_not_live(self):
        def body(asm):
            asm.li(Reg.t9, 99)        # 0  never used again
            asm.li(Reg.a0, 0)         # 1
            asm.syscall(SYS_EXIT)     # 2

        binary, cfg = _single_function(body)
        live = live_out(binary, cfg)
        assert int(Reg.t9) not in live[0]
        assert int(Reg.a0) in live[1]

    def test_loop_variable_live_around_back_edge(self):
        def body(asm):
            asm.li(Reg.t0, 0)                # 0
            asm.li(Reg.t1, 8)                # 1
            asm.label("top")
            asm.addi(Reg.t0, Reg.t0, 1)      # 2
            asm.blt(Reg.t0, Reg.t1, "top")   # 3
            asm.syscall(SYS_EXIT)            # 4

        binary, cfg = _single_function(body)
        live = live_out(binary, cfg)
        # The bound is live across the whole loop; the counter is live
        # after the branch because the back edge re-reads it.
        assert int(Reg.t1) in live[2]
        assert int(Reg.t0) in live[3]
