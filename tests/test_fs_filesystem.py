"""Tests for inodes and the simulated file system."""

import pytest

from repro.errors import FileExistsInFS, FileNotFoundInFS, InvalidBlockError
from repro.fs.filesystem import FileSystem, Inode
from repro.params import BLOCK_SIZE


class TestInode:
    def test_size_and_blocks(self):
        inode = Inode(0, "a", b"x" * (BLOCK_SIZE + 1), 0)
        assert inode.size == BLOCK_SIZE + 1
        assert inode.nblocks == 2

    def test_empty_file_occupies_one_block(self):
        assert Inode(0, "a", b"", 0).nblocks == 1

    def test_lbn_of_block(self):
        inode = Inode(0, "a", b"x" * (3 * BLOCK_SIZE), first_lbn=10)
        assert inode.lbn_of_block(0) == 10
        assert inode.lbn_of_block(2) == 12

    def test_lbn_out_of_range(self):
        inode = Inode(0, "a", b"x" * BLOCK_SIZE, 0)
        with pytest.raises(InvalidBlockError):
            inode.lbn_of_block(1)
        with pytest.raises(InvalidBlockError):
            inode.lbn_of_block(-1)

    def test_read_at(self):
        inode = Inode(0, "a", b"hello world", 0)
        assert inode.read_at(6, 5) == b"world"

    def test_read_truncated_at_eof(self):
        inode = Inode(0, "a", b"hello", 0)
        assert inode.read_at(3, 100) == b"lo"

    def test_read_past_eof_empty(self):
        inode = Inode(0, "a", b"hello", 0)
        assert inode.read_at(10, 5) == b""

    def test_read_negative_offset_rejected(self):
        inode = Inode(0, "a", b"hello", 0)
        with pytest.raises(InvalidBlockError):
            inode.read_at(-1, 5)

    def test_write_at_overwrite(self):
        inode = Inode(0, "a", b"hello", 0)
        inode.write_at(0, b"HE")
        assert bytes(inode.data) == b"HEllo"

    def test_write_at_extends(self):
        inode = Inode(0, "a", b"ab", 0)
        inode.write_at(4, b"xy")
        assert bytes(inode.data) == b"ab\x00\x00xy"
        assert inode.size == 6


class TestFileSystem:
    def test_create_and_lookup(self):
        fs = FileSystem()
        created = fs.create("dir/file", b"data")
        assert fs.lookup("dir/file") is created
        assert fs.inode(created.ino) is created

    def test_duplicate_create_rejected(self):
        fs = FileSystem()
        fs.create("a", b"")
        with pytest.raises(FileExistsInFS):
            fs.create("a", b"")

    def test_lookup_missing_raises(self):
        with pytest.raises(FileNotFoundInFS):
            FileSystem().lookup("nope")

    def test_lookup_or_none(self):
        fs = FileSystem()
        assert fs.lookup_or_none("nope") is None
        fs.create("yes", b"")
        assert fs.lookup_or_none("yes") is not None

    def test_inode_bad_number(self):
        with pytest.raises(FileNotFoundInFS):
            FileSystem().inode(0)

    def test_contiguous_allocation_without_jitter(self):
        fs = FileSystem()
        a = fs.create("a", b"x" * (2 * BLOCK_SIZE))
        b = fs.create("b", b"x" * BLOCK_SIZE)
        assert a.first_lbn == 0
        assert b.first_lbn == 2

    def test_total_blocks_covers_all_files(self):
        fs = FileSystem()
        fs.create("a", b"x" * (2 * BLOCK_SIZE))
        fs.create("b", b"x")
        assert fs.total_blocks == 3

    def test_allocation_jitter_leaves_gaps(self):
        fs = FileSystem(allocation_jitter_blocks=16, seed=1)
        previous_end = None
        gaps = []
        for i in range(20):
            inode = fs.create(f"f{i}", b"x" * BLOCK_SIZE)
            if previous_end is not None:
                gaps.append(inode.first_lbn - previous_end)
            previous_end = inode.first_lbn + inode.nblocks
        assert any(g > 0 for g in gaps)
        assert all(g >= 0 for g in gaps)

    def test_jitter_is_deterministic(self):
        def layout(seed):
            fs = FileSystem(allocation_jitter_blocks=16, seed=seed)
            return [fs.create(f"f{i}", b"x").first_lbn for i in range(10)]

        assert layout(5) == layout(5)
        assert layout(5) != layout(6)

    def test_paths_in_creation_order(self):
        fs = FileSystem()
        fs.create("b", b"")
        fs.create("a", b"")
        assert fs.paths() == ["b", "a"]
        assert fs.nfiles == 2
