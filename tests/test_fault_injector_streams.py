"""RNG stream decoupling in the fault injector.

Every fault dimension draws from its own derived stream, so enabling one
dimension never perturbs another's schedule — the property that keeps a
fuzz corpus stable as fault types are added.  A pinned digest guards the
whole decision layout: if stream derivation ever changes, the digest
test fails loudly instead of silently invalidating committed schedules.
"""

from __future__ import annotations

import hashlib
from types import SimpleNamespace

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.params import CpuParams
from repro.sim.clock import SimClock
from repro.sim.stats import StatRegistry


def _injector(plan: FaultPlan) -> FaultInjector:
    return FaultInjector(plan, CpuParams(), SimClock(), StatRegistry())


_INODE = SimpleNamespace(size=65536)


def _hint_schedule(injector: FaultInjector, n: int = 64):
    """(dropped?, delivered (offset, length)) for ``n`` identical hints."""
    schedule = []
    for i in range(n):
        delivered = injector.filter_hint(_INODE, i * 4096, 4096)
        schedule.append((delivered is None, delivered))
    return schedule


class TestStreamDecoupling:
    def test_corruption_does_not_perturb_drop_schedule(self):
        drop_only = FaultPlan(name="chan", seed=5, hint_drop_rate=0.3)
        both = FaultPlan(name="chan", seed=5, hint_drop_rate=0.3,
                         hint_corrupt_rate=0.4)
        drops_a = [d for d, _ in _hint_schedule(_injector(drop_only))]
        drops_b = [d for d, _ in _hint_schedule(_injector(both))]
        assert drops_a == drops_b

    def test_drop_does_not_perturb_corruption_schedule(self):
        corrupt_only = FaultPlan(name="chan", seed=5, hint_corrupt_rate=0.4)
        both = FaultPlan(name="chan", seed=5, hint_drop_rate=0.0,
                         hint_corrupt_rate=0.4)
        sched_a = _hint_schedule(_injector(corrupt_only))
        sched_b = _hint_schedule(_injector(both))
        assert sched_a == sched_b

    def test_hint_faults_do_not_perturb_spec_stream(self):
        quiet = FaultPlan(name="chan", seed=5, spec_divergence_rate=0.5)
        noisy = FaultPlan(name="chan", seed=5, spec_divergence_rate=0.5,
                          hint_drop_rate=0.3, hint_corrupt_rate=0.4)
        inj_a, inj_b = _injector(quiet), _injector(noisy)
        flips_a = [inj_a.force_divergence() for _ in range(64)]
        flips_b = []
        for i in range(64):
            inj_b.filter_hint(_INODE, i * 4096, 4096)  # advance hint streams
            flips_b.append(inj_b.force_divergence())
        assert flips_a == flips_b

    def test_per_disk_streams_are_independent(self):
        plan = FaultPlan(name="disks", seed=5, disk_error_rate=0.2)
        inj_a, inj_b = _injector(plan), _injector(plan)
        faults_a = [inj_a.on_disk_service(0, None, 100)[1]
                    for _ in range(32)]
        faults_b = []
        for _ in range(32):
            inj_b.on_disk_service(1, None, 100)  # interleave another disk
            faults_b.append(inj_b.on_disk_service(0, None, 100)[1])
        assert faults_a == faults_b


class TestDeterminismStability:
    #: sha256 over the full decision schedule of a fixed plan.  Pinned:
    #: a change here means every committed fuzz schedule (corpus entries,
    #: chaos benchmark digests) silently re-rolled — bump deliberately.
    EXPECTED = "5bddea855efb4f9e997ecc0b769413607078dc22b2351d64d9a09fb12dfc2a9b"

    def test_known_schedule_digest_is_stable(self):
        plan = FaultPlan(
            name="pinned", seed=42, disk_error_rate=0.15,
            hint_drop_rate=0.25, hint_corrupt_rate=0.25,
            spec_divergence_rate=0.5,
        )
        injector = _injector(plan)
        parts = []
        for i in range(48):
            service, fault = injector.on_disk_service(i % 4, None, 100)
            parts.append(f"disk{i % 4}:{service}:{fault}")
            delivered = injector.filter_hint(_INODE, i * 4096, 4096)
            parts.append(f"hint:{delivered}")
            parts.append(f"spec:{injector.force_divergence()}")
        digest = hashlib.sha256("\n".join(parts).encode()).hexdigest()
        assert digest == self.EXPECTED

    def test_same_plan_same_schedule(self):
        plan = FaultPlan(name="twin", seed=9, disk_error_rate=0.1,
                         hint_drop_rate=0.2)
        a, b = _injector(plan), _injector(plan)
        assert _hint_schedule(a) == _hint_schedule(b)

    def test_different_seed_different_schedule(self):
        base = FaultPlan(name="twin", seed=9, hint_drop_rate=0.5)
        other = FaultPlan(name="twin", seed=10, hint_drop_rate=0.5)
        drops_a = [d for d, _ in _hint_schedule(_injector(base), 128)]
        drops_b = [d for d, _ in _hint_schedule(_injector(other), 128)]
        assert drops_a != drops_b
