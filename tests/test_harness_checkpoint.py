"""Tests for crash-safe harness checkpointing and resume."""

import json
import os
import signal
import stat
import subprocess
import sys
import time

import pytest

from repro.errors import CheckpointError
from repro.harness.checkpoint import (
    CHECKPOINT_VERSION,
    SweepCheckpoint,
    atomic_write_json,
    flush_on_signals,
    run_cells,
)
from repro.harness.experiments import SWEEP_POINTS, sweep_cells
from repro.harness.results import RunResult


def make_result(key: str, cycles: int = 1000) -> RunResult:
    return RunResult(
        app="agrep", variant="speculating", cycles=cycles, cpu_hz=500_000_000,
        counters={"app.read_calls": 7, "spec.restarts": 2},
        output=f"output of {key}".encode(),
        read_trace=((1, 0, 100), (1, 100, 100)),
    )


class TestAtomicWrite:
    def test_writes_valid_json(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"a": 1})
        with open(path) as handle:
            assert json.load(handle) == {"a": 1}

    def test_replaces_existing_file(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        with open(path) as handle:
            assert json.load(handle) == {"v": 2}

    def test_no_temp_litter_on_success(self, tmp_path):
        atomic_write_json(str(tmp_path / "out.json"), [1, 2, 3])
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.json"]

    def test_fsyncs_file_and_containing_directory(self, tmp_path, monkeypatch):
        """Durability needs two fsyncs: the temp file's data before the
        rename, and the directory's metadata after it — otherwise a
        power-loss-style kill can roll the rename back."""
        synced = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            synced.append(stat.S_ISDIR(os.fstat(fd).st_mode))
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        atomic_write_json(str(tmp_path / "out.json"), {"a": 1})
        assert synced == [False, True]  # file data first, then directory

    def test_directory_fsync_failure_is_best_effort(self, tmp_path,
                                                    monkeypatch):
        real_fsync = os.fsync

        def flaky_fsync(fd):
            if stat.S_ISDIR(os.fstat(fd).st_mode):
                raise OSError("EINVAL: fsync on directory unsupported")
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", flaky_fsync)
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"a": 1})  # must not raise
        with open(path) as handle:
            assert json.load(handle) == {"a": 1}

    def test_crash_window_never_corrupts(self, tmp_path):
        """SIGKILL a writer loop at random points; the target file must
        always hold one complete, valid JSON state — never a torn write."""
        path = str(tmp_path / "state.json")
        script = (
            "import sys, time\n"
            f"sys.path.insert(0, {os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), 'src')!r})\n"
            "from repro.harness.checkpoint import atomic_write_json\n"
            "i = 0\n"
            "while True:\n"
            f"    atomic_write_json({path!r}, {{'gen': i, 'pad': 'x' * 4096}})\n"
            "    i += 1\n"
        )
        for attempt in range(5):
            process = subprocess.Popen(
                [sys.executable, "-c", script],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            try:
                time.sleep(0.05 + 0.03 * attempt)  # vary the kill point
            finally:
                process.kill()
                process.wait(timeout=30)
            if not os.path.exists(path):
                continue  # killed before the first write completed
            with open(path) as handle:
                state = json.load(handle)  # raises if torn
            assert set(state) == {"gen", "pad"}
            assert len(state["pad"]) == 4096


class TestFlushOnSignals:
    def test_sigterm_flushes_then_exits_with_143(self):
        flushed = []
        with pytest.raises(SystemExit) as excinfo, \
                flush_on_signals(lambda: flushed.append("yes")):
            os.kill(os.getpid(), signal.SIGTERM)
            time.sleep(1)  # handler fires before the sleep finishes
            pytest.fail("SIGTERM handler did not fire")
        assert excinfo.value.code == 128 + signal.SIGTERM
        assert flushed == ["yes"]

    def test_handlers_restored_after_scope(self):
        before = signal.getsignal(signal.SIGTERM)
        with flush_on_signals(lambda: None):
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before


class TestRunResultRoundtrip:
    def test_roundtrip_preserves_fields(self):
        original = make_result("cell-a")
        original.spec_parks = {"spec_exit": 1}
        original.fault_profile = "transient-errors"
        original.watchdog_tripped = "restart_storm"
        original.isolation_violations = 2
        original.quarantines = 1
        original.audit_head_digest = "abc123"
        restored = RunResult.from_jsonable(original.to_jsonable())
        assert restored.app == original.app
        assert restored.cycles == original.cycles
        assert restored.counters == original.counters
        assert restored.output == original.output
        assert restored.read_trace == original.read_trace
        assert restored.spec_parks == original.spec_parks
        assert restored.fault_profile == original.fault_profile
        assert restored.watchdog_tripped == original.watchdog_tripped
        assert restored.isolation_violations == 2
        assert restored.quarantines == 1
        assert restored.audit_head_digest == "abc123"

    def test_jsonable_is_json_serializable(self):
        blob = json.dumps(make_result("x").to_jsonable())
        assert "output_b64" in blob


class TestSweepCheckpoint:
    def test_record_and_reload(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        checkpoint = SweepCheckpoint(path, "sweep:test")
        checkpoint.record("cell-a", make_result("cell-a"))
        checkpoint.record("cell-b", make_result("cell-b", cycles=2000))

        reloaded = SweepCheckpoint.load(path, "sweep:test")
        assert len(reloaded) == 2
        assert reloaded.keys() == ["cell-a", "cell-b"]
        assert reloaded.result("cell-b").cycles == 2000

    def test_missing_file_is_typed_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            SweepCheckpoint.load(str(tmp_path / "absent.json"), "x")

    def test_corrupt_json_is_typed_error(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{ not json")
        with pytest.raises(CheckpointError, match="corrupt"):
            SweepCheckpoint.load(str(path), "x")

    def test_wrong_version_is_typed_error(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({
            "version": CHECKPOINT_VERSION + 1, "identity": "x", "cells": {},
        }))
        with pytest.raises(CheckpointError, match="version"):
            SweepCheckpoint.load(str(path), "x")

    def test_wrong_identity_is_typed_error(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        SweepCheckpoint(path, "sweep:disks").flush()
        with pytest.raises(CheckpointError, match="belongs to sweep"):
            SweepCheckpoint.load(path, "sweep:cache")

    def test_missing_cell_is_typed_error(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path / "c.json"), "x")
        with pytest.raises(CheckpointError, match="no cell"):
            checkpoint.result("absent")

    def test_missing_payload_is_typed_error(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path / "c.json"), "x")
        with pytest.raises(CheckpointError, match="no cell"):
            checkpoint.payload("absent")

    def test_malformed_cell_is_typed_error(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path / "c.json"), "x")
        checkpoint.record_payload("broken", {"not": "a RunResult"})
        with pytest.raises(CheckpointError, match="malformed"):
            checkpoint.result("broken")

    def test_unwritable_flush_is_typed_error(self, tmp_path):
        missing_dir = tmp_path / "no" / "such" / "dir"
        checkpoint = SweepCheckpoint(str(missing_dir / "c.json"), "x")
        with pytest.raises(CheckpointError, match="cannot write"):
            checkpoint.flush()

    def test_bad_quarantine_table_is_typed_error(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({
            "version": CHECKPOINT_VERSION, "identity": "x", "cells": {},
            "quarantined": ["not", "a", "dict"],
        }))
        with pytest.raises(CheckpointError, match="quarantine table"):
            SweepCheckpoint.load(str(path), "x")

    def test_quarantine_roundtrip_and_clear_on_success(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        checkpoint = SweepCheckpoint(path, "x")
        record = {"status": "QUARANTINED", "failures": [], "traceback": "tb"}
        checkpoint.record_quarantine("poisoned", record)

        reloaded = SweepCheckpoint.load(path, "x")
        assert reloaded.quarantined == {"poisoned": record}
        assert "poisoned" not in reloaded  # quarantine is not a result

        # A later success supersedes the quarantine record.
        reloaded.record_payload("poisoned", {"value": 1})
        assert SweepCheckpoint.load(path, "x").quarantined == {}

    def test_merge_from_adopts_only_missing_cells(self, tmp_path):
        main = SweepCheckpoint(str(tmp_path / "a.json"), "x")
        main.record_payload("shared", {"value": 1})
        other = SweepCheckpoint(str(tmp_path / "b.json"), "x")
        other.record_payload("shared", {"value": 999})
        other.record_payload("extra", {"value": 2})
        assert main.merge_from(other) == 1
        assert main.payload("shared") == {"value": 1}  # ours wins
        assert main.payload("extra") == {"value": 2}

    def test_merge_from_identity_mismatch_is_typed_error(self, tmp_path):
        main = SweepCheckpoint(str(tmp_path / "a.json"), "sweep-a")
        other = SweepCheckpoint(str(tmp_path / "b.json"), "sweep-b")
        with pytest.raises(CheckpointError, match="cannot merge"):
            main.merge_from(other)


class _Killed(Exception):
    """Simulated harness kill mid-sweep."""


class TestRunCells:
    def _cells(self, log):
        def thunk(key):
            def run():
                log.append(key)
                return make_result(key, cycles=100 * (len(log)))
            return run
        return [(f"cell-{i}", thunk(f"cell-{i}")) for i in range(4)]

    def test_plain_run_without_checkpoint(self):
        log = []
        results = run_cells(self._cells(log))
        assert len(results) == 4
        assert log == [f"cell-{i}" for i in range(4)]

    def test_killed_sweep_resumes_identically(self, tmp_path):
        """Kill the sweep after two cells; the resumed sweep must restore
        them from the checkpoint and produce results identical to an
        uninterrupted run."""
        path = str(tmp_path / "ckpt.json")

        # Uninterrupted reference (deterministic thunks).
        reference = run_cells(self._cells([]))

        # First attempt: the third thunk kills the harness.
        killed_log = []
        cells = self._cells(killed_log)
        key, original_thunk = cells[2]

        def dying():
            raise _Killed()

        cells[2] = (key, dying)
        with pytest.raises(_Killed):
            run_cells(cells, checkpoint_path=path, identity="t")
        assert killed_log == ["cell-0", "cell-1"]

        # Resume: completed cells restored, only the rest re-run.
        resumed_log = []
        results = run_cells(
            self._cells(resumed_log), checkpoint_path=path,
            identity="t", resume=True,
        )
        assert resumed_log == ["cell-2", "cell-3"]  # only missing cells ran
        assert results.keys() == reference.keys()
        for cell_key in reference:
            assert results[cell_key].output == reference[cell_key].output
            assert results[cell_key].read_trace == reference[cell_key].read_trace
            assert results[cell_key].counters == reference[cell_key].counters

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path):
        path = str(tmp_path / "new.json")
        log = []
        results = run_cells(self._cells(log), checkpoint_path=path,
                            identity="t", resume=True)
        assert len(results) == 4
        assert len(log) == 4
        assert os.path.exists(path)

    def test_identity_mismatch_refuses_resume(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        run_cells(self._cells([]), checkpoint_path=path, identity="sweep-a")
        with pytest.raises(CheckpointError, match="belongs to sweep"):
            run_cells(self._cells([]), checkpoint_path=path,
                      identity="sweep-b", resume=True)

    def test_progress_callback_reports_resumed_cells(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        run_cells(self._cells([])[:2], checkpoint_path=path, identity="t")
        seen = []
        run_cells(self._cells([]), checkpoint_path=path, identity="t",
                  resume=True, progress=lambda k, r: seen.append((k, r)))
        assert seen[0] == ("cell-0", True)
        assert seen[2] == ("cell-2", False)


class TestSweepCells:
    def test_cell_grid_shapes(self):
        from repro.harness.config import APPS, Variant

        for kind, points in SWEEP_POINTS.items():
            cells = sweep_cells(kind, workload_scale=0.2)
            assert len(cells) == len(points) * len(APPS) * len(tuple(Variant))
            keys = [key for key, _ in cells]
            assert len(set(keys)) == len(keys)  # unique keys

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep kind"):
            sweep_cells("nope")
