"""Tests for the experiment harness: configs, results, sweep drivers."""

import pytest

from repro.harness.config import ExperimentConfig, Variant
from repro.harness.experiments import improvements, run_matrix, run_one
from repro.harness.results import RunResult, median_interval
from repro.params import DiskParams, SystemConfig, scaled_cache_blocks


class TestExperimentConfig:
    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(app="notepad")

    def test_cache_resolution(self):
        cfg = ExperimentConfig(cache_paper_mb=12.0)
        system = cfg.resolved_system()
        assert system.cache.capacity_blocks == scaled_cache_blocks(12.0)

    def test_cache_none_keeps_system(self):
        cfg = ExperimentConfig(cache_paper_mb=None)
        assert cfg.resolved_system().cache.capacity_blocks == \
            SystemConfig().cache.capacity_blocks

    def test_disk_scale_resolution(self):
        cfg = ExperimentConfig(disk_time_scale=4.0)
        disk = cfg.resolved_system().disk
        assert disk.positioning_s == pytest.approx(DiskParams().positioning_s / 4)
        assert disk.transfer_bps == pytest.approx(DiskParams().transfer_bps * 4)

    def test_with_copies(self):
        cfg = ExperimentConfig(app="agrep")
        other = cfg.with_(app="gnuld")
        assert other.app == "gnuld"
        assert cfg.app == "agrep"


class TestRunResult:
    def _result(self, cycles=1000, **counters):
        return RunResult(app="a", variant="original", cycles=cycles,
                         cpu_hz=1000, counters=counters)

    def test_elapsed_seconds(self):
        assert self._result(cycles=2500).elapsed_s == pytest.approx(2.5)

    def test_improvement_over(self):
        base = self._result(cycles=1000)
        faster = self._result(cycles=400)
        assert faster.improvement_over(base) == pytest.approx(60.0)

    def test_improvement_over_zero_baseline(self):
        assert self._result().improvement_over(self._result(cycles=0)) == 0.0

    def test_pct_hinted_empty(self):
        result = self._result()
        assert result.pct_calls_hinted == 0.0
        assert result.pct_bytes_hinted == 0.0
        assert result.pct_blocks_hinted == 0.0

    def test_pct_hinted(self):
        result = self._result(**{
            "app.read_calls": 10,
            "tip.hinted_read_calls": 4,
        })
        assert result.pct_calls_hinted == pytest.approx(40.0)

    def test_inaccurate_hints_sum(self):
        result = self._result(**{
            "tip.hints_cancelled": 3,
            "tip.hints_stale_dropped": 2,
            "tip.hints_unconsumed_at_end": 1,
        })
        assert result.inaccurate_hints == 6

    def test_dilation_requires_both_intervals(self):
        result = self._result()
        assert result.dilation_factor == 0.0
        result.median_read_interval = 10
        result.median_hint_interval = 75
        assert result.dilation_factor == pytest.approx(7.5)

    def test_summary_mentions_app(self):
        assert "a/original" in self._result().summary()


class TestMedianInterval:
    def test_too_few_points(self):
        assert median_interval([]) == 0.0
        assert median_interval([5]) == 0.0

    def test_median_of_gaps(self):
        assert median_interval([0, 10, 20, 100]) == 10

    def test_unsorted_gaps(self):
        # Gaps 5, 15, 10 -> sorted 5, 10, 15 -> median 10.
        assert median_interval([0, 5, 20, 30]) == 10


class TestDrivers:
    def test_run_one_smoke(self):
        result = run_one("agrep", Variant.ORIGINAL, workload_scale=0.1)
        assert result.read_calls > 0
        assert result.cycles > 0

    def test_run_matrix_and_improvements(self):
        matrix = run_matrix(apps=("agrep",), workload_scale=0.2)
        imps = improvements(matrix)
        assert set(imps["agrep"]) == {"speculating", "manual"}
        assert imps["agrep"]["speculating"] > 0

    def test_determinism_across_runs(self):
        a = run_one("agrep", Variant.SPECULATING, workload_scale=0.2)
        b = run_one("agrep", Variant.SPECULATING, workload_scale=0.2)
        assert a.cycles == b.cycles
        assert a.counters == b.counters
        assert a.output == b.output
