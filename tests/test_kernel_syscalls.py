"""Tests for the kernel system-call layer using small real programs."""

import pytest

from repro.errors import InvalidSyscall
from repro.fs.filesystem import FileSystem
from repro.params import BLOCK_SIZE
from repro.vm.isa import (
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
    SYS_CANCEL_ALL,
    SYS_CLOSE,
    SYS_FSTAT,
    SYS_HINT_FD_SEG,
    SYS_HINT_SEG,
    SYS_LSEEK,
    SYS_OPEN,
    SYS_READ,
    SYS_WRITE,
    Reg,
)

from tests.conftest import make_populated_fs, run_program


def open_f0(asm):
    asm.data_asciiz("path", "f0.dat")
    asm.la(Reg.a0, "path")
    asm.syscall(SYS_OPEN)
    asm.mov(Reg.s1, Reg.v0)


class TestOpenClose:
    def test_open_returns_fd(self):
        def body(asm):
            open_f0(asm)
            asm.mov(Reg.s0, Reg.s1)

        system, process = run_program(body, fs=make_populated_fs())
        assert process.original_thread.reg(Reg.s0) == 3  # first fd after stdio

    def test_open_missing_returns_minus_one(self):
        def body(asm):
            asm.data_asciiz("path", "missing")
            asm.la(Reg.a0, "path")
            asm.syscall(SYS_OPEN)
            asm.mov(Reg.s0, Reg.v0)

        system, process = run_program(body, fs=make_populated_fs())
        assert process.original_thread.reg(Reg.s0) == (1 << 64) - 1

    def test_close_frees_fd(self):
        def body(asm):
            open_f0(asm)
            asm.mov(Reg.a0, Reg.s1)
            asm.syscall(SYS_CLOSE)
            asm.mov(Reg.s0, Reg.v0)

        system, process = run_program(body, fs=make_populated_fs())
        assert process.original_thread.reg(Reg.s0) == 0
        assert 3 not in process.fds

    def test_close_bad_fd_returns_minus_one(self):
        def body(asm):
            asm.li(Reg.a0, 55)
            asm.syscall(SYS_CLOSE)
            asm.mov(Reg.s0, Reg.v0)

        system, process = run_program(body)
        assert process.original_thread.reg(Reg.s0) == (1 << 64) - 1


class TestRead:
    def test_read_returns_data(self):
        def body(asm):
            asm.data_space("buf", 64)
            open_f0(asm)
            asm.mov(Reg.a0, Reg.s1)
            asm.la(Reg.a1, "buf")
            asm.li(Reg.a2, 16)
            asm.syscall(SYS_READ)
            asm.mov(Reg.s0, Reg.v0)
            asm.la(Reg.t0, "buf")
            asm.loadb(Reg.s2, Reg.t0, 1)

        fs = make_populated_fs()
        expected = fs.lookup("f0.dat").read_at(1, 1)[0]
        system, process = run_program(body, fs=fs)
        thread = process.original_thread
        assert thread.reg(Reg.s0) == 16
        assert thread.reg(Reg.s2) == expected

    def test_read_advances_offset(self):
        def body(asm):
            asm.data_space("buf", 64)
            open_f0(asm)
            for _ in range(2):
                asm.mov(Reg.a0, Reg.s1)
                asm.la(Reg.a1, "buf")
                asm.li(Reg.a2, 10)
                asm.syscall(SYS_READ)
            asm.la(Reg.t0, "buf")
            asm.loadb(Reg.s2, Reg.t0, 0)

        fs = make_populated_fs()
        expected = fs.lookup("f0.dat").read_at(10, 1)[0]
        system, process = run_program(body, fs=fs)
        assert process.original_thread.reg(Reg.s2) == expected

    def test_read_at_eof_returns_zero(self):
        def body(asm):
            asm.data_space("buf", 64)
            open_f0(asm)
            asm.mov(Reg.a0, Reg.s1)
            asm.li(Reg.a1, 1 << 62)  # never used: lseek to end first
            asm.mov(Reg.a0, Reg.s1)
            asm.li(Reg.a1, 0)
            asm.li(Reg.a2, SEEK_END)
            asm.syscall(SYS_LSEEK)
            asm.mov(Reg.a0, Reg.s1)
            asm.la(Reg.a1, "buf")
            asm.li(Reg.a2, 32)
            asm.syscall(SYS_READ)
            asm.mov(Reg.s0, Reg.v0)

        system, process = run_program(body, fs=make_populated_fs())
        assert process.original_thread.reg(Reg.s0) == 0

    def test_read_blocks_and_consumes_disk_time(self):
        def body(asm):
            asm.data_space("buf", BLOCK_SIZE)
            open_f0(asm)
            asm.mov(Reg.a0, Reg.s1)
            asm.la(Reg.a1, "buf")
            asm.li(Reg.a2, BLOCK_SIZE)
            asm.syscall(SYS_READ)

        system, process = run_program(body, fs=make_populated_fs())
        assert system.stats.get("app.read_stalls") == 1
        # At least one disk positioning time elapsed.
        assert system.clock.now > 100_000

    def test_cached_reread_does_not_stall(self):
        def body(asm):
            asm.data_space("buf", BLOCK_SIZE)
            open_f0(asm)
            for _ in range(2):
                asm.mov(Reg.a0, Reg.s1)
                asm.li(Reg.a1, 0)
                asm.li(Reg.a2, SEEK_SET)
                asm.syscall(SYS_LSEEK)
                asm.mov(Reg.a0, Reg.s1)
                asm.la(Reg.a1, "buf")
                asm.li(Reg.a2, 512)
                asm.syscall(SYS_READ)

        system, process = run_program(body, fs=make_populated_fs())
        assert system.stats.get("app.read_stalls") == 1
        assert system.stats.get("cache.block_reuses") == 1


class TestLseekFstat:
    def test_lseek_set_cur_end(self):
        def body(asm):
            open_f0(asm)
            asm.mov(Reg.a0, Reg.s1)
            asm.li(Reg.a1, 100)
            asm.li(Reg.a2, SEEK_SET)
            asm.syscall(SYS_LSEEK)
            asm.mov(Reg.s0, Reg.v0)
            asm.mov(Reg.a0, Reg.s1)
            asm.li(Reg.a1, -50)
            asm.li(Reg.a2, SEEK_CUR)
            asm.syscall(SYS_LSEEK)
            asm.mov(Reg.s2, Reg.v0)
            asm.mov(Reg.a0, Reg.s1)
            asm.li(Reg.a1, 0)
            asm.li(Reg.a2, SEEK_END)
            asm.syscall(SYS_LSEEK)
            asm.mov(Reg.s3, Reg.v0)

        fs = make_populated_fs()
        size = fs.lookup("f0.dat").size
        system, process = run_program(body, fs=fs)
        t = process.original_thread
        assert t.reg(Reg.s0) == 100
        assert t.reg(Reg.s2) == 50
        assert t.reg(Reg.s3) == size

    def test_fstat_returns_size(self):
        def body(asm):
            open_f0(asm)
            asm.mov(Reg.a0, Reg.s1)
            asm.syscall(SYS_FSTAT)
            asm.mov(Reg.s0, Reg.v0)

        fs = make_populated_fs()
        system, process = run_program(body, fs=fs)
        assert process.original_thread.reg(Reg.s0) == fs.lookup("f0.dat").size


class TestWrite:
    def test_write_to_stdout_collected(self):
        def body(asm):
            asm.data_asciiz("msg", "hello")
            asm.li(Reg.a0, 1)
            asm.la(Reg.a1, "msg")
            asm.li(Reg.a2, 5)
            asm.syscall(SYS_WRITE)

        system, process = run_program(body)
        assert bytes(process.output) == b"hello"

    def test_write_to_file_updates_contents(self):
        def body(asm):
            asm.data_asciiz("path", "out")
            asm.data_asciiz("msg", "abc")
            asm.la(Reg.a0, "path")
            asm.syscall(SYS_OPEN)
            asm.mov(Reg.a0, Reg.v0)
            asm.la(Reg.a1, "msg")
            asm.li(Reg.a2, 3)
            asm.syscall(SYS_WRITE)

        fs = FileSystem()
        fs.create("out", b"")
        system, process = run_program(body, fs=fs)
        assert bytes(fs.lookup("out").data) == b"abc"

    def test_write_is_nonblocking(self):
        """Write-behind: no disk stall for writes."""
        def body(asm):
            asm.data_asciiz("path", "out")
            asm.data_space("big", 8192)
            asm.la(Reg.a0, "path")
            asm.syscall(SYS_OPEN)
            asm.mov(Reg.a0, Reg.v0)
            asm.la(Reg.a1, "big")
            asm.li(Reg.a2, 8192)
            asm.syscall(SYS_WRITE)

        fs = FileSystem()
        fs.create("out", b"")
        system, process = run_program(body, fs=fs)
        assert system.stats.get("app.read_stalls") == 0


class TestHintSyscalls:
    def test_hint_seg_by_name(self):
        def body(asm):
            asm.data_asciiz("path", "f0.dat")
            asm.la(Reg.a0, "path")
            asm.li(Reg.a1, 0)
            asm.li(Reg.a2, BLOCK_SIZE)
            asm.syscall(SYS_HINT_SEG)

        system, process = run_program(body, fs=make_populated_fs())
        assert system.stats.get("tip.hinted_blocks") == 1

    def test_hint_fd_seg(self):
        def body(asm):
            open_f0(asm)
            asm.mov(Reg.a0, Reg.s1)
            asm.li(Reg.a1, 0)
            asm.li(Reg.a2, 2 * BLOCK_SIZE)
            asm.syscall(SYS_HINT_FD_SEG)

        system, process = run_program(body, fs=make_populated_fs())
        assert system.stats.get("tip.hinted_blocks") == 2

    def test_hint_unknown_file_ignored(self):
        def body(asm):
            asm.data_asciiz("path", "missing")
            asm.la(Reg.a0, "path")
            asm.li(Reg.a1, 0)
            asm.li(Reg.a2, BLOCK_SIZE)
            asm.syscall(SYS_HINT_SEG)

        system, process = run_program(body)
        assert system.stats.get("tip.hinted_blocks") == 0
        assert system.stats.get("app.hint_calls_unresolvable") == 1

    def test_cancel_all_returns_count(self):
        def body(asm):
            open_f0(asm)
            asm.mov(Reg.a0, Reg.s1)
            asm.li(Reg.a1, 0)
            asm.li(Reg.a2, 3 * BLOCK_SIZE)
            asm.syscall(SYS_HINT_FD_SEG)
            asm.syscall(SYS_CANCEL_ALL)
            asm.mov(Reg.s0, Reg.v0)

        system, process = run_program(body, fs=make_populated_fs())
        assert process.original_thread.reg(Reg.s0) == 3


class TestMisc:
    def test_unknown_syscall_raises(self):
        def body(asm):
            asm.syscall(99)

        with pytest.raises(InvalidSyscall):
            run_program(body)

    def test_exit_code_recorded(self):
        def body(asm):
            asm.li(Reg.a0, 3)
            asm.syscall(1)  # SYS_EXIT

        system, process = run_program(body)
        assert process.exited
        assert process.exit_code == 3
