"""Edge cases of the kernel read path and of multi-block reads."""

from repro.fs.filesystem import FileSystem
from repro.params import BLOCK_SIZE
from repro.vm.isa import SEEK_SET, SYS_LSEEK, SYS_OPEN, SYS_READ, Reg

from tests.conftest import run_program


def fs_with(path="f", nblocks=6):
    fs = FileSystem()
    fs.create(path, bytes(i % 256 for i in range(nblocks * BLOCK_SIZE)))
    return fs


def open_read(asm, offset, length, bufsize=None):
    asm.data_asciiz("path", "f")
    asm.data_space("buf", bufsize or max(64, length))
    asm.la(Reg.a0, "path")
    asm.syscall(SYS_OPEN)
    asm.mov(Reg.s1, Reg.v0)
    asm.mov(Reg.a0, Reg.s1)
    asm.li(Reg.a1, offset)
    asm.li(Reg.a2, SEEK_SET)
    asm.syscall(SYS_LSEEK)
    asm.mov(Reg.a0, Reg.s1)
    asm.la(Reg.a1, "buf")
    asm.li(Reg.a2, length)
    asm.syscall(SYS_READ)
    asm.mov(Reg.s0, Reg.v0)


class TestMultiBlockReads:
    def test_read_spanning_blocks(self):
        def body(asm):
            open_read(asm, BLOCK_SIZE - 16, 32)

        system, process = run_program(body, fs=fs_with())
        assert process.original_thread.reg(Reg.s0) == 32
        # Two blocks were accessed by one call.
        assert system.stats.get("app.read_blocks") == 2
        assert system.stats.get("app.read_calls") == 1

    def test_large_read_fetches_in_parallel(self):
        """A read covering several blocks issues all fetches at once and
        blocks just once."""
        def body(asm):
            open_read(asm, 0, 4 * BLOCK_SIZE)

        system, process = run_program(body, fs=fs_with())
        assert process.original_thread.reg(Reg.s0) == 4 * BLOCK_SIZE
        assert system.stats.get("app.read_stalls") == 1
        assert system.stats.get("cache.demand_misses") == 4

    def test_buffer_contents_correct_across_boundary(self):
        def body(asm):
            open_read(asm, BLOCK_SIZE - 4, 8)
            asm.la(Reg.t0, "buf")
            asm.loadb(Reg.s2, Reg.t0, 0)
            asm.loadb(Reg.s3, Reg.t0, 7)

        fs = fs_with()
        expected = fs.lookup("f").read_at(BLOCK_SIZE - 4, 8)
        system, process = run_program(body, fs=fs)
        thread = process.original_thread
        assert thread.reg(Reg.s2) == expected[0]
        assert thread.reg(Reg.s3) == expected[7]


class TestReadClamping:
    def test_read_clamped_at_eof(self):
        def body(asm):
            open_read(asm, 6 * BLOCK_SIZE - 100, BLOCK_SIZE)

        system, process = run_program(body, fs=fs_with())
        assert process.original_thread.reg(Reg.s0) == 100

    def test_read_of_zero_bytes(self):
        def body(asm):
            open_read(asm, 0, 0)

        system, process = run_program(body, fs=fs_with())
        assert process.original_thread.reg(Reg.s0) == 0
        assert system.stats.get("app.read_blocks") == 0

    def test_read_from_stdout_fd_returns_zero(self):
        def body(asm):
            asm.data_space("buf", 64)
            asm.li(Reg.a0, 1)  # stdout
            asm.la(Reg.a1, "buf")
            asm.li(Reg.a2, 10)
            asm.syscall(SYS_READ)
            asm.mov(Reg.s0, Reg.v0)

        system, process = run_program(body)
        assert process.original_thread.reg(Reg.s0) == 0

    def test_lseek_clamps_negative_to_zero(self):
        def body(asm):
            asm.data_asciiz("path", "f")
            asm.la(Reg.a0, "path")
            asm.syscall(SYS_OPEN)
            asm.mov(Reg.a0, Reg.v0)
            asm.li(Reg.a1, -500)
            asm.li(Reg.a2, SEEK_SET)
            asm.syscall(SYS_LSEEK)
            asm.mov(Reg.s0, Reg.v0)

        system, process = run_program(body, fs=fs_with())
        assert process.original_thread.reg(Reg.s0) == 0


class TestConcurrentBlockSharing:
    def test_two_reads_same_block_one_fetch(self):
        """The second read joins the in-flight fetch (no duplicate I/O)."""
        def body(asm):
            asm.data_asciiz("path", "f")
            asm.data_space("buf", 128)
            asm.la(Reg.a0, "path")
            asm.syscall(SYS_OPEN)
            asm.mov(Reg.s1, Reg.v0)
            for _ in range(2):
                asm.mov(Reg.a0, Reg.s1)
                asm.li(Reg.a1, 0)
                asm.li(Reg.a2, SEEK_SET)
                asm.syscall(SYS_LSEEK)
                asm.mov(Reg.a0, Reg.s1)
                asm.la(Reg.a1, "buf")
                asm.li(Reg.a2, 64)
                asm.syscall(SYS_READ)

        system, process = run_program(body, fs=fs_with())
        assert system.stats.get("array.demand_submitted") == 1
        assert system.stats.get("cache.block_reuses") == 1
