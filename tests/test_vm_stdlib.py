"""Tests for the standard-library assembly routines."""

from repro.vm.isa import Reg

from tests.conftest import run_program


class TestMemcpy:
    def _run_memcpy(self, payload: bytes, n=None):
        n = len(payload) if n is None else n

        def body(asm):
            asm.data_bytes("src", payload)
            asm.data_space("dst", max(1, len(payload)))
            asm.la(Reg.a0, "dst")
            asm.la(Reg.a1, "src")
            asm.li(Reg.a2, n)
            asm.call("memcpy")

        system, process = run_program(body, with_stdlib=True)
        binary = process.binary
        dst = binary.data_symbols["dst"]
        return process.mem.read_bytes(dst, len(payload))

    def test_word_multiple(self):
        payload = bytes(range(16))
        assert self._run_memcpy(payload) == payload

    def test_with_byte_tail(self):
        payload = b"hello world!!"  # 13 bytes: one word + 5-byte tail
        assert self._run_memcpy(payload) == payload

    def test_short_copy(self):
        assert self._run_memcpy(b"abc") == b"abc"

    def test_zero_length(self):
        assert self._run_memcpy(b"xyz", n=0) == b"\x00\x00\x00"

    def test_returns_dst(self):
        def body(asm):
            asm.data_bytes("src", b"ab")
            asm.data_space("dst", 8)
            asm.la(Reg.a0, "dst")
            asm.la(Reg.a1, "src")
            asm.li(Reg.a2, 2)
            asm.call("memcpy")
            asm.mov(Reg.s0, Reg.v0)

        system, process = run_program(body, with_stdlib=True)
        dst = process.binary.data_symbols["dst"]
        assert process.original_thread.reg(Reg.s0) == dst


class TestStrncpy:
    def _run_strncpy(self, src: bytes, n: int, dst_size=32):
        def body(asm):
            asm.data_bytes("src", src)
            asm.data_space("dst", dst_size)
            asm.la(Reg.a0, "dst")
            asm.la(Reg.a1, "src")
            asm.li(Reg.a2, n)
            asm.call("strncpy")

        system, process = run_program(body, with_stdlib=True)
        dst = process.binary.data_symbols["dst"]
        return process.mem.read_bytes(dst, dst_size)

    def test_stops_at_nul(self):
        out = self._run_strncpy(b"hi\x00zzz", 6)
        assert out[:3] == b"hi\x00"
        assert out[3] == 0  # nothing beyond the NUL was copied

    def test_stops_at_n(self):
        out = self._run_strncpy(b"abcdefgh\x00", 4)
        assert out[:4] == b"abcd"
        assert out[4] == 0


class TestPrintRoutines:
    def test_print_str_writes_stdout(self):
        def body(asm):
            asm.data_bytes("msg", b"hello!")
            asm.la(Reg.a0, "msg")
            asm.li(Reg.a1, 6)
            asm.call("print_str")

        system, process = run_program(body, with_stdlib=True)
        assert bytes(process.output) == b"hello!"

    def test_print_num_formats_decimal(self):
        def body(asm):
            asm.li(Reg.a0, 12345)
            asm.call("print_num")

        system, process = run_program(body, with_stdlib=True)
        out = bytes(process.output)
        assert out.endswith(b"\n")
        assert out.strip() == b"12345"

    def test_print_num_zero(self):
        def body(asm):
            asm.li(Reg.a0, 0)
            asm.call("print_num")

        system, process = run_program(body, with_stdlib=True)
        assert bytes(process.output).strip() == b"0"

    def test_print_num_width_is_stable(self):
        """Output is fixed-width so speculative stripping can't change
        byte counts between runs."""
        outs = []
        for value in (7, 7_000_000):
            def body(asm, v=value):
                asm.li(Reg.a0, v)
                asm.call("print_num")

            _, process = run_program(body, with_stdlib=True)
            outs.append(len(process.output))
        assert outs[0] == outs[1] == 21

    def test_output_routines_registered(self):
        def body(asm):
            asm.nop()

        _, process = run_program(body, with_stdlib=True)
        assert "print_str" in process.binary.output_routines
        assert "print_num" in process.binary.output_routines
        assert "memcpy" in process.binary.optimized_stdlib
        assert "strncpy" in process.binary.optimized_stdlib
