"""Tests for the supervised fault-tolerant parallel sweep engine.

The matrix the ISSUE requires: determinism (parallel byte-identical to
serial), worker crash mid-cell, hung cell, poisoned cell quarantine,
pool-startup degradation, parent SIGKILL + resume, SIGTERM checkpoint
flush, and the CLI ``--jobs`` wiring.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.errors import QuarantinedCell, WorkerCrash
from repro.faults.plan import PROFILES
from repro.harness.checkpoint import SweepCheckpoint
from repro.harness.parallel import (
    chaos_parallel_cells,
    merge_worker_partials,
    require_complete,
    run_cells_parallel,
    sweep_parallel_cells,
)
from repro.harness.supervisor import SupervisorConfig

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(os.path.dirname(TESTS_DIR), "src")

#: Snappy supervision for fault-injection tests: fast heartbeats, short
#: backoff.  The stall deadline stays generous — only the hang tests
#: lower it, so a slow CI machine cannot false-kill a healthy worker.
FAST = SupervisorConfig(
    jobs=2,
    heartbeat_interval_s=0.05,
    stall_deadline_s=30.0,
    backoff_base_s=0.05,
    backoff_cap_s=0.2,
)


# ---------------------------------------------------------------------------
# Synthetic cell runners (module-level: pickled by reference into workers)
# ---------------------------------------------------------------------------

def ok_cell(key, value=0):
    return {"key": key, "value": value}


def counted_cell(key, runs_dir, seconds=0.0):
    """Append one line per execution so tests can count real runs."""
    with open(os.path.join(runs_dir, f"{key}.runs"), "a") as handle:
        handle.write("x\n")
    if seconds:
        time.sleep(seconds)
    return {"key": key, "value": 1}


def always_fail_cell(key):
    raise RuntimeError(f"poisoned cell {key}")


def crash_once_cell(key, marker_dir):
    """SIGKILL our own worker on the first attempt; succeed on retry."""
    marker = os.path.join(marker_dir, f"{key}.crashed")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return {"key": key, "recovered": True}


def crash_always_cell(key):
    os.kill(os.getpid(), signal.SIGKILL)
    raise AssertionError("unreachable")


def hang_once_cell(key, marker_dir):
    """Freeze (no sim progress, worker alive) on the first attempt."""
    marker = os.path.join(marker_dir, f"{key}.hung")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        time.sleep(600)
    return {"key": key, "recovered": True}


def runs_of(key, runs_dir):
    path = os.path.join(runs_dir, f"{key}.runs")
    if not os.path.exists(path):
        return 0
    with open(path) as handle:
        return len(handle.readlines())


def canonical(results):
    return {key: json.dumps(payload, sort_keys=True)
            for key, payload in results.items()}


# ---------------------------------------------------------------------------
# Determinism guard
# ---------------------------------------------------------------------------

class TestDeterminism:
    def test_parallel_sweep_cells_byte_identical_to_serial(self):
        cells = sweep_parallel_cells("cache", workload_scale=0.2)[:6]
        serial = run_cells_parallel(cells, jobs=1)
        parallel = run_cells_parallel(cells, jobs=2, config=FAST)
        assert not serial.quarantined and not parallel.quarantined
        assert canonical(serial.results) == canonical(parallel.results)
        assert serial.stats.mode == "serial"
        assert parallel.stats.mode == "parallel"
        assert parallel.stats.worker_crashes == 0
        assert parallel.stats.cell_timeouts == 0

    def test_parallel_chaos_cells_byte_identical_to_serial(self):
        profile = next(name for name in sorted(PROFILES) if name != "none")
        cells = chaos_parallel_cells(
            apps=("agrep",), profiles=(None, profile), workload_scale=0.2,
        )
        serial = run_cells_parallel(cells, jobs=1)
        parallel = run_cells_parallel(cells, jobs=2, config=FAST)
        assert canonical(serial.results) == canonical(parallel.results)

    def test_parallel_registry_byte_identical_to_serial(self, tmp_path):
        import glob

        cells = sweep_parallel_cells("cache", workload_scale=0.2)[:4]
        serial_reg = str(tmp_path / "serial-registry.jsonl")
        parallel_reg = str(tmp_path / "parallel-registry.jsonl")
        meta = {"kind": "sweep-cell", "code_version": "repro-test"}
        run_cells_parallel(cells, jobs=1,
                           registry_path=serial_reg, registry_meta=meta)
        run_cells_parallel(cells, jobs=4, config=FAST,
                           registry_path=parallel_reg, registry_meta=meta)
        with open(serial_reg, "rb") as handle:
            serial_bytes = handle.read()
        with open(parallel_reg, "rb") as handle:
            parallel_bytes = handle.read()
        assert serial_bytes == parallel_bytes
        # Worker sidecar ledgers must be merged away, not left behind.
        assert glob.glob(parallel_reg + ".reg-worker-*") == []

    def test_parallel_checkpoint_file_matches_serial(self, tmp_path):
        cells = sweep_parallel_cells("cache", workload_scale=0.2)[:4]
        serial_path = str(tmp_path / "serial.ckpt")
        parallel_path = str(tmp_path / "parallel.ckpt")
        run_cells_parallel(cells, jobs=1, checkpoint_path=serial_path,
                           identity="determinism")
        run_cells_parallel(cells, jobs=2, checkpoint_path=parallel_path,
                           identity="determinism", config=FAST)
        with open(serial_path) as handle:
            serial_state = json.load(handle)
        with open(parallel_path) as handle:
            parallel_state = json.load(handle)
        assert serial_state == parallel_state


# ---------------------------------------------------------------------------
# Supervision: crash / hang / poison / storm / degradation
# ---------------------------------------------------------------------------

class TestSupervision:
    def test_poisoned_cell_quarantined_others_complete(self):
        cells = [
            ("good-a", ok_cell, ("good-a", 1)),
            ("bad", always_fail_cell, ("bad",)),
            ("good-b", ok_cell, ("good-b", 2)),
        ]
        outcome = run_cells_parallel(cells, jobs=2, config=FAST,
                                     on_event=lambda _msg: None)
        assert sorted(outcome.results) == ["good-a", "good-b"]
        record = outcome.quarantined["bad"]
        assert record["status"] == "QUARANTINED"
        assert len(record["failures"]) == FAST.max_cell_failures
        assert "RuntimeError" in record["traceback"]
        assert "poisoned cell bad" in record["traceback"]
        assert outcome.stats.cell_errors == FAST.max_cell_failures
        assert outcome.stats.retries == FAST.max_cell_failures - 1
        with pytest.raises(QuarantinedCell, match="bad"):
            require_complete(outcome, what="test sweep")

    def test_worker_crash_mid_cell_rescheduled(self, tmp_path):
        cells = [("steady", ok_cell, ("steady", 1)),
                 ("crasher", crash_once_cell, ("crasher", str(tmp_path)))]
        outcome = run_cells_parallel(cells, jobs=2, config=FAST,
                                     on_event=lambda _msg: None)
        assert not outcome.quarantined
        assert outcome.results["crasher"] == {"key": "crasher",
                                              "recovered": True}
        assert outcome.stats.worker_crashes >= 1
        assert outcome.stats.retries >= 1
        # The crashed slot was refilled on top of the initial pool.
        assert outcome.stats.workers_spawned >= 3

    def test_hung_cell_killed_and_rescheduled(self, tmp_path):
        import dataclasses

        config = dataclasses.replace(FAST, heartbeat_interval_s=0.1,
                                     stall_deadline_s=0.6)
        cells = [("hanger", hang_once_cell, ("hanger", str(tmp_path))),
                 ("steady", ok_cell, ("steady", 1))]
        outcome = run_cells_parallel(cells, jobs=2, config=config,
                                     on_event=lambda _msg: None)
        assert not outcome.quarantined
        assert outcome.results["hanger"] == {"key": "hanger",
                                             "recovered": True}
        assert outcome.stats.cell_timeouts >= 1

    def test_crash_storm_aborts_with_typed_error(self):
        import dataclasses

        config = dataclasses.replace(FAST, max_pool_failures=2,
                                     max_cell_failures=10)
        cells = [("doomed", crash_always_cell, ("doomed",))]
        with pytest.raises(WorkerCrash, match="pool unhealthy"):
            run_cells_parallel(cells, jobs=2, config=config,
                               on_event=lambda _msg: None)

    def test_pool_startup_failure_degrades_to_serial(self, monkeypatch):
        from repro.harness import supervisor as supervisor_mod

        def broken_start(self):
            raise RuntimeError("no processes for you")

        monkeypatch.setattr(supervisor_mod.Supervisor, "start", broken_start)
        events = []
        cells = [("a", ok_cell, ("a", 1)), ("b", ok_cell, ("b", 2))]
        outcome = run_cells_parallel(cells, jobs=2, config=FAST,
                                     on_event=events.append)
        assert outcome.stats.mode == "serial"
        assert sorted(outcome.results) == ["a", "b"]
        assert any("degrading to serial" in message for message in events)

    def test_jobs_one_runs_serial(self):
        outcome = run_cells_parallel([("a", ok_cell, ("a", 1))], jobs=1)
        assert outcome.stats.mode == "serial"
        assert outcome.results == {"a": {"key": "a", "value": 1}}


# ---------------------------------------------------------------------------
# Checkpoint integration: resume, quarantine persistence, partial merge
# ---------------------------------------------------------------------------

class TestCheckpointIntegration:
    def test_resume_restores_instead_of_recomputing(self, tmp_path):
        runs_dir = str(tmp_path)
        path = str(tmp_path / "sweep.ckpt")
        cells = [(f"cell-{i}", counted_cell, (f"cell-{i}", runs_dir))
                 for i in range(4)]
        first = run_cells_parallel(cells, jobs=2, checkpoint_path=path,
                                   identity="resume-test", config=FAST)
        assert len(first.results) == 4
        second = run_cells_parallel(cells, jobs=2, checkpoint_path=path,
                                    identity="resume-test", resume=True,
                                    config=FAST)
        assert canonical(second.results) == canonical(first.results)
        assert second.stats.cells_restored == 4
        assert second.stats.cells_completed == 0
        for i in range(4):
            assert runs_of(f"cell-{i}", runs_dir) == 1  # never recomputed

    def test_quarantine_record_persisted_and_retried_on_resume(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        bad = [("flaky", always_fail_cell, ("flaky",))]
        outcome = run_cells_parallel(bad, jobs=2, checkpoint_path=path,
                                     identity="quarantine-test", config=FAST,
                                     on_event=lambda _msg: None)
        assert "flaky" in outcome.quarantined
        reloaded = SweepCheckpoint.load(path, "quarantine-test")
        assert "flaky" in reloaded.quarantined
        assert reloaded.quarantined["flaky"]["status"] == "QUARANTINED"

        # Resume retries the quarantined cell; success clears the record.
        healed = [("flaky", ok_cell, ("flaky", 7))]
        outcome = run_cells_parallel(healed, jobs=2, checkpoint_path=path,
                                     identity="quarantine-test", resume=True,
                                     config=FAST)
        assert outcome.results["flaky"] == {"key": "flaky", "value": 7}
        reloaded = SweepCheckpoint.load(path, "quarantine-test")
        assert "flaky" in reloaded
        assert "flaky" not in reloaded.quarantined

    def test_merge_worker_partials_adopts_and_deletes(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        main = SweepCheckpoint(path, "merge-test")
        main.record_payload("done-before", {"value": 1})

        partial = SweepCheckpoint(path + ".worker-0", "merge-test")
        partial.record_payload("done-before", {"value": 1})
        partial.record_payload("orphaned", {"value": 2})

        adopted = merge_worker_partials(main)
        assert adopted == 1
        assert not os.path.exists(path + ".worker-0")
        reloaded = SweepCheckpoint.load(path, "merge-test")
        assert reloaded.payload("orphaned") == {"value": 2}

    def test_merge_ignores_foreign_identity_partials(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        main = SweepCheckpoint(path, "merge-test")
        main.flush()
        foreign = SweepCheckpoint(path + ".worker-1", "other-sweep")
        foreign.record_payload("alien", {"value": 9})

        events = []
        adopted = merge_worker_partials(main, on_event=events.append)
        assert adopted == 0
        assert "alien" not in main
        assert any("ignoring stale partial" in message for message in events)
        assert not os.path.exists(path + ".worker-1")

    def test_fresh_start_clears_stale_partials(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        stale = SweepCheckpoint(path + ".worker-0", "fresh-test")
        stale.record_payload("stale-cell", {"value": 1})
        outcome = run_cells_parallel(
            [("a", ok_cell, ("a", 1))], jobs=1,
            checkpoint_path=path, identity="fresh-test",
        )
        assert "stale-cell" not in outcome.results
        assert not os.path.exists(path + ".worker-0")


# ---------------------------------------------------------------------------
# Kill matrix: parent SIGKILL mid-sweep, SIGTERM flush
# ---------------------------------------------------------------------------

_KILL_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {tests!r})
from test_parallel_supervisor import counted_cell
from repro.harness.parallel import run_cells_parallel

cells = [("cell-%d" % i, counted_cell, ("cell-%d" % i, {runs_dir!r}, 0.3))
         for i in range(8)]
run_cells_parallel(cells, jobs={jobs}, checkpoint_path={path!r},
                   identity="kill-test", resume=True,
                   on_event=lambda _msg: None)
print("COMPLETED")
"""


def _recorded_cells(path):
    """Cells durably recorded in the main checkpoint plus any partials."""
    import glob

    keys = set()
    for candidate in [path] + sorted(glob.glob(glob.escape(path) + ".worker-*")):
        try:
            with open(candidate) as handle:
                keys.update(json.load(handle).get("cells", {}))
        except (OSError, ValueError):
            continue
    return keys


class TestKillMatrix:
    def _launch(self, tmp_path, jobs):
        runs_dir = str(tmp_path)
        path = str(tmp_path / "sweep.ckpt")
        script = _KILL_SCRIPT.format(src=SRC_DIR, tests=TESTS_DIR,
                                     runs_dir=runs_dir, path=path, jobs=jobs)
        process = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        )
        return process, path, runs_dir

    def _wait_for_cells(self, process, path, minimum, timeout_s=60.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if len(_recorded_cells(path)) >= minimum:
                return
            if process.poll() is not None:
                pytest.fail("sweep subprocess exited before the kill point")
            time.sleep(0.05)
        pytest.fail(f"no {minimum} checkpointed cells within {timeout_s}s")

    def test_parent_sigkill_then_resume_equals_uninterrupted(self, tmp_path):
        process, path, runs_dir = self._launch(tmp_path, jobs=2)
        try:
            self._wait_for_cells(process, path, minimum=2)
        finally:
            process.kill()
            process.wait(timeout=30)

        survivors = _recorded_cells(path)
        assert len(survivors) >= 2

        # Resume in-process: the merged result set must equal an
        # uninterrupted run's, with the survivors restored, not re-run.
        cells = [(f"cell-{i}", counted_cell, (f"cell-{i}", runs_dir, 0.0))
                 for i in range(8)]
        outcome = run_cells_parallel(cells, jobs=2, checkpoint_path=path,
                                     identity="kill-test", resume=True,
                                     config=FAST)
        assert not outcome.quarantined
        assert sorted(outcome.results) == [f"cell-{i}" for i in range(8)]
        assert outcome.stats.cells_restored >= len(survivors)
        for key in survivors:
            assert runs_of(key, runs_dir) == 1  # restored, never recomputed
        for i in range(8):
            payload = outcome.results[f"cell-{i}"]
            assert payload == {"key": f"cell-{i}", "value": 1}

    def test_sigterm_flushes_checkpoint_before_exit(self, tmp_path):
        process, path, runs_dir = self._launch(tmp_path, jobs=1)
        try:
            self._wait_for_cells(process, path, minimum=1)
            process.send_signal(signal.SIGTERM)
            returncode = process.wait(timeout=30)
        finally:
            process.kill()
            process.wait(timeout=30)
        assert returncode == 128 + signal.SIGTERM  # conventional 143

        reloaded = SweepCheckpoint.load(path, "kill-test")
        assert len(reloaded) >= 1

        cells = [(f"cell-{i}", counted_cell, (f"cell-{i}", runs_dir, 0.0))
                 for i in range(8)]
        outcome = run_cells_parallel(cells, jobs=1, checkpoint_path=path,
                                     identity="kill-test", resume=True)
        assert sorted(outcome.results) == [f"cell-{i}" for i in range(8)]
        for key in reloaded.keys():
            assert runs_of(key, runs_dir) == 1


# ---------------------------------------------------------------------------
# Sweep / oracle / CLI integration
# ---------------------------------------------------------------------------

class TestIntegration:
    def test_run_sweep_resumable_parallel_matches_serial(self, tmp_path):
        from repro.harness.experiments import run_sweep_resumable

        serial = run_sweep_resumable("cache", workload_scale=0.2)
        stats_out = {}
        parallel = run_sweep_resumable(
            "cache", workload_scale=0.2,
            checkpoint_path=str(tmp_path / "sweep.ckpt"),
            jobs=2, supervisor_config=FAST, stats_out=stats_out,
        )
        assert stats_out["mode"] == "parallel"
        assert parallel.keys() == serial.keys()
        for point, matrix in serial.items():
            for app, by_variant in matrix.items():
                for variant, result in by_variant.items():
                    other = parallel[point][app][variant]
                    assert other.to_jsonable() == result.to_jsonable()

    def test_oracle_parallel_matches_serial(self):
        from repro.harness.oracle import run_oracle

        serial = run_oracle(("agrep",), profiles=(None,),
                            workload_scale=0.2)
        parallel = run_oracle(("agrep",), profiles=(None,),
                              workload_scale=0.2, jobs=2)
        assert parallel.passed
        assert parallel.to_jsonable() == serial.to_jsonable()

    def test_cli_sweep_forwards_jobs(self, monkeypatch, capsys):
        from repro import cli
        from repro.harness import experiments

        captured = {}

        def fake_resumable(kind, **kwargs):
            captured["kind"] = kind
            captured.update(kwargs)
            if kwargs.get("stats_out") is not None:
                kwargs["stats_out"]["mode"] = "parallel"
            from repro.harness.results import RunResult

            fake = RunResult(app="agrep", variant="original", cycles=1,
                             cpu_hz=1, counters={}, output=b"",
                             read_trace=())
            from repro.harness.config import APPS, Variant
            from repro.harness.experiments import SWEEP_POINTS

            return {point: {app: {v.value: fake for v in Variant}
                            for app in APPS}
                    for point in SWEEP_POINTS[kind]}

        monkeypatch.setattr(experiments, "run_sweep_resumable",
                            fake_resumable)
        exit_code = cli.main(["sweep", "cache", "--scale", "0.2",
                              "--jobs", "3"])
        assert exit_code == 0
        assert captured["kind"] == "cache"
        assert captured["jobs"] == 3
        out = capsys.readouterr().out
        assert "parallel" in out  # supervisor stats line printed

    def test_cli_run_oracle_forwards_jobs(self, monkeypatch):
        from repro import cli
        from repro.harness import oracle as oracle_mod
        from repro.harness.oracle import OracleReport

        captured = {}

        def fake_oracle(apps, **kwargs):
            captured["apps"] = tuple(apps)
            captured.update(kwargs)
            return OracleReport()

        monkeypatch.setattr(oracle_mod, "run_oracle", fake_oracle)
        exit_code = cli.main(["run", "agrep", "--oracle", "--jobs", "4",
                              "--scale", "0.2"])
        assert exit_code == 0
        assert captured["apps"] == ("agrep",)
        assert captured["jobs"] == 4
