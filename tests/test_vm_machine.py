"""Tests for the SpecVM interpreter (normal execution)."""

import pytest

from repro.errors import ArithmeticFault, IllegalAddress, MachineFault
from repro.vm.isa import Reg, SYS_SBRK, to_signed
from repro.vm.memory import DATA_BASE

from tests.conftest import run_program


def reg_after(build, reg=Reg.s0):
    """Run a tiny program and return a register of the main thread."""
    system, process = run_program(build)
    return process.original_thread.reg(reg)


class TestAlu:
    def test_li_and_mov(self):
        def body(asm):
            asm.li(Reg.t0, 1234)
            asm.mov(Reg.s0, Reg.t0)

        assert reg_after(body) == 1234

    def test_add_sub(self):
        def body(asm):
            asm.li(Reg.t0, 10)
            asm.li(Reg.t1, 3)
            asm.sub(Reg.s0, Reg.t0, Reg.t1)

        assert reg_after(body) == 7

    def test_wraparound_64_bits(self):
        def body(asm):
            asm.li(Reg.t0, (1 << 63))
            asm.add(Reg.s0, Reg.t0, Reg.t0)

        assert reg_after(body) == 0

    def test_mul_div_mod(self):
        def body(asm):
            asm.li(Reg.t0, 17)
            asm.li(Reg.t1, 5)
            asm.div(Reg.s0, Reg.t0, Reg.t1)
            asm.mod(Reg.s1, Reg.t0, Reg.t1)

        system, process = run_program(body)
        assert process.original_thread.reg(Reg.s0) == 3
        assert process.original_thread.reg(Reg.s1) == 2

    def test_signed_division(self):
        def body(asm):
            asm.li(Reg.t0, -7)
            asm.li(Reg.t1, 2)
            asm.div(Reg.s0, Reg.t0, Reg.t1)

        assert to_signed(reg_after(body)) == -4  # floor division

    def test_division_by_zero_faults(self):
        def body(asm):
            asm.li(Reg.t0, 1)
            asm.div(Reg.s0, Reg.t0, Reg.zero)

        with pytest.raises(ArithmeticFault):
            run_program(body)

    def test_shifts_and_logic(self):
        def body(asm):
            asm.li(Reg.t0, 0b1100)
            asm.shli(Reg.s0, Reg.t0, 2)
            asm.shri(Reg.s1, Reg.t0, 2)
            asm.andi(Reg.s2, Reg.t0, 0b0110)
            asm.ori(Reg.s3, Reg.t0, 0b0001)

        system, process = run_program(body)
        t = process.original_thread
        assert t.reg(Reg.s0) == 0b110000
        assert t.reg(Reg.s1) == 0b11
        assert t.reg(Reg.s2) == 0b0100
        assert t.reg(Reg.s3) == 0b1101

    def test_slt_signed(self):
        def body(asm):
            asm.li(Reg.t0, -1)
            asm.li(Reg.t1, 1)
            asm.slt(Reg.s0, Reg.t0, Reg.t1)
            asm.slt(Reg.s1, Reg.t1, Reg.t0)

        system, process = run_program(body)
        assert process.original_thread.reg(Reg.s0) == 1
        assert process.original_thread.reg(Reg.s1) == 0

    def test_zero_register_reads_zero(self):
        def body(asm):
            asm.addi(Reg.s0, Reg.zero, 5)

        assert reg_after(body) == 5


class TestControlFlow:
    def test_loop_with_branch(self):
        def body(asm):
            asm.li(Reg.s0, 0)
            asm.li(Reg.t0, 10)
            asm.label("loop")
            asm.addi(Reg.s0, Reg.s0, 1)
            asm.blt(Reg.s0, Reg.t0, "loop")

        assert reg_after(body) == 10

    def test_call_and_ret(self):
        system, process = run_program(_call_program, with_stdlib=False)
        assert process.original_thread.reg(Reg.s0) == 99

    def test_indirect_call_through_register(self):
        def body(asm):
            asm.la(Reg.t0, "helper")
            asm.callr(Reg.t0)
            asm.jmp("end")
            asm.label("helper")
            asm.li(Reg.s0, 7)
            asm.ret()
            asm.label("end")

        assert reg_after(body) == 7

    def test_jump_table_switch(self):
        def body(asm):
            table = asm.jump_table(["case0", "case1"])
            asm.li(Reg.t0, 1)
            asm.switch(Reg.t0, table)
            asm.label("case0")
            asm.li(Reg.s0, 100)
            asm.jmp("end")
            asm.label("case1")
            asm.li(Reg.s0, 200)
            asm.label("end")

        assert reg_after(body) == 200

    def test_switch_out_of_range_faults(self):
        def body(asm):
            table = asm.jump_table(["case0"])
            asm.li(Reg.t0, 5)
            asm.switch(Reg.t0, table)
            asm.label("case0")

        with pytest.raises(MachineFault):
            run_program(body)

    def test_jr_outside_text_faults(self):
        def body(asm):
            asm.li(Reg.t0, 1 << 30)
            asm.jr(Reg.t0)

        with pytest.raises(MachineFault):
            run_program(body)


class TestMemoryOps:
    def test_store_load_roundtrip(self):
        def body(asm):
            asm.data_word("g", 0)
            asm.la(Reg.t0, "g")
            asm.li(Reg.t1, 777)
            asm.store(Reg.t1, Reg.t0, 0)
            asm.load(Reg.s0, Reg.t0, 0)

        assert reg_after(body) == 777

    def test_byte_ops(self):
        def body(asm):
            asm.data_space("b", 16)
            asm.la(Reg.t0, "b")
            asm.li(Reg.t1, 0xAB)
            asm.storeb(Reg.t1, Reg.t0, 3)
            asm.loadb(Reg.s0, Reg.t0, 3)

        assert reg_after(body) == 0xAB

    def test_stack_push_pop(self):
        def body(asm):
            asm.li(Reg.t0, 31)
            asm.push(Reg.t0)
            asm.li(Reg.t0, 0)
            asm.pop(Reg.s0)

        assert reg_after(body) == 31

    def test_unmapped_access_faults(self):
        def body(asm):
            asm.li(Reg.t0, 64)  # inside the null guard
            asm.load(Reg.s0, Reg.t0, 0)

        with pytest.raises(IllegalAddress):
            run_program(body)


class TestTimeAccounting:
    def test_cwork_consumes_declared_cycles(self):
        def body(asm):
            asm.cwork(50_000, 10, 5)

        system, process = run_program(body)
        assert system.clock.now >= 50_000

    def test_cwork_cost_excludes_declared_memops_in_normal_mode(self):
        def slim(asm):
            asm.cwork(10_000, 0, 0)

        def loaded(asm):
            asm.cwork(10_000, 500, 500)

        slim_sys, _ = run_program(slim)
        loaded_sys, _ = run_program(loaded)
        assert slim_sys.clock.now == loaded_sys.clock.now

    def test_cpu_cycles_tracked_per_thread(self):
        def body(asm):
            asm.cwork(5000, 0, 0)

        system, process = run_program(body)
        assert process.original_thread.cpu_cycles >= 5000

    def test_sbrk_syscall(self):
        def body(asm):
            asm.li(Reg.a0, 4096)
            asm.syscall(SYS_SBRK)
            asm.mov(Reg.s0, Reg.v0)

        value = reg_after(body)
        assert value >= DATA_BASE  # old break (empty data segment)


def _call_program(asm):
    asm.jmp("start")
    asm.label("sub")
    asm.li(Reg.s0, 99)
    asm.ret()
    asm.label("start")
    asm.call("sub")
