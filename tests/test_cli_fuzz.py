"""The ``repro fuzz`` command: campaign, coverage report, replay."""

from __future__ import annotations

import json
import os

from repro.cli import main

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")


class TestFuzzCampaign:
    def test_small_campaign_passes(self, capsys):
        rc = main(["fuzz", "--budget", "2", "--seed", "7"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fault-space coverage over 2 case(s)" in out
        assert "fuzz: PASS (2/2 cells clean" in out

    def test_coverage_report_written(self, tmp_path, capsys):
        report = tmp_path / "coverage.json"
        rc = main(["fuzz", "--budget", "2", "--seed", "7",
                   "--coverage-report", str(report)])
        assert rc == 0
        data = json.loads(report.read_text())
        assert data["seed"] == 7
        assert data["budget"] == 2
        assert data["passed"] is True
        assert data["coverage"]["cases"] == 2
        assert data["digest"]

    def test_campaign_digest_matches_across_runs(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main(["fuzz", "--budget", "3", "--seed", "11",
                         "--coverage-report", str(path)]) == 0
        a = json.loads(paths[0].read_text())
        b = json.loads(paths[1].read_text())
        assert a["digest"] == b["digest"]
        assert a["coverage"] == b["coverage"]

    def test_unknown_app_is_a_clean_error(self, capsys):
        rc = main(["fuzz", "--budget", "1", "--apps", "nonesuch"])
        assert rc == 1
        assert "FuzzError" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self, capsys):
        rc = main(["fuzz", "--budget", "1", "--resume"])
        assert rc == 1
        assert "--checkpoint" in capsys.readouterr().err


class TestFuzzReplay:
    def test_corpus_entry_replays_green(self, capsys):
        path = os.path.join(CORPUS, "cancel-drain-restart-storm.json")
        rc = main(["fuzz", "replay", path])
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean: no invariant violations" in out
        assert "hint-lifecycle" in out

    def test_missing_file_is_a_clean_error(self, capsys):
        rc = main(["fuzz", "replay", "/nonexistent/repro.json"])
        assert rc == 1
        assert "FuzzError" in capsys.readouterr().err
