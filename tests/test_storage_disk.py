"""Tests for the single-disk model."""

import pytest

from repro.errors import InvalidBlockError
from repro.params import CpuParams, DiskParams
from repro.sim.clock import SimClock
from repro.sim.engine import EventEngine
from repro.sim.stats import StatRegistry
from repro.storage.disk import Disk
from repro.storage.request import IOKind, IORequest


def make_disk(nblocks=1000, params=None):
    clock = SimClock()
    engine = EventEngine(clock)
    stats = StatRegistry()
    done = []
    disk = Disk(
        0,
        nblocks,
        params or DiskParams(),
        CpuParams(),
        engine,
        stats,
        on_finish=done.append,
    )
    return disk, engine, stats, done


def request_for(disk, block, kind=IOKind.DEMAND):
    req = IORequest(block, kind)
    req.disk_id = disk.disk_id
    req.physical_block = block
    return req


def drain(engine):
    while engine.advance_to_next():
        pass


class TestDiskBasics:
    def test_needs_positive_size(self):
        with pytest.raises(InvalidBlockError):
            make_disk(nblocks=0)

    def test_block_out_of_range_rejected(self):
        disk, _, _, _ = make_disk(nblocks=10)
        with pytest.raises(InvalidBlockError):
            disk.submit(request_for(disk, 10))

    def test_single_request_completes(self):
        disk, engine, _, done = make_disk()
        disk.submit(request_for(disk, 5))
        assert disk.busy
        drain(engine)
        assert len(done) == 1
        assert done[0].lbn == 5
        assert not disk.busy

    def test_timestamps_recorded(self):
        disk, engine, _, done = make_disk()
        disk.submit(request_for(disk, 5))
        drain(engine)
        req = done[0]
        assert req.submit_time == 0
        assert req.start_time == 0
        assert req.finish_time > req.start_time


class TestServiceTimes:
    def test_random_access_pays_positioning(self):
        disk, engine, _, done = make_disk()
        disk.submit(request_for(disk, 500))
        drain(engine)
        cpu = CpuParams()
        p = DiskParams()
        expected = cpu.cycles(p.overhead_s + p.positioning_s + p.media_transfer_s(8192))
        assert done[0].finish_time == expected

    def test_sequential_access_skips_positioning(self):
        disk, engine, _, done = make_disk()
        disk.submit(request_for(disk, 100))
        drain(engine)
        first_time = done[0].finish_time
        # Block 101 is in the track buffer after reading block 100.
        disk.submit(request_for(disk, 101))
        drain(engine)
        second_service = done[1].finish_time - first_time
        assert second_service < first_time

    def test_track_buffer_hit_is_fastest(self):
        disk, engine, stats, done = make_disk()
        disk.submit(request_for(disk, 100))
        drain(engine)
        disk.submit(request_for(disk, 105))  # within the 16-block buffer
        drain(engine)
        assert stats.get("disk0.buffer_hits") == 1

    def test_far_jump_is_random_again(self):
        disk, engine, stats, _ = make_disk()
        for block in (100, 500):
            disk.submit(request_for(disk, block))
            drain(engine)
        assert stats.get("disk0.random_accesses") == 2


class TestQueueing:
    def test_fifo_among_demand(self):
        disk, engine, _, done = make_disk()
        for block in (10, 20, 30):
            disk.submit(request_for(disk, block))
        drain(engine)
        assert [r.lbn for r in done] == [10, 20, 30]

    def test_demand_bypasses_queued_prefetch(self):
        disk, engine, _, done = make_disk()
        disk.submit(request_for(disk, 10))  # becomes active
        disk.submit(request_for(disk, 20, IOKind.PREFETCH))
        disk.submit(request_for(disk, 30))  # demand jumps the prefetch
        drain(engine)
        assert [r.lbn for r in done] == [10, 30, 20]

    def test_queued_count(self):
        disk, _, _, _ = make_disk()
        disk.submit(request_for(disk, 1))
        disk.submit(request_for(disk, 2))
        disk.submit(request_for(disk, 3, IOKind.PREFETCH))
        assert disk.queued == 2
        assert disk.queued_prefetches() == 1

    def test_promote_queued_prefetch(self):
        disk, engine, _, done = make_disk()
        disk.submit(request_for(disk, 10))
        prefetch = request_for(disk, 20, IOKind.PREFETCH)
        disk.submit(prefetch)
        disk.submit(request_for(disk, 30))
        assert disk.promote_queued(20)
        assert prefetch.is_demand
        drain(engine)
        # Promoted request now competes FIFO with the other demand.
        assert [r.lbn for r in done] == [10, 30, 20]

    def test_promote_missing_returns_false(self):
        disk, _, _, _ = make_disk()
        assert not disk.promote_queued(99)
