"""Tests for the speculation-security taint lint (stage 5).

Covers the lattice laws the solver's convergence rests on, the four
crafted fixtures (two leaky, two clean — including the sanitized-copy
false-positive probe), witness chains, the vacuously-clean path for the
shipped apps, the CLI surface, and the runtime cross-validation: a leak
the lint predicts statically is confirmed by executing the fixture and
diffing the hint ledger across two secret values.
"""

import json
import random

import pytest

from repro.analysis import analyze_binary, analyze_security
from repro.analysis.fixtures import (
    FIXTURES,
    LEAKY_FIXTURES,
    build_taint_branch_fixture,
    build_taint_safe_fixture,
    build_taint_sanitized_fixture,
    build_taint_table_fixture,
)
from repro.analysis.taint import (
    EMPTY_TAINT,
    TaintState,
    taint_join,
    taint_widen,
)
from repro.cli import main as cli_main
from repro.errors import AnalysisError, AssemblyError
from repro.fs.filesystem import FileSystem
from repro.harness.runner import _BUILDERS
from repro.spechint.tool import SpecHintTool
from repro.vm.assembler import Assembler
from repro.vm.isa import SYS_EXIT, Reg
from repro.vm.memory import DATA_BASE

from tests.conftest import make_system, small_system_config


def _random_taint(rng):
    return frozenset(rng.sample("abcdefgh", rng.randint(0, 4)))


def _random_state(rng):
    state = TaintState()
    for reg in rng.sample(range(1, 32), 5):
        state.set(reg, _random_taint(rng))
    for slot in rng.sample(range(-64, 0, 8), 3):
        state.slots[slot] = _random_taint(rng)
    for name in ("x", "y", "@heap"):
        if rng.random() < 0.5:
            state.mem[name] = _random_taint(rng)
    state.smear = _random_taint(rng)
    state.offset = _random_taint(rng)
    return state


class TestLatticeLaws:
    """Join/widen must satisfy the lattice laws the fixpoint relies on."""

    def test_join_laws(self):
        rng = random.Random(7)
        for _ in range(200):
            a, b, c = (_random_taint(rng) for _ in range(3))
            assert taint_join(a, b) == taint_join(b, a)
            assert taint_join(a, a) == a
            assert taint_join(taint_join(a, b), c) == \
                taint_join(a, taint_join(b, c))
            # Monotone: the join bounds both operands.
            assert a <= taint_join(a, b) and b <= taint_join(a, b)
            assert taint_join(a, EMPTY_TAINT) == a

    def test_widen_equals_join_on_finite_lattice(self):
        # The label powerset is finite, so widening can be exact: any
        # ascending chain stabilizes without jumping to a synthetic top.
        rng = random.Random(11)
        for _ in range(200):
            a, b = _random_taint(rng), _random_taint(rng)
            assert taint_widen(a, b) == taint_join(a, b)

    def test_widen_stabilizes_ascending_chains(self):
        labels = [f"s{i}" for i in range(8)]
        acc = EMPTY_TAINT
        for i, label in enumerate(labels):
            nxt = taint_widen(acc, acc | {label})
            assert nxt == acc | {label}
            acc = nxt
        # A full pass with nothing new is a fixpoint.
        assert taint_widen(acc, acc) == acc

    def test_state_join_commutative_and_idempotent(self):
        rng = random.Random(13)
        for _ in range(50):
            a, b = _random_state(rng), _random_state(rng)
            assert a.join_with(b) == b.join_with(a)
            assert a.join_with(a) == a

    def test_state_join_is_upper_bound(self):
        rng = random.Random(17)
        for _ in range(50):
            a, b = _random_state(rng), _random_state(rng)
            joined = a.join_with(b)
            for reg in range(32):
                assert a.regs[reg] <= joined.regs[reg]
                assert b.regs[reg] <= joined.regs[reg]
            assert a.smear | b.smear == joined.smear
            assert a.offset | b.offset == joined.offset
            for name, taint in a.mem.items():
                assert taint <= joined.mem.get(name, EMPTY_TAINT)

    def test_state_equality_ignores_empty_entries(self):
        a, b = TaintState(), TaintState()
        a.mem["x"] = EMPTY_TAINT
        a.slots[-8] = EMPTY_TAINT
        assert a == b

    def test_zero_register_never_tainted(self):
        state = TaintState()
        state.set(0, frozenset({"s"}))
        assert state.get(0) == EMPTY_TAINT


class TestSecretRegions:
    def test_assembler_marks_secret_extent(self):
        asm = Assembler("t")
        asm.data_bytes("key", b"\x01\x02\x03\x04", secret=True)
        asm.data_word("pub", 7)
        asm.entry("main")
        with asm.function("main"):
            asm.li(Reg.a0, 0)
            asm.syscall(SYS_EXIT)
        binary = asm.finish()
        regions = binary.secret_regions()
        assert [r.name for r in regions] == ["key"]
        assert regions[0].size >= 4
        # The extent stops at the next symbol: "pub" is not secret.
        assert regions[0].end <= binary.data_symbols["pub"]

    def test_secret_function_symbol_rejected(self):
        asm = Assembler("t")
        asm.entry("main")
        with asm.function("main"):
            asm.li(Reg.a0, 0)
            asm.syscall(SYS_EXIT)
        binary = asm.finish()
        binary.secret_symbols.add("main")
        with pytest.raises(AssemblyError):
            binary.secret_regions()


class TestFixtureClassification:
    """The acceptance matrix: no false negative, no false positive."""

    def test_table_walk_leaks_offset(self):
        plan = analyze_security(build_taint_table_fixture())
        assert not plan.clean
        assert len(plan.leaks) == 1
        leak = plan.leaks[0]
        assert "offset" in leak.channels
        assert leak.channels["offset"] == ("secret",)
        assert "ino" not in leak.channels

    def test_branch_leaks_ino_implicitly(self):
        plan = analyze_security(build_taint_branch_fixture())
        assert not plan.clean
        assert any("ino" in leak.channels for leak in plan.leaks)

    def test_safe_scan_is_clean(self):
        plan = analyze_security(build_taint_safe_fixture())
        assert plan.clean
        assert plan.secret_labels == ("secret",)
        assert plan.disclosure_sites  # the sites exist; no flow into them

    def test_sanitized_copy_is_not_a_false_positive(self):
        plan = analyze_security(build_taint_sanitized_fixture())
        assert plan.clean

    def test_leak_site_is_speculation_reachable(self):
        binary = build_taint_table_fixture()
        analysis = analyze_binary(binary)
        plan = analyze_security(binary, analysis=analysis)
        for leak in plan.leaks:
            assert leak.index in analysis.spec_reachable
            assert leak.index in plan.disclosure_sites

    def test_registry_covers_all_taint_fixtures(self):
        taint_names = {n for n in FIXTURES if n.startswith("taint-")}
        assert taint_names == {
            "taint-safe-fixture", "taint-table-fixture",
            "taint-branch-fixture", "taint-sanitized-fixture",
        }
        assert set(LEAKY_FIXTURES) <= taint_names
        for name, builder in FIXTURES.items():
            assert builder().name == name


class TestWitnessChains:
    def test_table_witness_reaches_the_secret_load(self):
        plan = analyze_security(build_taint_table_fixture())
        steps = plan.leaks[0].witness
        assert steps[0].index == plan.leaks[0].index  # starts at the sink
        notes = " | ".join(s.note for s in steps)
        assert "disclosure site" in notes
        assert "secret" in notes  # ends at the tainted load

    def test_branch_witness_names_the_controlling_branch(self):
        plan = analyze_security(build_taint_branch_fixture())
        leak = next(l for l in plan.leaks if "ino" in l.channels)
        notes = " | ".join(s.note for s in leak.witness)
        assert "implicit flow" in notes
        assert "branch" in notes

    def test_witness_indices_are_valid_text_indices(self):
        binary = build_taint_branch_fixture()
        plan = analyze_security(binary)
        for leak in plan.leaks:
            for step in leak.witness:
                assert 0 <= step.index < len(binary.text)
                assert step.function == "main"


class TestSecurityPlanSurface:
    def test_lint_findings_only_for_leaks(self):
        leaky = analyze_security(build_taint_table_fixture())
        findings = leaky.lint()
        assert len(findings) == len(leaky.leaks) == 1
        assert findings[0].severity == "error"
        assert findings[0].code == "secret-to-hint"
        assert analyze_security(build_taint_safe_fixture()).lint() == []

    def test_jsonable_round_trips(self):
        plan = analyze_security(build_taint_branch_fixture())
        payload = json.loads(json.dumps(plan.to_jsonable()))
        assert payload["binary"] == "taint-branch-fixture"
        assert payload["clean"] is False
        assert payload["secret_regions"] == ["secret"]
        leak = payload["leaks"][0]
        assert set(leak) >= {"index", "function", "site", "channels",
                             "witness"}
        assert leak["witness"]  # chain serialized

    def test_text_report_shape(self):
        leaky = analyze_security(build_taint_table_fixture())
        text = leaky.format_text()
        assert text.startswith("security analysis of taint-table-fixture")
        assert "leak at main@" in text
        clean = analyze_security(build_taint_sanitized_fixture()).format_text()
        assert "clean" in clean

    def test_transformed_binary_rejected(self):
        transformed = SpecHintTool().transform(build_taint_table_fixture())
        with pytest.raises(AnalysisError):
            analyze_security(transformed)


class TestAppsAreClean:
    """No shipped app declares secrets: all must pass --security clean."""

    @pytest.mark.parametrize("app", sorted(_BUILDERS))
    def test_app_passes_security_lint(self, app):
        binary = _BUILDERS[app](FileSystem(), 0.3, False)
        plan = analyze_security(binary)
        assert plan.clean
        assert plan.secret_labels == ()
        # Vacuously clean still inventories the disclosure sites.
        assert plan.disclosure_sites


class TestCli:
    def test_security_lint_fails_on_leaky_fixtures(self, capsys):
        for name in LEAKY_FIXTURES:
            assert cli_main(["analyze", name, "--security", "--lint"]) == 1
            out = capsys.readouterr()
            assert "leak at" in out.out
            assert "security lint" in out.err

    def test_security_lint_passes_safe_fixtures(self, capsys):
        for name in ("taint-safe-fixture", "taint-sanitized-fixture",
                     "safe-fixture"):
            assert cli_main(["analyze", name, "--security", "--lint"]) == 0
        assert "security lint: ok" in capsys.readouterr().out

    def test_security_json_mode(self, capsys):
        assert cli_main(["analyze", "taint-table-fixture", "--security",
                         "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False

    def test_analyze_json_reports_syscall_reachability(self, capsys):
        assert cli_main(["analyze", "agrep", "--json", "--scale",
                         "0.3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        reach = payload["syscall_reachability"]
        assert {e["name"] for e in reach["main"]} >= {"open", "read"}
        for entries in reach.values():
            for entry in entries:
                assert set(entry) == {"num", "name"}


def _run_fixture(builder, **kwargs):
    fs = FileSystem()
    binary = builder(fs, **kwargs)
    transformed = SpecHintTool().transform(binary)
    system = make_system(fs, small_system_config(cache_blocks=48))
    process = system.kernel.spawn(transformed)
    system.kernel.run()
    return system, process


class TestRuntimeCorrelation:
    """Cross-validation: a statically predicted leak is empirically
    observable in the hint ledger, and a clean fixture's ledger is
    secret-invariant."""

    def test_predicted_offset_leak_observable_in_hint_ledger(self):
        # The lint flags the table walk's offset channel ...
        plan = analyze_security(build_taint_table_fixture())
        assert any("offset" in leak.channels for leak in plan.leaks)
        # ... and indeed: runs differing only in the secret byte disclose
        # different (ino, block) hint keys.  The access pattern carries
        # the secret, exactly as predicted.
        keys = {}
        for secret in (1, 6):
            system, process = _run_fixture(
                build_taint_table_fixture, secret_byte=secret
            )
            keys[secret] = system.manager.lifecycle.disclosed_keys()
            assert keys[secret]  # speculation disclosed at least one hint
        assert keys[1] != keys[6]
        # Same inode (same file opened), different block: the leak is in
        # the offset, matching the flagged channel.
        (ino1, blk1), (ino6, blk6) = keys[1][0], keys[6][0]
        assert ino1 == ino6
        assert blk1 != blk6

    def test_branch_leak_discloses_different_inodes(self):
        plan = analyze_security(build_taint_branch_fixture())
        assert any("ino" in leak.channels for leak in plan.leaks)
        inos = {}
        for secret in (0, 1):
            system, process = _run_fixture(
                build_taint_branch_fixture, secret_byte=secret
            )
            keys = system.manager.lifecycle.disclosed_keys()
            assert keys
            inos[secret] = {ino for ino, _ in keys}
        # Different secrets hint different inodes: the ino channel leaks.
        assert inos[0] != inos[1]

    def test_safe_fixture_ledger_is_secret_invariant(self):
        # Control: the clean fixture's hint stream must not vary with the
        # secret (runs share identical code; only secret data differs).
        ledgers = []
        for payload in (bytes(range(1, 9)), bytes(range(101, 109))):
            fs = FileSystem()
            binary = build_taint_safe_fixture(fs)
            addr = binary.data_symbols["secret"]
            data = bytearray(binary.data)
            data[addr - DATA_BASE:addr - DATA_BASE + 8] = payload
            binary.data = bytes(data)
            transformed = SpecHintTool().transform(binary)
            system = make_system(fs, small_system_config(cache_blocks=48))
            system.kernel.spawn(transformed)
            system.kernel.run()
            ledgers.append(system.manager.lifecycle.disclosed_keys())
        assert ledgers[0] == ledgers[1]

    def test_disclosed_keys_matches_records(self):
        system, _ = _run_fixture(build_taint_table_fixture, secret_byte=3)
        lifecycle = system.manager.lifecycle
        assert lifecycle.disclosed_keys() == \
            [r.key for r in lifecycle.records()]
