"""Tests for the page residency model (Table 6)."""

from repro.kernel.vmstat import PageAccounting
from repro.params import PAGE_SIZE


class TestFirstTouch:
    def test_first_touch_is_fault(self):
        vm = PageAccounting()
        assert vm.touch_page(1) == PageAccounting.FAULT
        assert vm.faults == 1
        assert vm.reclaims == 0

    def test_second_touch_of_mapped_is_hit(self):
        vm = PageAccounting()
        vm.touch_page(1)
        assert vm.touch_page(1) == PageAccounting.HIT
        assert vm.faults == 1

    def test_footprint_counts_distinct_pages(self):
        vm = PageAccounting()
        for page in (1, 2, 3, 1, 2):
            vm.touch_page(page)
        assert vm.resident_pages == 3
        assert vm.footprint_bytes == 3 * PAGE_SIZE


class TestMappedFraction:
    def test_at_most_two_thirds_mapped(self):
        vm = PageAccounting()
        for page in range(30):
            vm.touch_page(page)
        assert len(vm._mapped) <= (2 * vm.resident_pages) // 3

    def test_lru_page_unmapped_first(self):
        vm = PageAccounting()
        for page in range(9):
            vm.touch_page(page)
        # Mapped capacity is 6; pages 0-2 have been unmapped (LRU).
        assert vm.touch_page(0) == PageAccounting.RECLAIM
        assert vm.reclaims == 1

    def test_recently_used_page_stays_mapped(self):
        vm = PageAccounting()
        for page in range(6):
            vm.touch_page(page)
        vm.touch_page(0)  # refresh page 0
        for page in range(6, 9):
            vm.touch_page(page)
        assert vm.touch_page(0) == PageAccounting.HIT or vm.reclaims >= 0

    def test_reclaim_remaps_page(self):
        vm = PageAccounting()
        for page in range(9):
            vm.touch_page(page)
        vm.touch_page(0)  # reclaim
        assert vm.touch_page(0) == PageAccounting.HIT


class TestTouchRange:
    def test_range_spanning_pages(self):
        vm = PageAccounting()
        reclaims, faults = vm.touch_range(PAGE_SIZE - 1, 2)
        assert faults == 2
        assert reclaims == 0
        assert vm.resident_pages == 2

    def test_empty_range(self):
        vm = PageAccounting()
        assert vm.touch_range(100, 0) == (0, 0)
        assert vm.resident_pages == 0

    def test_range_within_one_page(self):
        vm = PageAccounting()
        _, faults = vm.touch_range(10, 100)
        assert faults == 1

    def test_touch_addr_maps_to_page(self):
        vm = PageAccounting()
        vm.touch_addr(PAGE_SIZE * 5 + 3)
        assert vm.resident_pages == 1
        assert vm.touch_addr(PAGE_SIZE * 5) == PageAccounting.HIT
