"""Tests for scheduling: strict priority, preemption, and the Section 5
multiprocessor extension."""

import pytest

from repro.errors import SimulationError
from repro.kernel.thread import PRIO_ORIGINAL, PRIO_SPECULATING, ThreadState
from repro.spechint.tool import SpecHintTool
from repro.vm.isa import SYS_EXIT, Reg
from repro.vm.assembler import Assembler

from tests.conftest import make_system, small_system_config

from tests.test_spechint_runtime import corpus_fs, reader_binary


def run_speculating(ncpus=1, per_block_cycles=20_000):
    binary = SpecHintTool().transform(
        reader_binary(per_block_cycles=per_block_cycles)
    )
    system = make_system(
        corpus_fs(), small_system_config(cache_blocks=48, ncpus=ncpus)
    )
    process = system.kernel.spawn(binary)
    system.kernel.run()
    return system, process


class TestStrictPriority:
    def test_spec_thread_has_lower_priority(self):
        system, process = run_speculating()
        assert process.original_thread.priority == PRIO_ORIGINAL
        assert process.spec_thread.priority == PRIO_SPECULATING
        assert PRIO_SPECULATING < PRIO_ORIGINAL

    def test_spec_thread_only_runs_while_original_stalled_up(self):
        """Uniprocessor: the speculating thread's CPU time is bounded by
        the original thread's total stall time."""
        system, process = run_speculating(ncpus=1)
        spec_cpu = process.spec_thread.cpu_cycles
        original_cpu = process.original_thread.cpu_cycles
        total = system.clock.now
        # Original stalls = total - original CPU (roughly); spec can only
        # have used those cycles.
        assert spec_cpu <= (total - original_cpu) + 10_000

    def test_all_threads_exit_with_process(self):
        system, process = run_speculating()
        assert process.exited
        for thread in process.threads:
            assert thread.state is ThreadState.EXITED


class TestMultiprocessorExtension:
    def test_mp_run_completes_correctly(self):
        up_system, up_proc = run_speculating(ncpus=1)
        mp_system, mp_proc = run_speculating(ncpus=2)
        assert bytes(mp_proc.output) == bytes(up_proc.output)

    def test_mp_spec_gets_more_cpu_time(self):
        """On a second CPU, speculation also runs during computation."""
        _, up_proc = run_speculating(ncpus=1, per_block_cycles=60_000)
        _, mp_proc = run_speculating(ncpus=2, per_block_cycles=60_000)
        assert mp_proc.spec_thread.cpu_cycles >= up_proc.spec_thread.cpu_cycles

    def test_mp_elapsed_in_same_ballpark(self):
        """MP speculation may issue hints much earlier; on tiny workloads
        the extra outstanding prefetches can even delay demand reads (the
        effect the paper sees for 1-disk Gnuld), so we only bound the
        divergence, we don't require a win."""
        up_system, _ = run_speculating(ncpus=1, per_block_cycles=60_000)
        mp_system, _ = run_speculating(ncpus=2, per_block_cycles=60_000)
        assert mp_system.clock.now <= up_system.clock.now * 1.6


class TestDeadlockDetection:
    def test_all_blocked_no_events_raises(self):
        """A thread blocked forever with no pending events is a simulator
        bug and must be loud, not a hang."""
        system = make_system()
        binary_asm = Assembler("hang")
        binary_asm.entry("main")
        with binary_asm.function("main"):
            binary_asm.li(Reg.a0, 0)
            binary_asm.syscall(SYS_EXIT)
        binary = binary_asm.finish()
        process = system.kernel.spawn(binary)
        process.original_thread.block()  # wedge it artificially
        with pytest.raises(SimulationError):
            system.kernel.run()

    def test_cycle_limit_enforced(self):
        def spin(asm):
            asm.label("forever")
            asm.cwork(10_000, 0, 0)
            asm.jmp("forever")

        system = make_system()
        asm = Assembler("spin")
        asm.entry("main")
        with asm.function("main"):
            spin(asm)
            asm.syscall(SYS_EXIT)
        process = system.kernel.spawn(asm.finish())
        with pytest.raises(SimulationError):
            system.kernel.run(cycle_limit=1_000_000)


class TestContextSwitchAccounting:
    def test_context_switches_cost_time(self):
        """Alternating original/speculating execution charges switches."""
        system, process = run_speculating()
        # The run completed and the clock is beyond pure I/O + CPU time;
        # just assert the bookkeeping hooks ran.
        assert system.stats.get("kernel.runs") == 1
