"""Tests for software-enforced copy-on-write."""

import pytest

from repro.kernel.vmstat import PageAccounting
from repro.params import SpecHintParams
from repro.spechint.cow import CowMap
from repro.vm.machine import SpeculationFault
from repro.vm.memory import DATA_BASE, AddressSpace


def make_cow(region_size=1024, data=b"\xAA" * 4096, vmstat=None):
    mem = AddressSpace(data)
    params = SpecHintParams(cow_region_size=region_size)
    return CowMap(mem, params, vmstat=vmstat), mem


class TestIsolation:
    """The core correctness property: speculation never mutates memory."""

    def test_store_does_not_touch_main_memory(self):
        cow, mem = make_cow()
        cow.store_word(DATA_BASE, 0x1234)
        assert mem.load_word(DATA_BASE) != 0x1234
        assert mem.raw_read(DATA_BASE, 2) == b"\xAA\xAA"

    def test_load_sees_speculative_value(self):
        cow, mem = make_cow()
        cow.store_word(DATA_BASE, 0x1234)
        assert cow.load_word(DATA_BASE) == 0x1234

    def test_load_of_uncopied_sees_main_memory(self):
        cow, mem = make_cow()
        mem.store_word(DATA_BASE + 64, 777)
        assert cow.load_word(DATA_BASE + 64) == 777

    def test_main_memory_update_visible_until_copied(self):
        """Uncopied regions track live memory (how speculation sees data
        arrive after the original thread's read completes)."""
        cow, mem = make_cow()
        assert cow.load_word(DATA_BASE) == int.from_bytes(b"\xAA" * 8, "little")
        mem.store_word(DATA_BASE, 42)
        assert cow.load_word(DATA_BASE) == 42

    def test_copied_region_freezes_view(self):
        cow, mem = make_cow()
        cow.store_byte(DATA_BASE, 1)  # copies the whole region
        mem.store_word(DATA_BASE + 8, 999)  # same region, later main write
        assert cow.load_word(DATA_BASE + 8) != 999

    def test_clear_discards_copies(self):
        cow, mem = make_cow()
        cow.store_word(DATA_BASE, 5)
        cow.clear()
        assert cow.copied_regions == 0
        assert cow.load_word(DATA_BASE) == int.from_bytes(b"\xAA" * 8, "little")

    def test_byte_ops(self):
        cow, _ = make_cow()
        cow.store_byte(DATA_BASE + 3, 0x7F)
        assert cow.load_byte(DATA_BASE + 3) == 0x7F
        assert cow.load_byte(DATA_BASE + 4) == 0xAA


class TestRegionGranularity:
    def test_store_copies_exactly_one_region(self):
        cow, _ = make_cow(region_size=512)
        cow.store_byte(DATA_BASE + 100, 1)
        assert cow.copied_regions == 1
        assert cow.copied_bytes == 512

    def test_word_spanning_region_boundary(self):
        cow, mem = make_cow(region_size=128)
        # Find an address straddling a region boundary.
        boundary = ((DATA_BASE // 128) + 1) * 128
        cow.store_word(boundary - 4, 0x1122334455667788)
        assert cow.copied_regions == 2
        assert cow.load_word(boundary - 4) == 0x1122334455667788
        assert mem.load_word(boundary - 4) != 0x1122334455667788

    def test_is_copied(self):
        cow, _ = make_cow()
        assert not cow.is_copied(DATA_BASE)
        cow.store_byte(DATA_BASE, 1)
        assert cow.is_copied(DATA_BASE)

    def test_first_store_costs_copy_cycles(self):
        cow, _ = make_cow()
        first = cow.store_word(DATA_BASE, 1)
        second = cow.store_word(DATA_BASE + 8, 2)
        assert first > 0
        assert second == 0

    @pytest.mark.parametrize("region_size", [128, 256, 1024, 8192])
    def test_region_sizes_all_work(self, region_size):
        cow, mem = make_cow(region_size=region_size)
        cow.store_word(DATA_BASE + 40, 0xBEEF)
        assert cow.load_word(DATA_BASE + 40) == 0xBEEF
        assert mem.load_word(DATA_BASE + 40) != 0xBEEF


class TestValidity:
    def test_unmapped_load_faults(self):
        cow, _ = make_cow()
        with pytest.raises(SpeculationFault):
            cow.load_word(64)

    def test_unmapped_store_faults(self):
        cow, _ = make_cow()
        with pytest.raises(SpeculationFault):
            cow.store_word(64, 1)

    def test_spec_heap_accessible(self):
        cow, mem = make_cow()
        addr = mem.spec_sbrk(128)
        cow.store_word(addr, 11)
        assert cow.load_word(addr) == 11


class TestBulk:
    def test_write_read_bytes(self):
        cow, mem = make_cow()
        cow.write_bytes(DATA_BASE + 10, b"speculative")
        assert cow.read_bytes(DATA_BASE + 10, 11) == b"speculative"
        assert mem.read_bytes(DATA_BASE + 10, 11) == b"\xAA" * 11

    def test_read_cstring(self):
        cow, _ = make_cow()
        cow.write_bytes(DATA_BASE, b"file.txt\x00")
        assert cow.read_cstring(DATA_BASE) == b"file.txt"

    def test_read_cstring_unterminated_faults(self):
        cow, _ = make_cow()
        with pytest.raises(SpeculationFault):
            cow.read_cstring(DATA_BASE, max_len=16)  # all 0xAA

    def test_precopy_range(self):
        cow, _ = make_cow(region_size=256)
        copied = cow.precopy_range(DATA_BASE, 1000)
        assert cow.copied_regions == 4 or cow.copied_regions == 5
        assert copied == cow.copied_regions * 256

    def test_precopy_idempotent(self):
        cow, _ = make_cow(region_size=256)
        cow.precopy_range(DATA_BASE, 512)
        again = cow.precopy_range(DATA_BASE, 512)
        assert again == 0

    def test_precopy_empty_range_faults(self):
        """A zero-length precopy is always bad restart arithmetic: typed
        fault, not a silent no-op."""
        cow, _ = make_cow()
        with pytest.raises(SpeculationFault, match="degenerate precopy"):
            cow.precopy_range(DATA_BASE, 0)

    def test_precopy_negative_range_faults(self):
        cow, _ = make_cow()
        with pytest.raises(SpeculationFault, match="degenerate precopy"):
            cow.precopy_range(DATA_BASE, -8)

    def test_read_bytes_zero_length_faults(self):
        cow, _ = make_cow()
        with pytest.raises(SpeculationFault, match="zero-length"):
            cow.read_bytes(DATA_BASE, 0)

    def test_read_bytes_negative_length_faults(self):
        cow, _ = make_cow()
        with pytest.raises(SpeculationFault, match="zero-length"):
            cow.read_bytes(DATA_BASE, -4)

    def test_write_bytes_empty_payload_faults(self):
        cow, _ = make_cow()
        with pytest.raises(SpeculationFault, match="zero-length"):
            cow.write_bytes(DATA_BASE, b"")

    def test_read_cstring_crossing_segment_boundary_faults(self):
        """A string scan must not silently truncate at the data segment's
        end: crossing the boundary is the typed fault, explicitly."""
        # One full page of unterminated 'A's: the segment (brk) ends
        # exactly where the scan still has budget left.
        cow, mem = make_cow(data=b"\x41" * 4096)
        assert mem.segment_end(DATA_BASE) == DATA_BASE + 4096
        with pytest.raises(SpeculationFault, match="crosses the region boundary"):
            cow.read_cstring(DATA_BASE, max_len=8192)

    def test_read_cstring_terminated_before_boundary_ok(self):
        cow, _ = make_cow(data=b"ok\x00" + b"\x41" * 61)
        assert cow.read_cstring(DATA_BASE) == b"ok"

    def test_read_cstring_unmapped_faults(self):
        cow, _ = make_cow()
        with pytest.raises(SpeculationFault, match="unmapped"):
            cow.read_cstring(64)


class TestFootprintAccounting:
    def test_copies_touch_vmstat_pages(self):
        vmstat = PageAccounting()
        cow, _ = make_cow(vmstat=vmstat)
        before = vmstat.resident_pages
        cow.store_word(DATA_BASE, 1)
        assert vmstat.resident_pages > before

    def test_lifetime_counters(self):
        cow, _ = make_cow()
        cow.store_word(DATA_BASE, 1)
        cow.clear()
        cow.store_word(DATA_BASE, 1)
        assert cow.regions_copied_total == 2
        assert cow.bytes_copied_total == 2 * 1024
