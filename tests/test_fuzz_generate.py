"""The fault-plan generator: valid, composed, deterministic, covered."""

from __future__ import annotations

import pytest

from repro.errors import FuzzError
from repro.faults.generate import (
    DIMENSIONS,
    CoverageLedger,
    FaultPlanGenerator,
    case_dimensions,
)

_ORDER = {d.name: i for i, d in enumerate(DIMENSIONS)}


class TestDeterminism:
    def test_same_seed_same_cases(self):
        a = FaultPlanGenerator(7, apps=("agrep", "xds"))
        b = FaultPlanGenerator(7, apps=("agrep", "xds"))
        for i in range(50):
            assert a.case(i).to_jsonable() == b.case(i).to_jsonable()

    def test_cases_stable_under_budget(self):
        # case(i) must not depend on how many cases were asked for.
        generator = FaultPlanGenerator(7)
        small = generator.cases(5)
        large = generator.cases(20)
        for s, g in zip(small, large):
            assert s.to_jsonable() == g.to_jsonable()

    def test_different_seeds_differ(self):
        a = [c.to_jsonable() for c in FaultPlanGenerator(7).cases(20)]
        b = [c.to_jsonable() for c in FaultPlanGenerator(8).cases(20)]
        assert a != b


class TestValidityAndComposition:
    def test_every_case_is_a_valid_plan(self):
        generator = FaultPlanGenerator(7, apps=("agrep", "xds"))
        for case in generator.cases(120):
            case.plan.validate()  # raises on an invalid sample
            assert case.app in ("agrep", "xds")
            # A case may carry only speculation-knob overrides (plan
            # inactive), but it must never be completely empty.
            assert case.plan.active or case.spec_overrides
            assert case.key == f"fuzz/{case.index:04d}/{case.app}"

    def test_double_fault_composes_data_loss(self):
        generator = FaultPlanGenerator(7)
        doubles = [
            case for case in generator.cases(200)
            if case.plan.second_dead_disk >= 0
        ]
        assert doubles, "200 cases never sampled a double fault"
        for case in doubles:
            plan = case.plan
            assert plan.dead_disk >= 0
            assert plan.second_dead_disk != plan.dead_disk
            assert plan.second_dead_at_s > plan.dead_at_s
            assert plan.expects_data_loss

    def test_requirements_pulled_in(self):
        generator = FaultPlanGenerator(7)
        for case in generator.cases(200):
            dims = case_dimensions(case.plan, case.spec_overrides)
            if "double-fault" in dims:
                assert "disk-death" in dims

    def test_dimensions_in_canonical_order(self):
        generator = FaultPlanGenerator(7)
        for case in generator.cases(100):
            dims = case_dimensions(case.plan, case.spec_overrides)
            assert dims == sorted(dims, key=_ORDER.__getitem__)

    def test_every_dimension_reachable(self):
        generator = FaultPlanGenerator(7)
        hit = set()
        for case in generator.cases(400):
            hit.update(case_dimensions(case.plan, case.spec_overrides))
        assert hit == set(_ORDER)

    def test_overrides_within_whitelist(self):
        from repro.faults.generate import SPEC_OVERRIDE_FIELDS

        generator = FaultPlanGenerator(7)
        for case in generator.cases(120):
            assert set(case.spec_overrides) <= set(SPEC_OVERRIDE_FIELDS)


class TestCoverageLedger:
    def test_counts_reconcile(self):
        generator = FaultPlanGenerator(7, apps=("agrep", "xds"))
        ledger = CoverageLedger()
        cases = generator.cases(50)
        for case in cases:
            ledger.note(case)
        assert ledger.cases == 50
        assert sum(ledger.combo_counts.values()) == 50
        assert sum(ledger.app_counts.values()) == 50
        data = ledger.to_jsonable()
        assert data["cases"] == 50
        assert set(data["dimensions"]) | set(data["dimensions_never_hit"]) \
            == set(_ORDER)
        text = ledger.format_text()
        assert "fault-space coverage over 50 case(s)" in text

    def test_empty_ledger(self):
        ledger = CoverageLedger()
        assert ledger.to_jsonable()["cases"] == 0
        assert set(ledger.to_jsonable()["dimensions_never_hit"]) \
            == set(_ORDER)


class TestTypedErrors:
    def test_budget_below_one_rejected(self):
        with pytest.raises(FuzzError, match="budget"):
            FaultPlanGenerator(7).cases(0)

    def test_no_apps_rejected(self):
        with pytest.raises(FuzzError, match="app"):
            FaultPlanGenerator(7, apps=())

    def test_too_few_disks_rejected(self):
        with pytest.raises(FuzzError, match="disks"):
            FaultPlanGenerator(7, ndisks=1)
