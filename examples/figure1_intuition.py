#!/usr/bin/env python3
"""The paper's Figure 1, live: why speculative execution works.

A hypothetical application issues four reads for uncached data with a
million cycles of processing before each; data sits on three disks with a
~three-million-cycle access latency.  Normal execution serializes
everything (~16 M cycles).  With speculation, the stall on the first read
is spent pre-executing: hints for the remaining reads go to TIP, the three
disks fetch in parallel, and execution time more than halves.

Run:  python examples/figure1_intuition.py
"""

import sys
from pathlib import Path

# The Figure 1 machinery lives in the benchmark harness.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from bench_fig1_intuition import run  # noqa: E402


def timeline(label: str, total_mcycles: float, width: int = 48) -> str:
    filled = int(width * total_mcycles / 18)
    return f"{label:12s} |{'#' * filled:<{width}}| {total_mcycles:5.2f} Mcycles"


def main() -> None:
    print("Figure 1 - how speculative execution reduces stall time")
    print("=" * 62)
    normal = run(transform=False)
    speculating = run(transform=True)

    print()
    print(timeline("normal", normal / 1e6))
    print(timeline("speculating", speculating / 1e6))
    print()
    print(f"speedup: {normal / speculating:.2f}x "
          f"(paper: 'could more than halve the execution time')")
    print()
    print("what happened during the first stall: the speculating thread")
    print("pre-executed the compute phases and issued hints for the")
    print("remaining three reads; TIP fetched them on the other disks in")
    print("parallel, so the later reads hit the cache.")

    assert normal / speculating > 2.0


if __name__ == "__main__":
    main()
