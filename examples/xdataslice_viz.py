#!/usr/bin/env python3
"""XDataSlice: out-of-core visualization — where read-ahead fails and
hints shine.

XDataSlice renders arbitrary slices through a 3-D volume far larger than
the file cache.  Its scanline reads are short and strided, so the stock
sequential read-ahead policy wastes most of what it prefetches (paper:
58% unused), while both hint-driven variants fetch almost exactly what
is needed and exploit all four disks (paper: 70% / 71% improvements).

Run:  python examples/xdataslice_viz.py
"""

from repro import Variant, run_one


def main() -> None:
    print("XDataSlice - slicing an out-of-core volume (scaled workload)")
    print("=" * 62)

    results = {v: run_one("xds", v) for v in Variant}
    original = results[Variant.ORIGINAL]

    for variant, result in results.items():
        line = (f"{variant.value:12s} {result.elapsed_s:7.3f} s simulated   "
                f"{result.read_calls} scanline reads")
        if variant is not Variant.ORIGINAL:
            line += f"   improvement {result.improvement_over(original):5.1f}%"
        print(line)

    print(f"\npaper: 70% (speculating) vs 71% (manual)")

    print("\nprefetch economics (Table 5's story):")
    for variant, result in results.items():
        prefetched = max(1, result.prefetched_blocks)
        wasted = 100.0 * result.prefetched_unused / prefetched
        source = ("sequential read-ahead" if variant is Variant.ORIGINAL
                  else "TIP hint-driven prefetching")
        print(f"  {variant.value:12s} {result.prefetched_blocks:5d} blocks "
              f"prefetched by {source:28s} {wasted:5.1f}% unused")

    spec = results[Variant.SPECULATING]
    print(f"\nslice coordinates fully determine the reads (no data "
          f"dependence), so speculation hints {spec.pct_calls_hinted:.1f}% "
          f"of calls (paper: 97.5%) with {spec.inaccurate_hints} inaccurate "
          f"hints, and nearly eliminates the read-ahead waste.")

    orig_waste = original.prefetched_unused / max(1, original.prefetched_blocks)
    spec_waste = spec.prefetched_unused / max(1, spec.prefetched_blocks)
    assert spec_waste < orig_waste / 3
    assert spec.improvement_over(original) > 50


if __name__ == "__main__":
    main()
