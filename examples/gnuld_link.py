#!/usr/bin/env python3
"""Gnuld: the data-dependent linker — where speculation struggles.

Gnuld chases pointers through its object files: the file header locates
the symbol header, which locates the symbol tables, which locate
everything else.  When speculation restarts after a blocking read, the
data that determines the *next* read is still in flight, so the
speculating thread computes on stale buffer contents: it issues erroneous
hints, strays off track, and gets restarted by the hint-log check — over
and over.  The paper measures a 29% improvement against 66% for the
manually restructured Gnuld; this example shows the same asymmetry and
its mechanism.

Run:  python examples/gnuld_link.py
"""

from repro import Variant, run_one


def main() -> None:
    print("Gnuld - linking object files (scaled workload)")
    print("=" * 62)

    results = {v: run_one("gnuld", v) for v in Variant}
    original = results[Variant.ORIGINAL]

    for variant, result in results.items():
        line = (f"{variant.value:12s} {result.elapsed_s:7.3f} s simulated   "
                f"{result.read_calls} reads")
        if variant is not Variant.ORIGINAL:
            line += f"   improvement {result.improvement_over(original):5.1f}%"
        print(line)

    spec = results[Variant.SPECULATING]
    manual = results[Variant.MANUAL]
    print(f"\npaper: 29% (speculating) vs 66% (manual)")

    print(f"\nthe data-dependence signature of the speculating Gnuld:")
    print(f"  * {spec.spec_restarts} speculation restarts "
          f"(off-track detections by the hint log)")
    print(f"  * {spec.inaccurate_hints} inaccurate hints issued from stale "
          f"buffer data (paper: 2,336)")
    print(f"  * {spec.spec_signals} signals from computing on garbage "
          f"(paper: 39)")
    print(f"  * {spec.prefetched_unused} unused prefetched blocks vs "
          f"{manual.prefetched_unused} for manual (paper: 3,924 vs 27)")

    print(f"\nthe manual Gnuld was *restructured* (as in the paper): it "
          f"reads all file headers first, then batches hints for every "
          f"symbol header, and so on pass by pass - turning per-file "
          f"dependence chains into pipelined batches.")

    assert spec.improvement_over(original) < manual.improvement_over(original)
    assert spec.inaccurate_hints > 100


if __name__ == "__main__":
    main()
