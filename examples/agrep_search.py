#!/usr/bin/env python3
"""Agrep: the paper's text-search benchmark, end to end.

Agrep sequentially reads every file named on its command line — its access
stream is *fully determined by its arguments*, the friendliest case for
speculative hint generation.  This example runs the benchmark's three
variants (original / SpecHint-transformed / manually hinted) on the
simulated 4-disk machine and reproduces the paper's headline observation:
automatic speculation matches hand-inserted hints (paper: 69% vs 70%).

Run:  python examples/agrep_search.py
"""

from repro import Variant, run_one


def main() -> None:
    print("Agrep - full-text search over a source tree (scaled workload)")
    print("=" * 62)

    results = {v: run_one("agrep", v) for v in Variant}
    original = results[Variant.ORIGINAL]

    for variant, result in results.items():
        line = (f"{variant.value:12s} {result.elapsed_s:7.3f} s simulated   "
                f"{result.read_calls} reads")
        if variant is not Variant.ORIGINAL:
            line += (f"   improvement {result.improvement_over(original):5.1f}%"
                     f"   ({result.pct_calls_hinted:.1f}% of calls hinted)")
        print(line)

    spec = results[Variant.SPECULATING]
    print(f"\npaper: 69% (speculating) vs 70% (manual) - automatic matches manual")
    print(f"\nwhy it works:")
    print(f"  * no data-dependent reads: hints are never wrong "
          f"({spec.inaccurate_hints} inaccurate hints)")
    print(f"  * one EOF-detecting read per file is predicted but needs no "
          f"hint, which is why only {spec.pct_calls_hinted:.0f}% of *calls* "
          f"are hinted while {spec.pct_bytes_hinted:.0f}% of *bytes* are")
    print(f"  * the byte-granular search loop pays a COW check per load in "
          f"shadow code: dilation factor {spec.dilation_factor:.1f} "
          f"(paper: 7.5) - the slowest hint rate of the three benchmarks,")
    print(f"    which is what caps speculating Agrep at high disk counts "
          f"(Figure 5) until processors outpace disks (Figure 6)")

    assert spec.improvement_over(original) > 50


if __name__ == "__main__":
    main()
