#!/usr/bin/env python3
"""Quickstart: transform a program with SpecHint and watch it get faster.

This walks the whole pipeline on a small custom program:

1. create a simulated file system with some files;
2. write a disk-bound program against the SpecVM assembler;
3. run it unmodified on a simulated 4-disk machine under TIP;
4. run it through the SpecHint binary modification tool and run the
   speculating executable on an identical machine;
5. compare: identical output, fewer stalls, shorter elapsed time.

Run:  python examples/quickstart.py
"""

from repro.fs.filesystem import FileSystem
from repro.harness.runner import build_system
from repro.params import BLOCK_SIZE, SystemConfig
from repro.spechint.tool import SpecHintTool
from repro.vm.assembler import Assembler
from repro.vm.isa import SYS_CLOSE, SYS_EXIT, SYS_OPEN, SYS_READ, Reg
from repro.vm.stdlib import emit_stdlib

NFILES = 10
BLOCKS_PER_FILE = 4


def make_files() -> FileSystem:
    """A fresh simulated file system with ten 32 KB files."""
    fs = FileSystem(allocation_jitter_blocks=16, seed=7)
    for i in range(NFILES):
        payload = bytes((i + j) % 256 for j in range(BLOCKS_PER_FILE * BLOCK_SIZE))
        fs.create(f"data/file{i}", payload)
    return fs


def make_program():
    """A mini text-search: read every file, sum a byte per block, print."""
    asm = Assembler("quickstart")
    emit_stdlib(asm)  # print_num, memcpy, ... (printf analogues are
    #                   registered as output routines SpecHint strips)
    paths = [asm.data_asciiz(f"p{i}", f"data/file{i}") for i in range(NFILES)]
    asm.data_words("paths", paths)
    asm.data_space("buf", BLOCK_SIZE)

    asm.entry("main")
    with asm.function("main"):
        asm.li(Reg.s0, 0)   # file index
        asm.li(Reg.s5, 0)   # checksum
        asm.label("files")
        asm.li(Reg.at, NFILES)
        asm.bge(Reg.s0, Reg.at, "done")
        # open(paths[s0])
        asm.la(Reg.t0, "paths")
        asm.shli(Reg.t1, Reg.s0, 3)
        asm.add(Reg.t0, Reg.t0, Reg.t1)
        asm.load(Reg.a0, Reg.t0, 0)
        asm.syscall(SYS_OPEN)
        asm.mov(Reg.s1, Reg.v0)
        # while read(fd, buf, 8192) > 0: process
        asm.label("reads")
        asm.mov(Reg.a0, Reg.s1)
        asm.la(Reg.a1, "buf")
        asm.li(Reg.a2, BLOCK_SIZE)
        asm.syscall(SYS_READ)
        asm.beq(Reg.v0, Reg.zero, "next")
        asm.la(Reg.t2, "buf")
        asm.loadb(Reg.t3, Reg.t2, 100)
        asm.add(Reg.s5, Reg.s5, Reg.t3)
        asm.cwork(30_000, 800, 60)  # "search" the block
        asm.jmp("reads")
        asm.label("next")
        asm.mov(Reg.a0, Reg.s1)
        asm.syscall(SYS_CLOSE)
        asm.addi(Reg.s0, Reg.s0, 1)
        asm.jmp("files")
        asm.label("done")
        asm.mov(Reg.a0, Reg.s5)
        asm.call("print_num")
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
    return asm.finish()


def run(binary):
    fs = make_files()
    system = build_system(SystemConfig(), fs)
    process = system.kernel.spawn(binary)
    system.kernel.run()
    return system, process


def main() -> None:
    print("SpecHint quickstart")
    print("===================")

    # 1) The original program.
    original_system, original_proc = run(make_program())
    original_s = original_system.clock.seconds(original_system.config.cpu.hz)
    print(f"\noriginal:     {original_s * 1000:8.2f} ms simulated, "
          f"{original_system.stats.get('app.read_stalls')} read stalls, "
          f"output={bytes(original_proc.output).strip().decode()}")

    # 2) Transform it.
    tool = SpecHintTool()
    speculating_binary = tool.transform(make_program())
    report = speculating_binary.spec_meta.report
    print(f"\nSpecHint transformation: {report.loads_wrapped} loads and "
          f"{report.stores_wrapped} stores wrapped with COW checks, "
          f"{report.reads_substituted} read substituted with a hint call, "
          f"{report.output_calls_stripped} output call stripped "
          f"(+{report.size_increase_pct:.0f}% executable size)")

    # 3) The speculating executable on an identical machine.
    spec_system, spec_proc = run(speculating_binary)
    spec_s = spec_system.clock.seconds(spec_system.config.cpu.hz)
    print(f"\nspeculating:  {spec_s * 1000:8.2f} ms simulated, "
          f"{spec_system.stats.get('app.read_stalls')} read stalls, "
          f"output={bytes(spec_proc.output).strip().decode()}")
    print(f"              {spec_proc.spec.hints_issued} hints issued, "
          f"{spec_proc.spec.restarts} speculation restart(s), "
          f"{spec_system.stats.get('tip.prefetches_issued')} hinted "
          f"prefetches")

    assert bytes(spec_proc.output) == bytes(original_proc.output), \
        "transformed program must produce identical output"
    speedup = original_s / spec_s
    print(f"\nidentical output, {100 * (1 - spec_s / original_s):.0f}% less "
          f"time ({speedup:.2f}x)")


if __name__ == "__main__":
    main()
