#!/usr/bin/env python3
"""Postgres join (extension): SpecHint on a database access pattern.

The paper's Table 1 lists Patterson's manually hinted Postgres inner join
(48 % improvement at 20 % selectivity, 69 % at 80 %) but the paper never
ran SpecHint over it.  This repository's extension benchmark does: a
sequential outer-relation scan interleaved with index probes whose inner
targets chain through just-read leaf pages (Gnuld-style data dependence).

Run:  python examples/postgres_join.py
"""

from repro import Variant, run_one

PAPER_MANUAL = {"postgres20": 48, "postgres80": 69}


def main() -> None:
    print("Postgres inner join - sequential scan + data-dependent probes")
    print("=" * 64)

    for app in ("postgres20", "postgres80"):
        selectivity = app[-2:]
        results = {v: run_one(app, v) for v in Variant}
        original = results[Variant.ORIGINAL]
        spec = results[Variant.SPECULATING]
        manual = results[Variant.MANUAL]

        print(f"\n{selectivity}% of outer tuples match "
              f"({original.read_calls} reads):")
        print(f"  original     {original.elapsed_s:7.3f} s")
        print(f"  speculating  {spec.elapsed_s:7.3f} s  "
              f"({spec.improvement_over(original):5.1f}% improvement, "
              f"{spec.pct_calls_hinted:.0f}% of calls hinted, "
              f"{spec.spec_restarts} restarts)")
        print(f"  manual       {manual.elapsed_s:7.3f} s  "
              f"({manual.improvement_over(original):5.1f}% improvement; "
              f"paper's manual Postgres: {PAPER_MANUAL[app]}%)")

        assert spec.output == original.output == manual.output
        assert spec.improvement_over(original) > 25

    print("\nthe join's hybrid character:")
    print("  * the outer scan and leaf probes are predictable -> hinted")
    print("  * each inner-heap read chains through the leaf page just")
    print("    read -> restarted speculation mispredicts some of them,")
    print("    issuing erroneous hints exactly as the paper's Gnuld does")


if __name__ == "__main__":
    main()
