"""Exception hierarchy for the SpecHint reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated built-in
exceptions.  Subsystem-specific errors are grouped below by the package that
raises them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Simulation core
# ---------------------------------------------------------------------------

class SimulationError(ReproError):
    """A violation of discrete-event simulation invariants.

    Raised, for example, when an event is scheduled in the past or when the
    engine is asked to run after it has been torn down.
    """


# ---------------------------------------------------------------------------
# Storage substrate
# ---------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for disk/striping errors."""


class InvalidBlockError(StorageError):
    """An I/O request addressed a block outside the device."""


# ---------------------------------------------------------------------------
# Fault injection / degraded mode
# ---------------------------------------------------------------------------

class FaultError(ReproError):
    """Base class for *injected* failures and their consequences.

    Keeping these distinct from the rest of the hierarchy separates "the
    chaos plan did what it was told" from simulation-invariant bugs: a
    FaultError escaping a run means the degradation machinery (retries,
    silent prefetch dropping, the speculation watchdog) gave up, not that
    the simulator is broken.
    """


class InvalidFaultPlan(FaultError):
    """A serialized fault plan could not be deserialized.

    Raised by :meth:`repro.faults.plan.FaultPlan.from_jsonable` on unknown
    keys, wrong value types, or out-of-range rates/windows — a corrupt or
    hand-edited reproducer file must fail with a typed error naming the
    offending key, never a bare ``KeyError``.
    """


class DiskFaultError(FaultError):
    """A disk access completed with an injected (transient or offline) error."""


class IOTimeoutError(FaultError):
    """An I/O request exceeded its per-request timeout and was aborted."""


class RetriesExhausted(FaultError):
    """A demand read kept failing after every allowed retry attempt."""


class DataLossError(FaultError):
    """A stripe row became unrecoverable — data is gone, not merely slow.

    Raised when a block lives on a permanently dead disk and the array has
    no redundancy, or when a second disk dies before the rebuild resilvered
    the row (the classic RAID-5 double fault).  This is the one storage
    failure that must be *loud*: silently returning stale or zeroed blocks
    would corrupt application output, so every path that discovers an
    unrecoverable row raises this typed error instead of degrading.
    """


# ---------------------------------------------------------------------------
# File system substrate
# ---------------------------------------------------------------------------

class FileSystemError(ReproError):
    """Base class for simulated file system errors."""


class FileNotFoundInFS(FileSystemError):
    """A path lookup failed."""


class FileExistsInFS(FileSystemError):
    """A file creation collided with an existing path."""


class BadFileDescriptor(FileSystemError):
    """An operation used a closed or never-opened file descriptor."""


# ---------------------------------------------------------------------------
# Kernel
# ---------------------------------------------------------------------------

class KernelError(ReproError):
    """Base class for simulated kernel errors."""


class InvalidSyscall(KernelError):
    """A program invoked an unknown or forbidden system call."""


class SchedulerError(KernelError):
    """Scheduling invariant violation (e.g. running a blocked thread)."""


# ---------------------------------------------------------------------------
# SpecVM (execution substrate)
# ---------------------------------------------------------------------------

class VMError(ReproError):
    """Base class for SpecVM errors."""


class AssemblyError(VMError):
    """The assembler rejected a program (unknown opcode, bad label...)."""


class MachineFault(VMError):
    """A *normal-execution* machine fault.

    Faults during speculative execution are not raised as exceptions out of
    the machine; they are converted to simulated signals and handled by the
    SpecHint runtime, mirroring the paper's signal-handler design.
    """


class IllegalAddress(MachineFault):
    """A load/store touched an unmapped address during normal execution."""


class ArithmeticFault(MachineFault):
    """Division (or modulus) by zero during normal execution."""


# ---------------------------------------------------------------------------
# SpecHint (the contribution)
# ---------------------------------------------------------------------------

class SpecHintError(ReproError):
    """Base class for binary-transformation errors."""


class UnsupportedBinary(SpecHintError):
    """The input binary violates SpecHint's restrictions.

    The paper's tool is restricted to single-threaded, statically linked
    binaries that retain relocation information; our tool enforces the
    analogous restrictions on SpecVM binaries.
    """


class IsolationViolation(SpecHintError):
    """The speculation isolation invariant was broken.

    The paper's entire safety argument rests on one property: speculative
    pre-execution can never alter the original thread's state.  The
    isolation auditor enforces it — a speculative write that escapes the
    COW containment map, a tampered audit table, or a restart-boundary
    digest mismatch all raise this error.  The runtime responds by
    quarantining speculation for the process (never by corrupting the
    run): losing speculation costs performance, never correctness.
    """


# ---------------------------------------------------------------------------
# Static analysis
# ---------------------------------------------------------------------------

class AnalysisError(ReproError):
    """The static binary analysis could not produce a sound result.

    Raised when an internal invariant of the analysis pipeline breaks
    (e.g. the abstract-interpretation fixpoint fails to converge) or when
    it is asked to analyze a binary it cannot reason about.  Never raised
    for ordinary imprecision — an unprovable fact degrades to UNKNOWN and
    the transformation stays conservative.
    """


class LintFailure(AnalysisError):
    """``repro analyze --lint`` findings at error severity.

    Raised (and mapped to a non-zero exit) when a binary contains a
    computed transfer that can never be mapped into the shadow or a
    speculation-reachable system call the runtime has no policy for.
    """


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

class HarnessError(ReproError):
    """Experiment configuration or bookkeeping error."""


class OracleMismatch(HarnessError):
    """The differential correctness oracle found a divergence.

    A speculating run must be byte-identical in output and identical in
    demand-read sequence to the spec-off run of the same workload and
    seed, under every fault profile.  Any difference is a correctness
    bug in the speculation machinery, not a tuning problem.
    """


class CheckpointError(HarnessError):
    """A harness checkpoint file is missing, corrupt, or incompatible."""


class SupervisorError(HarnessError):
    """Base class for parallel-sweep supervision failures.

    The supervisor treats worker processes as untrusted: they can crash,
    hang, or fail the same cell repeatedly.  Each of those conditions has
    a typed error below; all of them leave the sweep checkpoint intact,
    so a supervised sweep that dies with one of these resumes without
    losing completed cells.
    """


class WorkerCrash(SupervisorError):
    """A worker process died without delivering a result.

    Individual crashes are handled by the supervisor (the cell is
    rescheduled with exponential backoff and the worker respawned); this
    error escapes only when the pool is unhealthy — workers keep dying
    without completing any cell — and the parallel run aborts.
    """


class CellTimeout(SupervisorError):
    """A cell's simulation stopped making progress and was killed.

    The hung-cell watchdog judges progress by the *simulation clock*
    reported in worker heartbeats, not by wall-clock guesswork: a slow
    cell whose sim cycles keep advancing is healthy, while one whose
    clock freezes past the stall deadline is killed and rescheduled.
    """


class FuzzError(HarnessError):
    """Chaos-fuzzing engine misuse or a broken reproducer file.

    Raised for invalid fuzz budgets/apps, unreadable or version-mismatched
    corpus reproducers, and unknown speculation-parameter override keys.
    Invariant *violations* found by fuzzing are never raised — they are
    data (:class:`repro.harness.invariants.Violation` records with
    structured witnesses) so a campaign can collect, shrink, and report
    every one of them.
    """


class QuarantinedCell(SupervisorError):
    """A cell failed ``max_cell_failures`` times and was quarantined.

    Mirroring the runtime's ``IsolationQuarantine``, a poisoned cell is
    recorded in the checkpoint as quarantined — with the traceback of
    every failed attempt — instead of sinking the whole sweep.  Raised
    when a caller needs the quarantined cell's result (e.g. assembling a
    complete sweep matrix).
    """


# ---------------------------------------------------------------------------
# Run registry
# ---------------------------------------------------------------------------

class RegistryError(ReproError):
    """The persistent run registry is corrupt, incompatible, or misused.

    Raised for unknown ``schema_version`` values in serialized
    :class:`~repro.harness.results.RunResult` payloads and registry
    records, unreadable registry files, and malformed record fields — a
    ledger written by a future (or corrupted) version of the code must
    fail loudly instead of deserializing into silently-wrong records.
    """


class UnknownRunError(RegistryError):
    """A registry query named a run id (or prefix) that matches no record.

    Also raised for ambiguous prefixes: ``repro runs show`` accepts any
    unique prefix of a content-addressed run id, and a prefix matching
    two records is an error, never a silent first-match.
    """


# ---------------------------------------------------------------------------
# Tracing / observability
# ---------------------------------------------------------------------------

class TraceError(ReproError):
    """Invalid tracing configuration or export request.

    Raised for unknown trace categories, unwritable export targets, and
    malformed analyzer queries.  Never raised from the recording hot path:
    a tracer that could fail mid-run would violate the zero-perturbation
    guarantee, so recording is infallible by construction.
    """
