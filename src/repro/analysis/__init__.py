"""Static binary analysis for SpecVM executables.

A four-stage pipeline (Section 9 of DESIGN.md):

1. :mod:`repro.analysis.cfg` — basic blocks, dominators, natural loops;
2. :mod:`repro.analysis.dataflow` — generic worklist solver, reaching
   definitions, liveness;
3. :mod:`repro.analysis.absint` — abstract interpretation over a value
   range / function-pointer / stack-slot domain;
4. :mod:`repro.analysis.driver` — whole-binary facts: transfer
   resolution, store classification, speculation and syscall
   reachability, the :class:`~repro.analysis.driver.ElisionPlan` the
   SpecHint tool consumes, and lint findings;
5. :mod:`repro.analysis.taint` — the speculation-security lint: a taint
   domain layered over stage 3's lattice proving (or refuting, with a
   witness def-use chain) that secret-marked data regions cannot flow
   into the operands of a disclosed I/O hint.

The analysis is advisory: the runtime isolation auditor remains the
soundness oracle, so a wrong fact degrades to a quarantine (performance
loss), never to corrupted output.
"""

from repro.analysis.absint import (
    AbsState,
    AbsVal,
    FunctionFacts,
    ValueKind,
    analyze_function,
)
from repro.analysis.cfg import CFG, BasicBlock, Loop, build_cfg, build_cfgs
from repro.analysis.dataflow import (
    defs_uses,
    live_out,
    reaching_definitions,
    worklist_solve,
)
from repro.analysis.driver import (
    BinaryAnalysis,
    CheckCosts,
    ElisionPlan,
    LintFinding,
    StoreClass,
    TransferFact,
    TransferKind,
    analyze_binary,
    check_costs,
)
from repro.analysis.fixtures import (
    FIXTURES,
    LEAKY_FIXTURES,
    build_safe_fixture,
    build_taint_branch_fixture,
    build_taint_safe_fixture,
    build_taint_sanitized_fixture,
    build_taint_table_fixture,
    build_unsafe_fixture,
)
from repro.analysis.taint import (
    EMPTY_TAINT,
    LeakReport,
    SecurityPlan,
    TaintState,
    WitnessStep,
    analyze_security,
    taint_join,
    taint_widen,
)

__all__ = [
    "AbsState",
    "AbsVal",
    "BasicBlock",
    "BinaryAnalysis",
    "CFG",
    "CheckCosts",
    "ElisionPlan",
    "EMPTY_TAINT",
    "FIXTURES",
    "FunctionFacts",
    "LEAKY_FIXTURES",
    "LeakReport",
    "LintFinding",
    "Loop",
    "SecurityPlan",
    "StoreClass",
    "TaintState",
    "TransferFact",
    "TransferKind",
    "ValueKind",
    "WitnessStep",
    "analyze_binary",
    "analyze_function",
    "analyze_security",
    "build_cfg",
    "build_cfgs",
    "build_safe_fixture",
    "build_taint_branch_fixture",
    "build_taint_safe_fixture",
    "build_taint_sanitized_fixture",
    "build_taint_table_fixture",
    "build_unsafe_fixture",
    "check_costs",
    "taint_join",
    "taint_widen",
    "defs_uses",
    "live_out",
    "reaching_definitions",
    "worklist_solve",
]
