"""Static binary analysis for SpecVM executables.

A four-stage pipeline (Section 9 of DESIGN.md):

1. :mod:`repro.analysis.cfg` — basic blocks, dominators, natural loops;
2. :mod:`repro.analysis.dataflow` — generic worklist solver, reaching
   definitions, liveness;
3. :mod:`repro.analysis.absint` — abstract interpretation over a value
   range / function-pointer / stack-slot domain;
4. :mod:`repro.analysis.driver` — whole-binary facts: transfer
   resolution, store classification, speculation and syscall
   reachability, the :class:`~repro.analysis.driver.ElisionPlan` the
   SpecHint tool consumes, and lint findings.

The analysis is advisory: the runtime isolation auditor remains the
soundness oracle, so a wrong fact degrades to a quarantine (performance
loss), never to corrupted output.
"""

from repro.analysis.absint import (
    AbsState,
    AbsVal,
    FunctionFacts,
    ValueKind,
    analyze_function,
)
from repro.analysis.cfg import CFG, BasicBlock, Loop, build_cfg, build_cfgs
from repro.analysis.dataflow import (
    defs_uses,
    live_out,
    reaching_definitions,
    worklist_solve,
)
from repro.analysis.driver import (
    BinaryAnalysis,
    CheckCosts,
    ElisionPlan,
    LintFinding,
    StoreClass,
    TransferFact,
    TransferKind,
    analyze_binary,
    check_costs,
)
from repro.analysis.fixtures import build_safe_fixture, build_unsafe_fixture

__all__ = [
    "AbsState",
    "AbsVal",
    "BasicBlock",
    "BinaryAnalysis",
    "CFG",
    "CheckCosts",
    "ElisionPlan",
    "FunctionFacts",
    "LintFinding",
    "Loop",
    "StoreClass",
    "TransferFact",
    "TransferKind",
    "ValueKind",
    "analyze_binary",
    "analyze_function",
    "build_cfg",
    "build_cfgs",
    "build_safe_fixture",
    "build_unsafe_fixture",
    "check_costs",
    "defs_uses",
    "live_out",
    "reaching_definitions",
    "worklist_solve",
]
