"""Worklist dataflow engine (analysis stage 2).

A small, generic fixed-point solver over basic blocks plus the two
classic bit-vector problems the rest of the pipeline (and its tests)
use: reaching definitions and live registers.  Both treat calls with
the SpecVM calling convention: a call may define every caller-saved
register (``at``, ``v0``/``v1``, ``a0``–``a5``, ``t0``–``t9``, ``ra``)
and uses the argument registers and the stack pointer.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Tuple, TypeVar

from repro.analysis.cfg import CFG
from repro.vm.binary import Binary
from repro.vm.isa import BRANCH_OPS, Insn, Op, Reg

T = TypeVar("T")

RegSet = FrozenSet[int]
#: A definition site: (instruction index, register).
DefSite = Tuple[int, int]

_EMPTY: FrozenSet[int] = frozenset()

_THREE_REG_ALU = frozenset(
    {Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR, Op.XOR,
     Op.SHL, Op.SHR, Op.SLT}
)
_IMM_ALU = frozenset(
    {Op.ADDI, Op.MULI, Op.ANDI, Op.ORI, Op.SHLI, Op.SHRI, Op.SLTI}
)

#: Registers a call may clobber under the SpecVM calling convention.
CALL_CLOBBERS: RegSet = frozenset(
    {int(Reg.at), int(Reg.v0), int(Reg.v1), int(Reg.ra)}
    | {int(r) for r in (Reg.a0, Reg.a1, Reg.a2, Reg.a3, Reg.a4, Reg.a5)}
    | {int(r) for r in (Reg.t0, Reg.t1, Reg.t2, Reg.t3, Reg.t4,
                        Reg.t5, Reg.t6, Reg.t7, Reg.t8, Reg.t9)}
)
_CALL_USES: RegSet = frozenset(
    {int(r) for r in (Reg.a0, Reg.a1, Reg.a2, Reg.a3, Reg.a4, Reg.a5)}
    | {int(Reg.sp)}
)
_SYSCALL_DEFS: RegSet = frozenset({int(Reg.v0)})
_SYSCALL_USES: RegSet = frozenset({int(Reg.a0), int(Reg.a1), int(Reg.a2)})


def defs_uses(insn: Insn) -> Tuple[RegSet, RegSet]:
    """(defined registers, used registers) of one instruction."""
    op = insn.op
    if op in (Op.LI, Op.LA):
        return frozenset({insn.a}), _EMPTY
    if op is Op.MOV:
        return frozenset({insn.a}), frozenset({insn.b})
    if op in _THREE_REG_ALU:
        return frozenset({insn.a}), frozenset({insn.b, insn.c})
    if op in _IMM_ALU:
        return frozenset({insn.a}), frozenset({insn.b})
    if op in (Op.LOAD, Op.LOADB):
        return frozenset({insn.a}), frozenset({insn.b})
    if op in (Op.STORE, Op.STOREB):
        return _EMPTY, frozenset({insn.a, insn.b})
    if op in BRANCH_OPS:
        return _EMPTY, frozenset({insn.a, insn.b})
    if op is Op.JR:
        return _EMPTY, frozenset({insn.a})
    if op is Op.CALL:
        return CALL_CLOBBERS, _CALL_USES
    if op is Op.CALLR:
        return CALL_CLOBBERS, _CALL_USES | frozenset({insn.a})
    if op is Op.SWITCH:
        return _EMPTY, frozenset({insn.a})
    if op is Op.SYSCALL:
        return _SYSCALL_DEFS, _SYSCALL_USES
    return _EMPTY, _EMPTY  # NOP, HALT, CWORK, JMP


def worklist_solve(
    cfg: CFG,
    transfer: Callable[[int, FrozenSet[T]], FrozenSet[T]],
    *,
    forward: bool,
    boundary: FrozenSet[T],
) -> Tuple[Dict[int, FrozenSet[T]], Dict[int, FrozenSet[T]]]:
    """Union-join fixed point of ``transfer`` over the blocks of ``cfg``.

    Forward: returns (in, out) per block, ``in`` joined over predecessor
    ``out`` values, ``boundary`` seeding the entry block.  Backward:
    returns (out, in) per block with the roles of the edge directions
    swapped (``boundary`` seeds blocks with no successors).
    """
    blocks = cfg.blocks
    n = len(blocks)
    empty: FrozenSet[T] = frozenset()
    in_map: Dict[int, FrozenSet[T]] = {b: empty for b in range(n)}
    out_map: Dict[int, FrozenSet[T]] = {b: empty for b in range(n)}

    pending: List[int] = list(range(n))
    on_list = [True] * n
    while pending:
        block_id = pending.pop(0)
        on_list[block_id] = False
        block = blocks[block_id]
        if forward:
            sources = block.predecessors
            joined: FrozenSet[T] = boundary if block_id == cfg.entry_block else empty
            for src in sources:
                joined |= out_map[src]
            in_map[block_id] = joined
            result = transfer(block_id, joined)
            if result != out_map[block_id]:
                out_map[block_id] = result
                for succ in block.successors:
                    if not on_list[succ]:
                        pending.append(succ)
                        on_list[succ] = True
        else:
            sources = block.successors
            joined = boundary if not sources else empty
            for src in sources:
                joined |= in_map[src]
            out_map[block_id] = joined
            result = transfer(block_id, joined)
            if result != in_map[block_id]:
                in_map[block_id] = result
                for pred in block.predecessors:
                    if not on_list[pred]:
                        pending.append(pred)
                        on_list[pred] = True
    if forward:
        return in_map, out_map
    return out_map, in_map


def reaching_definitions(
    binary: Binary, cfg: CFG
) -> Dict[int, FrozenSet[DefSite]]:
    """Definition sites reaching each instruction (per-insn IN sets)."""
    text = binary.text
    block_gen: Dict[int, FrozenSet[DefSite]] = {}
    block_kill_regs: Dict[int, RegSet] = {}
    for block in cfg.blocks:
        gen: Dict[int, DefSite] = {}
        killed: FrozenSet[int] = frozenset()
        for index in block.indices():
            defs, _ = defs_uses(text[index])
            for reg in defs:
                gen[reg] = (index, reg)
            killed |= defs
        block_gen[block.block_id] = frozenset(gen.values())
        block_kill_regs[block.block_id] = killed

    def transfer(
        block_id: int, in_set: FrozenSet[DefSite]
    ) -> FrozenSet[DefSite]:
        killed = block_kill_regs[block_id]
        survivors = frozenset(d for d in in_set if d[1] not in killed)
        return survivors | block_gen[block_id]

    in_map, _ = worklist_solve(
        cfg, transfer, forward=True, boundary=frozenset()
    )

    result: Dict[int, FrozenSet[DefSite]] = {}
    for block in cfg.blocks:
        live: FrozenSet[DefSite] = in_map[block.block_id]
        for index in block.indices():
            result[index] = live
            defs, _ = defs_uses(text[index])
            if defs:
                live = frozenset(d for d in live if d[1] not in defs)
                live |= frozenset((index, reg) for reg in defs)
    return result


def live_out(binary: Binary, cfg: CFG) -> Dict[int, RegSet]:
    """Registers live immediately after each instruction."""
    text = binary.text
    block_use: Dict[int, RegSet] = {}
    block_def: Dict[int, RegSet] = {}
    for block in cfg.blocks:
        used: FrozenSet[int] = frozenset()
        defined: FrozenSet[int] = frozenset()
        for index in block.indices():
            defs, uses = defs_uses(text[index])
            used |= uses - defined
            defined |= defs
        block_use[block.block_id] = used
        block_def[block.block_id] = defined

    def transfer(block_id: int, out_set: RegSet) -> RegSet:
        return block_use[block_id] | (out_set - block_def[block_id])

    out_map, _ = worklist_solve(
        cfg, transfer, forward=False, boundary=frozenset()
    )

    result: Dict[int, RegSet] = {}
    for block in cfg.blocks:
        live: RegSet = out_map[block.block_id]
        for index in reversed(list(block.indices())):
            result[index] = live
            defs, uses = defs_uses(text[index])
            live = uses | (live - defs)
    return result
