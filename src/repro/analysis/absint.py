"""Abstract interpretation of SpecVM functions (analysis stage 3).

A value-range / points-to domain evaluated to a fixed point over each
function's CFG.  Abstract values:

* ``NUM [lo, hi]`` — an integer interval (``None`` bounds are infinite);
* ``FUNC f`` — the address of a known function entry (produced only by
  ``LA`` of a function symbol, i.e. a relocated function pointer);
* ``RETADDR`` — a return address placed by ``CALL``/``CALLR``;
* ``STACK +d`` — the stack pointer at a known offset from the value
  ``sp`` had on function entry;
* ``TOP`` — anything.

The interpreter tracks stack slots (``STACK``-addressed stores at known
offsets), so ``push ra … pop ra; jr ra`` classifies as a return.

Soundness boundary — read this before trusting a fact:

* The machine wraps arithmetic modulo 2**64; the domain uses unbounded
  signed integers.  Any value the program actually wraps shows up here
  as an interval the classifier refuses to prove things about, so
  classification stays conservative (a wrapped "negative" address maps
  above every segment and faults at runtime; it is never proven
  SPEC_LOCAL).
* Calls follow the SpecVM convention: caller-saved registers (``at``,
  ``v0``/``v1``, ``a0``–``a5``, ``t0``–``t9``) and all tracked stack
  slots are forgotten, ``ra`` holds a return address, ``sp`` and the
  callee-saved registers are preserved.
* Facts hold for executions entering the function at its entry point.
  The SpecHint handling routine only maps function entries, so this
  matches speculative control flow; the ``map_all_addresses`` ablation
  breaks the assumption, and the driver disables every optimization
  under it.

Every consumer of these facts is backstopped at runtime: elided stores
hit the isolation auditor's write guard, and statically redirected
transfers land on the same shadow entries the handling routine would
have produced.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.cfg import CFG, table_targets
from repro.errors import AnalysisError
from repro.vm.binary import Binary
from repro.vm.isa import BRANCH_OPS, NUM_REGS, SYS_READ, Insn, Op, Reg
from repro.vm.memory import DEFAULT_STACK_BYTES, STACK_TOP

_ZERO = int(Reg.zero)
_RA = int(Reg.ra)
_SP = int(Reg.sp)
_A1 = int(Reg.a1)
_V0 = int(Reg.v0)

#: Registers forgotten across a call (must match dataflow.CALL_CLOBBERS).
_CALL_CLOBBERS: Tuple[int, ...] = tuple(
    int(r)
    for r in (
        Reg.at, Reg.v0, Reg.v1,
        Reg.a0, Reg.a1, Reg.a2, Reg.a3, Reg.a4, Reg.a5,
        Reg.t0, Reg.t1, Reg.t2, Reg.t3, Reg.t4,
        Reg.t5, Reg.t6, Reg.t7, Reg.t8, Reg.t9,
    )
)

#: The stack segment ([base, top)) assumed for may-alias checks.
STACK_BASE = STACK_TOP - DEFAULT_STACK_BYTES

#: Widening threshold: joins at one block before intervals jump to
#: infinite bounds (applied at every block, so irreducible CFGs also
#: terminate).
_WIDEN_AFTER = 4

#: Hard cap on solver steps per function (defence in depth; widening
#: makes the fixpoint terminate long before this).
_MAX_STEPS = 100_000


class ValueKind(enum.Enum):
    NUM = "num"
    FUNC = "func"
    RETADDR = "retaddr"
    STACK = "stack"
    TOP = "top"


@dataclass(frozen=True)
class AbsVal:
    """One abstract value (immutable)."""

    kind: ValueKind
    lo: Optional[int] = None
    hi: Optional[int] = None
    entry: int = -1
    delta: int = 0

    @property
    def is_const(self) -> bool:
        return (
            self.kind is ValueKind.NUM
            and self.lo is not None
            and self.lo == self.hi
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind is ValueKind.NUM:
            lo = "-inf" if self.lo is None else str(self.lo)
            hi = "+inf" if self.hi is None else str(self.hi)
            return f"num[{lo},{hi}]"
        if self.kind is ValueKind.FUNC:
            return f"func@{self.entry}"
        if self.kind is ValueKind.STACK:
            return f"sp{self.delta:+d}"
        return self.kind.value


TOP = AbsVal(ValueKind.TOP)
RETADDR = AbsVal(ValueKind.RETADDR)
NUM_ANY = AbsVal(ValueKind.NUM)
BYTE = AbsVal(ValueKind.NUM, 0, 255)
BIT = AbsVal(ValueKind.NUM, 0, 1)


def const(value: int) -> AbsVal:
    return AbsVal(ValueKind.NUM, value, value)


def interval(lo: Optional[int], hi: Optional[int]) -> AbsVal:
    return AbsVal(ValueKind.NUM, lo, hi)


def func_addr(entry: int) -> AbsVal:
    return AbsVal(ValueKind.FUNC, entry=entry)


def stack_ptr(delta: int) -> AbsVal:
    return AbsVal(ValueKind.STACK, delta=delta)


def join(a: AbsVal, b: AbsVal) -> AbsVal:
    if a == b:
        return a
    if a.kind is ValueKind.NUM and b.kind is ValueKind.NUM:
        lo = None if a.lo is None or b.lo is None else min(a.lo, b.lo)
        hi = None if a.hi is None or b.hi is None else max(a.hi, b.hi)
        return interval(lo, hi)
    return TOP


def widen(old: AbsVal, new: AbsVal) -> AbsVal:
    """Accelerated join: unstable interval bounds jump to infinity."""
    joined = join(old, new)
    if joined == old:
        return old
    if old.kind is ValueKind.NUM and joined.kind is ValueKind.NUM:
        lo = old.lo if old.lo is not None and joined.lo == old.lo else None
        hi = old.hi if old.hi is not None and joined.hi == old.hi else None
        return interval(lo, hi)
    return joined


# -- interval helpers ---------------------------------------------------------


def _both(a: Optional[int], b: Optional[int]) -> bool:
    return a is not None and b is not None


def _add(a: AbsVal, b: AbsVal) -> AbsVal:
    if a.kind is ValueKind.STACK and b.is_const:
        return stack_ptr(a.delta + b.lo)  # type: ignore[operator]
    if b.kind is ValueKind.STACK and a.is_const:
        return stack_ptr(b.delta + a.lo)  # type: ignore[operator]
    if a.kind is ValueKind.NUM and b.kind is ValueKind.NUM:
        lo = a.lo + b.lo if _both(a.lo, b.lo) else None  # type: ignore[operator]
        hi = a.hi + b.hi if _both(a.hi, b.hi) else None  # type: ignore[operator]
        return interval(lo, hi)
    return TOP


def _sub(a: AbsVal, b: AbsVal) -> AbsVal:
    if a.kind is ValueKind.STACK and b.is_const:
        return stack_ptr(a.delta - b.lo)  # type: ignore[operator]
    if a.kind is ValueKind.NUM and b.kind is ValueKind.NUM:
        lo = a.lo - b.hi if _both(a.lo, b.hi) else None  # type: ignore[operator]
        hi = a.hi - b.lo if _both(a.hi, b.lo) else None  # type: ignore[operator]
        return interval(lo, hi)
    return TOP


def _mul(a: AbsVal, b: AbsVal) -> AbsVal:
    if a.kind is not ValueKind.NUM or b.kind is not ValueKind.NUM:
        return TOP
    if a.is_const and b.is_const:
        return const(a.lo * b.lo)  # type: ignore[operator]
    for k, v in ((a, b), (b, a)):
        if k.is_const:
            c = k.lo
            assert c is not None
            if c == 0:
                return const(0)
            if c > 0:
                lo = v.lo * c if v.lo is not None else None
                hi = v.hi * c if v.hi is not None else None
                return interval(lo, hi)
            lo = v.hi * c if v.hi is not None else None
            hi = v.lo * c if v.lo is not None else None
            return interval(lo, hi)
    if _both(a.lo, a.hi) and _both(b.lo, b.hi):
        products = [
            a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi,  # type: ignore[operator]
        ]
        return interval(min(products), max(products))
    return NUM_ANY


def _nonneg(v: AbsVal) -> bool:
    return v.kind is ValueKind.NUM and v.lo is not None and v.lo >= 0


def eval_alu(op: Op, a: AbsVal, b: AbsVal) -> AbsVal:
    """Abstract result of ``op`` applied to ``a`` and ``b``."""
    if op in (Op.ADD, Op.ADDI):
        return _add(a, b)
    if op is Op.SUB:
        return _sub(a, b)
    if op in (Op.MUL, Op.MULI):
        return _mul(a, b)
    if op in (Op.SHL, Op.SHLI):
        if b.is_const and b.lo is not None and 0 <= b.lo < 64:
            return _mul(a, const(1 << b.lo))
        return NUM_ANY if a.kind is ValueKind.NUM else TOP
    if op in (Op.SHR, Op.SHRI):
        if b.is_const and b.lo is not None and b.lo >= 0 and _nonneg(a):
            lo = (a.lo or 0) >> b.lo
            hi = a.hi >> b.lo if a.hi is not None else None
            return interval(lo, hi)
        return NUM_ANY
    if op is Op.DIV:
        if b.is_const and b.lo is not None and b.lo > 0 and _nonneg(a):
            lo = (a.lo or 0) // b.lo
            hi = a.hi // b.lo if a.hi is not None else None
            return interval(lo, hi)
        return NUM_ANY
    if op is Op.MOD:
        if b.is_const and b.lo is not None and b.lo > 0:
            return interval(0, b.lo - 1)
        return NUM_ANY
    if op in (Op.AND, Op.ANDI):
        if a.is_const and b.is_const:
            return const((a.lo or 0) & (b.lo or 0))
        for k, v in ((a, b), (b, a)):
            if k.is_const and k.lo is not None and k.lo >= 0:
                return interval(0, k.lo)
        if _nonneg(a) and _nonneg(b):
            bounds = [x for x in (a.hi, b.hi) if x is not None]
            return interval(0, min(bounds)) if bounds else NUM_ANY
        return NUM_ANY
    if op in (Op.OR, Op.ORI, Op.XOR):
        if a.is_const and b.is_const:
            v = (a.lo or 0) | (b.lo or 0) if op is not Op.XOR \
                else (a.lo or 0) ^ (b.lo or 0)
            return const(v)
        if _nonneg(a) and _nonneg(b) and a.hi is not None and b.hi is not None:
            bits = max(a.hi, b.hi).bit_length()
            return interval(0, (1 << bits) - 1)
        return NUM_ANY
    if op in (Op.SLT, Op.SLTI):
        return BIT
    return TOP


def range_avoids(v: AbsVal, base: int, end: int) -> bool:
    """True when ``v`` provably never addresses ``[base, end)``.

    A ``STACK`` value lies in the stack segment, which is disjoint from
    any range outside ``[STACK_BASE, STACK_TOP)``.  A negative interval
    bound is fine as long as the whole interval sits below ``base``:
    negative values wrap to the top of the 64-bit space, far above every
    mapped segment (and above ``end`` whenever ``end`` is a segment
    bound below 2**63).
    """
    if v.kind is ValueKind.STACK:
        return end <= STACK_BASE or base >= STACK_TOP
    if v.kind is not ValueKind.NUM:
        return False
    if v.lo is not None and v.lo >= end:
        return True
    if v.hi is not None and v.hi < base and (v.lo is None or v.lo >= -(2**62)):
        # Entirely below the range; any negative part wraps above 2**63,
        # which is above every segment this helper is ever asked about.
        return v.lo is not None
    return False


def range_within(v: AbsVal, base: int, end: int) -> bool:
    """True when ``v`` provably addresses only ``[base, end)``."""
    if v.kind is not ValueKind.NUM:
        return False
    return (
        v.lo is not None and v.hi is not None
        and base <= v.lo and v.hi < end
    )


# -- machine state ------------------------------------------------------------


class AbsState:
    """Abstract register file plus tracked stack slots."""

    __slots__ = ("regs", "slots")

    def __init__(
        self,
        regs: Optional[List[AbsVal]] = None,
        slots: Optional[Dict[int, AbsVal]] = None,
    ) -> None:
        if regs is None:
            regs = [TOP] * NUM_REGS
            regs[_ZERO] = const(0)
            regs[_SP] = stack_ptr(0)
            regs[_RA] = RETADDR
        self.regs = regs
        self.slots: Dict[int, AbsVal] = {} if slots is None else slots

    def copy(self) -> "AbsState":
        return AbsState(list(self.regs), dict(self.slots))

    def get(self, reg: int) -> AbsVal:
        return self.regs[reg]

    def set(self, reg: int, value: AbsVal) -> None:
        if reg != _ZERO:  # the zero register is architecturally pinned
            self.regs[reg] = value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbsState):
            return NotImplemented
        return self.regs == other.regs and self.slots == other.slots

    def __hash__(self) -> int:  # pragma: no cover - never used as a key
        raise TypeError("AbsState is mutable and unhashable")

    def join_with(self, other: "AbsState", *, widening: bool) -> "AbsState":
        combine = widen if widening else join
        regs = [combine(a, b) for a, b in zip(self.regs, other.regs)]
        slots: Dict[int, AbsVal] = {}
        for key, val in self.slots.items():
            if key in other.slots:
                slots[key] = combine(val, other.slots[key])
        return AbsState(regs, slots)

    # -- memory effects --------------------------------------------------

    def _kill_overlapping_slots(self, delta: int, length: int) -> None:
        for key in [
            k for k in self.slots
            if k < delta + length and delta < k + 8
        ]:
            del self.slots[key]

    def write_slot(self, delta: int, value: AbsVal, *, byte: bool) -> None:
        self._kill_overlapping_slots(delta, 1 if byte else 8)
        if not byte:
            self.slots[delta] = value

    def clobber_unknown_store(self, addr: AbsVal) -> None:
        """A store whose target may alias the stack forgets every slot."""
        if not range_avoids(addr, STACK_BASE, STACK_TOP):
            self.slots.clear()

    def apply_call(self) -> None:
        for reg in _CALL_CLOBBERS:
            self.regs[reg] = TOP
        self.regs[_RA] = RETADDR
        self.slots.clear()


def address_of(base: AbsVal, imm: int) -> AbsVal:
    """Abstract address of a memory operand ``imm(base)``."""
    return _add(base, const(imm))


def step(state: AbsState, insn: Insn) -> None:
    """Apply one instruction's effect to ``state`` (in place)."""
    op = insn.op
    if op is Op.LI:
        state.set(insn.a, const(insn.c))
    elif op is Op.LA:
        if insn.get_meta("funcaddr") is not None:
            state.set(insn.a, func_addr(insn.c))
        else:
            state.set(insn.a, const(insn.c))
    elif op is Op.MOV:
        state.set(insn.a, state.get(insn.b))
    elif Op.ADD <= op <= Op.SLT:
        state.set(insn.a, eval_alu(op, state.get(insn.b), state.get(insn.c)))
    elif Op.ADDI <= op <= Op.SLTI:
        state.set(insn.a, eval_alu(op, state.get(insn.b), const(insn.c)))
    elif op in (Op.LOAD, Op.LOADB):
        addr = address_of(state.get(insn.b), insn.c)
        result = TOP if op is Op.LOAD else BYTE
        if op is Op.LOAD and addr.kind is ValueKind.STACK:
            result = state.slots.get(addr.delta, TOP)
        state.set(insn.a, result)
    elif op in (Op.STORE, Op.STOREB):
        addr = address_of(state.get(insn.b), insn.c)
        if addr.kind is ValueKind.STACK:
            state.write_slot(addr.delta, state.get(insn.a),
                             byte=op is Op.STOREB)
        else:
            state.clobber_unknown_store(addr)
    elif op in (Op.CALL, Op.CALLR):
        state.apply_call()
    elif op is Op.SYSCALL:
        if insn.c == SYS_READ:
            # read() writes the destination buffer (register a1).
            buf = state.get(_A1)
            if not range_avoids(buf, STACK_BASE, STACK_TOP):
                state.slots.clear()
        state.set(_V0, NUM_ANY)
    # NOP, HALT, CWORK, JMP, branches, JR, SWITCH: no register effects.


def _intersect(v: AbsVal, lo: Optional[int], hi: Optional[int]) -> Optional[AbsVal]:
    """Clamp a NUM value to ``[lo, hi]``; None when provably empty."""
    if v.kind is not ValueKind.NUM:
        return v
    new_lo = v.lo if lo is None else (lo if v.lo is None else max(v.lo, lo))
    new_hi = v.hi if hi is None else (hi if v.hi is None else min(v.hi, hi))
    if new_lo is not None and new_hi is not None and new_lo > new_hi:
        return None
    return interval(new_lo, new_hi)


def refine_branch(
    state: AbsState, insn: Insn, taken: bool
) -> Optional[AbsState]:
    """Refined copy of ``state`` along one branch edge.

    Returns None when the edge is provably infeasible.  Refinement only
    narrows NUM intervals; every other kind passes through untouched.
    """
    refined = state.copy()
    va, vb = refined.get(insn.a), refined.get(insn.b)
    op = insn.op
    num = ValueKind.NUM
    if va.kind is not num or vb.kind is not num:
        return refined

    equal = (op is Op.BEQ and taken) or (op is Op.BNE and not taken)
    if equal:
        a2 = _intersect(va, vb.lo, vb.hi)
        b2 = _intersect(vb, va.lo, va.hi)
        if a2 is None or b2 is None:
            return None
        refined.set(insn.a, a2)
        refined.set(insn.b, b2)
        return refined
    if op in (Op.BEQ, Op.BNE):  # disequality: nothing useful to narrow
        if va.is_const and vb.is_const and va.lo == vb.lo:
            return None
        return refined

    less = (op is Op.BLT and taken) or (op is Op.BGE and not taken)
    if less:  # a < b
        a2 = _intersect(va, None, None if vb.hi is None else vb.hi - 1)
        b2 = _intersect(vb, None if va.lo is None else va.lo + 1, None)
    else:  # a >= b
        a2 = _intersect(va, vb.lo, None)
        b2 = _intersect(vb, None, va.hi)
    if a2 is None or b2 is None:
        return None
    refined.set(insn.a, a2)
    refined.set(insn.b, b2)
    return refined


# -- per-function fixpoint ----------------------------------------------------


@dataclass
class FunctionFacts:
    """Post-fixpoint abstract facts for one function."""

    name: str
    #: STORE/STOREB index -> abstract target address.
    store_addr: Dict[int, AbsVal] = field(default_factory=dict)
    #: LOAD/LOADB index -> abstract source address.
    load_addr: Dict[int, AbsVal] = field(default_factory=dict)
    #: JR/CALLR index -> abstract target value.
    transfer_val: Dict[int, AbsVal] = field(default_factory=dict)
    #: SYSCALL(read) index -> abstract buffer address (register a1).
    read_buf: Dict[int, AbsVal] = field(default_factory=dict)


def _edge_states(
    binary: Binary, cfg: CFG, state: AbsState, term_index: int
) -> Dict[int, Optional[AbsState]]:
    """Out-state per successor block of the block ending at ``term_index``."""
    insn = binary.text[term_index]
    block = cfg.blocks[cfg.block_at[term_index]]
    out: Dict[int, Optional[AbsState]] = {}
    if insn.op in BRANCH_OPS and cfg.function.contains(insn.c):
        taken_block = cfg.block_at[insn.c]
        fall_block = (
            cfg.block_at.get(term_index + 1)
            if term_index + 1 < cfg.function.end else None
        )
        for succ in block.successors:
            if taken_block == fall_block:
                # Both edges land on the same block: no refinement holds.
                out[succ] = state.copy()
            elif succ == taken_block:
                out[succ] = refine_branch(state, insn, taken=True)
            elif succ == fall_block:
                out[succ] = refine_branch(state, insn, taken=False)
            else:
                out[succ] = state.copy()
        return out
    if insn.op is Op.SWITCH:
        n = len(table_targets(binary, insn.c))
        for succ in block.successors:
            refined = state.copy()
            idx_val = _intersect(refined.get(insn.a), 0, max(0, n - 1))
            if idx_val is not None:
                refined.set(insn.a, idx_val)
            out[succ] = refined
        return out
    for succ in block.successors:
        out[succ] = state.copy()
    return out


def analyze_function(binary: Binary, cfg: CFG) -> FunctionFacts:
    """Run the abstract interpreter over one function to a fixed point."""
    entry_block = cfg.entry_block
    in_states: Dict[int, AbsState] = {entry_block: AbsState()}
    visits: Dict[int, int] = {}
    worklist: List[int] = [entry_block]
    steps = 0

    while worklist:
        block_id = worklist.pop(0)
        steps += 1
        if steps > _MAX_STEPS:
            raise AnalysisError(
                f"{binary.name}/{cfg.function.name}: abstract interpretation "
                f"did not converge within {_MAX_STEPS} steps"
            )
        visits[block_id] = visits.get(block_id, 0) + 1
        state = in_states[block_id].copy()
        block = cfg.blocks[block_id]
        for index in range(block.start, block.end - 1):
            step(state, binary.text[index])
        term = block.terminator
        term_edges = _edge_states(binary, cfg, state, term)
        step(state, binary.text[term])
        for succ, edge_state in term_edges.items():
            if edge_state is None:
                continue  # provably infeasible edge
            if binary.text[term].op not in BRANCH_OPS \
                    and binary.text[term].op is not Op.SWITCH:
                edge_state = state.copy()
            else:
                step(edge_state, binary.text[term])
            existing = in_states.get(succ)
            if existing is None:
                in_states[succ] = edge_state
                worklist.append(succ)
                continue
            widening = visits.get(succ, 0) >= _WIDEN_AFTER
            merged = existing.join_with(edge_state, widening=widening)
            if merged != existing:
                in_states[succ] = merged
                if succ not in worklist:
                    worklist.append(succ)

    facts = FunctionFacts(name=cfg.function.name)
    for block_id, in_state in in_states.items():
        state = in_state.copy()
        block = cfg.blocks[block_id]
        for index in block.indices():
            insn = binary.text[index]
            if insn.op in (Op.STORE, Op.STOREB):
                facts.store_addr[index] = address_of(
                    state.get(insn.b), insn.c
                )
            elif insn.op in (Op.LOAD, Op.LOADB):
                facts.load_addr[index] = address_of(
                    state.get(insn.b), insn.c
                )
            elif insn.op in (Op.JR, Op.CALLR):
                facts.transfer_val[index] = state.get(insn.a)
            elif insn.op is Op.SYSCALL and insn.c == SYS_READ:
                facts.read_buf[index] = state.get(_A1)
            step(state, insn)
    return facts
