"""Control-flow graphs over SpecVM functions (analysis stage 1).

Builds, per function, the classic compiler view of the original text
section: basic blocks, intraprocedural edges, dominators, and natural
loops.  The block splitter works from the same instruction semantics as
:mod:`repro.vm.disasm` renders (branch/jump targets, jump-table operands,
call fallthrough), and the per-function listings in analysis reports are
produced with :func:`repro.vm.disasm.format_insn` so the two views can
never drift apart.

Intraprocedural conventions:

* ``CALL``/``CALLR`` fall through — "calls return" (every SpecVM function
  returns by ``JR ra`` or terminates the program);
* ``JR`` ends a path (a return, as far as the owning function is
  concerned — interprocedural effects are the driver's business);
* ``SWITCH`` edges go to the jump-table targets that lie inside the
  function; targets outside it are recorded as escapes;
* a reachable block whose last instruction can fall past ``func.end``
  sets :attr:`CFG.falls_off_end` — the "fallthrough into the next
  function" edge case the lint pass reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.vm.binary import Binary, Function
from repro.vm.isa import BRANCH_OPS, SYS_EXIT, Op

#: Opcodes that always end a basic block.
_BLOCK_ENDERS = frozenset(
    {Op.JMP, Op.JR, Op.CALL, Op.CALLR, Op.SWITCH, Op.HALT}
) | BRANCH_OPS

#: Opcodes after which execution can never fall to the next instruction.
_NO_FALLTHROUGH = frozenset({Op.JMP, Op.JR, Op.SWITCH, Op.HALT})


def table_targets(binary: Binary, table_id: int) -> Tuple[int, ...]:
    """Targets of jump table ``table_id`` (empty for an unknown id)."""
    if 0 <= table_id < len(binary.jump_tables):
        return tuple(binary.jump_tables[table_id].targets)
    return ()


def is_terminator(binary: Binary, index: int) -> bool:
    """True when the instruction at ``index`` ends a basic block."""
    insn = binary.text[index]
    if insn.op in _BLOCK_ENDERS:
        return True
    return insn.op is Op.SYSCALL and insn.c == SYS_EXIT


def falls_through(binary: Binary, index: int) -> bool:
    """True when execution at ``index`` may continue at ``index + 1``."""
    insn = binary.text[index]
    if insn.op in _NO_FALLTHROUGH:
        return False
    return not (insn.op is Op.SYSCALL and insn.c == SYS_EXIT)


def intra_successors(
    binary: Binary, index: int, func: Function
) -> Tuple[int, ...]:
    """Successor instruction indices of ``index`` within ``func``."""
    insn = binary.text[index]
    op = insn.op
    fall = index + 1 if index + 1 < func.end else None
    out: List[int] = []
    if op in BRANCH_OPS:
        if func.contains(insn.c):
            out.append(insn.c)
        if fall is not None:
            out.append(fall)
    elif op is Op.JMP:
        if func.contains(insn.c):
            out.append(insn.c)
    elif op is Op.SWITCH:
        out.extend(t for t in table_targets(binary, insn.c) if func.contains(t))
    elif op in (Op.JR, Op.HALT):
        pass
    elif op is Op.SYSCALL and insn.c == SYS_EXIT:
        pass
    elif fall is not None:  # plain instructions, CALL/CALLR, other syscalls
        out.append(fall)
    deduped: List[int] = []
    for target in out:
        if target not in deduped:
            deduped.append(target)
    return tuple(deduped)


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions ``[start, end)``."""

    block_id: int
    start: int
    end: int
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    @property
    def terminator(self) -> int:
        """Index of the last instruction in the block."""
        return self.end - 1

    def indices(self) -> range:
        return range(self.start, self.end)


@dataclass(frozen=True)
class Loop:
    """A natural loop: its header block and the full body (incl. header)."""

    head: int
    body: FrozenSet[int]


@dataclass
class CFG:
    """The control-flow graph of one function."""

    function: Function
    blocks: List[BasicBlock]
    #: Instruction index -> owning block id.
    block_at: Dict[int, int]
    #: Block id -> dominator set (reachable blocks only).
    dominators: Dict[int, FrozenSet[int]]
    loops: List[Loop]
    #: A reachable block may fall through past ``function.end``.
    falls_off_end: bool

    @property
    def entry_block(self) -> int:
        return 0

    @property
    def loop_heads(self) -> FrozenSet[int]:
        return frozenset(loop.head for loop in self.loops)

    def reachable_blocks(self) -> FrozenSet[int]:
        """Block ids reachable from the function entry."""
        seen: Set[int] = {self.entry_block}
        stack = [self.entry_block]
        while stack:
            block = self.blocks[stack.pop()]
            for succ in block.successors:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return frozenset(seen)


def _leaders(binary: Binary, func: Function) -> List[int]:
    leaders: Set[int] = {func.entry}
    for index in range(func.entry, func.end):
        if not is_terminator(binary, index):
            continue
        insn = binary.text[index]
        if insn.op in BRANCH_OPS or insn.op is Op.JMP:
            if func.contains(insn.c):
                leaders.add(insn.c)
        elif insn.op is Op.SWITCH:
            for target in table_targets(binary, insn.c):
                if func.contains(target):
                    leaders.add(target)
        if index + 1 < func.end:
            leaders.add(index + 1)
    return sorted(leaders)


def _dominators(
    blocks: List[BasicBlock], reachable: FrozenSet[int]
) -> Dict[int, FrozenSet[int]]:
    entry = 0
    dom: Dict[int, Set[int]] = {entry: {entry}}
    others = [b for b in sorted(reachable) if b != entry]
    for block_id in others:
        dom[block_id] = set(reachable)
    changed = True
    while changed:
        changed = False
        for block_id in others:
            preds = [
                p for p in blocks[block_id].predecessors if p in reachable
            ]
            new: Set[int] = set(reachable)
            for pred in preds:
                new &= dom[pred]
            new.add(block_id)
            if new != dom[block_id]:
                dom[block_id] = new
                changed = True
    return {block_id: frozenset(doms) for block_id, doms in dom.items()}


def _natural_loops(
    blocks: List[BasicBlock],
    dominators: Dict[int, FrozenSet[int]],
    reachable: FrozenSet[int],
) -> List[Loop]:
    loops: List[Loop] = []
    for block_id in sorted(reachable):
        for succ in blocks[block_id].successors:
            if succ not in reachable or succ not in dominators[block_id]:
                continue
            # Back edge block_id -> succ: collect the natural loop body.
            body: Set[int] = {succ}
            stack = [block_id]
            while stack:
                node = stack.pop()
                if node in body:
                    continue
                body.add(node)
                stack.extend(
                    p for p in blocks[node].predecessors if p in reachable
                )
            loops.append(Loop(head=succ, body=frozenset(body)))
    return loops


def build_cfg(binary: Binary, func: Function) -> CFG:
    """Basic blocks, dominators and natural loops for one function."""
    leaders = _leaders(binary, func)
    blocks: List[BasicBlock] = []
    block_at: Dict[int, int] = {}
    for i, start in enumerate(leaders):
        end = leaders[i + 1] if i + 1 < len(leaders) else func.end
        block = BasicBlock(block_id=i, start=start, end=end)
        blocks.append(block)
        for index in range(start, end):
            block_at[index] = i

    for block in blocks:
        for target in intra_successors(binary, block.terminator, func):
            succ = block_at[target]
            if succ not in block.successors:
                block.successors.append(succ)
    for block in blocks:
        for succ in block.successors:
            blocks[succ].predecessors.append(block.block_id)

    cfg = CFG(
        function=func,
        blocks=blocks,
        block_at=block_at,
        dominators={},
        loops=[],
        falls_off_end=False,
    )
    reachable = cfg.reachable_blocks()
    cfg.dominators = _dominators(blocks, reachable)
    cfg.loops = _natural_loops(blocks, cfg.dominators, reachable)
    cfg.falls_off_end = any(
        blocks[b].end == func.end and falls_through(binary, blocks[b].terminator)
        for b in reachable
    )
    return cfg


def build_cfgs(binary: Binary) -> Dict[str, CFG]:
    """CFGs for every function of ``binary``, keyed by function name."""
    return {func.name: build_cfg(binary, func) for func in binary.functions}
