"""Hand-built binaries exercising analysis edge cases.

The shipped example applications are all speculation-clean, so the lint
error paths (`unmappable-transfer`, `unknown-syscall`, ...) need crafted
inputs.  These fixtures are reachable from the CLI (``repro analyze
unsafe-fixture --lint``) and from the test suite.
"""

from __future__ import annotations

from repro.vm.assembler import Assembler
from repro.vm.binary import Binary
from repro.vm.isa import SYS_EXIT, SYS_READ, Reg


def build_unsafe_fixture() -> Binary:
    """A binary speculation cannot safely pre-execute.

    After its blocking read it (a) jumps through a register holding a
    constant that is *not* a function entry — the handling routine can
    never map it, so speculation parks forever — and (b) issues a
    syscall number the runtime has no policy for.  ``repro analyze
    --lint`` must exit non-zero on this binary.
    """
    asm = Assembler("unsafe-fixture")
    asm.data_space("buf", 64)

    with asm.function("main"):
        asm.li(Reg.a0, 0)
        asm.la(Reg.a1, "buf")
        asm.li(Reg.a2, 64)
        asm.syscall(SYS_READ)
        asm.push(Reg.ra)
        asm.call("tail")
        asm.pop(Reg.ra)
        # Computed jump to a provable non-entry constant: unmappable.
        asm.li(Reg.t0, 2)
        asm.jr(Reg.t0)

    with asm.function("tail"):
        # Speculation-reachable syscall with no runtime policy.
        asm.syscall(99)
        asm.ret()

    asm.entry("main")
    return asm.finish()


def build_safe_fixture() -> Binary:
    """A minimal binary that passes ``--lint`` cleanly."""
    asm = Assembler("safe-fixture")
    asm.data_space("buf", 64)

    with asm.function("main"):
        asm.li(Reg.a0, 0)
        asm.la(Reg.a1, "buf")
        asm.li(Reg.a2, 64)
        asm.syscall(SYS_READ)
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
        asm.halt()

    asm.entry("main")
    return asm.finish()
