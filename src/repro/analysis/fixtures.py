"""Hand-built binaries exercising analysis edge cases.

The shipped example applications are all speculation-clean, so the lint
error paths (`unmappable-transfer`, `unknown-syscall`, ...) need crafted
inputs.  These fixtures are reachable from the CLI (``repro analyze
unsafe-fixture --lint``) and from the test suite.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.fs.filesystem import FileSystem
from repro.vm.assembler import Assembler
from repro.vm.binary import Binary
from repro.vm.isa import (
    SEEK_SET,
    SYS_EXIT,
    SYS_LSEEK,
    SYS_OPEN,
    SYS_READ,
    Reg,
)


def build_unsafe_fixture() -> Binary:
    """A binary speculation cannot safely pre-execute.

    After its blocking read it (a) jumps through a register holding a
    constant that is *not* a function entry — the handling routine can
    never map it, so speculation parks forever — and (b) issues a
    syscall number the runtime has no policy for.  ``repro analyze
    --lint`` must exit non-zero on this binary.
    """
    asm = Assembler("unsafe-fixture")
    asm.data_space("buf", 64)

    with asm.function("main"):
        asm.li(Reg.a0, 0)
        asm.la(Reg.a1, "buf")
        asm.li(Reg.a2, 64)
        asm.syscall(SYS_READ)
        asm.push(Reg.ra)
        asm.call("tail")
        asm.pop(Reg.ra)
        # Computed jump to a provable non-entry constant: unmappable.
        asm.li(Reg.t0, 2)
        asm.jr(Reg.t0)

    with asm.function("tail"):
        # Speculation-reachable syscall with no runtime policy.
        asm.syscall(99)
        asm.ret()

    asm.entry("main")
    return asm.finish()


def build_safe_fixture() -> Binary:
    """A minimal binary that passes ``--lint`` cleanly."""
    asm = Assembler("safe-fixture")
    asm.data_space("buf", 64)

    with asm.function("main"):
        asm.li(Reg.a0, 0)
        asm.la(Reg.a1, "buf")
        asm.li(Reg.a2, 64)
        asm.syscall(SYS_READ)
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
        asm.halt()

    asm.entry("main")
    return asm.finish()


# -- speculation-security (taint) fixtures ------------------------------------
#
# Each taint fixture declares a secret data region and issues at least two
# reads: the first is the blocking read speculation restarts from, so the
# *second* read site is speculation-reachable and becomes a SPEC_READ hint
# disclosure in shadow code.  The leaky variants route a secret-derived
# value into one of the hint operands; the safe variants prove the lint's
# precision (using a secret is fine, *disclosing* it is not).  Builders
# optionally populate a FileSystem so the same binaries run end-to-end in
# the runtime correlation test.

#: Stride the table-walk fixture steps the file offset by (half a file
#: block: secrets 0..7 land on fs blocks 0..3, so distinct high bits of
#: the masked secret produce distinct disclosed hint keys).
TAINT_FIXTURE_BLOCK = 4096

#: Files the taint fixtures open, with their sizes.
_TAINT_FIXTURE_FILES = {
    "pub.dat": 4 * TAINT_FIXTURE_BLOCK,
    "walk.dat": 8 * TAINT_FIXTURE_BLOCK,
    "branch-a.dat": 2 * TAINT_FIXTURE_BLOCK,
    "branch-b.dat": 2 * TAINT_FIXTURE_BLOCK,
}


def populate_taint_fixture_fs(fs: FileSystem) -> None:
    """Create the files every taint fixture may open."""
    for path, size in _TAINT_FIXTURE_FILES.items():
        payload = bytes((i * 7 + len(path)) & 0xFF for i in range(size))
        fs.create(path, payload)


def _open_and_block(asm: Assembler, path_symbol: str) -> None:
    """open(path) -> s1, then the blocking read speculation resumes after."""
    asm.la(Reg.a0, path_symbol)
    asm.syscall(SYS_OPEN)
    asm.mov(Reg.s1, Reg.v0)
    asm.mov(Reg.a0, Reg.s1)
    asm.la(Reg.a1, "buf")
    asm.li(Reg.a2, 16)
    asm.syscall(SYS_READ)


def build_taint_safe_fixture(fs: Optional[FileSystem] = None) -> Binary:
    """Secret present and *used*, but never disclosed: constant-index scan.

    The secret byte is loaded, summed into a scratch cell, even compared
    against — all with the hint operands (fd, offset, length) staying
    constant.  ``--security`` must pass this clean: mere use of a secret
    is not a leak.
    """
    if fs is not None:
        populate_taint_fixture_fs(fs)
    asm = Assembler("taint-safe-fixture")
    asm.data_bytes("secret", bytes(range(1, 9)), secret=True)
    asm.data_word("sum", 0)
    asm.data_asciiz("pub_path", "pub.dat")
    asm.data_space("buf", TAINT_FIXTURE_BLOCK)

    with asm.function("main"):
        _open_and_block(asm, "pub_path")
        # Constant-index scan over the secret: taints t2 and the "sum"
        # cell, but nothing that reaches a hint operand.
        asm.la(Reg.t0, "secret")
        asm.loadb(Reg.t1, Reg.t0, 0)
        asm.loadb(Reg.t2, Reg.t0, 3)
        asm.add(Reg.t2, Reg.t2, Reg.t1)
        asm.la(Reg.t3, "sum")
        asm.store(Reg.t2, Reg.t3, 0)
        # Two more sequential reads with constant operands: both sites are
        # speculation-reachable, neither operand is secret-derived.
        asm.label("scan_loop")
        asm.mov(Reg.a0, Reg.s1)
        asm.la(Reg.a1, "buf")
        asm.li(Reg.a2, TAINT_FIXTURE_BLOCK)
        asm.syscall(SYS_READ)
        asm.bne(Reg.v0, Reg.zero, "scan_loop")
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
        asm.halt()

    asm.entry("main")
    return asm.finish()


def build_taint_table_fixture(
    fs: Optional[FileSystem] = None, secret_byte: int = 5
) -> Binary:
    """Leaky: a secret-indexed table walk drives the read offset.

    The secret byte (masked to stay inside the file) selects which block
    of ``walk.dat`` is read next — the disclosed hint's *offset* is a
    function of the secret, which is exactly the access-pattern leak the
    speculative-execution literature warns about.  ``--security`` must
    flag the second read's ``offset`` channel.
    """
    if fs is not None:
        populate_taint_fixture_fs(fs)
    asm = Assembler("taint-table-fixture")
    asm.data_bytes("secret", bytes([secret_byte & 0xFF]), secret=True)
    asm.data_asciiz("walk_path", "walk.dat")
    asm.data_space("buf", TAINT_FIXTURE_BLOCK)

    with asm.function("main"):
        _open_and_block(asm, "walk_path")
        # offset = (secret & 7) * BLOCK: secret-derived, file-bounded.
        asm.la(Reg.t0, "secret")
        asm.loadb(Reg.t1, Reg.t0, 0)
        asm.andi(Reg.t1, Reg.t1, 7)
        asm.shli(Reg.t2, Reg.t1, 12)
        asm.mov(Reg.a0, Reg.s1)
        asm.mov(Reg.a1, Reg.t2)
        asm.li(Reg.a2, SEEK_SET)
        asm.syscall(SYS_LSEEK)
        # The disclosed hint for this read carries the secret in its offset.
        asm.mov(Reg.a0, Reg.s1)
        asm.la(Reg.a1, "buf")
        asm.li(Reg.a2, TAINT_FIXTURE_BLOCK)
        asm.syscall(SYS_READ)
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
        asm.halt()

    asm.entry("main")
    return asm.finish()


def build_taint_branch_fixture(
    fs: Optional[FileSystem] = None, secret_byte: int = 1
) -> Binary:
    """Leaky: a secret-conditioned branch discloses different files.

    Neither arm touches the secret *value* — the leak is purely implicit:
    which path string ends up in ``a0`` (and therefore which inode the
    hint discloses) is decided by branching on the secret.  ``--security``
    must flag the read through the ``ino`` channel via the implicit-flow
    rule.
    """
    if fs is not None:
        populate_taint_fixture_fs(fs)
    asm = Assembler("taint-branch-fixture")
    asm.data_bytes("secret", bytes([secret_byte & 0xFF]), secret=True)
    asm.data_asciiz("pub_path", "pub.dat")
    asm.data_asciiz("path_a", "branch-a.dat")
    asm.data_asciiz("path_b", "branch-b.dat")
    asm.data_space("buf", TAINT_FIXTURE_BLOCK)

    with asm.function("main"):
        _open_and_block(asm, "pub_path")
        asm.la(Reg.t0, "secret")
        asm.loadb(Reg.t1, Reg.t0, 0)
        asm.andi(Reg.t1, Reg.t1, 1)
        asm.beq(Reg.t1, Reg.zero, "pick_a")
        asm.la(Reg.a0, "path_b")
        asm.jmp("open_it")
        asm.label("pick_a")
        asm.la(Reg.a0, "path_a")
        asm.label("open_it")
        asm.syscall(SYS_OPEN)
        asm.mov(Reg.s2, Reg.v0)
        # The hint discloses whichever inode the secret selected.
        asm.mov(Reg.a0, Reg.s2)
        asm.la(Reg.a1, "buf")
        asm.li(Reg.a2, TAINT_FIXTURE_BLOCK)
        asm.syscall(SYS_READ)
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
        asm.halt()

    asm.entry("main")
    return asm.finish()


def build_taint_sanitized_fixture(fs: Optional[FileSystem] = None) -> Binary:
    """False-positive probe: a sanitized copy of the secret is harmless.

    The secret is copied byte-for-byte into a scratch cell (the copy *is*
    tracked: the scratch bucket carries the taint), reloaded, then masked
    with ``andi x, copy, 0`` — a provably constant result.  The constant-
    sanitization rule must clear the data taint, so the read built from it
    stays clean.  A lint without value information would flag this.
    """
    if fs is not None:
        populate_taint_fixture_fs(fs)
    asm = Assembler("taint-sanitized-fixture")
    asm.data_bytes("secret", bytes([42]), secret=True)
    asm.data_space("scratch", 8)
    asm.data_asciiz("pub_path", "pub.dat")
    asm.data_space("buf", TAINT_FIXTURE_BLOCK)

    with asm.function("main"):
        _open_and_block(asm, "pub_path")
        # Copy the secret (the scratch bucket becomes tainted)...
        asm.la(Reg.t0, "secret")
        asm.loadb(Reg.t1, Reg.t0, 0)
        asm.la(Reg.t2, "scratch")
        asm.storeb(Reg.t1, Reg.t2, 0)
        # ...reload the copy, then sanitize it to a provable constant.
        asm.loadb(Reg.t3, Reg.t2, 0)
        asm.andi(Reg.t4, Reg.t3, 0)
        asm.addi(Reg.a2, Reg.t4, TAINT_FIXTURE_BLOCK)
        asm.mov(Reg.a0, Reg.s1)
        asm.la(Reg.a1, "buf")
        asm.syscall(SYS_READ)
        asm.li(Reg.a0, 0)
        asm.syscall(SYS_EXIT)
        asm.halt()

    asm.entry("main")
    return asm.finish()


#: CLI-visible fixture registry: name -> zero-argument builder.
FIXTURES: Dict[str, Callable[[], Binary]] = {
    "unsafe-fixture": build_unsafe_fixture,
    "safe-fixture": build_safe_fixture,
    "taint-safe-fixture": build_taint_safe_fixture,
    "taint-table-fixture": build_taint_table_fixture,
    "taint-branch-fixture": build_taint_branch_fixture,
    "taint-sanitized-fixture": build_taint_sanitized_fixture,
}

#: Fixtures ``--security --lint`` must fail on (and the others pass).
LEAKY_FIXTURES = ("taint-table-fixture", "taint-branch-fixture")

