"""Speculation-security taint analysis (analysis stage 5).

The paper's hint channel is observable: every speculative ``SPEC_READ``
discloses an (ino, offset, length) triple to the OS, and the resulting
prefetch pattern is visible to anything that can watch the disk.  That
makes the hint queue a classic transmission channel in the sense of the
speculative-leak literature (Speculose; "Abstract Interpretation under
Speculative Execution"): if a *secret-derived* value ever reaches a hint
operand along a speculatively reachable path, the binary leaks.

This module proves it can't (or produces a witness when it can):

* programs mark secret data regions in the assembler
  (``data_bytes(..., secret=True)``); each secret symbol is one taint
  *label*;
* a taint domain — ``Taint = FrozenSet[label]``, join = union — runs in
  lockstep with the interval/function-pointer/stack-slot domain from
  :mod:`repro.analysis.absint` through the same worklist solver, so taint
  decisions can lean on value information (a provably *constant* result
  carries no data taint: ``andi x, secret, 0`` sanitizes);
* memory taint is bucketed per data symbol (plus a catch-all for
  non-data addresses), stack-slot taint rides the tracked slots;
* **implicit flows**: a branch (or switch) on a tainted condition taints
  every value defined in its control-dependent region, computed from
  postdominators (Ferrante–Ottenstein regions) and iterated to a fixed
  point;
* **interprocedural**: context-insensitive call summaries (return and
  scratch-register taint, memory taint effects) iterated with the
  per-call-site entry environments to a global fixed point;
* **sinks**: every speculation-reachable ``read`` (it becomes a
  ``SPEC_READ`` hint disclosure in shadow code) and every manual hint
  ioctl.  Channels: ``ino`` (fd identity, register ``a0``), ``offset``
  (a coarse per-state file-offset channel fed by ``lseek`` operands and
  read lengths), ``length`` (register ``a2``), and ``control`` (the
  *occurrence* of the disclosure is secret-dependent).

Soundness boundary: calls are maximally conservative (a callee may
return anything derived from its arguments or reachable memory);
functions are entered only through flows the call graph exposes
(matching the handler's "function entries only" rule); writes through
pointers into a caller's live stack frame are folded into the memory
smear rather than per-slot taint; postdominator regions under-approximate
inside infinite loops (none of the shipped binaries has one).  Every
*declared* secret is tracked; the lint cannot see secrets a program
never marks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.absint import (
    _MAX_STEPS,
    _WIDEN_AFTER,
    AbsState,
    AbsVal,
    ValueKind,
    _edge_states,
    address_of,
    step,
)
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import CALL_CLOBBERS, defs_uses, reaching_definitions
from repro.analysis.driver import (
    BinaryAnalysis,
    LintFinding,
    TransferKind,
    analyze_binary,
)
from repro.errors import AnalysisError
from repro.params import SpecHintParams
from repro.vm.binary import Binary, Function
from repro.vm.disasm import format_insn
from repro.vm.isa import (
    BRANCH_OPS,
    NUM_REGS,
    SEEK_SET,
    SYS_HINT_FD_SEG,
    SYS_HINT_SEG,
    SYS_LSEEK,
    SYS_OPEN,
    SYS_READ,
    Insn,
    Op,
    Reg,
)
from repro.vm.memory import DATA_BASE

# -- the taint lattice --------------------------------------------------------

#: One taint value: the set of secret-region labels a value may derive
#: from.  Bottom is the empty set; the lattice is the powerset of the
#: binary's secret symbols, so it is finite and join = union suffices
#: for termination (widening degenerates to join).
Taint = FrozenSet[str]

EMPTY_TAINT: Taint = frozenset()


def taint_join(a: Taint, b: Taint) -> Taint:
    """Least upper bound: set union."""
    return a | b


def taint_widen(a: Taint, b: Taint) -> Taint:
    """Widening: the lattice is finite, so plain join already terminates."""
    return taint_join(a, b)


_ZERO = int(Reg.zero)
_RA = int(Reg.ra)
_V0 = int(Reg.v0)
_V1 = int(Reg.v1)
_A0 = int(Reg.a0)
_A1 = int(Reg.a1)
_A2 = int(Reg.a2)
_ARG_REGS = tuple(int(r) for r in (Reg.a0, Reg.a1, Reg.a2, Reg.a3, Reg.a4, Reg.a5))

#: Catch-all memory bucket for addresses outside the data segment
#: (speculative heap, unmapped): one conflated cell.
_HEAP_BUCKET = "@heap"

_THREE_REG_ALU = frozenset({
    Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR, Op.XOR,
    Op.SHL, Op.SHR, Op.SLT,
})
_IMM_ALU = frozenset({
    Op.ADDI, Op.MULI, Op.ANDI, Op.ORI, Op.SHLI, Op.SHRI, Op.SLTI,
})

#: Ordered leak channels (report order is stable).
CHANNELS = ("ino", "offset", "length", "control")

#: Bound on interprocedural rounds / implicit-flow iterations (defence in
#: depth: both lattices are finite, so the fixpoints terminate anyway).
_MAX_ROUNDS = 64


class TaintState:
    """Taint component of the product state.

    Mirrors :class:`~repro.analysis.absint.AbsState` (registers + tracked
    stack slots) and adds the memory buckets, the smear (writes through
    unresolved pointers), and the coarse file-offset channel.
    """

    __slots__ = ("regs", "slots", "mem", "smear", "offset")

    def __init__(
        self,
        regs: Optional[List[Taint]] = None,
        slots: Optional[Dict[int, Taint]] = None,
        mem: Optional[Dict[str, Taint]] = None,
        smear: Taint = EMPTY_TAINT,
        offset: Taint = EMPTY_TAINT,
    ) -> None:
        self.regs: List[Taint] = [EMPTY_TAINT] * NUM_REGS if regs is None else regs
        self.slots: Dict[int, Taint] = {} if slots is None else slots
        self.mem: Dict[str, Taint] = {} if mem is None else mem
        self.smear = smear
        self.offset = offset

    def copy(self) -> "TaintState":
        return TaintState(
            list(self.regs), dict(self.slots), dict(self.mem),
            self.smear, self.offset,
        )

    def get(self, reg: int) -> Taint:
        return self.regs[reg]

    def set(self, reg: int, taint: Taint) -> None:
        if reg != _ZERO:  # architecturally pinned to 0: never tainted
            self.regs[reg] = taint

    def mem_union(self) -> Taint:
        out = self.smear
        for taint in self.mem.values():
            out |= taint
        return out

    def join_with(self, other: "TaintState") -> "TaintState":
        regs = [a | b for a, b in zip(self.regs, other.regs)]
        slots: Dict[int, Taint] = dict(self.slots)
        for key, taint in other.slots.items():
            slots[key] = slots.get(key, EMPTY_TAINT) | taint
        mem: Dict[str, Taint] = dict(self.mem)
        for name, taint in other.mem.items():
            mem[name] = mem.get(name, EMPTY_TAINT) | taint
        return TaintState(
            regs, slots, mem,
            self.smear | other.smear, self.offset | other.offset,
        )

    @staticmethod
    def _nonempty(d: Dict[object, Taint]) -> Dict[object, Taint]:
        return {k: v for k, v in d.items() if v}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaintState):
            return NotImplemented
        return (
            self.regs == other.regs
            and self._nonempty(dict(self.slots)) == self._nonempty(dict(other.slots))
            and self._nonempty(dict(self.mem)) == self._nonempty(dict(other.mem))
            and self.smear == other.smear
            and self.offset == other.offset
        )

    def __hash__(self) -> int:  # pragma: no cover - never used as a key
        raise TypeError("TaintState is mutable and unhashable")


# -- reports ------------------------------------------------------------------


@dataclass(frozen=True)
class WitnessStep:
    """One step of a leak's def-use witness chain."""

    index: int
    function: str
    text: str
    note: str

    def format(self) -> str:
        return f"@{self.index} [{self.function}] {self.text}  ; {self.note}"


@dataclass(frozen=True)
class LeakReport:
    """One hint-disclosure site a secret can flow into."""

    index: int
    function: str
    #: "spec-read" (a read that becomes a SPEC_READ hint in shadow code)
    #: or "manual-hint" (a TIPIO hint ioctl issued directly).
    site: str
    #: Channel name -> sorted secret labels reaching that operand.
    channels: Dict[str, Tuple[str, ...]]
    witness: Tuple[WitnessStep, ...]

    @property
    def labels(self) -> Tuple[str, ...]:
        out: Set[str] = set()
        for names in self.channels.values():
            out.update(names)
        return tuple(sorted(out))

    def format(self) -> str:
        chans = ", ".join(
            f"{name}<-{{{', '.join(self.channels[name])}}}"
            for name in CHANNELS if name in self.channels
        )
        lines = [
            f"leak at {self.function}@{self.index} ({self.site}): {chans}"
        ]
        lines.extend(f"    {step.format()}" for step in self.witness)
        return "\n".join(lines)


@dataclass
class SecurityPlan:
    """The security lint's verdict over one binary."""

    binary_name: str
    secret_labels: Tuple[str, ...]
    #: Speculation-reachable read sites (hint disclosure sites) plus
    #: manual hint-ioctl sites, original-text indices.
    disclosure_sites: Tuple[int, ...]
    leaks: List[LeakReport]
    functions_analyzed: Tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.leaks

    def lint(self) -> List[LintFinding]:
        findings = [
            LintFinding(
                "error", "secret-to-hint", leak.function, leak.index,
                f"secret region(s) {', '.join(leak.labels)} flow into the "
                f"{'/'.join(n for n in CHANNELS if n in leak.channels)} "
                f"operand(s) of a disclosed hint ({leak.site})",
            )
            for leak in self.leaks
        ]
        findings.sort(key=lambda f: (f.function, -1 if f.index is None else f.index))
        return findings

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "binary": self.binary_name,
            "secret_regions": list(self.secret_labels),
            "disclosure_sites": list(self.disclosure_sites),
            "functions_analyzed": list(self.functions_analyzed),
            "clean": self.clean,
            "leaks": [
                {
                    "index": leak.index,
                    "function": leak.function,
                    "site": leak.site,
                    "channels": {
                        name: list(labels)
                        for name, labels in sorted(leak.channels.items())
                    },
                    "witness": [
                        {
                            "index": step.index,
                            "function": step.function,
                            "text": step.text,
                            "note": step.note,
                        }
                        for step in leak.witness
                    ],
                }
                for leak in self.leaks
            ],
        }

    def format_text(self) -> str:
        lines = [
            f"security analysis of {self.binary_name}: "
            f"{len(self.secret_labels)} secret region(s), "
            f"{len(self.disclosure_sites)} disclosure site(s), "
            f"{len(self.leaks)} leak(s)",
        ]
        if self.secret_labels:
            lines.append(f"  secrets: {', '.join(self.secret_labels)}")
        if self.clean:
            lines.append(
                "  clean: no secret-derived value reaches a hint operand "
                "along any speculatively reachable path"
            )
        else:
            for leak in self.leaks:
                lines.append("")
                lines.extend("  " + ln for ln in leak.format().splitlines())
        return "\n".join(lines)


# -- data-segment bucket map --------------------------------------------------


class _DataMap:
    """Partition of the address space into taint buckets.

    One bucket per data symbol (its extent runs to the next symbol), plus
    ``@heap`` conflating everything outside the data segment that is not
    the tracked stack.
    """

    def __init__(self, binary: Binary) -> None:
        self.data_end = DATA_BASE + len(binary.data)
        bounds = sorted(binary.data_symbols.items(), key=lambda kv: kv[1])
        self.ranges: List[Tuple[int, int, str]] = []
        for i, (name, base) in enumerate(bounds):
            end = bounds[i + 1][1] if i + 1 < len(bounds) else self.data_end
            self.ranges.append((base, max(end, base + 1), name))
        self.all_buckets: Tuple[str, ...] = tuple(
            name for _, _, name in self.ranges
        ) + (_HEAP_BUCKET,)

    def buckets_for(self, addr: AbsVal) -> Optional[Tuple[str, ...]]:
        """Buckets ``addr`` may touch; ``None`` when unresolved (any)."""
        if addr.kind is ValueKind.STACK:
            return ()  # handled by the tracked stack slots
        if addr.kind is not ValueKind.NUM or addr.lo is None or addr.hi is None:
            return None
        out = [
            name for base, end, name in self.ranges
            if addr.lo < end and addr.hi >= base
        ]
        if addr.lo < DATA_BASE or addr.hi >= self.data_end:
            out.append(_HEAP_BUCKET)
        return tuple(out)


# -- control dependence -------------------------------------------------------

_EXIT = -1


def _postdominators(cfg: CFG) -> Dict[int, FrozenSet[int]]:
    """Postdominator sets over blocks, against a virtual exit node."""
    succs: Dict[int, List[int]] = {
        b.block_id: (list(b.successors) or [_EXIT]) for b in cfg.blocks
    }
    nodes = set(succs) | {_EXIT}
    pdom: Dict[int, Set[int]] = {_EXIT: {_EXIT}}
    others = sorted(nodes - {_EXIT}, reverse=True)
    for n in others:
        pdom[n] = set(nodes)
    changed = True
    while changed:
        changed = False
        for n in others:
            new: Set[int] = set(nodes)
            for s in succs[n]:
                new &= pdom[s]
            new.add(n)
            if new != pdom[n]:
                pdom[n] = new
                changed = True
    return {n: frozenset(v) for n, v in pdom.items()}


def _control_region(
    cfg: CFG, pdom: Dict[int, FrozenSet[int]], block_id: int
) -> FrozenSet[int]:
    """Instruction indices control-dependent on ``block_id``'s terminator:
    everything reachable from its successors short of a block that
    postdominates the branch."""
    stop = pdom[block_id] - {block_id}
    region_blocks: Set[int] = set()
    stack = list(cfg.blocks[block_id].successors)
    while stack:
        b = stack.pop()
        if b in stop or b in region_blocks:
            continue
        region_blocks.add(b)
        stack.extend(cfg.blocks[b].successors)
    out: Set[int] = set()
    for b in region_blocks:
        out.update(cfg.blocks[b].indices())
    return frozenset(out)


# -- interprocedural summaries ------------------------------------------------


@dataclass
class _Summary:
    """What a call to one function may do to its caller's taint state."""

    ret: Taint = EMPTY_TAINT        # v0/v1 taint at returns
    scratch: Taint = EMPTY_TAINT    # caller-saved register residue
    mem: Dict[str, Taint] = field(default_factory=dict)
    smear: Taint = EMPTY_TAINT
    offset: Taint = EMPTY_TAINT

    def join_in_place(self, other: "_Summary") -> bool:
        changed = False
        if other.ret - self.ret:
            self.ret |= other.ret
            changed = True
        if other.scratch - self.scratch:
            self.scratch |= other.scratch
            changed = True
        for name, taint in other.mem.items():
            if taint - self.mem.get(name, EMPTY_TAINT):
                self.mem[name] = self.mem.get(name, EMPTY_TAINT) | taint
                changed = True
        if other.smear - self.smear:
            self.smear |= other.smear
            changed = True
        if other.offset - self.offset:
            self.offset |= other.offset
            changed = True
        return changed


@dataclass
class _FuncReport:
    """Per-function results of the final reporting pass."""

    taint_before: Dict[int, Tuple[Taint, ...]] = field(default_factory=dict)
    offset_before: Dict[int, Taint] = field(default_factory=dict)
    load_mem_taint: Dict[int, Taint] = field(default_factory=dict)
    implicit: Dict[int, Taint] = field(default_factory=dict)
    controllers: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    sinks: List[Tuple[int, str, Dict[str, Taint]]] = field(default_factory=list)


# -- the interpreter ----------------------------------------------------------


class _TaintInterp:
    """Whole-binary taint fixpoint over the product domain."""

    def __init__(self, binary: Binary, analysis: BinaryAnalysis) -> None:
        self.binary = binary
        self.analysis = analysis
        self.datamap = _DataMap(binary)
        self.labels: Tuple[str, ...] = tuple(sorted(binary.secret_symbols))
        self.cfgs: Dict[str, CFG] = dict(analysis.cfgs)
        self.pdoms: Dict[str, Dict[int, FrozenSet[int]]] = {}
        #: Per-function entry taint environment (join over call sites).
        self.entry_env: Dict[str, TaintState] = {}
        self.summaries: Dict[str, _Summary] = {
            f.name: _Summary() for f in binary.functions
        }
        self.reports: Dict[str, _FuncReport] = {}
        self._recording: Optional[_FuncReport] = None
        self._implicit: Dict[int, Taint] = {}

    # -- taint transfer ------------------------------------------------------

    def _mem_load_taint(self, state: TaintState, addr: AbsVal) -> Taint:
        buckets = self.datamap.buckets_for(addr)
        if buckets is None:
            buckets = self.datamap.all_buckets
        out = state.smear
        for name in buckets:
            out |= state.mem.get(name, EMPTY_TAINT)
        return out

    def _mem_store(self, state: TaintState, addr: AbsVal, taint: Taint) -> None:
        buckets = self.datamap.buckets_for(addr)
        if buckets is None:
            state.smear |= taint
            return
        for name in buckets:
            state.mem[name] = state.mem.get(name, EMPTY_TAINT) | taint

    def _callee_of(self, index: int, insn: Insn) -> Optional[str]:
        if insn.op is Op.CALL:
            target = self.binary.function_at_entry(insn.c)
            return target.name if target is not None else None
        fact = self.analysis.transfers.get(index)
        if fact is not None and fact.kind is TransferKind.RESOLVED \
                and fact.target is not None:
            target = self.binary.function_at_entry(fact.target)
            return target.name if target is not None else None
        return None

    def _flow_into(self, name: str, env: TaintState) -> bool:
        existing = self.entry_env.get(name)
        if existing is None:
            self.entry_env[name] = env
            return True
        merged = existing.join_with(env)
        if merged != existing:
            self.entry_env[name] = merged
            return True
        return False

    def _record_call_flow(self, callee: Optional[str], t: TaintState) -> bool:
        env = t.copy()
        env.slots = {}
        env.regs[_RA] = EMPTY_TAINT
        if callee is not None:
            return self._flow_into(callee, env)
        changed = False
        for func in self.binary.functions:
            if self._flow_into(func.name, env.copy()):
                changed = True
        return changed

    def _apply_call(
        self, t: TaintState, callee: Optional[str], imp: Taint
    ) -> None:
        if callee is not None:
            summ = self.summaries[callee]
            scratch = summ.scratch | imp
            ret = summ.ret | imp
            for name, taint in summ.mem.items():
                t.mem[name] = t.mem.get(name, EMPTY_TAINT) | taint
            t.smear |= summ.smear
            t.offset |= summ.offset
        else:
            # Unknown callee: it may return anything derived from the
            # arguments or any reachable memory.
            u = t.mem_union() | t.offset | imp
            for reg in _ARG_REGS:
                u |= t.regs[reg]
            for summ in self.summaries.values():
                u |= summ.ret | summ.scratch
            scratch = ret = u
            t.smear |= u
            t.offset |= u
        for reg in CALL_CLOBBERS:
            t.regs[reg] = scratch
        t.set(_V0, ret)
        t.set(_V1, ret)
        t.regs[_RA] = imp
        t.slots.clear()

    def _syscall_taint(
        self, t: TaintState, a: AbsState, insn: Insn, index: int, imp: Taint
    ) -> None:
        num = insn.c
        rt = t.get
        if num == SYS_OPEN:
            # fd identity derives from the path pointer and the path bytes.
            path = rt(_A0) | self._mem_load_taint(t, a.get(_A0)) | imp
            t.set(_V0, path)
            return
        if num == SYS_READ:
            t_in = rt(_A0) | t.offset | rt(_A2) | imp
            t.set(_V0, t_in)
            # The buffer now holds data selected by fd/offset/length.
            buf = a.get(_A1)
            if buf.kind is ValueKind.STACK:
                for key in t.slots:
                    t.slots[key] |= t_in
            else:
                self._mem_store(t, buf, t_in | rt(_A1))
            # The file offset advances by the amount read.
            t.offset |= rt(_A0) | rt(_A2) | imp
            return
        if num == SYS_LSEEK:
            moved = rt(_A0) | rt(_A1) | imp
            whence = a.get(_A2)
            if whence.is_const and whence.lo == SEEK_SET:
                t.offset = moved  # absolute seek: prior offset is dead
            else:
                t.offset |= moved
            t.set(_V0, moved | t.offset)
            return
        if num in (SYS_HINT_SEG, SYS_HINT_FD_SEG):
            t.set(_V0, imp)
            return
        t.set(_V0, rt(_A0) | rt(_A1) | rt(_A2) | imp)

    def _exec(
        self, a: AbsState, t: TaintState, insn: Insn, index: int
    ) -> None:
        """One instruction over the product state (taint first: it needs
        the *pre*-step abstract values for address resolution)."""
        op = insn.op
        imp = self._implicit.get(index, EMPTY_TAINT)
        rt = t.get

        if op in (Op.LI, Op.LA):
            t.set(insn.a, imp)
        elif op is Op.MOV:
            t.set(insn.a, rt(insn.b) | imp)
        elif op in _THREE_REG_ALU:
            t.set(insn.a, rt(insn.b) | rt(insn.c) | imp)
        elif op in _IMM_ALU:
            t.set(insn.a, rt(insn.b) | imp)
        elif op in (Op.LOAD, Op.LOADB):
            addr = address_of(a.get(insn.b), insn.c)
            if addr.kind is ValueKind.STACK:
                mem_taint = t.slots.get(addr.delta, EMPTY_TAINT) | t.smear
            else:
                mem_taint = self._mem_load_taint(t, addr)
            if self._recording is not None:
                self._recording.load_mem_taint[index] = mem_taint
            t.set(insn.a, mem_taint | rt(insn.b) | imp)
        elif op in (Op.STORE, Op.STOREB):
            val = rt(insn.a) | rt(insn.b) | imp
            addr = address_of(a.get(insn.b), insn.c)
            if addr.kind is ValueKind.STACK:
                if op is Op.STORE:
                    t.slots[addr.delta] = val
                else:
                    t.slots[addr.delta] = t.slots.get(addr.delta, EMPTY_TAINT) | val
                for key in t.slots:
                    if key != addr.delta and key < addr.delta + 8 \
                            and addr.delta < key + 8:
                        t.slots[key] |= val
            else:
                self._mem_store(t, addr, val)
        elif op in (Op.CALL, Op.CALLR):
            callee = self._callee_of(index, insn)
            self._apply_call(t, callee, imp)
        elif op is Op.SYSCALL:
            self._syscall_taint(t, a, insn, index, imp)
        # Branches, JMP, JR, SWITCH, NOP, HALT, CWORK: no register effects
        # (condition taint feeds the implicit-flow pass instead).

        step(a, insn)

        # Constant sanitization: a provably constant result cannot carry
        # data taint (its value is the same under every secret).  Implicit
        # taint survives — *which* constant ran can still be the leak.
        if op in _THREE_REG_ALU or op in _IMM_ALU or op is Op.MOV:
            if a.get(insn.a).is_const:
                t.set(insn.a, imp)

    # -- per-function fixpoint ----------------------------------------------

    def _branch_cond_taint(
        self, insn: Insn, t: TaintState
    ) -> Taint:
        if insn.op in BRANCH_OPS:
            return t.get(insn.a) | t.get(insn.b)
        if insn.op is Op.SWITCH:
            return t.get(insn.a)
        return EMPTY_TAINT

    def _solve(
        self, func: Function, entry_taint: TaintState
    ) -> Tuple[Dict[int, AbsState], Dict[int, TaintState]]:
        """Product fixpoint under the current implicit-taint map."""
        binary = self.binary
        cfg = self.cfgs[func.name]
        abs_in: Dict[int, AbsState] = {cfg.entry_block: AbsState()}
        taint_in: Dict[int, TaintState] = {cfg.entry_block: entry_taint.copy()}
        visits: Dict[int, int] = {}
        worklist: List[int] = [cfg.entry_block]
        steps = 0

        while worklist:
            block_id = worklist.pop(0)
            steps += 1
            if steps > _MAX_STEPS:
                raise AnalysisError(
                    f"{binary.name}/{func.name}: taint fixpoint did not "
                    f"converge within {_MAX_STEPS} steps"
                )
            visits[block_id] = visits.get(block_id, 0) + 1
            a_state = abs_in[block_id].copy()
            t_state = taint_in[block_id].copy()
            block = cfg.blocks[block_id]
            for index in range(block.start, block.end - 1):
                self._exec(a_state, t_state, binary.text[index], index)
            term = block.terminator
            term_insn = binary.text[term]
            term_edges = _edge_states(binary, cfg, a_state, term)
            self._exec(a_state, t_state, term_insn, term)
            for succ, abs_edge in term_edges.items():
                if abs_edge is None:
                    continue  # provably infeasible edge
                if term_insn.op not in BRANCH_OPS \
                        and term_insn.op is not Op.SWITCH:
                    abs_edge = a_state.copy()
                else:
                    step(abs_edge, term_insn)
                t_edge = t_state.copy()
                existing_a = abs_in.get(succ)
                if existing_a is None:
                    abs_in[succ] = abs_edge
                    taint_in[succ] = t_edge
                    worklist.append(succ)
                    continue
                widening = visits.get(succ, 0) >= _WIDEN_AFTER
                merged_a = existing_a.join_with(abs_edge, widening=widening)
                merged_t = taint_in[succ].join_with(t_edge)
                if merged_a != existing_a or merged_t != taint_in[succ]:
                    abs_in[succ] = merged_a
                    taint_in[succ] = merged_t
                    if succ not in worklist:
                        worklist.append(succ)
        return abs_in, taint_in

    def _implicit_for(
        self,
        func: Function,
        abs_in: Dict[int, AbsState],
        taint_in: Dict[int, TaintState],
        implicit: Dict[int, Taint],
        controllers: Dict[int, Set[int]],
    ) -> bool:
        """Extend ``implicit`` with this solution's tainted-branch regions.
        Returns True when anything grew."""
        binary = self.binary
        cfg = self.cfgs[func.name]
        pdom = self.pdoms[func.name]
        changed = False
        for block_id, t_in in taint_in.items():
            block = cfg.blocks[block_id]
            a_state = abs_in[block_id].copy()
            t_state = t_in.copy()
            for index in range(block.start, block.end - 1):
                self._exec(a_state, t_state, binary.text[index], index)
            term = block.terminator
            cond = self._branch_cond_taint(binary.text[term], t_state)
            if not cond:
                continue
            for index in _control_region(cfg, pdom, block_id):
                if cond - implicit.get(index, EMPTY_TAINT):
                    implicit[index] = implicit.get(index, EMPTY_TAINT) | cond
                    controllers.setdefault(index, set()).add(term)
                    changed = True
        return changed

    def _final_pass(
        self,
        func: Function,
        abs_in: Dict[int, AbsState],
        taint_in: Dict[int, TaintState],
        implicit: Dict[int, Taint],
        controllers: Dict[int, Set[int]],
    ) -> Tuple[_Summary, bool]:
        """Record per-index snapshots, sinks, call flows and the summary."""
        binary = self.binary
        cfg = self.cfgs[func.name]
        report = _FuncReport(
            implicit=dict(implicit),
            controllers={k: tuple(sorted(v)) for k, v in controllers.items()},
        )
        self.reports[func.name] = report
        self._recording = report
        summary = _Summary()
        env_changed = False

        for block_id, t_in in taint_in.items():
            a_state = abs_in[block_id].copy()
            t_state = t_in.copy()
            block = cfg.blocks[block_id]
            for index in block.indices():
                insn = binary.text[index]
                report.taint_before[index] = tuple(t_state.regs)
                report.offset_before[index] = t_state.offset
                if insn.op is Op.SYSCALL:
                    sink = self._sink_channels(index, insn, a_state, t_state)
                    if sink is not None:
                        report.sinks.append(sink)
                if insn.op in (Op.CALL, Op.CALLR):
                    callee = self._callee_of(index, insn)
                    if self._record_call_flow(callee, t_state):
                        env_changed = True
                self._exec(a_state, t_state, insn, index)
            if binary.text[block.terminator].op is Op.JR:
                # Intraprocedurally a JR ends the function: fold this exit
                # state into the call summary.
                exit_summ = _Summary(
                    ret=t_state.get(_V0) | t_state.get(_V1),
                    scratch=EMPTY_TAINT.union(
                        *(t_state.regs[r] for r in CALL_CLOBBERS)
                    ),
                    mem=dict(t_state.mem),
                    smear=t_state.smear,
                    offset=t_state.offset,
                )
                summary.join_in_place(exit_summ)
        self._recording = None
        return summary, env_changed

    def _sink_channels(
        self, index: int, insn: Insn, a: AbsState, t: TaintState
    ) -> Optional[Tuple[int, str, Dict[str, Taint]]]:
        imp = self._implicit.get(index, EMPTY_TAINT)
        if insn.c == SYS_READ and index in self.analysis.spec_reachable:
            channels = {
                "ino": t.get(_A0),
                "offset": t.offset,
                "length": t.get(_A2),
                "control": imp,
            }
            kind = "spec-read"
        elif insn.c in (SYS_HINT_SEG, SYS_HINT_FD_SEG):
            ino = t.get(_A0)
            if insn.c == SYS_HINT_SEG:
                ino |= self._mem_load_taint(t, a.get(_A0))
            channels = {
                "ino": ino,
                "offset": t.get(_A1),
                "length": t.get(_A2),
                "control": imp,
            }
            kind = "manual-hint"
        else:
            return None
        channels = {name: taint for name, taint in channels.items() if taint}
        if not channels:
            return None
        return (index, kind, channels)

    # -- whole-binary driver -------------------------------------------------

    def run(self) -> Tuple[List[LeakReport], Tuple[str, ...]]:
        binary = self.binary
        entry_func = binary.function_containing(binary.entry_point)
        if entry_func is None:
            raise AnalysisError(
                f"{binary.name}: entry point outside every function"
            )
        for func in binary.functions:
            if func.name not in self.cfgs:
                self.cfgs[func.name] = build_cfg(binary, func)
            self.pdoms[func.name] = _postdominators(self.cfgs[func.name])

        entry_state = TaintState(
            mem={name: frozenset({name}) for name in self.labels}
        )
        self.entry_env[entry_func.name] = entry_state

        implicit_maps: Dict[str, Dict[int, Taint]] = {}
        controller_maps: Dict[str, Dict[int, Set[int]]] = {}

        rounds = 0
        changed = True
        while changed:
            rounds += 1
            if rounds > _MAX_ROUNDS:
                raise AnalysisError(
                    f"{binary.name}: interprocedural taint fixpoint did "
                    f"not converge within {_MAX_ROUNDS} rounds"
                )
            changed = False
            for func in binary.functions:
                env = self.entry_env.get(func.name)
                if env is None:
                    continue  # no flow ever enters this function
                implicit = implicit_maps.setdefault(func.name, {})
                controllers = controller_maps.setdefault(func.name, {})
                # Inner loop: stabilize implicit flows for this function.
                for _ in range(_MAX_ROUNDS):
                    self._implicit = implicit
                    abs_in, taint_in = self._solve(func, env)
                    if not self._implicit_for(
                        func, abs_in, taint_in, implicit, controllers
                    ):
                        break
                else:  # pragma: no cover - finite lattice
                    raise AnalysisError(
                        f"{binary.name}/{func.name}: implicit-flow pass "
                        f"did not converge"
                    )
                self._implicit = implicit
                summary, env_changed = self._final_pass(
                    func, abs_in, taint_in, implicit, controllers
                )
                if env_changed:
                    changed = True
                if self.summaries[func.name].join_in_place(summary):
                    changed = True

        leaks = self._build_leaks()
        analyzed = tuple(sorted(self.entry_env))
        return leaks, analyzed

    # -- witnesses -----------------------------------------------------------

    def _build_leaks(self) -> List[LeakReport]:
        leaks: List[LeakReport] = []
        for func in self.binary.functions:
            report = self.reports.get(func.name)
            if report is None:
                continue
            seen: Set[int] = set()
            for index, kind, channels in sorted(report.sinks):
                if index in seen:
                    continue
                seen.add(index)
                witness = self._witness(func, report, index, channels)
                leaks.append(LeakReport(
                    index=index,
                    function=func.name,
                    site=kind,
                    channels={
                        name: tuple(sorted(taint))
                        for name, taint in channels.items()
                    },
                    witness=tuple(witness),
                ))
        leaks.sort(key=lambda leak: (leak.function, leak.index))
        return leaks

    def _witness(
        self,
        func: Function,
        report: _FuncReport,
        index: int,
        channels: Dict[str, Taint],
    ) -> List[WitnessStep]:
        binary = self.binary
        text = binary.text
        steps = [WitnessStep(
            index, func.name, format_insn(text[index]),
            "hint disclosure site: "
            + "/".join(n for n in CHANNELS if n in channels)
            + " operand(s) tainted",
        )]
        cfg = self.cfgs[func.name]
        rdefs = reaching_definitions(binary, cfg)

        start: Optional[Tuple[int, int]] = None
        if "ino" in channels:
            start = (index, _A0)
        elif "length" in channels:
            start = (index, _A2)
        elif "offset" in channels:
            site = self._offset_source(func, report, index)
            if site is not None:
                src_index, src_reg = site
                steps.append(WitnessStep(
                    src_index, func.name, format_insn(text[src_index]),
                    "taints the file-offset channel consumed by the hint",
                ))
                start = (src_index, src_reg)
        elif "control" in channels:
            ctrl = report.controllers.get(index)
            if ctrl:
                branch = ctrl[0]
                steps.append(WitnessStep(
                    branch, func.name, format_insn(text[branch]),
                    "disclosure is control-dependent on this tainted branch",
                ))
                start = self._tainted_operand(report, branch)

        if start is not None:
            steps.extend(self._chain(func, report, rdefs, start))
        return steps

    def _offset_source(
        self, func: Function, report: _FuncReport, sink: int
    ) -> Optional[Tuple[int, int]]:
        """The nearest preceding lseek/read whose operands taint the
        offset channel, and the register to chain from."""
        text = self.binary.text
        for idx in range(sink - 1, func.entry - 1, -1):
            insn = text[idx]
            if insn.op is not Op.SYSCALL or insn.c not in (SYS_LSEEK, SYS_READ):
                continue
            regs = report.taint_before.get(idx)
            if regs is None:
                continue
            for reg in (_A1, _A0, _A2):
                if regs[reg]:
                    return (idx, reg)
        return None

    def _tainted_operand(
        self, report: _FuncReport, index: int
    ) -> Optional[Tuple[int, int]]:
        regs = report.taint_before.get(index)
        if regs is None:
            return None
        _, uses = defs_uses(self.binary.text[index])
        for reg in sorted(uses):
            if regs[reg]:
                return (index, reg)
        return None

    def _chain(
        self,
        func: Function,
        report: _FuncReport,
        rdefs: Dict[int, FrozenSet[Tuple[int, int]]],
        start: Tuple[int, int],
    ) -> List[WitnessStep]:
        text = self.binary.text
        steps: List[WitnessStep] = []
        visited: Set[Tuple[int, int]] = set()
        cur: Optional[Tuple[int, int]] = start
        for _ in range(16):
            if cur is None or cur in visited:
                break
            visited.add(cur)
            at, reg = cur
            defs = sorted(
                d for (d, r) in rdefs.get(at, frozenset()) if r == reg
            )
            if not defs:
                break
            d = defs[-1]
            insn = text[d]
            regs = report.taint_before.get(d)
            imp = report.implicit.get(d, EMPTY_TAINT)
            note = "propagates taint"
            nxt: Optional[Tuple[int, int]] = None
            if insn.op in (Op.LOAD, Op.LOADB):
                mem_taint = report.load_mem_taint.get(d, EMPTY_TAINT)
                if regs is not None and regs[insn.b]:
                    note = "loads through a secret-derived address"
                    nxt = (d, insn.b)
                elif mem_taint:
                    note = (
                        "loads memory tainted by secret region(s) "
                        + ", ".join(sorted(mem_taint))
                    )
                else:
                    note = "loads secret-tainted memory"
            elif insn.op is Op.MOV and regs is not None and regs[insn.b]:
                nxt = (d, insn.b)
            elif insn.op in _THREE_REG_ALU and regs is not None:
                for operand in (insn.b, insn.c):
                    if regs[operand]:
                        nxt = (d, operand)
                        break
            elif insn.op in _IMM_ALU and regs is not None and regs[insn.b]:
                nxt = (d, insn.b)
            elif insn.op is Op.SYSCALL:
                note = "syscall result derives from tainted operands"
                nxt = self._tainted_operand(report, d)
            if nxt is None and imp:
                ctrl = report.controllers.get(d)
                if ctrl:
                    steps.append(WitnessStep(
                        d, func.name, format_insn(insn),
                        "implicit flow: defined under a tainted branch",
                    ))
                    branch = ctrl[0]
                    steps.append(WitnessStep(
                        branch, func.name, format_insn(text[branch]),
                        "the controlling branch condition is secret-tainted",
                    ))
                    cur = self._tainted_operand(report, branch)
                    continue
                note = "implicit flow from a tainted branch"
            steps.append(WitnessStep(d, func.name, format_insn(insn), note))
            cur = nxt
        return steps


# -- public entry point -------------------------------------------------------


def analyze_security(
    binary: Binary,
    params: Optional[SpecHintParams] = None,
    analysis: Optional[BinaryAnalysis] = None,
) -> SecurityPlan:
    """Run the speculation-security taint analysis over one binary.

    Reuses ``analysis`` (the :func:`repro.analysis.driver.analyze_binary`
    result) when the caller already has it; computes it otherwise.
    """
    if getattr(binary, "spec_meta", None) is not None:
        raise AnalysisError(
            f"{binary.name}: analyze the original binary, not the "
            f"transformed one (shadow code is generated, not analyzed)"
        )
    if analysis is None:
        analysis = analyze_binary(binary, params)

    sites = sorted(
        index
        for index in analysis.spec_reachable
        if 0 <= index < len(binary.text)
        and binary.text[index].op is Op.SYSCALL
        and binary.text[index].c == SYS_READ
    )
    for index, insn in enumerate(binary.text):
        if insn.op is Op.SYSCALL and insn.c in (SYS_HINT_SEG, SYS_HINT_FD_SEG):
            sites.append(index)
    disclosure_sites = tuple(sorted(set(sites)))
    labels = tuple(sorted(binary.secret_symbols))

    if not labels:
        # No declared secrets: the taint lattice is {∅} and the binary is
        # vacuously clean.  Skip the fixpoint but keep the site inventory.
        return SecurityPlan(
            binary_name=binary.name,
            secret_labels=(),
            disclosure_sites=disclosure_sites,
            leaks=[],
            functions_analyzed=tuple(f.name for f in binary.functions),
        )

    interp = _TaintInterp(binary, analysis)
    leaks, analyzed = interp.run()
    return SecurityPlan(
        binary_name=binary.name,
        secret_labels=labels,
        disclosure_sites=disclosure_sites,
        leaks=leaks,
        functions_analyzed=analyzed,
    )
