"""Whole-binary analysis driver (stage 4).

Runs the per-function pipeline (CFG -> dataflow -> abstract
interpretation), then computes the whole-program facts the SpecHint tool
consumes:

* classification of every computed control transfer (resolved to a
  provable function target / a return / unknown / provably unmappable);
* speculation reachability — the set of original-text instructions the
  speculating thread can reach from any read-resume point under the
  shadow-code semantics (stripped output calls, "handler maps function
  entries", suppressed syscalls);
* a store classification (SPEC_LOCAL / MAY_ESCAPE / UNKNOWN);
* per-function syscall reachability;
* an :class:`ElisionPlan` of COW checks that can be skipped and computed
  transfers that can be statically redirected;
* lint findings for binaries speculation cannot safely pre-execute.

Everything here is *advice*: the runtime isolation auditor remains the
soundness oracle.  A store the plan wrongly unwraps still hits the
armed write guard and raises ``IsolationViolation`` before it can land,
and a wrongly redirected transfer still jumps to a shadow function
entry — quarantine costs performance, never correctness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Set, Tuple

from repro.analysis.absint import (
    AbsVal,
    FunctionFacts,
    ValueKind,
    analyze_function,
    range_avoids,
    range_within,
)
from repro.analysis.cfg import CFG, build_cfg, table_targets
from repro.analysis.dataflow import live_out
from repro.errors import AnalysisError
from repro.params import SpecHintParams
from repro.vm.binary import Binary
from repro.vm.disasm import format_insn
from repro.vm.isa import (
    BRANCH_OPS,
    SYS_EXIT,
    SYS_READ,
    SYSCALL_NAMES,
    Op,
)
from repro.vm.memory import DATA_BASE, SPEC_HEAP_BASE, SPEC_HEAP_MAX
from repro.vm.memory import STACK_TOP as _STACK_TOP
from repro.vm.memory import DEFAULT_STACK_BYTES as _STACK_BYTES

_STACK_BASE = _STACK_TOP - _STACK_BYTES


class CheckCosts(NamedTuple):
    """COW check cycle costs for one function's loads and stores."""

    load: int
    store: int


def check_costs(params: SpecHintParams, optimized_stdlib: bool) -> CheckCosts:
    """Per-access COW check cycles, honouring the optimized-stdlib divisor."""
    load, store = params.cow_load_check_cycles, params.cow_store_check_cycles
    if optimized_stdlib:
        divisor = max(1, params.optimized_stdlib_check_divisor)
        load = max(1, load // divisor)
        store = max(1, store // divisor)
    return CheckCosts(load, store)


class StoreClass(enum.Enum):
    """What a store can touch, as far as the analysis can prove."""

    #: Provably speculation-local: the (pre-copied) stack or the
    #: speculative heap.
    SPEC_LOCAL = "spec_local"
    #: Provably escapes speculation-local memory (data segment).
    MAY_ESCAPE = "may_escape"
    #: No proof either way; the COW wrapper stays.
    UNKNOWN = "unknown"


class TransferKind(enum.Enum):
    """Classification of one computed control transfer site."""

    RESOLVED = "resolved"          # provable function-entry target
    RETURN = "return"              # JR on a return address
    UNKNOWN = "unknown"            # could be any mappable function entry
    UNMAPPABLE = "unmappable"      # provable non-entry constant: parks
    TABLE_STATIC = "table_static"          # recognized table, twinned
    TABLE_DYNAMIC = "table_dynamic"        # unrecognized, entry targets
    TABLE_UNMAPPABLE = "table_unmappable"  # unrecognized, non-entry targets


@dataclass(frozen=True)
class TransferFact:
    """One JR/CALLR/SWITCH site and what the analysis proved about it."""

    index: int
    function: str
    kind: TransferKind
    target: Optional[int] = None
    detail: str = ""


@dataclass(frozen=True)
class LintFinding:
    """One problem ``repro analyze --lint`` reports."""

    severity: str  # "error" | "warning"
    code: str
    function: str
    index: Optional[int]
    message: str

    def format(self) -> str:
        where = f"@{self.index}" if self.index is not None else ""
        return (f"{self.severity}: [{self.code}] {self.function}{where}: "
                f"{self.message}")


@dataclass(frozen=True)
class ElisionPlan:
    """Optimizations the SpecHint tool may apply, by original text index."""

    #: Instructions the speculating thread can never reach: their stores
    #: need no COW wrapper, their loads no COW check cycles.
    dead: FrozenSet[int] = frozenset()
    #: Live loads/stores with a provably stack-relative address that the
    #: assembler did not mark (the pre-copied stack needs no check).
    stack_proved: FrozenSet[int] = frozenset()
    #: Live stores provably confined to the speculative heap (write-guard
    #: allowed even for plain stores).
    heap_stores: FrozenSet[int] = frozenset()
    #: JR/CALLR index -> provable function-entry target.
    resolved: Dict[int, int] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not (self.dead or self.stack_proved or self.heap_stores
                    or self.resolved)


@dataclass
class FunctionSummary:
    """Per-function roll-up for reports."""

    name: str
    blocks: int
    loops: int
    max_live_regs: int
    stores: int
    spec_reachable: bool
    syscalls: Tuple[str, ...]


@dataclass
class BinaryAnalysis:
    """Everything the analysis learned about one binary."""

    binary: Binary
    params: SpecHintParams
    cfgs: Dict[str, CFG]
    facts: Dict[str, FunctionFacts]
    store_classes: Dict[int, StoreClass]
    transfers: Dict[int, TransferFact]
    spec_roots: FrozenSet[int]
    spec_reachable: FrozenSet[int]
    syscalls_per_function: Dict[str, FrozenSet[int]]
    elision_plan: ElisionPlan
    lint: List[LintFinding]
    check_cycles_baseline: int
    check_cycles_optimized: int
    summaries: List[FunctionSummary]

    # -- derived ---------------------------------------------------------

    @property
    def binary_name(self) -> str:
        return self.binary.name

    def store_count(self, cls: StoreClass) -> int:
        return sum(1 for c in self.store_classes.values() if c is cls)

    def transfer_count(self, kind: TransferKind) -> int:
        return sum(1 for t in self.transfers.values() if t.kind is kind)

    @property
    def wrapped_store_sites(self) -> int:
        """Stores the mechanical transformation would wrap with a check
        (assembler-marked stack stores carry none and are excluded)."""
        return sum(
            1 for index in self.store_classes
            if not self.binary.text[index].get_meta("stack")
        )

    @property
    def elidable_store_sites(self) -> int:
        plan = self.elision_plan
        return sum(
            1 for index in self.store_classes
            if not self.binary.text[index].get_meta("stack")
            and (index in plan.dead or index in plan.heap_stores)
        )

    @property
    def lint_errors(self) -> List[LintFinding]:
        return [f for f in self.lint if f.severity == "error"]

    @property
    def check_cycles_saved_pct(self) -> float:
        if self.check_cycles_baseline <= 0:
            return 0.0
        saved = self.check_cycles_baseline - self.check_cycles_optimized
        return 100.0 * saved / self.check_cycles_baseline

    # -- rendering -------------------------------------------------------

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "binary": self.binary_name,
            "functions": [
                {
                    "name": s.name,
                    "blocks": s.blocks,
                    "loops": s.loops,
                    "max_live_regs": s.max_live_regs,
                    "stores": s.stores,
                    "spec_reachable": s.spec_reachable,
                    "syscalls": list(s.syscalls),
                }
                for s in self.summaries
            ],
            "stores": {
                cls.value: self.store_count(cls) for cls in StoreClass
            },
            "transfers": {
                kind.value: self.transfer_count(kind)
                for kind in TransferKind
            },
            "spec_roots": sorted(self.spec_roots),
            "syscall_reachability": {
                name: [
                    {
                        "num": num,
                        "name": SYSCALL_NAMES.get(num, f"sys#{num}"),
                    }
                    for num in sorted(nums)
                ]
                for name, nums in sorted(self.syscalls_per_function.items())
            },
            "spec_reachable_insns": len(self.spec_reachable),
            "total_insns": len(self.binary.text),
            "elision": {
                "dead_insns": len(self.elision_plan.dead),
                "elidable_stores": self.elidable_store_sites,
                "wrapped_stores": self.wrapped_store_sites,
                "stack_proved": len(self.elision_plan.stack_proved),
                "heap_stores": len(self.elision_plan.heap_stores),
                "resolved_transfers": {
                    str(k): v for k, v in self.elision_plan.resolved.items()
                },
            },
            "check_cycles": {
                "baseline": self.check_cycles_baseline,
                "optimized": self.check_cycles_optimized,
                "saved_pct": round(self.check_cycles_saved_pct, 2),
            },
            "lint": [
                {
                    "severity": f.severity,
                    "code": f.code,
                    "function": f.function,
                    "index": f.index,
                    "message": f.message,
                }
                for f in self.lint
            ],
        }

    def format_text(self) -> str:
        text = self.binary.text
        lines = [
            f"analysis of {self.binary_name}: {len(self.cfgs)} functions, "
            f"{len(text)} instructions",
            f"  speculation roots: {len(self.spec_roots)} read-resume "
            f"points; reachable {len(self.spec_reachable)}/{len(text)} "
            f"instructions",
            f"  stores: {self.store_count(StoreClass.SPEC_LOCAL)} spec-local"
            f" / {self.store_count(StoreClass.MAY_ESCAPE)} may-escape / "
            f"{self.store_count(StoreClass.UNKNOWN)} unknown; "
            f"{self.elidable_store_sites}/{self.wrapped_store_sites} "
            f"COW store wrappers elidable",
            f"  transfers: {self.transfer_count(TransferKind.RESOLVED)} "
            f"resolved, {self.transfer_count(TransferKind.RETURN)} returns, "
            f"{self.transfer_count(TransferKind.UNKNOWN)} unknown, "
            f"{self.transfer_count(TransferKind.UNMAPPABLE)} unmappable",
            f"  cow check cycles: {self.check_cycles_baseline} -> "
            f"{self.check_cycles_optimized} "
            f"(-{self.check_cycles_saved_pct:.0f}%)",
            "",
            f"  {'function':<16} {'blocks':>6} {'loops':>5} "
            f"{'liveregs':>8} {'stores':>6} {'spec?':>5}  syscalls",
        ]
        for s in self.summaries:
            reach = "yes" if s.spec_reachable else "no"
            lines.append(
                f"  {s.name:<16} {s.blocks:>6} {s.loops:>5} "
                f"{s.max_live_regs:>8} {s.stores:>6} {reach:>5}  "
                f"{', '.join(s.syscalls) or '-'}"
            )
        resolved = self.elision_plan.resolved
        if resolved:
            lines.append("")
            for index, entry in sorted(resolved.items()):
                name = self.binary.function_at_entry(entry)
                target = name.name if name is not None else f"@{entry}"
                lines.append(
                    f"  resolved @{index}: {format_insn(text[index])} "
                    f"-> {target}"
                )
        if self.lint:
            lines.append("")
            lines.extend(f"  {f.format()}" for f in self.lint)
        return "\n".join(lines)


# -- transfer classification --------------------------------------------------


def _classify_value_transfer(
    binary: Binary, index: int, function: str, value: AbsVal
) -> TransferFact:
    insn = binary.text[index]
    entries = binary.function_entries()
    if value.kind is ValueKind.FUNC and value.entry in entries:
        return TransferFact(index, function, TransferKind.RESOLVED,
                            target=value.entry,
                            detail=entries[value.entry].name)
    if value.kind is ValueKind.RETADDR and insn.op is Op.JR:
        return TransferFact(index, function, TransferKind.RETURN)
    if value.is_const:
        target = value.lo
        assert target is not None
        if target in entries:
            # The handling routine would map this constant identically.
            return TransferFact(index, function, TransferKind.RESOLVED,
                                target=target,
                                detail=entries[target].name)
        return TransferFact(
            index, function, TransferKind.UNMAPPABLE,
            detail=f"constant target {target} is not a function entry",
        )
    return TransferFact(index, function, TransferKind.UNKNOWN)


def _classify_transfers(
    binary: Binary, facts: Dict[str, FunctionFacts]
) -> Dict[int, TransferFact]:
    transfers: Dict[int, TransferFact] = {}
    for name, fn_facts in facts.items():
        for index, value in fn_facts.transfer_val.items():
            transfers[index] = _classify_value_transfer(
                binary, index, name, value
            )
    for func in binary.functions:
        for index in range(func.entry, func.end):
            insn = binary.text[index]
            if insn.op is not Op.SWITCH:
                continue
            table = binary.jump_table(insn.c)
            if table.recognized:
                transfers[index] = TransferFact(
                    index, func.name, TransferKind.TABLE_STATIC
                )
            elif all(binary.is_function_entry(t) for t in table.targets):
                transfers[index] = TransferFact(
                    index, func.name, TransferKind.TABLE_DYNAMIC,
                    detail="unrecognized table; all targets mappable",
                )
            else:
                bad = [t for t in table.targets
                       if not binary.is_function_entry(t)]
                transfers[index] = TransferFact(
                    index, func.name, TransferKind.TABLE_UNMAPPABLE,
                    detail=(f"unrecognized table with non-entry targets "
                            f"{bad[:4]}"),
                )
    return transfers


# -- speculation reachability -------------------------------------------------


def spec_roots(binary: Binary) -> FrozenSet[int]:
    """Shadow resume points: the instruction after each blocking read."""
    return frozenset(
        i + 1
        for i, insn in enumerate(binary.text)
        if insn.op is Op.SYSCALL and insn.c == SYS_READ
        and i + 1 < len(binary.text)
    )


def _spec_successors(
    binary: Binary,
    index: int,
    transfers: Dict[int, TransferFact],
    all_entries: Tuple[int, ...],
) -> Tuple[int, ...]:
    """Successors of ``index`` under shadow-code semantics."""
    insn = binary.text[index]
    op = insn.op
    n = len(binary.text)
    fall = index + 1 if index + 1 < n else None

    if op in BRANCH_OPS:
        return tuple({insn.c, fall} - {None})  # type: ignore[arg-type]
    if op is Op.JMP:
        return (insn.c,)
    if op is Op.CALL:
        target_name = insn.get_meta("call_target")
        if target_name in binary.output_routines:
            return (fall,) if fall is not None else ()
        out = [insn.c]
        if fall is not None:
            out.append(fall)
        return tuple(out)
    if op in (Op.JR, Op.CALLR):
        fact = transfers.get(index)
        kind = fact.kind if fact is not None else TransferKind.UNKNOWN
        if kind is TransferKind.RESOLVED and fact is not None \
                and fact.target is not None:
            out = [fact.target]
            if op is Op.CALLR and fall is not None:
                out.append(fall)
            return tuple(out)
        if kind is TransferKind.RETURN:
            return ()  # covered by the caller's fallthrough edge
        if kind is TransferKind.UNMAPPABLE:
            return ()  # the handling routine parks speculation
        out = list(all_entries)
        if op is Op.CALLR and fall is not None:
            out.append(fall)
        return tuple(out)
    if op is Op.SWITCH:
        return table_targets(binary, insn.c)
    if op is Op.HALT:
        return ()  # becomes a guarded exit: parks
    if op is Op.SYSCALL:
        if insn.c == SYS_EXIT:
            return ()
        return (fall,) if fall is not None else ()
    return (fall,) if fall is not None else ()


def spec_reachability(
    binary: Binary,
    transfers: Dict[int, TransferFact],
    roots: FrozenSet[int],
) -> FrozenSet[int]:
    """Original-text indices the speculating thread can reach."""
    all_entries = tuple(sorted(f.entry for f in binary.functions))
    seen: Set[int] = set(roots)
    stack = list(roots)
    while stack:
        index = stack.pop()
        for succ in _spec_successors(binary, index, transfers, all_entries):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return frozenset(seen)


# -- syscall reachability -----------------------------------------------------


def _syscall_reachability(
    binary: Binary, transfers: Dict[int, TransferFact]
) -> Dict[str, FrozenSet[int]]:
    """Per function: syscall numbers reachable from its entry (shadow
    semantics — stripped output-routine calls do not propagate)."""
    direct: Dict[str, Set[int]] = {}
    callees: Dict[str, Set[str]] = {}
    all_names = [f.name for f in binary.functions]
    for func in binary.functions:
        direct[func.name] = set()
        callees[func.name] = set()
        for index in range(func.entry, func.end):
            insn = binary.text[index]
            if insn.op is Op.SYSCALL:
                direct[func.name].add(insn.c)
            elif insn.op is Op.CALL:
                target_name = insn.get_meta("call_target")
                if target_name in binary.output_routines:
                    continue
                callee = binary.function_at_entry(insn.c)
                if callee is not None:
                    callees[func.name].add(callee.name)
            elif insn.op is Op.CALLR:
                fact = transfers.get(index)
                if fact is not None and fact.kind is TransferKind.RESOLVED \
                        and fact.target is not None:
                    callee = binary.function_at_entry(fact.target)
                    if callee is not None:
                        callees[func.name].add(callee.name)
                else:
                    callees[func.name].update(all_names)

    result = {name: set(nums) for name, nums in direct.items()}
    changed = True
    while changed:
        changed = False
        for name in all_names:
            for callee_name in callees[name]:
                before = len(result[name])
                result[name] |= result[callee_name]
                if len(result[name]) != before:
                    changed = True
    return {name: frozenset(nums) for name, nums in result.items()}


# -- store classification -----------------------------------------------------


def _classify_store(insn_meta_stack: bool, addr: Optional[AbsVal]) -> StoreClass:
    if insn_meta_stack:
        return StoreClass.SPEC_LOCAL
    if addr is None:
        return StoreClass.UNKNOWN
    if addr.kind is ValueKind.STACK:
        return StoreClass.SPEC_LOCAL
    if range_within(addr, SPEC_HEAP_BASE, SPEC_HEAP_MAX):
        return StoreClass.SPEC_LOCAL
    if range_within(addr, DATA_BASE, _STACK_BASE):
        return StoreClass.MAY_ESCAPE
    return StoreClass.UNKNOWN


# -- the driver ---------------------------------------------------------------


def analyze_binary(
    binary: Binary,
    params: Optional[SpecHintParams] = None,
    map_all_addresses: bool = False,
) -> BinaryAnalysis:
    """Run the full static-analysis pipeline over one SpecVM binary.

    ``map_all_addresses`` mirrors the SpecHint tool ablation: the
    handling routine can then enter functions mid-body, which invalidates
    the entry-state assumptions every optimization rests on, so the
    returned :class:`ElisionPlan` is empty (the report is still useful).
    """
    if getattr(binary, "spec_meta", None) is not None:
        raise AnalysisError(
            f"{binary.name}: analyze the original binary, not the "
            f"transformed one (shadow code is generated, not analyzed)"
        )
    params = params or SpecHintParams()

    cfgs: Dict[str, CFG] = {}
    facts: Dict[str, FunctionFacts] = {}
    for func in binary.functions:
        cfg = build_cfg(binary, func)
        cfgs[func.name] = cfg
        facts[func.name] = analyze_function(binary, cfg)

    transfers = _classify_transfers(binary, facts)
    roots = spec_roots(binary)
    reachable = spec_reachability(binary, transfers, roots)
    syscalls = _syscall_reachability(binary, transfers)

    # Store classification over every store in every function.
    store_classes: Dict[int, StoreClass] = {}
    store_addr: Dict[int, Optional[AbsVal]] = {}
    for func in binary.functions:
        fn_facts = facts[func.name]
        for index in range(func.entry, func.end):
            insn = binary.text[index]
            if insn.op not in (Op.STORE, Op.STOREB):
                continue
            addr = fn_facts.store_addr.get(index)
            store_addr[index] = addr
            if insn.get_meta("stack"):
                store_classes[index] = StoreClass.SPEC_LOCAL
            else:
                store_classes[index] = _classify_store(False, addr)

    plan = _build_plan(
        binary, facts, transfers, reachable, store_classes, store_addr,
        map_all_addresses,
    )
    lint = _lint(binary, cfgs, transfers, reachable)
    baseline, optimized = _check_cycle_totals(binary, params, plan)

    summaries: List[FunctionSummary] = []
    for func in binary.functions:
        cfg = cfgs[func.name]
        live = live_out(binary, cfg)
        max_live = max((len(regs) for regs in live.values()), default=0)
        stores = sum(
            1 for i in range(func.entry, func.end)
            if binary.text[i].op in (Op.STORE, Op.STOREB)
        )
        fn_reachable = any(
            i in reachable for i in range(func.entry, func.end)
        )
        names = tuple(
            SYSCALL_NAMES.get(num, f"sys#{num}")
            for num in sorted(syscalls[func.name])
        )
        summaries.append(FunctionSummary(
            name=func.name,
            blocks=len(cfg.blocks),
            loops=len(cfg.loops),
            max_live_regs=max_live,
            stores=stores,
            spec_reachable=fn_reachable,
            syscalls=names,
        ))

    return BinaryAnalysis(
        binary=binary,
        params=params,
        cfgs=cfgs,
        facts=facts,
        store_classes=store_classes,
        transfers=transfers,
        spec_roots=roots,
        spec_reachable=reachable,
        syscalls_per_function=syscalls,
        elision_plan=plan,
        lint=lint,
        check_cycles_baseline=baseline,
        check_cycles_optimized=optimized,
        summaries=summaries,
    )


def _build_plan(
    binary: Binary,
    facts: Dict[str, FunctionFacts],
    transfers: Dict[int, TransferFact],
    reachable: FrozenSet[int],
    store_classes: Dict[int, StoreClass],
    store_addr: Dict[int, Optional[AbsVal]],
    map_all_addresses: bool,
) -> ElisionPlan:
    if map_all_addresses:
        # Garbage jumps can enter functions mid-body with arbitrary
        # register state: none of the per-function facts apply.
        return ElisionPlan()

    dead = frozenset(range(len(binary.text))) - reachable

    stack_proved: Set[int] = set()
    heap_candidates: Set[int] = set()
    heap_gate_ok = True
    for func in binary.functions:
        fn_facts = facts[func.name]
        for index in range(func.entry, func.end):
            insn = binary.text[index]
            if insn.op in (Op.LOAD, Op.LOADB, Op.STORE, Op.STOREB) \
                    and not insn.get_meta("stack") and index not in dead:
                is_store = insn.op in (Op.STORE, Op.STOREB)
                addr = (fn_facts.store_addr if is_store
                        else fn_facts.load_addr).get(index)
                if addr is not None and addr.kind is ValueKind.STACK:
                    stack_proved.add(index)
                elif is_store and addr is not None \
                        and range_within(addr, SPEC_HEAP_BASE, SPEC_HEAP_MAX):
                    heap_candidates.add(index)
        # Speculative read data is written through the COW map and can
        # create region copies: a read buffer that may overlap the spec
        # heap defeats the no-copies precondition below.
        for index, buf in fn_facts.read_buf.items():
            if index in reachable and not range_avoids(
                buf, SPEC_HEAP_BASE, SPEC_HEAP_MAX
            ):
                heap_gate_ok = False

    # Plain (unwrapped) spec-heap stores are only coherent with COW loads
    # if no COW copy of a spec-heap region can ever exist — which holds
    # exactly when every store still going through the COW map provably
    # avoids the spec heap.
    if heap_candidates:
        for index, cls in store_classes.items():
            if index in dead or index in heap_candidates:
                continue
            insn = binary.text[index]
            addr = store_addr.get(index)
            if insn.get_meta("stack") or (
                addr is not None and addr.kind is ValueKind.STACK
            ):
                continue  # stack segment: disjoint from the spec heap
            if addr is None or not range_avoids(
                addr, SPEC_HEAP_BASE, SPEC_HEAP_MAX
            ):
                heap_gate_ok = False
                break
    heap_stores = frozenset(heap_candidates) if heap_gate_ok else frozenset()

    resolved = {
        index: fact.target
        for index, fact in transfers.items()
        if fact.kind is TransferKind.RESOLVED and fact.target is not None
        and binary.text[index].op in (Op.JR, Op.CALLR)
    }
    return ElisionPlan(
        dead=dead,
        stack_proved=frozenset(stack_proved),
        heap_stores=heap_stores,
        resolved=resolved,
    )


def _lint(
    binary: Binary,
    cfgs: Dict[str, CFG],
    transfers: Dict[int, TransferFact],
    reachable: FrozenSet[int],
) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for index, fact in sorted(transfers.items()):
        if index not in reachable:
            continue
        if fact.kind is TransferKind.UNMAPPABLE:
            findings.append(LintFinding(
                "error", "unmappable-transfer", fact.function, index,
                f"speculation-reachable computed transfer can never be "
                f"mapped: {fact.detail}",
            ))
        elif fact.kind is TransferKind.TABLE_UNMAPPABLE:
            findings.append(LintFinding(
                "error", "unmappable-jump-table", fact.function, index,
                f"speculation parks at this switch: {fact.detail}",
            ))
        elif fact.kind is TransferKind.UNKNOWN:
            findings.append(LintFinding(
                "warning", "unresolved-transfer", fact.function, index,
                "computed transfer target unknown; the handling routine "
                "maps it at runtime (function entries only)",
            ))
    for func in binary.functions:
        for index in range(func.entry, func.end):
            insn = binary.text[index]
            if insn.op is Op.SYSCALL and index in reachable \
                    and insn.c not in SYSCALL_NAMES:
                findings.append(LintFinding(
                    "error", "unknown-syscall", func.name, index,
                    f"speculation-reachable syscall #{insn.c} has no "
                    f"runtime policy (would park as a side effect)",
                ))
        if cfgs[func.name].falls_off_end:
            findings.append(LintFinding(
                "warning", "falls-off-end", func.name, None,
                "a reachable block can fall through past the function "
                "end into the next function",
            ))
    order = {"error": 0, "warning": 1}
    findings.sort(key=lambda f: (order[f.severity], f.function,
                                 -1 if f.index is None else f.index))
    return findings


def _check_cycle_totals(
    binary: Binary, params: SpecHintParams, plan: ElisionPlan
) -> Tuple[int, int]:
    """(baseline, post-analysis) total COW check cycles in the shadow."""
    baseline = 0
    optimized = 0
    for func in binary.functions:
        costs = check_costs(params, func.name in binary.optimized_stdlib)
        for index in range(func.entry, func.end):
            insn = binary.text[index]
            if insn.op in (Op.LOAD, Op.LOADB, Op.STORE, Op.STOREB):
                if insn.get_meta("stack"):
                    continue
                cost = (costs.store if insn.op in (Op.STORE, Op.STOREB)
                        else costs.load)
                baseline += cost
                if not (index in plan.dead or index in plan.stack_proved
                        or index in plan.heap_stores):
                    optimized += cost
            elif insn.op is Op.CWORK:
                dilation = insn.b * costs.load + insn.c * costs.store
                baseline += dilation
                optimized += dilation
    return baseline, optimized
