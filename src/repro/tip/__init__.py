"""TIP: informed prefetching and caching manager.

Reimplementation of the manager the paper builds on (Patterson et al.,
SOSP'95), exposing the hint interface of the paper's Table 2:

* ``TIPIO_SEG`` — hint one or more (filename, offset, length) segments;
* ``TIPIO_FD_SEG`` — hint one or more (file descriptor, offset, length)
  segments from an open file;
* ``TIPIO_CANCEL_ALL`` — cancel all outstanding hints from the issuing
  process (the one call the authors added to TIP for this paper).

TIP performs cost-benefit prefetching: the benefit of prefetching a hinted
block is discounted by the issuing process's measured hint accuracy and by
the block's distance down the hint queue relative to the prefetch horizon;
the cost side protects hinted blocks near the horizon from eviction and
prefers evicting unhinted LRU blocks or hinted blocks far in the future.
"""

from repro.tip.accuracy import HintAccuracyTracker
from repro.tip.hints import HintSegment, Ioctl
from repro.tip.manager import TipManager

__all__ = ["HintAccuracyTracker", "HintSegment", "Ioctl", "TipManager"]
