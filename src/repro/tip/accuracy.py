"""Per-process hint accuracy estimation.

TIP "estimates the benefit of prefetching in response to a hint based on the
accuracy of previous hints from the application" (Section 2.1).  We track an
exponentially weighted moving accuracy per process: hints that a subsequent
read consumes count as accurate; hints that are cancelled (CANCEL_ALL) or
grow stale without ever matching a read count as inaccurate.
"""

from __future__ import annotations


class HintAccuracyTracker:
    """EWMA of hint outcomes for one process."""

    def __init__(self, alpha: float = 0.05, initial: float = 1.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value = initial
        #: Lifetime outcome counts (reported in hinting statistics).
        self.consumed = 0
        self.cancelled = 0
        self.stale = 0

    @property
    def value(self) -> float:
        """Current accuracy estimate in [0, 1]."""
        return self._value

    @property
    def inaccurate(self) -> int:
        """Total hints judged inaccurate so far."""
        return self.cancelled + self.stale

    def observe_consumed(self, n: int = 1) -> None:
        """A hinted block matched an actual read."""
        self.consumed += n
        for _ in range(n):
            self._value += self.alpha * (1.0 - self._value)

    def observe_cancelled(self, n: int = 1) -> None:
        """Hinted blocks were cancelled before being consumed."""
        self.cancelled += n
        for _ in range(n):
            self._value += self.alpha * (0.0 - self._value)

    def observe_stale(self, n: int = 1) -> None:
        """Hinted blocks aged out without ever matching a read."""
        self.stale += n
        for _ in range(n):
            self._value += self.alpha * (0.0 - self._value)

    def __repr__(self) -> str:
        return (
            f"HintAccuracyTracker(value={self._value:.3f}, consumed={self.consumed}, "
            f"cancelled={self.cancelled}, stale={self.stale})"
        )
