"""The TIP cache manager: hint queues, cost-benefit prefetching, eviction.

Behavioural summary (matching Sections 2.1 and 4 of the paper):

* hints arrive as segments (``TIPIO_SEG`` / ``TIPIO_FD_SEG``) and are
  expanded to per-block queue entries in disclosure order;
* TIP prefetches down each process's queue up to an *effective depth* —
  the prefetch horizon scaled by the process's measured hint accuracy —
  subject to a per-disk in-flight limit;
* an arriving read consumes matching queue entries; a read that matches no
  entry is unhinted and (per the paper) falls through to the sequential
  read-ahead policy;
* eviction prefers unhinted LRU blocks; hinted blocks may be evicted only
  when their hint is far beyond the prefetch horizon;
* ``TIPIO_CANCEL_ALL`` empties the issuing process's queue (prefetches
  already issued to the disks proceed and may become unused blocks);
* in ``ignore_hints`` mode all hint calls are accepted-and-dropped, making
  TIP behave exactly like the baseline UBC manager (Figure 4).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from repro.fs.cache import BlockCache, BlockKey, CacheEntry, EntryState, FetchOrigin
from repro.fs.filesystem import FileSystem, Inode
from repro.fs.manager import CacheManagerBase
from repro.fs.readahead import SequentialReadAhead
from repro.params import TipParams
from repro.sim import metrics
from repro.sim.stats import StatRegistry
from repro.storage.striping import StripedArray
from repro.tip.accuracy import HintAccuracyTracker
from repro.tip.hints import HintSegment
from repro.trace.lifecycle import HintLifecycle
from repro.trace.tracer import CAT_TIP, NULL_TRACER, TID_SYSTEM, Tracer


class _HintedBlock:
    """One block-granularity entry in a process's hint queue."""

    __slots__ = ("key", "seq", "skips")

    def __init__(self, key: BlockKey, seq: int) -> None:
        self.key = key
        self.seq = seq
        #: How many reads have scanned past this entry without matching it.
        self.skips = 0


class _ProcessHints:
    """Hint state for one process."""

    __slots__ = ("queue", "accuracy")

    def __init__(self, accuracy_alpha: float = 0.05) -> None:
        self.queue: Deque[_HintedBlock] = deque()
        self.accuracy = HintAccuracyTracker(alpha=accuracy_alpha)


class TipManager(CacheManagerBase):
    """Informed prefetching and caching manager."""

    #: How many queue entries an arriving read scans for a match before the
    #: call is declared unhinted.  Large enough to cover a batch of hints
    #: for a whole pass disclosed ahead of interleaved per-file hints.
    MATCH_WINDOW = 1024

    #: Entries skipped over this many times are declared stale and dropped.
    STALE_SKIP_LIMIT = 100_000

    def __init__(
        self,
        fs: FileSystem,
        array: StripedArray,
        cache: BlockCache,
        readahead: SequentialReadAhead,
        stats: StatRegistry,
        params: TipParams,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        super().__init__(fs, array, cache, readahead, stats)
        self.params = params
        self.tracer = tracer
        #: Always-on per-hint lifecycle ledger (disclosed -> terminal).
        #: Reads the array's clock; never schedules or advances anything.
        self.lifecycle = HintLifecycle(array.engine.clock, tracer=tracer,
                                       stats=stats)
        self._procs: Dict[int, _ProcessHints] = {}
        self._next_seq = 0
        #: Lifetime count of hints dropped by TIPIO_CANCEL_ALL (the restart
        #: protocol's drain check reads this to prove the cancel worked).
        self.cancelled_total = 0
        #: Blocks whose hint was already consumed: later reads of the same
        #: block (segments often span several short reads) still count as
        #: hinted without consuming fresh queue entries.
        self._consumed_blocks: Dict[BlockKey, int] = {}
        #: Keys currently being prefetched because of a hint, mapped to the
        #: disk servicing them (enforces the per-disk in-flight limit).
        self._inflight_hint_fetch: Dict[BlockKey, int] = {}
        self._inflight_per_disk: Dict[int, int] = {}
        #: Min hint seq per key across all queues, for eviction decisions.
        self._hinted_seqs: Dict[BlockKey, List[int]] = {}

    # -- hint intake ----------------------------------------------------------

    def _proc(self, pid: int) -> _ProcessHints:
        state = self._procs.get(pid)
        if state is None:
            state = _ProcessHints()
            self._procs[pid] = state
        return state

    def hint_segments(self, pid: int, segments: Sequence[HintSegment]) -> int:
        """Accept hint segments (TIPIO_SEG / TIPIO_FD_SEG)."""
        self.stats.counter(metrics.TIP_HINT_CALLS).add()
        if self.params.ignore_hints:
            self.stats.counter(metrics.TIP_HINTS_IGNORED).add(len(segments))
            return 0
        state = self._proc(pid)
        accepted = 0
        for segment in segments:
            for key in segment.blocks():
                self._next_seq += 1
                entry = _HintedBlock(key, self._next_seq)
                state.queue.append(entry)
                self._hinted_seqs.setdefault(key, []).append(entry.seq)
                self.lifecycle.disclosed(entry.seq, key, pid)
                accepted += 1
        self.stats.counter(metrics.TIP_HINTED_BLOCKS).add(accepted)
        if accepted:
            self._schedule_prefetches(pid)
        return accepted

    def cancel_all(self, pid: int) -> int:
        """TIPIO_CANCEL_ALL: drop every outstanding hint from ``pid``."""
        self.stats.counter(metrics.TIP_CANCEL_CALLS).add()
        state = self._procs.get(pid)
        if state is None or not state.queue:
            return 0
        cancelled = len(state.queue)
        for entry in state.queue:
            self._forget_seq(entry.key, entry.seq)
            self.lifecycle.cancelled(entry.seq, pid)
        state.queue.clear()
        state.accuracy.observe_cancelled(cancelled)
        self.cancelled_total += cancelled
        self.stats.counter(metrics.TIP_HINTS_CANCELLED).add(cancelled)
        if self.tracer.enabled:
            self.tracer.instant(CAT_TIP, "cancel_all", tid=TID_SYSTEM,
                                pid=pid, cancelled=cancelled)
        # Post-condition of TIPIO_CANCEL_ALL: the queue is drained.  The
        # restart protocol restarts speculation on the strength of this —
        # a leaked hint would let a cancelled prediction keep prefetching.
        assert not state.queue, f"cancel_all leaked {len(state.queue)} hints"
        self.stats.counter(metrics.TIP_CANCEL_DRAINED).add()
        return cancelled

    # -- read-path matching -----------------------------------------------------

    def consume_hints(
        self,
        pid: int,
        inode: Inode,
        first_block: int,
        last_block: int,
        offset: int,
        length: int,
    ) -> bool:
        """Match a read call against the process's hint queue.

        Returns True (the call was hinted) when every block of the call
        matches a queue entry within the scan window.
        """
        if self.params.ignore_hints:
            return False
        state = self._procs.get(pid)
        if state is None:
            return False

        matched_all = True
        for file_block in range(first_block, last_block + 1):
            if not self._consume_one(state, (inode.ino, file_block), pid):
                matched_all = False
        if matched_all:
            self.stats.counter(metrics.TIP_HINTED_READ_CALLS).add()
            self.stats.counter(metrics.TIP_HINTED_READ_BYTES).add(length)
        self._drop_stale(state, pid)
        return matched_all

    def _consume_one(self, state: _ProcessHints, key: BlockKey, pid: int) -> bool:
        queue = state.queue
        window = min(self.MATCH_WINDOW, len(queue))
        for i in range(window):
            entry = queue[i]
            if entry.key == key:
                del queue[i]
                self._forget_seq(entry.key, entry.seq)
                state.accuracy.observe_consumed()
                self.stats.counter(metrics.TIP_HINTS_CONSUMED).add()
                self.lifecycle.consumed(entry.seq, pid)
                self._remember_consumed(key)
                return True
            entry.skips += 1
        if key in self._consumed_blocks:
            # A previous read of this block already consumed the hint
            # entry; the segment still covers this read.
            return True
        return False

    def _remember_consumed(self, key: BlockKey) -> None:
        self._next_seq += 1
        self._consumed_blocks[key] = self._next_seq
        if len(self._consumed_blocks) > 4096:
            # Bound memory: forget the oldest half.
            ordered = sorted(self._consumed_blocks.items(), key=lambda kv: kv[1])
            for old_key, _ in ordered[: len(ordered) // 2]:
                del self._consumed_blocks[old_key]

    def _drop_stale(self, state: _ProcessHints, pid: int) -> None:
        queue = state.queue
        while queue and queue[0].skips > self.STALE_SKIP_LIMIT:
            entry = queue.popleft()
            self._forget_seq(entry.key, entry.seq)
            state.accuracy.observe_stale()
            self.stats.counter(metrics.TIP_HINTS_STALE_DROPPED).add()
            self.lifecycle.wasted(entry.seq, pid, "stale")

    def _forget_seq(self, key: BlockKey, seq: int) -> None:
        seqs = self._hinted_seqs.get(key)
        if seqs is None:
            return
        try:
            seqs.remove(seq)
        except ValueError:
            return
        if not seqs:
            del self._hinted_seqs[key]

    # -- prefetch scheduling ------------------------------------------------------

    def effective_depth(self, pid: int) -> int:
        """Prefetch depth for this process: horizon scaled by accuracy."""
        state = self._procs.get(pid)
        if state is None:
            return 0
        accuracy = state.accuracy.value
        if accuracy >= self.params.accuracy_discount_threshold:
            return self.params.prefetch_horizon
        factor = max(0.1, accuracy)
        return max(4, int(self.params.prefetch_horizon * factor))

    def _schedule_prefetches(self, pid: int) -> None:
        state = self._procs.get(pid)
        if state is None or not state.queue:
            return
        depth = self.effective_depth(pid)
        limit = self.params.max_inflight_per_disk
        degraded = self.array.degraded
        if degraded:
            # Speculation-aware load shedding: while a dead disk is being
            # reconstructed, demand and rebuild traffic own the spindles.
            # Shrink the hint horizon and clamp the per-disk appetite;
            # hints stay queued, so prefetching catches back up on resume.
            depth = max(1, int(depth * self.params.degraded_horizon_factor))
            cap = self.params.degraded_max_inflight_per_disk
            if cap > 0:
                limit = cap if limit <= 0 else min(limit, cap)
        scanned = 0
        for entry in state.queue:
            if scanned >= depth:
                if degraded:
                    self.stats.counter(metrics.TIP_PREFETCHES_SHED_DEGRADED).add()
                break
            scanned += 1
            key = entry.key
            if self.cache.get(key) is not None:
                continue
            inode = self.fs.inode(key[0])
            disk = self.array.disk_of(inode.lbn_of_block(key[1]))
            if limit > 0 and self._inflight_per_disk.get(disk, 0) >= limit:
                if degraded:
                    self.stats.counter(metrics.TIP_PREFETCHES_SHED_DEGRADED).add()
                continue
            if self.start_prefetch(inode, key[1], FetchOrigin.HINT):
                self._inflight_hint_fetch[key] = disk
                self._inflight_per_disk[disk] = self._inflight_per_disk.get(disk, 0) + 1
                self.stats.counter(metrics.TIP_PREFETCHES_ISSUED).add()
                self.lifecycle.prefetch_issued(key)

    def on_block_arrived(self, key: BlockKey) -> None:
        self.lifecycle.filled(key)
        disk = self._inflight_hint_fetch.pop(key, None)
        if disk is not None:
            self._inflight_per_disk[disk] -= 1
        for pid in self._procs:
            self._schedule_prefetches(pid)

    def on_prefetch_dropped(self, key: BlockKey) -> None:
        """A hinted prefetch failed terminally: release its in-flight slot
        so the per-disk limit does not leak, and keep prefetching others."""
        disk = self._inflight_hint_fetch.pop(key, None)
        if disk is not None:
            self._inflight_per_disk[disk] -= 1
            self.stats.counter(metrics.TIP_PREFETCHES_DROPPED).add()
            self.lifecycle.prefetch_dropped(key)
        for pid in self._procs:
            self._schedule_prefetches(pid)

    def after_read(self, pid: int) -> None:
        self._schedule_prefetches(pid)

    # -- eviction policy -------------------------------------------------------------

    def find_victim(self) -> Optional[CacheEntry]:
        """Unhinted LRU block if any; else a hinted block far beyond the
        prefetch horizon (largest hint distance first); else None."""
        best_hinted: Optional[CacheEntry] = None
        best_distance = -1
        front_seq = self._front_seq()
        for entry in self.cache.entries():
            if entry.state is not EntryState.VALID or entry.pinned > 0:
                continue
            seqs = self._hinted_seqs.get(entry.key)
            if not seqs:
                return entry  # unhinted LRU block: cheapest eviction
            distance = min(seqs) - front_seq
            if distance > best_distance:
                best_distance = distance
                best_hinted = entry
        if best_hinted is not None and best_distance > self.params.prefetch_horizon:
            self.stats.counter(metrics.TIP_HINTED_EVICTIONS).add()
            return best_hinted
        return None

    def _front_seq(self) -> int:
        fronts = [
            state.queue[0].seq for state in self._procs.values() if state.queue
        ]
        return min(fronts) if fronts else self._next_seq

    # -- reporting -----------------------------------------------------------------

    def accuracy_of(self, pid: int) -> HintAccuracyTracker:
        """The accuracy tracker for ``pid`` (creating it if needed)."""
        return self._proc(pid).accuracy

    def outstanding_hints(self, pid: int) -> int:
        state = self._procs.get(pid)
        return len(state.queue) if state is not None else 0

    def finalize(self) -> None:
        """Unconsumed hints at end of run count as inaccurate."""
        for pid, state in self._procs.items():
            leftover = len(state.queue)
            if leftover:
                for entry in state.queue:
                    self._forget_seq(entry.key, entry.seq)
                    self.lifecycle.wasted(entry.seq, pid, "unconsumed")
                state.queue.clear()
                state.accuracy.observe_stale(leftover)
                self.stats.counter(metrics.TIP_HINTS_UNCONSUMED_AT_END).add(leftover)
        super().finalize()
