"""Hint interface types (the paper's Table 2)."""

from __future__ import annotations

import enum
from typing import List, Tuple

from repro.fs.filesystem import Inode
from repro.params import BLOCK_SIZE


class Ioctl(enum.Enum):
    """The portion of TIP's ioctl interface the paper uses."""

    #: Hint one or more segments from a named file.
    TIPIO_SEG = "TIPIO_SEG"
    #: Hint one or more segments from an open file.
    TIPIO_FD_SEG = "TIPIO_FD_SEG"
    #: Cancel all outstanding hints from the issuing process.
    TIPIO_CANCEL_ALL = "TIPIO_CANCEL_ALL"


class HintSegment:
    """One hinted byte range of one file, resolved to an inode.

    TIP expands the segment to the file blocks it covers; matching against
    subsequent reads and prefetch scheduling both happen at block
    granularity.
    """

    __slots__ = ("inode", "offset", "length", "pid", "via")

    def __init__(self, inode: Inode, offset: int, length: int, pid: int, via: Ioctl) -> None:
        self.inode = inode
        self.offset = offset
        self.length = length
        self.pid = pid
        self.via = via

    def block_range(self) -> Tuple[int, int]:
        """(first, last) file block covered, clamped to the file.

        Returns ``(0, -1)`` for an empty/out-of-file segment.
        """
        if self.length <= 0 or self.offset >= self.inode.size:
            return (0, -1)
        end = min(self.inode.size, self.offset + self.length)
        return (self.offset // BLOCK_SIZE, (end - 1) // BLOCK_SIZE)

    def blocks(self) -> List[Tuple[int, int]]:
        """List of ``(ino, file_block)`` keys the segment covers."""
        first, last = self.block_range()
        return [(self.inode.ino, b) for b in range(first, last + 1)]

    def __repr__(self) -> str:
        return (
            f"HintSegment({self.inode.path!r}, off={self.offset}, "
            f"len={self.length}, pid={self.pid}, via={self.via.value})"
        )
