"""Nearest-past-runs similarity over the registry.

Scores past runs against a target by configuration identity (app,
variant, chaos profile, parameter digest) plus the distance between
stall-breakdown feature vectors — "which previous runs behaved like this
one", not merely "which were configured like it".  The AutoTuner and the
``repro runs similar`` command both sit on this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.registry.fingerprint import feature_vector
from repro.registry.record import LEAF_KINDS, RunRecord
from repro.registry.store import RunRegistry

#: Score weights; identity dominates but behavior breaks ties.
_W_APP = 0.30
_W_VARIANT = 0.15
_W_CHAOS = 0.15
_W_PARAMS = 0.10
_W_FEATURES = 0.30


@dataclass
class SimilarRun:
    """One scored neighbor: the record, its score in [0, 1], and why."""

    record: RunRecord
    score: float
    why: Tuple[str, ...]

    def to_jsonable(self) -> dict:
        return {
            "run_id": self.record.run_id,
            "score": round(self.score, 4),
            "why": list(self.why),
        }


def score_pair(target: RunRecord, candidate: RunRecord) -> SimilarRun:
    """Score one candidate against the target."""
    score = 0.0
    why: List[str] = []
    if candidate.app == target.app:
        score += _W_APP
        why.append(f"same app ({target.app})")
    if candidate.variant == target.variant:
        score += _W_VARIANT
        why.append(f"same variant ({target.variant})")
    if candidate.chaos_profile == target.chaos_profile:
        score += _W_CHAOS
        why.append(f"same chaos profile ({target.chaos_profile})")
    if candidate.params_digest and candidate.params_digest == target.params_digest:
        score += _W_PARAMS
        why.append("same parameter digest")
    target_features = feature_vector(target.result or {})
    candidate_features = feature_vector(candidate.result or {})
    distance = sum(
        abs(a - b) for a, b in zip(target_features, candidate_features)
    ) / max(1, len(target_features))
    closeness = max(0.0, 1.0 - distance)
    score += _W_FEATURES * closeness
    why.append(f"stall-profile distance {distance:.3f}")
    return SimilarRun(record=candidate, score=score, why=tuple(why))


def similar_runs(
    registry: RunRegistry, target: RunRecord, limit: int = 5
) -> List[SimilarRun]:
    """The ``limit`` most similar leaf runs to ``target`` (excluded)."""
    scored = [
        score_pair(target, candidate)
        for candidate in registry.records()
        if candidate.run_id != target.run_id
        and candidate.kind in LEAF_KINDS
        and candidate.result is not None
    ]
    scored.sort(key=lambda s: (-s.score, s.record.run_id))
    return scored[:limit]
