"""Closed-loop speculation tuning from the run registry.

The AutoTuner closes the observability loop: query the registry for past
runs similar to the one about to start, take the speculation tunables
(throttle + watchdog knobs, :data:`TUNABLE_SPEC_PARAMS`) from the best
of them, and stamp *provenance* — which runs the values came from and
why — into the new run's config.  The provenance record alone is enough
to rebuild the tuned configuration, so a tuned run replays
byte-identically from its registry record with no tuner (or registry)
present.

Ranking is deliberately boring and deterministic: among healthy similar
runs (no isolation violations, watchdog never tripped), lowest elapsed
workload cycles wins, with the content-addressed run id as the tiebreak.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import RegistryError
from repro.registry.fingerprint import TUNABLE_SPEC_PARAMS, code_version
from repro.registry.record import LEAF_KINDS, RunRecord
from repro.registry.store import RunRegistry

PROVENANCE_VERSION = 1


@dataclass(frozen=True)
class TuningProposal:
    """Parameters the tuner picked, plus where they came from."""

    spec_params: Mapping[str, object]
    source_run_ids: Tuple[str, ...]
    basis: str
    app: str
    chaos_profile: str

    def to_provenance(self) -> Dict[str, object]:
        return {
            "provenance_version": PROVENANCE_VERSION,
            "app": self.app,
            "chaos_profile": self.chaos_profile,
            "spec_params": dict(self.spec_params),
            "source_run_ids": list(self.source_run_ids),
            "basis": self.basis,
            "code_version": code_version(),
        }


def validate_spec_params(params: Mapping[str, object]) -> Dict[str, object]:
    """Reject provenance naming tunables this code does not know."""
    unknown = sorted(set(params) - set(TUNABLE_SPEC_PARAMS))
    if unknown:
        raise RegistryError(
            f"tuning provenance names unknown speculation parameter(s): "
            f"{', '.join(unknown)}; this code tunes {TUNABLE_SPEC_PARAMS}"
        )
    return dict(params)


def _healthy(record: RunRecord) -> bool:
    payload = record.result or {}
    if payload.get("isolation_violations"):
        return False
    if payload.get("watchdog_tripped"):
        return False
    return True


def _workload_cycles(record: RunRecord) -> float:
    values = record.metric_values()
    return values["elapsed_cycles"] if values else float("inf")


class AutoTuner:
    """Proposes speculation tunables from similar past runs."""

    def __init__(self, registry: RunRegistry) -> None:
        self.registry = registry

    def candidates(
        self, app: str, chaos_profile: str = "none"
    ) -> List[RunRecord]:
        """Healthy past speculating runs of this app, best-match first.

        Runs under the same chaos profile rank ahead of fault-free runs,
        which rank ahead of everything else; within a tier, fastest
        workload first.
        """
        pool = [
            record
            for record in self.registry.query(app=app, variant="speculating")
            if record.kind in LEAF_KINDS
            and record.result is not None
            and (record.result or {}).get("spec_params")
            and _healthy(record)
        ]

        def tier(record: RunRecord) -> int:
            if record.chaos_profile == chaos_profile:
                return 0
            if record.chaos_profile == "none":
                return 1
            return 2

        pool.sort(key=lambda r: (tier(r), _workload_cycles(r), r.run_id))
        return pool

    def propose(
        self, app: str, chaos_profile: str = "none"
    ) -> Optional[TuningProposal]:
        """The tuner's pick, or None when the registry has no basis."""
        pool = self.candidates(app, chaos_profile)
        if not pool:
            return None
        best = pool[0]
        spec_params = validate_spec_params(
            {
                name: value
                for name, value in (best.result or {}).get("spec_params", {}).items()  # type: ignore[union-attr]
                if name in TUNABLE_SPEC_PARAMS
            }
        )
        # Credit every considered run that ran with the winning values.
        sources = tuple(
            record.run_id
            for record in pool
            if (record.result or {}).get("spec_params") == (best.result or {}).get("spec_params")
        )[:5]
        tier_name = (
            f"chaos profile {chaos_profile!r}"
            if best.chaos_profile == chaos_profile
            else f"fallback from chaos profile {best.chaos_profile!r}"
        )
        basis = (
            f"lowest elapsed workload cycles among {len(pool)} healthy "
            f"speculating {app} run(s), {tier_name}"
        )
        return TuningProposal(
            spec_params=spec_params,
            source_run_ids=sources,
            basis=basis,
            app=app,
            chaos_profile=chaos_profile,
        )


def apply_spec_params(cfg: object, spec_params: Mapping[str, object],
                      provenance: Mapping[str, object]) -> object:
    """Return ``cfg`` with tuned spechint knobs and provenance stamped.

    Duck-typed over :class:`~repro.harness.config.ExperimentConfig`
    (this package must not import the harness): anything with
    ``system``/``with_`` works.
    """
    params = validate_spec_params(spec_params)
    system = cfg.system  # type: ignore[attr-defined]
    spechint = dataclasses.replace(system.spechint, **params)
    return cfg.with_(  # type: ignore[attr-defined]
        system=system.replace(spechint=spechint),
        tuning_provenance=dict(provenance),
    )


def apply_proposal(cfg: object, proposal: TuningProposal) -> object:
    """Apply a fresh proposal to a config."""
    return apply_spec_params(cfg, proposal.spec_params, proposal.to_provenance())


def apply_provenance(cfg: object, provenance: Mapping[str, object]) -> object:
    """Rebuild a tuned config from a recorded provenance dict (replay).

    Applying the provenance recorded on a tuned run to the same base
    config reproduces that run's configuration exactly — the replay path
    the acceptance test drives.
    """
    version = provenance.get("provenance_version")
    if version != PROVENANCE_VERSION:
        raise RegistryError(
            f"tuning provenance version {version!r} not supported "
            f"(this code reads version {PROVENANCE_VERSION})"
        )
    spec_params = provenance.get("spec_params")
    if not isinstance(spec_params, Mapping):
        raise RegistryError("tuning provenance has no spec_params mapping")
    return apply_spec_params(cfg, spec_params, provenance)
