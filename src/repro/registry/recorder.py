"""Turns harness cell payloads into registry records.

The harness ships cell outcomes between processes as plain jsonable
payloads (``RunResult.to_jsonable()`` dicts, oracle-cell dicts, fuzz-cell
dicts).  This module is the one place that knows how to map each payload
shape onto :class:`~repro.registry.record.RunRecord` values — it runs
identically inside supervised worker processes (appending to per-worker
sidecar ledgers) and in the serial path (recording directly), which is
what makes a serial registry and a ``--jobs N`` registry byte-identical.

Classification is structural, mirroring how the checkpoints store the
same payloads without a type tag:

* ``{"case": ..., "violations": ...}`` — a fuzz cell;
* ``{"passed": ..., "profile": ...}`` — a differential-oracle cell
  (with optional ``original``/``speculating`` RunResult sub-payloads);
* ``{"app": ..., "cycles": ...}`` — a plain RunResult.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.errors import RegistryError
from repro.registry.fingerprint import chaos_key, code_version, plan_key
from repro.registry.record import RunRecord
from repro.registry.store import JsonlStore, RunRegistry

Payload = Mapping[str, object]

#: Variant label for records that compare variants rather than being one.
DIFFERENTIAL = "differential"


def _ctx_value(ctx: Optional[Mapping[str, object]], key: str, default: object):
    if ctx is None:
        return default
    return ctx.get(key, default)


def _base_kwargs(ctx: Optional[Mapping[str, object]]) -> Dict[str, object]:
    return {
        "code_version": str(
            _ctx_value(ctx, "code_version", None) or code_version()
        ),
        "parent_id": _ctx_value(ctx, "parent_id", None),
    }


def _run_record(
    key: Optional[str], payload: Payload, ctx: Optional[Mapping[str, object]]
) -> RunRecord:
    return RunRecord(
        app=str(payload.get("app", "")),
        variant=str(payload.get("variant", "")),
        kind=str(_ctx_value(ctx, "kind", "run")),
        params_digest=str(payload.get("params_digest", "")),
        seed=int(payload.get("seed", 0)),  # type: ignore[arg-type]
        chaos_profile=chaos_key(payload.get("fault_profile")),  # type: ignore[arg-type]
        cell_key=key,
        result=dict(payload),
        trace_summary=_ctx_value(ctx, "trace_summary", None),  # type: ignore[arg-type]
        tuning=payload.get("tuning_provenance"),  # type: ignore[arg-type]
        **_base_kwargs(ctx),  # type: ignore[arg-type]
    )


def _fuzz_records(
    key: Optional[str], payload: Payload, ctx: Optional[Mapping[str, object]]
) -> List[RunRecord]:
    case = payload.get("case")
    if not isinstance(case, dict):
        raise RegistryError(
            f"fuzz payload for cell {key!r} has no case object"
        )
    plan = case.get("plan")
    violations = list(payload.get("violations") or [])  # type: ignore[arg-type]
    return [RunRecord(
        app=str(case.get("app", "")),
        variant=DIFFERENTIAL,
        kind="fuzz-case",
        params_digest=str(payload.get("params_digest", "")),
        seed=int(payload.get("seed", 0)),  # type: ignore[arg-type]
        chaos_profile=(
            plan_key(plan) if isinstance(plan, dict) else "none"
        ),
        cell_key=key,
        result=dict(payload),
        verdicts=violations,
        **_base_kwargs(ctx),  # type: ignore[arg-type]
    )]


def _oracle_records(
    key: Optional[str], payload: Payload, ctx: Optional[Mapping[str, object]]
) -> List[RunRecord]:
    variants = {
        name: payload[name]
        for name in ("original", "speculating")
        if isinstance(payload.get(name), dict)
    }
    # Identity keys come from a variant payload when present (they agree:
    # params_digest excludes the variant axis), else stay empty.
    exemplar: Mapping[str, object] = (
        variants.get("speculating") or variants.get("original") or {}  # type: ignore[assignment]
    )
    passed = bool(payload.get("passed", False))
    verdicts: List[Dict[str, object]] = []
    if not passed:
        verdicts.append({
            "monitor": "differential-oracle",
            "detail": str(payload.get("detail", "")),
        })
    summary = {
        name: value for name, value in payload.items()
        if name not in ("original", "speculating")
    }
    cell = RunRecord(
        app=str(payload.get("app", "")),
        variant=DIFFERENTIAL,
        kind="oracle-cell",
        params_digest=str(exemplar.get("params_digest", "")),
        seed=int(exemplar.get("seed", 0)),  # type: ignore[arg-type]
        chaos_profile=chaos_key(payload.get("profile")),  # type: ignore[arg-type]
        cell_key=key,
        result=summary,
        verdicts=verdicts,
        **_base_kwargs(ctx),  # type: ignore[arg-type]
    )
    records = [cell]
    for name, sub in sorted(variants.items()):
        child_ctx = {
            "kind": "oracle-variant",
            "parent_id": cell.run_id,
            "code_version": cell.code_version,
        }
        records.append(_run_record(
            f"{key}/{name}" if key else name, sub, child_ctx  # type: ignore[arg-type]
        ))
    return records


def records_for_payload(
    key: Optional[str],
    payload: Payload,
    ctx: Optional[Mapping[str, object]] = None,
) -> List[RunRecord]:
    """Map one harness cell payload onto its registry records."""
    if "case" in payload and "violations" in payload:
        return _fuzz_records(key, payload, ctx)
    if "passed" in payload and "profile" in payload:
        return _oracle_records(key, payload, ctx)
    if "app" in payload and "cycles" in payload:
        return [_run_record(key, payload, ctx)]
    raise RegistryError(
        f"cell {key!r} payload matches no known shape (keys: "
        f"{sorted(payload)[:8]}); cannot derive registry records"
    )


def record_payload(
    registry: RunRegistry,
    key: Optional[str],
    payload: Payload,
    ctx: Optional[Mapping[str, object]] = None,
    durable: bool = True,
) -> List[str]:
    """Record a payload's records directly (serial path); returns ids.

    ``durable=False`` is the bulk path: callers recording a whole sweep
    must compact afterwards, which persists the batch atomically.
    """
    return [
        registry.record(r, durable=durable)
        for r in records_for_payload(key, payload, ctx)
    ]


def append_payload_records(
    sidecar_path: str,
    key: Optional[str],
    payload: Payload,
    ctx: Optional[Mapping[str, object]] = None,
) -> None:
    """Append a payload's records to a worker sidecar ledger.

    Runs inside supervised worker processes *before* the result is
    reported, mirroring the partial-checkpoint ordering: a cell whose
    record reached a sidecar survives the parent dying, and the parent
    re-records every delivered payload anyway (idempotently), so a torn
    sidecar never loses data.
    """
    store = JsonlStore(sidecar_path)
    for record in records_for_payload(key, payload, ctx):
        store.put(record.to_jsonable())
