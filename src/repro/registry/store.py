"""Crash-safe persistent stores for the run registry.

Two interchangeable backends behind one tiny interface:

* :class:`SqliteStore` — the default (``.db``/``.sqlite`` paths, and any
  extension that is not ``.jsonl``).  One table keyed by ``run_id`` with
  indexed identity columns for queries; SQLite's own journal provides
  crash atomicity.
* :class:`JsonlStore` — an append-only ledger of one canonical JSON line
  per record (``.jsonl`` paths), for environments without ``sqlite3``
  and for tests that assert byte-identity of whole registries.  Appends
  are fsynced; a torn final line (power-loss mid-append) is ignored on
  load and healed by the next :meth:`~JsonlStore.compact`.

Both stores deduplicate by ``run_id``: recording the same content twice
is a no-op, which is what makes parallel-worker sidecar merges and
resume-replays idempotent.

No imports from :mod:`repro.harness` — the harness imports this package
while its own package init is still running, so the registry must stay a
leaf (stdlib + ``repro.errors`` + sibling registry modules only).
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional, Tuple

from repro.errors import RegistryError, UnknownRunError
from repro.registry.fingerprint import canonical_json
from repro.registry.record import GROUP_KINDS, RunRecord, group_key

try:  # pragma: no cover - exercised only where sqlite3 is absent
    import sqlite3
except ImportError:  # pragma: no cover
    sqlite3 = None  # type: ignore[assignment]

_SQLITE_MAGIC = b"SQLite format 3"


def _fsync_directory(directory: str) -> None:
    """Best-effort directory fsync so a rename/append survives a kill."""
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(directory or ".", flags)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write_text(path: str, text: str) -> None:
    """Atomic, durable whole-file replace (same discipline as checkpoints)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".registry-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        with _suppress_oserror():
            os.unlink(tmp)
        raise
    _fsync_directory(directory)


class _suppress_oserror:
    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return exc_type is not None and issubclass(exc_type, OSError)  # type: ignore[arg-type]


class JsonlStore:
    """Append-only JSONL ledger, one canonical record line per run."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._records: Dict[str, Dict[str, object]] = {}
        self._load()

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            raw = handle.read()
        if raw.startswith(_SQLITE_MAGIC):
            raise RegistryError(
                f"registry {self.path!r} is a SQLite database but was opened "
                "as JSONL (is sqlite3 missing from this interpreter?)"
            )
        lines = raw.decode("utf-8", errors="replace").splitlines()
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError:
                if index == len(lines) - 1:
                    # Torn final append (crash mid-write): ignore; the next
                    # compact() rewrites the file without it.
                    continue
                raise RegistryError(
                    f"registry {self.path!r} line {index + 1} is not JSON "
                    "(corrupt ledger; only the *final* line may be torn)"
                )
            run_id = str(data.get("run_id", ""))
            if run_id:
                self._records[run_id] = data

    def put(self, data: Dict[str, object], durable: bool = True) -> bool:
        """Add a record; returns False on content-addressed dedup.

        With ``durable=False`` the record lands in memory only and is
        persisted by the next :meth:`compact` (one atomic rename instead
        of one fsync per record) — the bulk path for parents merging a
        finished sweep, whose payloads already survive in the worker
        sidecars and the checkpoint.
        """
        run_id = str(data["run_id"])
        if run_id in self._records:
            return False
        self._records[run_id] = data
        if durable:
            line = canonical_json(data) + "\n"
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
        return True

    def get(self, run_id: str) -> Optional[Dict[str, object]]:
        return self._records.get(run_id)

    def ids(self) -> List[str]:
        return sorted(self._records)

    def all(self) -> List[Dict[str, object]]:
        return [self._records[run_id] for run_id in self.ids()]

    def delete(self, run_id: str) -> bool:
        if run_id not in self._records:
            return False
        del self._records[run_id]
        self.compact()
        return True

    def compact(self) -> None:
        """Rewrite the ledger as one canonical line per record, sorted.

        Sorting by content-addressed ``run_id`` is what erases insertion
        -order noise: a serial sweep and a parallel sweep arrive at the
        same set of records in different orders, and compaction folds
        both into identical bytes.
        """
        text = "".join(
            canonical_json(self._records[run_id]) + "\n" for run_id in self.ids()
        )
        _atomic_write_text(self.path, text)

    def close(self) -> None:
        return None


class SqliteStore:
    """SQLite-backed store: one ``runs`` table plus identity indexes."""

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS runs (
        run_id TEXT PRIMARY KEY,
        app TEXT NOT NULL,
        variant TEXT NOT NULL,
        kind TEXT NOT NULL,
        params_digest TEXT NOT NULL,
        seed INTEGER NOT NULL,
        chaos_profile TEXT NOT NULL,
        code_version TEXT NOT NULL,
        parent_id TEXT,
        record TEXT NOT NULL
    );
    CREATE INDEX IF NOT EXISTS runs_identity
        ON runs (app, variant, kind, chaos_profile, params_digest);
    CREATE INDEX IF NOT EXISTS runs_parent ON runs (parent_id);
    """

    def __init__(self, path: str) -> None:
        if sqlite3 is None:  # pragma: no cover
            raise RegistryError(
                "sqlite3 is unavailable in this interpreter; use a .jsonl "
                "registry path for the append-log backend"
            )
        self.path = path
        try:
            self._conn = sqlite3.connect(path)
            self._conn.executescript(self._SCHEMA)
            self._conn.commit()
        except sqlite3.DatabaseError as exc:
            raise RegistryError(
                f"registry {path!r} is not a readable SQLite database: {exc}"
            ) from exc

    def put(self, data: Dict[str, object], durable: bool = True) -> bool:
        cursor = self._conn.execute(
            "INSERT OR IGNORE INTO runs (run_id, app, variant, kind, "
            "params_digest, seed, chaos_profile, code_version, parent_id, "
            "record) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                data["run_id"],
                data.get("app", ""),
                data.get("variant", ""),
                data.get("kind", "run"),
                data.get("params_digest", ""),
                data.get("seed", 0),
                data.get("chaos_profile", "none"),
                data.get("code_version", ""),
                data.get("parent_id"),
                canonical_json(data),
            ),
        )
        if durable:
            self._conn.commit()
        return cursor.rowcount > 0

    def get(self, run_id: str) -> Optional[Dict[str, object]]:
        row = self._conn.execute(
            "SELECT record FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        return json.loads(row[0]) if row else None

    def ids(self) -> List[str]:
        rows = self._conn.execute("SELECT run_id FROM runs ORDER BY run_id")
        return [row[0] for row in rows]

    def all(self) -> List[Dict[str, object]]:
        rows = self._conn.execute("SELECT record FROM runs ORDER BY run_id")
        return [json.loads(row[0]) for row in rows]

    def delete(self, run_id: str) -> bool:
        cursor = self._conn.execute(
            "DELETE FROM runs WHERE run_id = ?", (run_id,)
        )
        self._conn.commit()
        return cursor.rowcount > 0

    def compact(self) -> None:
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()


def open_store(path: str):
    """Pick a backend by extension: ``.jsonl`` → append log, else SQLite.

    Falls back to the JSONL backend when ``sqlite3`` is missing (the
    ledger then lives at the same path in JSONL form; an existing SQLite
    file in that situation raises instead of being misread).
    """
    if path.endswith(".jsonl") or sqlite3 is None:
        return JsonlStore(path)
    return SqliteStore(path)


class RunRegistry:
    """Facade over a store: typed records, queries, lineage, merge, gc."""

    def __init__(self, store) -> None:
        self.store = store

    @classmethod
    def open(cls, path: str) -> "RunRegistry":
        return cls(open_store(path))

    @property
    def path(self) -> str:
        return self.store.path

    def close(self) -> None:
        self.store.close()

    # -- writing -----------------------------------------------------------

    def record(self, record: RunRecord, durable: bool = True) -> str:
        """Store a record (idempotent); returns its run id.

        ``durable=False`` defers persistence to the next :meth:`compact`
        — the bulk path (see :meth:`JsonlStore.put`).
        """
        self.store.put(record.to_jsonable(), durable=durable)
        return record.run_id

    def record_jsonable(self, data: Dict[str, object]) -> str:
        """Store a serialized record after validating it round-trips."""
        record = RunRecord.from_jsonable(data)
        return self.record(record)

    def merge_file(self, path: str) -> int:
        """Adopt every record from a sidecar JSONL file; returns adds.

        Non-durable puts: every merge is followed by a compact, which
        persists the batch atomically.
        """
        sidecar = JsonlStore(path)
        added = 0
        for data in sidecar.all():
            record = RunRecord.from_jsonable(data)
            if self.store.put(record.to_jsonable(), durable=False):
                added += 1
        return added

    def compact(self) -> None:
        self.store.compact()

    # -- reading -----------------------------------------------------------

    def get(self, run_id: str) -> RunRecord:
        data = self.store.get(run_id)
        if data is None:
            raise UnknownRunError(f"no registry record with run id {run_id!r}")
        return RunRecord.from_jsonable(data)

    def find(self, prefix: str) -> RunRecord:
        """Resolve a unique run-id prefix; ambiguity is an error."""
        matches = [run_id for run_id in self.store.ids() if run_id.startswith(prefix)]
        if not matches:
            raise UnknownRunError(
                f"no registry record matches run id prefix {prefix!r}"
            )
        if len(matches) > 1:
            shown = ", ".join(matches[:4])
            raise UnknownRunError(
                f"run id prefix {prefix!r} is ambiguous ({len(matches)} "
                f"matches: {shown}{'...' if len(matches) > 4 else ''})"
            )
        return self.get(matches[0])

    def records(self) -> List[RunRecord]:
        return [RunRecord.from_jsonable(data) for data in self.store.all()]

    def query(
        self,
        app: Optional[str] = None,
        variant: Optional[str] = None,
        kind: Optional[str] = None,
        chaos_profile: Optional[str] = None,
        params_digest: Optional[str] = None,
        seed: Optional[int] = None,
        parent_id: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[RunRecord]:
        """Filter records by identity columns (sorted by run id)."""
        out: List[RunRecord] = []
        for record in self.records():
            if app is not None and record.app != app:
                continue
            if variant is not None and record.variant != variant:
                continue
            if kind is not None and record.kind != kind:
                continue
            if chaos_profile is not None and record.chaos_profile != chaos_profile:
                continue
            if params_digest is not None and record.params_digest != params_digest:
                continue
            if seed is not None and record.seed != seed:
                continue
            if parent_id is not None and record.parent_id != parent_id:
                continue
            out.append(record)
            if limit is not None and len(out) >= limit:
                break
        return out

    # -- lineage -----------------------------------------------------------

    def children(self, run_id: str) -> List[RunRecord]:
        return self.query(parent_id=run_id)

    def ancestors(self, run_id: str) -> List[RunRecord]:
        """Parent chain, nearest first; tolerates a pruned parent."""
        chain: List[RunRecord] = []
        seen = {run_id}
        current = self.get(run_id)
        while current.parent_id and current.parent_id not in seen:
            data = self.store.get(current.parent_id)
            if data is None:
                break
            current = RunRecord.from_jsonable(data)
            seen.add(current.run_id)
            chain.append(current)
        return chain

    def lineage(self, run_id: str) -> Dict[str, object]:
        """Jsonable lineage view: ancestors, the run, its descendants."""
        record = self.find(run_id)

        def _tree(node: RunRecord) -> Dict[str, object]:
            return {
                "run_id": node.run_id,
                "kind": node.kind,
                "app": node.app,
                "variant": node.variant,
                "cell_key": node.cell_key,
                "children": [_tree(child) for child in self.children(node.run_id)],
            }

        return {
            "run_id": record.run_id,
            "ancestors": [
                {"run_id": a.run_id, "kind": a.kind, "cell_key": a.cell_key}
                for a in self.ancestors(record.run_id)
            ],
            "tree": _tree(record),
        }

    # -- garbage collection ------------------------------------------------

    def gc(self, keep: int, dry_run: bool = False) -> List[str]:
        """Prune leaf records beyond ``keep`` per population group.

        Within each :func:`group_key` population the ``keep``
        lexicographically-greatest run ids survive (content-addressed ids
        carry no time order, so any deterministic rule is as good as
        another; this one is stable across stores).  Descendants of
        pruned records and group records left with no children are
        pruned too.  Returns the pruned ids, sorted.
        """
        if keep < 1:
            raise RegistryError(f"gc keep must be >= 1, got {keep}")
        records = self.records()
        by_group: Dict[Tuple[str, str, str, str, str], List[RunRecord]] = {}
        for record in records:
            if record.kind in GROUP_KINDS:
                continue
            by_group.setdefault(group_key(record), []).append(record)
        doomed = set()
        for members in by_group.values():
            members.sort(key=lambda r: r.run_id, reverse=True)
            doomed.update(r.run_id for r in members[keep:])
        # Cascade: descendants of pruned records go too.
        parent_of = {r.run_id: r.parent_id for r in records}
        changed = True
        while changed:
            changed = False
            for run_id, parent in parent_of.items():
                if run_id not in doomed and parent in doomed:
                    doomed.add(run_id)
                    changed = True
        # Group records whose every child was pruned follow their children.
        for record in records:
            if record.kind not in GROUP_KINDS or record.run_id in doomed:
                continue
            child_ids = [r.run_id for r in records if r.parent_id == record.run_id]
            if child_ids and all(c in doomed for c in child_ids):
                doomed.add(record.run_id)
        pruned = sorted(doomed)
        if not dry_run:
            for run_id in pruned:
                self.store.delete(run_id)
            self.compact()
        return pruned


def merge_worker_sidecars(registry: RunRegistry, base_path: str) -> int:
    """Merge (and remove) every ``<base>.reg-worker-*`` sidecar ledger."""
    directory = os.path.dirname(os.path.abspath(base_path)) or "."
    prefix = os.path.basename(base_path) + ".reg-worker-"
    added = 0
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return 0
    for name in names:
        if not name.startswith(prefix):
            continue
        path = os.path.join(directory, name)
        added += registry.merge_file(path)
        with _suppress_oserror():
            os.unlink(path)
    return added


def sidecar_path(base_path: str, slot: int) -> str:
    """Per-worker sidecar ledger path for registry base ``base_path``."""
    return f"{base_path}.reg-worker-{slot}"
