"""Persistent run registry: ledger, lineage, regression gate, tuner.

A local, crash-safe ledger of every harness run — results, trace
summaries, invariant verdicts — keyed by ``(app, params_digest, seed,
chaos_profile, code_version)`` with parent/child lineage links for sweep
cells, oracle variants and fuzz cases.  On top of it sit a similarity
layer (:mod:`repro.registry.similarity`), a regression detector
(:mod:`repro.registry.regression`) and a closed-loop speculation tuner
(:mod:`repro.registry.tuner`).

This package never imports from :mod:`repro.harness` at module level:
the harness runner imports :mod:`repro.registry.fingerprint` while the
harness package is still initializing, so the registry must remain a
dependency leaf.
"""

from repro.registry.fingerprint import (
    TUNABLE_SPEC_PARAMS,
    chaos_key,
    code_version,
    params_digest,
    spec_tunables,
)
from repro.registry.record import REGISTRY_SCHEMA_VERSION, RunRecord
from repro.registry.store import RunRegistry, merge_worker_sidecars, sidecar_path

__all__ = [
    "TUNABLE_SPEC_PARAMS",
    "chaos_key",
    "code_version",
    "params_digest",
    "spec_tunables",
    "REGISTRY_SCHEMA_VERSION",
    "RunRecord",
    "RunRegistry",
    "merge_worker_sidecars",
    "sidecar_path",
]
