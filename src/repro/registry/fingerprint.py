"""Deterministic identity keys for registry records.

Every run the registry stores is keyed by a small tuple —
``(app, params_digest, seed, chaos_profile, code_version)`` — and all of
those keys must be *derivable from the run alone*, stable across worker
processes, and free of wall-clock or hostname noise so that a serial
sweep and a ``--jobs 4`` sweep produce byte-identical registries.

This module must not import anything from :mod:`repro.harness` at module
level: the harness runner imports it while the ``repro.harness`` package
is still initializing, so a back-edge here would be a circular import.
Configs are therefore duck-typed (anything with ``resolved_system()`` /
``workload_scale`` works).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Dict, Mapping, Optional, Tuple

#: Bump when registry key derivation (not record schema) changes meaning.
#: Folded into ``code_version`` so ledgers written by incompatible key
#: schemes never silently pool into one baseline population.
FINGERPRINT_REVISION = 1

#: The speculation tunables the AutoTuner is allowed to propose — the
#: throttle and watchdog knobs (paper Section 5 future work plus our
#: watchdog extension).  Everything else in ``SpecHintParams`` models
#: hardware/runtime cost and is not a policy choice.
TUNABLE_SPEC_PARAMS = (
    "throttle_cancel_limit",
    "throttle_disable_reads",
    "watchdog_restart_limit",
    "watchdog_fault_limit",
    "watchdog_min_accuracy",
    "watchdog_accuracy_window",
)


def canonical_json(value: object) -> str:
    """The one JSON encoding used for every digest in the registry."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def digest_of(value: object, length: int = 16) -> str:
    """Truncated SHA-256 of the canonical JSON encoding of ``value``."""
    payload = canonical_json(value).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:length]


def code_version() -> str:
    """Identity of the code that produced a record.

    Deterministic and identical across worker processes of one sweep (a
    requirement for byte-identical parallel registries), so it cannot be
    a git hash probed at runtime.  ``REPRO_CODE_VERSION`` overrides it
    for CI jobs that want the real commit id in the ledger.
    """
    env = os.environ.get("REPRO_CODE_VERSION")
    if env:
        return env
    return f"repro-fp{FINGERPRINT_REVISION}"


def spec_tunables(spechint: object) -> Dict[str, object]:
    """The tunable subset of a ``SpecHintParams`` as a jsonable dict."""
    return {name: getattr(spechint, name) for name in TUNABLE_SPEC_PARAMS}


def params_fingerprint(cfg: object) -> Dict[str, object]:
    """The jsonable structure ``params_digest`` hashes.

    Covers everything that shapes a run's behavior *except* the axes the
    registry keys separately: the app and variant (their own columns),
    the chaos plan (the ``chaos_profile`` column) and the system seed
    (its own column).  Excluding the seed is what lets five runs at
    seeds 1999..2003 share one ``params_digest`` and form a matched
    baseline population for the regression detector.
    """
    system = cfg.resolved_system()  # type: ignore[attr-defined]
    system_dict = dataclasses.asdict(system)
    system_dict.pop("seed", None)
    return {
        "system": system_dict,
        "workload_scale": cfg.workload_scale,  # type: ignore[attr-defined]
        "map_all_addresses": cfg.map_all_addresses,  # type: ignore[attr-defined]
        "analysis_optimize": cfg.analysis_optimize,  # type: ignore[attr-defined]
    }


def params_digest(cfg: object) -> str:
    """Content digest of a config's behavior-shaping parameters."""
    return digest_of(params_fingerprint(cfg))


def plan_key(plan_jsonable: Mapping[str, object]) -> str:
    """Chaos key for a literal fault plan (no profile name to lean on).

    Generated plans (the chaos fuzzer) exist in no profile table, so the
    key is the plan's own name plus a digest of its full content — two
    fuzz cases with distinct plans never pool into one population.
    """
    name = str(plan_jsonable.get("name") or "plan")
    return f"{name}:{digest_of(dict(plan_jsonable), length=12)}"


def chaos_key(
    fault_profile: Optional[str],
    plan_jsonable: Optional[Mapping[str, object]] = None,
) -> str:
    """Chaos-profile registry key for a run.

    Built-in profiles key by name (runs differing only in ``fault_seed``
    deliberately pool — the spread across fault seeds is exactly the
    population variance the regression tolerance model should see);
    literal plans key by :func:`plan_key`; fault-free runs key "none".
    """
    if plan_jsonable is not None:
        return plan_key(plan_jsonable)
    if fault_profile is None or fault_profile == "none":
        return "none"
    return fault_profile


def feature_vector(result_payload: Mapping[str, object]) -> Tuple[float, ...]:
    """Stall-breakdown feature vector for run similarity.

    Normalized phase fractions plus the two hint-quality ratios, so runs
    of different workload scales still compare by *shape*.  Zeros when a
    payload predates the stall breakdown.
    """
    breakdown = result_payload.get("stall_breakdown") or {}
    phases = ("compute", "checks", "demand_stall", "other")
    values = [float(breakdown.get(name, 0.0) or 0.0) for name in phases]  # type: ignore[union-attr]
    total = sum(values)
    fractions = [v / total if total > 0 else 0.0 for v in values]
    lifecycle = result_payload.get("hint_lifecycle") or {}
    disclosed = float(lifecycle.get("disclosed", 0) or 0)  # type: ignore[union-attr]
    wasted = float(lifecycle.get("wasted", 0) or 0)  # type: ignore[union-attr]
    ready_pct = float(result_payload.get("pct_prefetches_before_demand", 0.0) or 0.0)
    fractions.append(wasted / disclosed if disclosed > 0 else 0.0)
    fractions.append(ready_pct / 100.0)
    return tuple(fractions)
