"""Performance-regression detection over the run registry.

Each candidate run is compared against its *matched baseline
population*: past records sharing the same identity keys (by default
app, variant, kind, chaos profile and parameter digest — any seed).
Three headline metrics are checked, each only in its harmful direction:

* ``elapsed_cycles`` — up is bad;
* ``hint_lead_median`` — down is bad (hints arriving later);
* ``wasted_prefetch_fraction`` — up is bad (prefetching garbage).

The tolerance model is relative drift against the baseline mean with a
noise-aware width: ``tol = max(floor, z * cv)`` where ``cv`` is the
population's coefficient of variation.  Seeds jitter file layout, so a
population spread across seeds widens its own tolerance — a quiet
workload gets a tight gate, a noisy one does not cry wolf.

Identical-seed reruns deduplicate to the same content-addressed record,
so drift is exactly zero and the detector stays silent by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RegistryError
from repro.registry.record import LEAF_KINDS, RunRecord
from repro.registry.store import RunRegistry

#: Identity columns a baseline may be matched on.
MATCH_KEYS = ("app", "variant", "kind", "chaos", "params")
_KEY_ATTR = {
    "app": "app",
    "variant": "variant",
    "kind": "kind",
    "chaos": "chaos_profile",
    "params": "params_digest",
}

#: (harmful direction, relative floor) per metric.  Direction +1 flags
#: increases, -1 flags decreases.
METRIC_RULES: Dict[str, Tuple[int, float]] = {
    "elapsed_cycles": (+1, 0.05),
    "hint_lead_median": (-1, 0.30),
    "wasted_prefetch_fraction": (+1, 0.30),
}

#: Z-width of the noise-aware tolerance term.
Z_SCORE = 3.0

#: Smallest population the detector will judge against.
DEFAULT_MIN_BASELINE = 3


@dataclass
class RegressionFinding:
    """One flagged metric on one candidate run."""

    run_id: str
    metric: str
    value: float
    baseline_mean: float
    baseline_count: int
    drift_pct: float
    tolerance_pct: float

    def describe(self) -> str:
        direction = "rose" if self.drift_pct > 0 else "fell"
        return (
            f"{self.run_id[:12]} {self.metric} {direction} "
            f"{abs(self.drift_pct):.1f}% vs {self.baseline_count}-run "
            f"baseline mean {self.baseline_mean:.1f} "
            f"(tolerance {self.tolerance_pct:.1f}%)"
        )

    def to_jsonable(self) -> dict:
        return {
            "run_id": self.run_id,
            "metric": self.metric,
            "value": self.value,
            "baseline_mean": self.baseline_mean,
            "baseline_count": self.baseline_count,
            "drift_pct": round(self.drift_pct, 3),
            "tolerance_pct": round(self.tolerance_pct, 3),
        }


@dataclass
class RegressionReport:
    """Outcome of checking one or many candidates."""

    findings: List[RegressionFinding] = field(default_factory=list)
    checked: int = 0
    skipped_no_baseline: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_jsonable(self) -> dict:
        return {
            "checked": self.checked,
            "skipped_no_baseline": self.skipped_no_baseline,
            "findings": [f.to_jsonable() for f in self.findings],
        }


def parse_match_keys(spec: Optional[str]) -> Tuple[str, ...]:
    """Parse a ``--match app,variant`` style key list."""
    if not spec:
        return MATCH_KEYS
    keys = tuple(part.strip() for part in spec.split(",") if part.strip())
    unknown = [k for k in keys if k not in MATCH_KEYS]
    if unknown:
        raise RegistryError(
            f"unknown match key(s) {', '.join(unknown)}; "
            f"expected a subset of: {', '.join(MATCH_KEYS)}"
        )
    return keys


def _matches(candidate: RunRecord, other: RunRecord, keys: Sequence[str]) -> bool:
    return all(
        getattr(candidate, _KEY_ATTR[key]) == getattr(other, _KEY_ATTR[key])
        for key in keys
    )


def baseline_population(
    registry: RunRegistry,
    candidate: RunRecord,
    match_keys: Sequence[str] = MATCH_KEYS,
    records: Optional[Sequence[RunRecord]] = None,
) -> List[RunRecord]:
    """Past leaf runs the candidate is fairly compared against.

    ``records`` lets a caller checking many candidates deserialize the
    registry once instead of once per candidate.
    """
    if records is None:
        records = registry.records()
    return [
        record
        for record in records
        if record.run_id != candidate.run_id
        and record.kind in LEAF_KINDS
        and record.metric_values() is not None
        and _matches(candidate, record, match_keys)
    ]


def check_run(
    registry: RunRegistry,
    candidate: RunRecord,
    match_keys: Sequence[str] = MATCH_KEYS,
    min_baseline: int = DEFAULT_MIN_BASELINE,
    records: Optional[Sequence[RunRecord]] = None,
) -> RegressionReport:
    """Judge one run against its matched baseline population."""
    report = RegressionReport()
    values = candidate.metric_values()
    if values is None:
        return report
    report.checked = 1
    population = baseline_population(registry, candidate, match_keys, records)
    if len(population) < min_baseline:
        report.skipped_no_baseline = 1
        return report
    for metric, (direction, floor) in METRIC_RULES.items():
        samples = [
            p.metric_values()[metric]  # type: ignore[index]
            for p in population
        ]
        mean = sum(samples) / len(samples)
        if mean == 0.0:
            # A metric the whole population sits at zero on (e.g. hint
            # lead for the original variant) carries no signal.
            continue
        variance = sum((s - mean) ** 2 for s in samples) / len(samples)
        cv = math.sqrt(variance) / abs(mean)
        tolerance = max(floor, Z_SCORE * cv)
        drift = (values[metric] - mean) / abs(mean)
        if direction * drift > tolerance:
            report.findings.append(RegressionFinding(
                run_id=candidate.run_id,
                metric=metric,
                value=values[metric],
                baseline_mean=mean,
                baseline_count=len(samples),
                drift_pct=100.0 * drift,
                tolerance_pct=100.0 * tolerance,
            ))
    return report


def check_all(
    registry: RunRegistry,
    match_keys: Sequence[str] = MATCH_KEYS,
    min_baseline: int = DEFAULT_MIN_BASELINE,
) -> RegressionReport:
    """Judge every leaf run in the registry against its own baseline."""
    report = RegressionReport()
    records = registry.records()
    for record in records:
        if record.kind not in LEAF_KINDS or record.metric_values() is None:
            continue
        single = check_run(registry, record, match_keys, min_baseline,
                           records=records)
        report.checked += single.checked
        report.skipped_no_baseline += single.skipped_no_baseline
        report.findings.extend(single.findings)
    report.findings.sort(key=lambda f: (f.run_id, f.metric))
    return report
