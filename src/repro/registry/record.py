"""Registry record schema: one ledger line per recorded run.

A :class:`RunRecord` is the unit the registry stores.  Its identity — the
``run_id`` — is the truncated SHA-256 of its canonical JSON content, so:

* the id carries no wall-clock, hostname, pid or ordering noise, which is
  what makes a serial sweep and a ``--jobs 4`` sweep write byte-identical
  registries;
* re-running the exact same experiment (same seed, same code) produces
  the *same* record and deduplicates to one ledger line, which is why the
  regression detector stays silent across two identical-seed runs;
* a hand-edited ledger line fails loudly on load (the stored id no longer
  matches the recomputed one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import RegistryError
from repro.registry.fingerprint import digest_of
from repro.sim import metrics

#: Version of the *record* envelope (independent of the RunResult payload
#: schema, which carries its own ``schema_version``).
REGISTRY_SCHEMA_VERSION = 1

#: Record kinds.  Leaf kinds carry a result payload; group kinds are
#: lineage parents (a sweep, an oracle matrix, a fuzz campaign).
LEAF_KINDS = (
    "run",
    "sweep-cell",
    "chaos-cell",
    "oracle-variant",
    "fuzz-case",
)
GROUP_KINDS = ("sweep", "chaos-sweep", "oracle", "oracle-cell", "fuzz-campaign")
KINDS = LEAF_KINDS + GROUP_KINDS

#: Length of a full run id (hex chars of truncated SHA-256).
RUN_ID_LENGTH = 24


@dataclass
class RunRecord:
    """One registry entry.

    ``result`` holds a full ``RunResult.to_jsonable()`` payload for plain
    runs and sweep cells, a fuzz-cell payload for ``fuzz-case`` records,
    and an outcome summary for group kinds.  ``verdicts`` holds invariant
    -monitor violations (jsonable ``Violation`` records) for fuzz cases
    and oracle mismatch details.
    """

    app: str = ""
    variant: str = ""
    kind: str = "run"
    params_digest: str = ""
    seed: int = 0
    chaos_profile: str = "none"
    code_version: str = ""
    parent_id: Optional[str] = None
    #: Harness cell key (checkpoint key) for cells; None for plain runs.
    cell_key: Optional[str] = None
    result: Optional[Dict[str, object]] = None
    trace_summary: Optional[Dict[str, object]] = None
    verdicts: List[Dict[str, object]] = field(default_factory=list)
    #: AutoTuner provenance, copied out of the result for direct querying.
    tuning: Optional[Dict[str, object]] = None
    #: Free-form extras (sweep grids, campaign budgets, identities).
    meta: Dict[str, object] = field(default_factory=dict)
    run_id: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise RegistryError(
                f"unknown record kind {self.kind!r}; expected one of {KINDS}"
            )
        if not self.run_id:
            self.run_id = self.compute_run_id()

    # -- identity ----------------------------------------------------------

    def content(self) -> Dict[str, object]:
        """Everything the run id hashes (all fields except the id)."""
        return {
            "app": self.app,
            "variant": self.variant,
            "kind": self.kind,
            "params_digest": self.params_digest,
            "seed": self.seed,
            "chaos_profile": self.chaos_profile,
            "code_version": self.code_version,
            "parent_id": self.parent_id,
            "cell_key": self.cell_key,
            "result": self.result,
            "trace_summary": self.trace_summary,
            "verdicts": self.verdicts,
            "tuning": self.tuning,
            "meta": self.meta,
        }

    def compute_run_id(self) -> str:
        return digest_of(self.content(), length=RUN_ID_LENGTH)

    # -- serialization -----------------------------------------------------

    def to_jsonable(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "schema_version": REGISTRY_SCHEMA_VERSION,
            "run_id": self.run_id,
        }
        data.update(self.content())
        return data

    @classmethod
    def from_jsonable(cls, data: Mapping[str, object]) -> "RunRecord":
        version = data.get("schema_version", None)
        if version != REGISTRY_SCHEMA_VERSION:
            raise RegistryError(
                f"registry record has schema_version {version!r}; this code "
                f"reads version {REGISTRY_SCHEMA_VERSION} — refusing to "
                "guess at an unknown record layout"
            )
        record = cls(
            app=str(data.get("app", "")),
            variant=str(data.get("variant", "")),
            kind=str(data.get("kind", "run")),
            params_digest=str(data.get("params_digest", "")),
            seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
            chaos_profile=str(data.get("chaos_profile", "none")),
            code_version=str(data.get("code_version", "")),
            parent_id=data.get("parent_id"),  # type: ignore[arg-type]
            cell_key=data.get("cell_key"),  # type: ignore[arg-type]
            result=data.get("result"),  # type: ignore[arg-type]
            trace_summary=data.get("trace_summary"),  # type: ignore[arg-type]
            verdicts=list(data.get("verdicts") or []),  # type: ignore[arg-type]
            tuning=data.get("tuning"),  # type: ignore[arg-type]
            meta=dict(data.get("meta") or {}),  # type: ignore[arg-type]
        )
        stored = data.get("run_id")
        if stored is not None and stored != record.run_id:
            raise RegistryError(
                f"registry record {stored!r} fails its content check "
                f"(recomputed {record.run_id}); the ledger line was "
                "corrupted or hand-edited"
            )
        return record

    # -- derived metrics ---------------------------------------------------

    def metric_values(self) -> Optional[Dict[str, float]]:
        """The regression-detector metrics, or None for group records.

        ``elapsed_cycles`` uses the workload-completion mark when a
        rebuild drain outlived the workload (so chaos runs compare
        demand-path slowdown, not drain tails), falling back to total
        cycles.  ``wasted_prefetch_fraction`` is wasted/disclosed from
        the hint-lifecycle ledger; ``hint_lead_median`` is in cycles.
        """
        payload = self.result
        if payload is None:
            return None
        # Fuzz cells store per-variant cycles as a mapping; only a plain
        # RunResult payload (scalar cycles) carries comparable metrics.
        if not isinstance(payload.get("cycles"), (int, float)):
            return None
        counters = payload.get("counters") or {}
        cycles = float(
            counters.get(  # type: ignore[union-attr]
                metrics.WORKLOAD_COMPLETED_CYCLE, payload["cycles"]
            )
        )
        lifecycle = payload.get("hint_lifecycle") or {}
        disclosed = float(lifecycle.get("disclosed", 0) or 0)  # type: ignore[union-attr]
        wasted = float(lifecycle.get("wasted", 0) or 0)  # type: ignore[union-attr]
        return {
            "elapsed_cycles": cycles,
            "hint_lead_median": float(payload.get("hint_lead_median", 0.0) or 0.0),
            "wasted_prefetch_fraction": wasted / disclosed if disclosed > 0 else 0.0,
        }


def group_key(record: RunRecord) -> Tuple[str, str, str, str, str]:
    """The default population key: runs that are fair to compare."""
    return (
        record.app,
        record.variant,
        record.kind,
        record.chaos_profile,
        record.params_digest,
    )
