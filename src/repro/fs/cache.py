"""The file block cache.

Pure mechanism: entries, states, LRU ordering, pinning, and the Table 5
accounting (fully / partially / unused prefetched blocks, cache block
reuses).  *Policy* — which block to evict, what to prefetch — lives in the
cache managers (:mod:`repro.fs.ubc` for the baseline LRU manager,
:mod:`repro.tip.manager` for TIP).

Entries are keyed by ``(ino, file_block)``.  The cache stores presence
metadata only; file bytes live in the inode and are copied to the
application at read time.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

from repro.sim import metrics
from repro.sim.stats import StatRegistry

BlockKey = Tuple[int, int]  # (ino, file_block)


class EntryState(enum.Enum):
    """Lifecycle of a cache entry."""

    #: Disk request in flight.
    FETCHING = "fetching"
    #: Data resident.
    VALID = "valid"


class FetchOrigin(enum.Enum):
    """What caused the block to be brought in — drives Table 5 rows."""

    DEMAND = "demand"
    READAHEAD = "readahead"
    HINT = "hint"

    @property
    def is_prefetch(self) -> bool:
        return self is not FetchOrigin.DEMAND


class CacheEntry:
    """Metadata for one cached block."""

    __slots__ = (
        "key",
        "state",
        "origin",
        "accessed",
        "access_count",
        "pinned",
        "demand_waiters",
        "arrived_clean",
    )

    def __init__(self, key: BlockKey, origin: FetchOrigin) -> None:
        self.key = key
        self.state = EntryState.FETCHING
        self.origin = origin
        #: True once the application has read this block from the cache.
        self.accessed = False
        #: Number of application accesses (reuse = access_count - 1).
        self.access_count = 0
        #: Pinned entries may not be evicted (in-flight or hint-protected).
        self.pinned = 0

        #: Number of threads currently blocked waiting for this fetch —
        #: a fetch someone is waiting on is a *partial* prefetch (Table 5).
        self.demand_waiters = 0
        #: Prefetch completed before any request; whether it becomes a
        #: *fully prefetched* block (Table 5) is decided at first access —
        #: never-accessed prefetches are *unused*, not fully.
        self.arrived_clean = False

    def __repr__(self) -> str:
        return (
            f"CacheEntry({self.key}, {self.state.value}, {self.origin.value}, "
            f"accessed={self.accessed})"
        )


class BlockCache:
    """Fixed-capacity block cache with LRU ordering and Table 5 stats."""

    def __init__(self, capacity_blocks: int, stats: StatRegistry) -> None:
        self.capacity = capacity_blocks
        self.stats = stats
        self._entries: "OrderedDict[BlockKey, CacheEntry]" = OrderedDict()

    # -- lookup --------------------------------------------------------------

    def get(self, key: BlockKey) -> Optional[CacheEntry]:
        """The entry for ``key`` (any state), without touching LRU order."""
        return self._entries.get(key)

    def contains_valid(self, key: BlockKey) -> bool:
        """True if the block's data is resident right now."""
        entry = self._entries.get(key)
        return entry is not None and entry.state is EntryState.VALID

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def free_blocks(self) -> int:
        return max(0, self.capacity - len(self._entries))

    def entries(self) -> Iterator[CacheEntry]:
        """Entries in LRU order (least recently used first)."""
        return iter(self._entries.values())

    # -- state transitions ----------------------------------------------------

    def insert_fetching(self, key: BlockKey, origin: FetchOrigin) -> CacheEntry:
        """Create a FETCHING entry for a block being brought in.

        Caller must have made room first (see :attr:`free_blocks`); demand
        fetches may overcommit, which is recorded but allowed.
        """
        if len(self._entries) >= self.capacity:
            self.stats.counter(metrics.CACHE_OVERCOMMITTED_INSERTS).add()
        entry = CacheEntry(key, origin)
        entry.pinned += 1  # in-flight blocks are not evictable
        self._entries[key] = entry
        self._entries.move_to_end(key)
        if origin.is_prefetch:
            self.stats.counter(metrics.CACHE_PREFETCHED_BLOCKS).add()
        return entry

    def mark_valid(self, key: BlockKey) -> Optional[CacheEntry]:
        """Record fetch completion.  Returns the entry, or None if it was
        discarded while in flight (cannot normally happen: in-flight entries
        are pinned)."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        entry.state = EntryState.VALID
        entry.pinned -= 1
        if entry.origin.is_prefetch:
            if entry.demand_waiters > 0:
                # The application blocked on this block mid-prefetch.
                self.stats.counter(metrics.CACHE_PREFETCHED_PARTIAL).add()
            else:
                entry.arrived_clean = True
        return entry

    def discard_fetching(self, key: BlockKey) -> Optional[CacheEntry]:
        """Drop a FETCHING entry whose fetch failed terminally.

        The degraded-mode path for prefetches: the block never arrives, the
        entry must not linger pinned forever.  Returns the removed entry,
        or None if the key is absent or already VALID.
        """
        entry = self._entries.get(key)
        if entry is None or entry.state is not EntryState.FETCHING:
            return None
        del self._entries[key]
        self.stats.counter(metrics.CACHE_FETCH_FAILURES).add()
        return entry

    def note_access(self, key: BlockKey) -> CacheEntry:
        """Record an application read of a resident (or arriving) block."""
        entry = self._entries[key]
        entry.access_count += 1
        entry.accessed = True
        if entry.arrived_clean:
            # First request of a prefetch that had fully completed.
            entry.arrived_clean = False
            self.stats.counter(metrics.CACHE_PREFETCHED_FULLY).add()
        if entry.access_count > 1:
            self.stats.counter(metrics.CACHE_BLOCK_REUSES).add()
        self._entries.move_to_end(key)
        self.stats.counter(metrics.CACHE_BLOCK_READS).add()
        return entry

    def note_prefetch_shed(self, origin: FetchOrigin) -> None:
        """Record a prefetch the manager declined to start while the array
        was degraded (load shedding, not a failure)."""
        self.stats.counter(
            metrics.CACHE_SHED_DEGRADED_PREFIX + origin.value
        ).add()

    def pin(self, key: BlockKey) -> None:
        """Protect an entry from eviction (e.g. hinted within the horizon)."""
        self._entries[key].pinned += 1

    def unpin(self, key: BlockKey) -> None:
        entry = self._entries.get(key)
        if entry is not None and entry.pinned > 0:
            entry.pinned -= 1

    def evict(self, key: BlockKey) -> None:
        """Remove a VALID, unpinned entry; accounts unused prefetches."""
        entry = self._entries.pop(key)
        self._account_departure(entry)
        self.stats.counter(metrics.CACHE_EVICTIONS).add()

    def find_lru_victim(self) -> Optional[CacheEntry]:
        """Least recently used VALID, unpinned entry, or None."""
        for entry in self._entries.values():
            if entry.state is EntryState.VALID and entry.pinned == 0:
                return entry
        return None

    def touch_lru_position(self, key: BlockKey) -> None:
        """Move an entry to most-recently-used without counting an access."""
        if key in self._entries:
            self._entries.move_to_end(key)

    def finalize(self) -> None:
        """End-of-run accounting: residual never-accessed prefetched blocks
        count as unused (Table 5's Unused column)."""
        for entry in self._entries.values():
            self._account_departure(entry)
        self._entries.clear()

    def _account_departure(self, entry: CacheEntry) -> None:
        if entry.origin.is_prefetch and not entry.accessed:
            self.stats.counter(metrics.CACHE_PREFETCHED_UNUSED).add()
