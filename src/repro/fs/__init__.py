"""Simulated file system substrate.

Provides inodes with real byte contents (benchmark programs parse headers and
offsets out of what they read), a block cache whose replacement is delegated
to a pluggable manager (baseline UBC-LRU or TIP), and the Digital UNIX
sequential read-ahead policy described in the paper's Section 4.
"""

from repro.fs.cache import BlockCache, CacheEntry, EntryState, FetchOrigin
from repro.fs.filesystem import FileSystem, Inode
from repro.fs.readahead import SequentialReadAhead
from repro.fs.ubc import UbcManager

__all__ = [
    "BlockCache",
    "CacheEntry",
    "EntryState",
    "FetchOrigin",
    "FileSystem",
    "Inode",
    "SequentialReadAhead",
    "UbcManager",
]
