"""Cache manager base class.

A cache manager owns replacement and prefetch *policy* over the
:class:`~repro.fs.cache.BlockCache`.  The kernel's read path calls into the
manager; the manager talks to the striped array.  Two managers exist:

* :class:`~repro.fs.ubc.UbcManager` — the stock Digital UNIX Unified Buffer
  Cache: LRU replacement + sequential read-ahead, ignores hints;
* :class:`~repro.tip.manager.TipManager` — Patterson's TIP informed
  prefetching and caching manager, which this paper's system feeds with
  speculatively generated hints.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.errors import DataLossError, RetriesExhausted
from repro.fs.cache import BlockCache, BlockKey, CacheEntry, EntryState, FetchOrigin
from repro.fs.filesystem import FileSystem, Inode
from repro.fs.readahead import ReadAheadState, SequentialReadAhead
from repro.sim import metrics
from repro.sim.stats import StatRegistry
from repro.storage.request import IOKind, IORequest
from repro.storage.striping import StripedArray

ReadyCallback = Callable[[], None]


class CacheManagerBase:
    """Mechanism shared by every cache manager; policy in subclasses."""

    def __init__(
        self,
        fs: FileSystem,
        array: StripedArray,
        cache: BlockCache,
        readahead: SequentialReadAhead,
        stats: StatRegistry,
    ) -> None:
        self.fs = fs
        self.array = array
        self.cache = cache
        self.readahead = readahead
        self.stats = stats

    # -- read path (called by the kernel) -----------------------------------

    def access_block(self, inode: Inode, file_block: int, on_ready: ReadyCallback) -> bool:
        """Application demand access to one block.

        Returns True when the block is resident (``on_ready`` is *not*
        called).  Otherwise starts/joins a fetch, arranges for ``on_ready``
        to run once the block arrives, and returns False.
        """
        key: BlockKey = (inode.ino, file_block)
        entry = self.cache.get(key)
        if entry is not None and entry.state is EntryState.VALID:
            self.cache.note_access(key)
            return True

        if entry is not None:
            # In flight: join the outstanding request at demand priority.
            entry.demand_waiters += 1
            self.cache.note_access(key)

            def joined(req: IORequest) -> None:
                self._check_demand_failure(req)
                on_ready()

            self.array.submit(inode.lbn_of_block(file_block), IOKind.DEMAND, joined)
            self.stats.counter(metrics.CACHE_DEMAND_JOINS_INFLIGHT).add()
            return False

        # Full miss: bring the block in at demand priority.
        self._make_room_for_demand()
        entry = self.cache.insert_fetching(key, FetchOrigin.DEMAND)
        entry.demand_waiters += 1
        self.cache.note_access(key)
        self.stats.counter(metrics.CACHE_DEMAND_MISSES).add()

        def completed(req: IORequest) -> None:
            self._check_demand_failure(req)
            self.cache.mark_valid(key)
            self.on_block_arrived(key)
            on_ready()

        self.array.submit(inode.lbn_of_block(file_block), IOKind.DEMAND, completed)
        return False

    def _check_demand_failure(self, request: IORequest) -> None:
        """Demand reads must not be refused: exhausted retries are a hard,
        typed failure (never silent data corruption)."""
        if request.failed:
            cause = StripedArray.failure_cause(request)
            if isinstance(cause, DataLossError):
                # Unrecoverable, not merely slow: surface the loss directly
                # (retrying cannot bring a dead disk's blocks back).
                raise cause
            raise RetriesExhausted(
                f"demand read for lbn {request.lbn} failed after "
                f"{request.attempts} attempts"
            ) from cause

    def peek_valid(self, inode: Inode, file_block: int) -> bool:
        """Non-blocking residency check (used by speculative reads).

        Does not count as an access and does not disturb LRU order.
        """
        return self.cache.contains_valid((inode.ino, file_block))

    def read_call_completed(
        self,
        pid: int,
        ra_state: ReadAheadState,
        inode: Inode,
        first_block: int,
        last_block: int,
        hinted: bool,
    ) -> None:
        """Post-read bookkeeping: unhinted calls invoke sequential
        read-ahead (the paper's policy); managers may add more."""
        if not hinted:
            for file_block in self.readahead.on_read(ra_state, inode, first_block, last_block):
                if self.array.degraded:
                    # Load shedding: sequential read-ahead is a pure
                    # performance bet, and while a dead disk is being
                    # reconstructed every speculative read competes with
                    # demand and rebuild traffic.  Skip it for the duration.
                    self.cache.note_prefetch_shed(FetchOrigin.READAHEAD)
                    continue
                self.start_prefetch(inode, file_block, FetchOrigin.READAHEAD)
        self.after_read(pid)

    # -- prefetch mechanics ---------------------------------------------------

    def start_prefetch(
        self,
        inode: Inode,
        file_block: int,
        origin: FetchOrigin,
        on_done: Optional[ReadyCallback] = None,
    ) -> bool:
        """Bring a block in ahead of need.  Returns False if the block is
        already present/in-flight or no cache room could be made."""
        key: BlockKey = (inode.ino, file_block)
        if self.cache.get(key) is not None:
            return False
        if self.cache.free_blocks == 0 and not self._evict_one_for_prefetch():
            self.stats.counter(metrics.CACHE_PREFETCH_DENIED_NO_ROOM).add()
            return False
        self.cache.insert_fetching(key, origin)

        def completed(req: IORequest) -> None:
            if req.failed:
                # Dropped prefetch: discard the entry silently.  A later
                # demand access simply misses — the unhinted baseline, never
                # an error surfaced to the application.
                self.cache.discard_fetching(key)
                self.stats.counter(metrics.CACHE_PREFETCHES_DROPPED).add()
                self.on_prefetch_dropped(key)
                return
            self.cache.mark_valid(key)
            self.on_block_arrived(key)
            if on_done is not None:
                on_done()

        self.array.submit(inode.lbn_of_block(file_block), IOKind.PREFETCH, completed)
        return True

    def _make_room_for_demand(self) -> None:
        """Evict one block for an incoming demand fetch; overcommit if no
        victim is available (demand must not be refused)."""
        if self.cache.free_blocks > 0:
            return
        victim = self.find_victim()
        if victim is not None:
            self.cache.evict(victim.key)

    def _evict_one_for_prefetch(self) -> bool:
        victim = self.find_victim()
        if victim is None:
            return False
        self.cache.evict(victim.key)
        return True

    # -- policy hooks ----------------------------------------------------------

    def find_victim(self) -> Optional[CacheEntry]:
        """Choose an evictable entry (VALID, unpinned), or None."""
        raise NotImplementedError

    def consume_hints(
        self,
        pid: int,
        inode: Inode,
        first_block: int,
        last_block: int,
        offset: int,
        length: int,
    ) -> bool:
        """Match an arriving read against outstanding hints.  Returns True
        when the call was hinted.  Hint-ignorant managers return False."""
        return False

    def hint_segments(self, pid: int, segments: Sequence["object"]) -> int:
        """Accept hints (TIP ioctls).  Returns the number accepted."""
        return 0

    def cancel_all(self, pid: int) -> int:
        """TIPIO_CANCEL_ALL: drop this process's outstanding hints.
        Returns the number cancelled.  Already-issued prefetches proceed."""
        return 0

    def outstanding_hints(self, pid: int) -> int:
        """Hints still queued for ``pid``.  Hint-ignorant managers hold
        none (the restart protocol's drain check relies on this)."""
        return 0

    def on_block_arrived(self, key: BlockKey) -> None:
        """Called whenever any fetch completes (policy may react)."""

    def on_prefetch_dropped(self, key: BlockKey) -> None:
        """Called when a prefetch failed terminally (policy may react)."""

    def after_read(self, pid: int) -> None:
        """Called at the end of every read call (policy may react)."""

    def finalize(self) -> None:
        """End-of-run accounting."""
        self.cache.finalize()
