"""Baseline Unified Buffer Cache manager.

The stock Digital UNIX 3.2 cache manager that TIP replaces: strict LRU
replacement plus the sequential read-ahead policy.  It ignores hints
entirely, which also makes it the reference behaviour for Figure 4's
"TIP configured to ignore hints" experiment.
"""

from __future__ import annotations

from typing import Optional

from repro.fs.cache import CacheEntry
from repro.fs.manager import CacheManagerBase


class UbcManager(CacheManagerBase):
    """LRU replacement; hints are not part of this manager's vocabulary."""

    def find_victim(self) -> Optional[CacheEntry]:
        return self.cache.find_lru_victim()
