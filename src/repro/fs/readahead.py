"""Digital UNIX sequential read-ahead policy.

From the paper (Section 4): "The automatic read-ahead policy, which was
invoked by all unhinted read calls, prefetches approximately the same number
of blocks as have been sequentially read, up to a maximum of 64 blocks."

The policy is tracked per open file (per file descriptor): a run of
sequential block reads grows the read-ahead window; a non-sequential read
resets it.  For applications like XDataSlice that issue short sequential
bursts into a huge file, this policy prefetches aggressively and wastes most
of it (58 % of prefetched blocks unused in the paper's Table 5) — behaviour
this implementation reproduces.
"""

from __future__ import annotations

from typing import List

from repro.fs.filesystem import Inode


class ReadAheadState:
    """Sequentiality state for one open file."""

    __slots__ = ("expected_block", "run_blocks", "prefetched_until")

    def __init__(self) -> None:
        #: Next file block a sequential read would start at.
        self.expected_block = 0
        #: Number of blocks read sequentially in the current run.
        self.run_blocks = 0
        #: File blocks below this index have already been scheduled for
        #: read-ahead in the current run (exclusive bound).
        self.prefetched_until = 0


class SequentialReadAhead:
    """Computes the read-ahead block list for each unhinted read call."""

    def __init__(self, max_blocks: int = 64) -> None:
        self.max_blocks = max_blocks

    def new_state(self) -> ReadAheadState:
        """Fresh per-open-file state (sequential run starts at block 0)."""
        return ReadAheadState()

    def on_read(
        self,
        state: ReadAheadState,
        inode: Inode,
        first_block: int,
        last_block: int,
    ) -> List[int]:
        """Update run state for a read of ``[first_block, last_block]``;
        return file block indices to prefetch (possibly empty)."""
        if first_block == state.expected_block or (
            first_block == state.expected_block - 1 and state.run_blocks > 0
        ):
            # Sequential continuation.  Only *newly covered* blocks grow
            # the run: many short reads within one block are one block of
            # sequential progress, not many ("prefetches approximately
            # the same number of blocks as have been sequentially read").
            state.run_blocks += max(0, last_block + 1 - state.expected_block)
            state.run_blocks = max(state.run_blocks, 1)
        else:
            # Run broken: restart.
            state.run_blocks = last_block - first_block + 1
            state.prefetched_until = last_block + 1
        state.expected_block = last_block + 1

        if state.run_blocks < 3:
            # No established sequential run yet: an isolated read (even a
            # couple-of-blocks one) does not trigger read-ahead, otherwise
            # every random read would drag in useless successor blocks.
            return []
        window = min(self.max_blocks, state.run_blocks)
        start = max(last_block + 1, state.prefetched_until)
        end = min(inode.nblocks, last_block + 1 + window)
        if start >= end:
            return []
        state.prefetched_until = end
        return list(range(start, end))
