"""Inodes and the simulated file system.

A new, empty file system is created for each experiment (the paper: "A new
file system was created to hold the files used in our experiments"), so
files are allocated contiguously in the striped logical block address space.

File *contents* are real bytes.  Benchmark programs read headers, follow
offsets stored inside the data, and compute on what they read — which is what
makes Gnuld's data-dependent access pattern (and the erroneous hints it
induces under speculation) come out of the simulation rather than being
scripted.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import FileExistsInFS, FileNotFoundInFS, InvalidBlockError
from repro.params import BLOCK_SIZE


class Inode:
    """One file: metadata plus contents."""

    __slots__ = ("ino", "path", "data", "first_lbn")

    def __init__(self, ino: int, path: str, data: bytes, first_lbn: int) -> None:
        self.ino = ino
        self.path = path
        self.data = bytearray(data)
        #: First logical block in the striped address space; the file's
        #: blocks are contiguous from here.
        self.first_lbn = first_lbn

    @property
    def size(self) -> int:
        """File size in bytes."""
        return len(self.data)

    @property
    def nblocks(self) -> int:
        """Number of file system blocks occupied (ceil(size / BLOCK_SIZE))."""
        return max(1, -(-len(self.data) // BLOCK_SIZE))

    def lbn_of_block(self, file_block: int) -> int:
        """Logical block number of the file's ``file_block``-th block."""
        if file_block < 0 or file_block >= self.nblocks:
            raise InvalidBlockError(
                f"file block {file_block} outside {self.path!r} ({self.nblocks} blocks)"
            )
        return self.first_lbn + file_block

    def read_at(self, offset: int, length: int) -> bytes:
        """Bytes [offset, offset+length), truncated at end of file."""
        if offset < 0:
            raise InvalidBlockError(f"negative read offset {offset}")
        return bytes(self.data[offset:offset + length])

    def write_at(self, offset: int, payload: bytes) -> None:
        """Overwrite/extend contents at ``offset`` (write-behind, no I/O)."""
        if offset < 0:
            raise InvalidBlockError(f"negative write offset {offset}")
        end = offset + len(payload)
        if end > len(self.data):
            self.data.extend(b"\x00" * (end - len(self.data)))
        self.data[offset:end] = payload

    def __repr__(self) -> str:
        return f"Inode({self.ino}, {self.path!r}, {self.size}B @ lbn {self.first_lbn})"


class FileSystem:
    """Name space and block allocation over the striped array address space.

    Files are internally contiguous, but successive files are separated by
    pseudo-random allocation gaps (``allocation_jitter_blocks``): even a
    freshly created file system does not lay 1349 source files end to end,
    and those gaps are what make cross-file access pay disk positioning
    costs, as on the paper's testbed.
    """

    def __init__(self, allocation_jitter_blocks: int = 0, seed: int = 0) -> None:
        self._by_path: Dict[str, Inode] = {}
        self._by_ino: List[Inode] = []
        self._next_lbn = 0
        self._jitter = allocation_jitter_blocks
        self._rng = None
        if allocation_jitter_blocks > 0:
            from repro.sim.rng import DeterministicRng

            self._rng = DeterministicRng(seed, "fs-allocation")

    def create(self, path: str, data: bytes) -> Inode:
        """Create a file with the given contents; blocks are allocated
        contiguously, after a pseudo-random inter-file gap."""
        if path in self._by_path:
            raise FileExistsInFS(path)
        if self._rng is not None and self._by_ino:
            self._next_lbn += self._rng.randint(0, self._jitter)
        inode = Inode(len(self._by_ino), path, data, self._next_lbn)
        self._next_lbn += inode.nblocks
        self._by_path[path] = inode
        self._by_ino.append(inode)
        return inode

    def lookup(self, path: str) -> Inode:
        """Resolve a path to its inode."""
        inode = self._by_path.get(path)
        if inode is None:
            raise FileNotFoundInFS(path)
        return inode

    def lookup_or_none(self, path: str) -> Optional[Inode]:
        """Resolve a path, returning None when absent (used by hint calls,
        which must not fault on a speculatively-computed garbage name)."""
        return self._by_path.get(path)

    def inode(self, ino: int) -> Inode:
        """Resolve an inode number."""
        if ino < 0 or ino >= len(self._by_ino):
            raise FileNotFoundInFS(f"ino {ino}")
        return self._by_ino[ino]

    def exists(self, path: str) -> bool:
        return path in self._by_path

    @property
    def total_blocks(self) -> int:
        """Blocks allocated so far — the size the striped array must cover."""
        return max(1, self._next_lbn)

    @property
    def nfiles(self) -> int:
        return len(self._by_ino)

    def paths(self) -> List[str]:
        """All file paths in creation order."""
        return [inode.path for inode in self._by_ino]
