"""Page residency accounting for Table 6.

The paper reports three memory side-effects of speculation: a larger
*footprint* (shadow code, COW copies, hint log), more *page reclaims*, and
more *page faults*.  Its footnote explains the platform model: "at least one
third of the memory-resident pages are not physically mapped, as determined
by an LRU policy.  A page reclaim occurs if a referenced page is still in
memory but is not physically mapped".

We model exactly that: every resident page is either *mapped* or *unmapped*;
the mapped set holds at most two thirds of the resident pages, managed LRU.

* first touch of a page        -> page fault  (and the page becomes mapped)
* touch of an unmapped page    -> page reclaim (the page becomes mapped,
                                  possibly unmapping the LRU mapped page)
* touch of a mapped page       -> refresh its LRU position
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Set, Tuple

from repro.params import PAGE_SIZE


class PageAccounting:
    """Footprint / reclaim / fault model for one process."""

    def __init__(self) -> None:
        #: LRU of physically mapped pages (page number -> None).
        self._mapped: "OrderedDict[int, None]" = OrderedDict()
        #: Resident but unmapped pages.
        self._unmapped: Set[int] = set()
        self.faults = 0
        self.reclaims = 0

    # -- derived ------------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        return len(self._mapped) + len(self._unmapped)

    @property
    def footprint_bytes(self) -> int:
        """Maximum memory physically mapped on behalf of the process.

        All pages stay resident in this model (no swapping of a single
        process's pages under memory pressure is simulated), so the
        footprint is the total distinct pages ever touched.
        """
        return self.resident_pages * PAGE_SIZE

    def _mapped_capacity(self) -> int:
        # At most two thirds of resident pages are mapped (at least 1).
        return max(1, (2 * self.resident_pages) // 3)

    #: touch_page outcomes.
    HIT = 0
    RECLAIM = 1
    FAULT = 2

    # -- touch paths ----------------------------------------------------------

    def touch_page(self, page: int) -> int:
        """Reference one page; returns HIT, RECLAIM or FAULT."""
        mapped = self._mapped
        if page in mapped:
            mapped.move_to_end(page)
            return self.HIT
        if page in self._unmapped:
            self._unmapped.discard(page)
            self.reclaims += 1
            outcome = self.RECLAIM
        else:
            self.faults += 1
            outcome = self.FAULT
        mapped[page] = None
        self._shrink_mapped()
        return outcome

    def touch_range(self, addr: int, length: int) -> Tuple[int, int]:
        """Reference every page overlapping [addr, addr+length); returns
        (reclaims, faults) incurred."""
        if length <= 0:
            return (0, 0)
        first = addr // PAGE_SIZE
        last = (addr + length - 1) // PAGE_SIZE
        reclaims = faults = 0
        for page in range(first, last + 1):
            outcome = self.touch_page(page)
            if outcome == self.RECLAIM:
                reclaims += 1
            elif outcome == self.FAULT:
                faults += 1
        return (reclaims, faults)

    def touch_addr(self, addr: int) -> int:
        return self.touch_page(addr // PAGE_SIZE)

    def preload_page(self, page: int) -> None:
        """Make a page resident without counting a fault or reclaim.

        Used for pages the loader maps at exec time (text, initialized
        data) — the paper's fault counts are tiny because program images
        are not demand-faulted block by block on its platform either.
        """
        if page in self._mapped or page in self._unmapped:
            return
        self._mapped[page] = None
        self._shrink_mapped()

    def _shrink_mapped(self) -> None:
        capacity = self._mapped_capacity()
        while len(self._mapped) > capacity:
            page, _ = self._mapped.popitem(last=False)
            self._unmapped.add(page)
