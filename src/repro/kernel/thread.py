"""Kernel threads.

Two priorities exist in practice: the original application thread (high)
and the speculating thread (low).  The paper's design requires that "the
speculating thread only executes when the original thread is stalled",
enforced by strict priority scheduling — implemented in the kernel's run
loop.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.vm.isa import NUM_REGS, Reg

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.process import Process


class ThreadState(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"          # waiting on I/O
    SPEC_IDLE = "spec_idle"      # speculation halted, waiting for a restart
    EXITED = "exited"


#: Priorities (bigger = more important).
PRIO_ORIGINAL = 10
PRIO_SPECULATING = 1


class Thread:
    """One kernel thread of a simulated process."""

    __slots__ = (
        "tid",
        "name",
        "process",
        "priority",
        "is_spec",
        "regs",
        "pc",
        "state",
        "stop_reason",
        "cwork_remaining",
        "pending_cost",
        "pending_io",
        "on_io_complete",
        "poll_counter",
        "spec_clock",
        "pending_budget",
        "cpu_cycles",
        "blocked_at",
    )

    def __init__(
        self,
        tid: int,
        name: str,
        process: "Process",
        priority: int,
        is_spec: bool = False,
    ) -> None:
        self.tid = tid
        self.name = name
        self.process = process
        self.priority = priority
        self.is_spec = is_spec

        self.regs: List[int] = [0] * NUM_REGS
        self.pc: int = 0
        self.state = ThreadState.RUNNABLE
        #: Why the machine stopped executing this thread (for the kernel).
        self.stop_reason: str = ""
        #: Unfinished CWORK cycles (interruptible computation).
        self.cwork_remaining: int = 0
        #: Cycles to charge before the next instruction (e.g. the data-copy
        #: cost of a read that completed while the thread was blocked).
        self.pending_cost: int = 0
        #: Outstanding block fetches this thread is blocked on.
        self.pending_io: int = 0
        #: Deferred completion action run when pending_io reaches zero.
        self.on_io_complete: Optional[Callable[[], None]] = None
        #: Instruction counter for the speculating thread's restart-flag poll.
        self.poll_counter: int = 0
        #: Local time of the speculating thread in multiprocessor mode.
        self.spec_clock: int = 0
        #: Machine-internal budget bookkeeping (multiprocessor mode).
        self.pending_budget: Optional[int] = None
        #: CPU time this thread has consumed (excludes blocked time) —
        #: used for the paper's cycles-between-calls statistics.
        self.cpu_cycles: int = 0
        #: Clock reading when this thread last blocked on I/O — the kernel
        #: charges the blocked interval to the demand-stall phase at wakeup.
        self.blocked_at: int = 0

    # -- register helpers ---------------------------------------------------

    def reg(self, r: Reg) -> int:
        return self.regs[int(r)]

    def set_reg(self, r: Reg, value: int) -> None:
        if r is not Reg.zero:
            self.regs[int(r)] = value & ((1 << 64) - 1)

    @property
    def runnable(self) -> bool:
        return self.state is ThreadState.RUNNABLE

    def block(self) -> None:
        self.state = ThreadState.BLOCKED

    def wake(self, extra_cost: int = 0) -> None:
        """Make the thread runnable again, charging ``extra_cost`` cycles
        before its next instruction."""
        if self.state is ThreadState.EXITED:
            return
        self.state = ThreadState.RUNNABLE
        self.pending_cost += extra_cost

    def exit(self) -> None:
        self.state = ThreadState.EXITED

    def snapshot_regs(self) -> List[int]:
        """Copy of the register file (used for speculation restarts)."""
        return list(self.regs)

    def load_regs(self, saved: List[int]) -> None:
        self.regs = list(saved)

    def __repr__(self) -> str:
        return f"Thread({self.tid}:{self.name}, {self.state.value}, pc={self.pc})"
