"""The simulated kernel.

Provides what the paper's design requires of the operating system: strictly
prioritized preemptive kernel threads, the UNIX file system calls, TIP's
hint ioctls, signal handling for the speculating thread, and page-residency
accounting (Table 6's footprint / reclaims / faults).
"""

from repro.kernel.kernel import Kernel
from repro.kernel.process import FdState, Process
from repro.kernel.thread import Thread, ThreadState
from repro.kernel.vmstat import PageAccounting

__all__ = ["Kernel", "Process", "FdState", "Thread", "ThreadState", "PageAccounting"]
