"""The kernel proper: scheduling loop and system call layer.

Scheduling is strict-priority preemptive, which is all the paper's design
asks of the OS: the speculating thread (priority 1) runs only when the
original thread (priority 10) is stalled on I/O.  With ``ncpus=2`` the
Section 5 multiprocessor extension is enabled: the speculating thread runs
on a second CPU, modelled by granting it a cycle *budget* equal to elapsed
wall time and interleaving its execution in fixed-size slices.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector

from repro.errors import BadFileDescriptor, InvalidSyscall, SimulationError
from repro.fs.filesystem import FileSystem, Inode
from repro.fs.manager import CacheManagerBase
from repro.kernel.process import Process
from repro.kernel.thread import Thread, ThreadState
from repro.params import BLOCK_SIZE, SystemConfig
from repro.sim import metrics
from repro.sim.clock import SimClock
from repro.sim.engine import EventEngine
from repro.sim.stats import StatRegistry
from repro.storage.striping import StripedArray
from repro.trace.tracer import (
    CAT_KERNEL,
    CAT_SCHED,
    NULL_TRACER,
    TID_ORIGINAL,
    TID_SPECULATING,
    Tracer,
)
from repro.tip.hints import HintSegment, Ioctl
from repro.vm.isa import (
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
    SYS_CANCEL_ALL,
    SYS_CLOSE,
    SYS_EXIT,
    SYS_FSTAT,
    SYS_HINT_FD_SEG,
    SYS_HINT_SEG,
    SYS_LSEEK,
    SYS_OPEN,
    SYS_READ,
    SYS_SBRK,
    SYS_WRITE,
    Reg,
    to_signed,
)
from repro.vm.machine import Machine

_STOPPED = -1

#: Multiprocessor-mode interleave slice, in cycles.
MP_SLICE = 32_768

V0 = int(Reg.v0)
A0 = int(Reg.a0)
A1 = int(Reg.a1)
A2 = int(Reg.a2)
A3 = int(Reg.a3)

#: Syscall number -> trace-friendly name.
SYSCALL_NAMES = {
    SYS_EXIT: "exit",
    SYS_OPEN: "open",
    SYS_CLOSE: "close",
    SYS_READ: "read",
    SYS_WRITE: "write",
    SYS_LSEEK: "lseek",
    SYS_FSTAT: "fstat",
    SYS_SBRK: "sbrk",
    SYS_HINT_SEG: "hint_seg",
    SYS_HINT_FD_SEG: "hint_fd_seg",
    SYS_CANCEL_ALL: "cancel_all",
}


class Kernel:
    """Owns processes, the machine, and the system call table."""

    def __init__(
        self,
        config: SystemConfig,
        fs: FileSystem,
        manager: CacheManagerBase,
        array: StripedArray,
        engine: EventEngine,
        clock: SimClock,
        stats: StatRegistry,
        injector: Optional["FaultInjector"] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.config = config
        self.fs = fs
        self.manager = manager
        self.array = array
        self.engine = engine
        self.clock = clock
        self.stats = stats
        #: Fault oracle shared with the storage stack; None = fault-free.
        self.injector = injector
        #: Event tracer (the shared NULL_TRACER when tracing is off).
        self.tracer = tracer
        self.machine = Machine(self)
        self.processes: List[Process] = []
        self._next_pid = 1
        self._last_thread: Optional[Thread] = None

        self._syscalls = {
            SYS_EXIT: self._sys_exit,
            SYS_OPEN: self._sys_open,
            SYS_CLOSE: self._sys_close,
            SYS_READ: self._sys_read,
            SYS_WRITE: self._sys_write,
            SYS_LSEEK: self._sys_lseek,
            SYS_FSTAT: self._sys_fstat,
            SYS_SBRK: self._sys_sbrk,
            SYS_HINT_SEG: self._sys_hint_seg,
            SYS_HINT_FD_SEG: self._sys_hint_fd_seg,
            SYS_CANCEL_ALL: self._sys_cancel_all,
        }

    # -- process management -----------------------------------------------------

    def spawn(self, binary) -> Process:
        """Create a process for ``binary``.

        If the binary is a SpecHint speculating executable (it carries
        ``spec_meta``), the SpecHint initialization routine is modelled:
        its cycle cost is charged to the original thread and the
        speculating thread is created (idle until the first restart).
        """
        process = Process(self._next_pid, binary)
        self._next_pid += 1
        self.processes.append(process)

        spec_meta = getattr(binary, "spec_meta", None)
        if spec_meta is not None:
            from repro.spechint.runtime import SpecProcessState

            spec_thread = process.add_spec_thread()
            process.spec = SpecProcessState(self, process, spec_thread, spec_meta)
            process.original_thread.pending_cost += self.config.cpu.spec_init_cycles
        return process

    # -- run loops ------------------------------------------------------------------

    def run(self, cycle_limit: int = 1 << 52) -> None:
        """Run until every process has exited."""
        if self.config.ncpus >= 2:
            self._run_mp(cycle_limit)
        else:
            self._run_up(cycle_limit)
        self.stats.counter(metrics.KERNEL_RUNS).add()

    def _alive(self) -> bool:
        return any(not p.exited for p in self.processes)

    def _run_up(self, cycle_limit: int) -> None:
        while self._alive():
            if self.clock.now > cycle_limit:
                raise SimulationError(f"cycle limit {cycle_limit} exceeded")
            thread = self._pick_thread()
            if thread is None:
                if not self.engine.advance_to_next():
                    raise SimulationError(
                        "deadlock: no runnable threads and no pending events"
                    )
                continue
            self._charge_switch(thread)
            # Cap execution at the cycle limit so runaway programs (no
            # events pending) still return control to this loop.
            self.machine.execute(thread, until=cycle_limit + 1)
            self.engine.dispatch_due()

    def _run_mp(self, cycle_limit: int) -> None:
        """Two CPUs: the speculating thread consumes a budget equal to wall
        time, interleaved with normal execution in MP_SLICE chunks."""
        budget = 0
        last_grant = self.clock.now
        while self._alive():
            if self.clock.now > cycle_limit:
                raise SimulationError(f"cycle limit {cycle_limit} exceeded")
            now = self.clock.now
            budget += now - last_grant
            last_grant = now

            original = self._pick_thread(spec_ok=False)
            if original is not None:
                self._charge_switch(original)
                self.machine.execute(original, until=now + MP_SLICE)
                self.engine.dispatch_due()
                continue

            spec_thread = self._pick_thread(spec_only=True)
            if spec_thread is not None and budget > 0:
                self.machine.execute(spec_thread, budget=budget)
                left = spec_thread.pending_budget
                budget = left if left is not None and left > 0 else 0
                self.engine.dispatch_due()
                continue

            if not self.engine.advance_to_next():
                raise SimulationError(
                    "deadlock: no runnable threads and no pending events"
                )

    def _pick_thread(
        self, spec_ok: bool = True, spec_only: bool = False
    ) -> Optional[Thread]:
        best: Optional[Thread] = None
        for process in self.processes:
            if process.exited:
                continue
            for thread in process.threads:
                if thread.state is not ThreadState.RUNNABLE:
                    continue
                if spec_only and not thread.is_spec:
                    continue
                if not spec_ok and thread.is_spec:
                    continue
                if best is None or thread.priority > best.priority:
                    best = thread
        return best

    def _charge_switch(self, thread: Thread) -> None:
        if self._last_thread is not thread and self._last_thread is not None:
            self.clock.advance(self.config.cpu.context_switch_cycles)
            self.stats.counter(metrics.KERNEL_CONTEXT_SWITCHES).add()
            if self.tracer.enabled:
                self.tracer.instant(
                    CAT_SCHED, "ctx_switch",
                    tid=TID_SPECULATING if thread.is_spec else TID_ORIGINAL,
                    to_thread=thread.name,
                )
        self._last_thread = thread

    # -- syscall dispatch ---------------------------------------------------------------

    def syscall(self, thread: Thread, num: int) -> int:
        """Dispatch a system call.  Returns the cycle cost, or -1 when the
        kernel already charged the clock and stopped the thread."""
        handler = self._syscalls.get(num)
        if handler is None:
            raise InvalidSyscall(f"syscall {num} at pc={thread.pc}")
        if self.tracer.enabled:
            self.tracer.instant(
                CAT_KERNEL, f"sys.{SYSCALL_NAMES.get(num, num)}",
                tid=TID_SPECULATING if thread.is_spec else TID_ORIGINAL,
                pid=thread.process.pid,
            )
        return handler(thread)

    def handle_exit(self, thread: Thread, code: int) -> int:
        thread.process.exit(code)
        thread.stop_reason = "exited"
        return _STOPPED

    # -- individual syscalls ------------------------------------------------------------------

    def _sys_exit(self, thread: Thread) -> int:
        return self.handle_exit(thread, to_signed(thread.regs[A0]))

    def _sys_open(self, thread: Thread) -> int:
        proc = thread.process
        path = proc.mem.read_cstring(thread.regs[A0]).decode("ascii")
        inode = self.fs.lookup_or_none(path)
        if inode is None:
            thread.regs[V0] = (1 << 64) - 1  # -1
        else:
            fdstate = proc.open_fd(inode, path)
            thread.regs[V0] = fdstate.fd
        self.stats.counter(metrics.APP_OPEN_CALLS).add()
        thread.pc += 1
        return self.config.cpu.syscall_cycles + self.config.cpu.namei_cycles

    def _sys_close(self, thread: Thread) -> int:
        proc = thread.process
        fd_num = thread.regs[A0]
        try:
            proc.close_fd(fd_num)
            thread.regs[V0] = 0
        except BadFileDescriptor:
            thread.regs[V0] = (1 << 64) - 1
        thread.pc += 1
        return self.config.cpu.syscall_cycles

    def _sys_read(self, thread: Thread) -> int:
        proc = thread.process
        cpu = self.config.cpu
        fd_num = thread.regs[A0]
        buf = thread.regs[A1]
        length = thread.regs[A2]
        cost = cpu.syscall_cycles
        self.stats.counter(metrics.APP_READ_CALLS).add()
        if not thread.is_spec:
            self.stats.distribution(metrics.APP_READ_CALL_CPU).observe(thread.cpu_cycles)

        # SpecHint hook: the original thread of a transformed application
        # checks the hint log (and may request a speculation restart)
        # *before* issuing the read request (Section 3.2.2).
        if proc.spec is not None and not thread.is_spec:
            cost += proc.spec.before_read(thread, fd_num, length)

        fdstate = proc.fd(fd_num)
        inode = fdstate.inode
        if inode is None:
            if not thread.is_spec:
                proc.read_trace.append((-1, 0, length))
            thread.regs[V0] = 0
            thread.pc += 1
            return cost

        offset = fdstate.offset
        # Demand-read trace (zero cycles, original thread only): the
        # differential oracle compares this sequence across spec-on/off.
        if not thread.is_spec:
            proc.read_trace.append((inode.ino, offset, length))
        n = min(length, max(0, inode.size - offset))
        if n <= 0:
            thread.regs[V0] = 0
            thread.pc += 1
            return cost

        first = offset // BLOCK_SIZE
        last = (offset + n - 1) // BLOCK_SIZE
        self.stats.counter(metrics.APP_READ_BLOCKS).add(last - first + 1)
        self.stats.counter(metrics.APP_READ_BYTES).add(n)
        hinted = self.manager.consume_hints(proc.pid, inode, first, last, offset, n)
        copy_cost = int(n * cpu.read_copy_cycles_per_byte)

        def finish() -> None:
            proc.mem.write_bytes(buf, inode.read_at(offset, n))
            reclaims, faults = proc.vmstat.touch_range(buf, n)
            thread.pending_cost += (
                reclaims * cpu.page_reclaim_cycles + faults * cpu.page_fault_cycles
            )
            fdstate.offset = offset + n
            self.manager.read_call_completed(
                proc.pid, fdstate.ra_state, inode, first, last, hinted
            )
            thread.regs[V0] = n
            thread.pc += 1

        def on_ready() -> None:
            thread.pending_io -= 1
            if thread.pending_io == 0:
                if not thread.is_spec:
                    stall = self.clock.now - thread.blocked_at
                    self.stats.counter(metrics.KERNEL_DEMAND_STALL_CYCLES).add(stall)
                    self.stats.distribution(metrics.KERNEL_STALL_CYCLES).observe(stall)
                    if self.tracer.enabled:
                        self.tracer.complete(
                            CAT_KERNEL, "read.stall", thread.blocked_at, stall,
                            tid=TID_ORIGINAL, pid=proc.pid, ino=inode.ino,
                        )
                finish()
                thread.wake(extra_cost=copy_cost)

        thread.pending_io = 0
        for file_block in range(first, last + 1):
            if not self.manager.access_block(inode, file_block, on_ready):
                thread.pending_io += 1

        if thread.pending_io == 0:
            finish()
            return cost + copy_cost

        self.stats.counter(metrics.APP_READ_STALLS).add()
        thread.block()
        thread.stop_reason = "blocked"
        thread.cpu_cycles += cost
        self.clock.advance(cost)
        # The stall interval starts once the syscall's own CPU cost is paid.
        thread.blocked_at = self.clock.now
        return _STOPPED

    def _sys_write(self, thread: Thread) -> int:
        proc = thread.process
        cpu = self.config.cpu
        fd_num = thread.regs[A0]
        buf = thread.regs[A1]
        length = thread.regs[A2]
        payload = proc.mem.read_bytes(buf, length)
        fdstate = proc.fd(fd_num)
        self.stats.counter(metrics.APP_WRITE_CALLS).add()
        self.stats.counter(metrics.APP_WRITE_BYTES).add(length)
        if fdstate.inode is None:
            proc.output.extend(payload)
        else:
            start_block = fdstate.offset // BLOCK_SIZE
            end_block = (fdstate.offset + max(0, length - 1)) // BLOCK_SIZE
            self.stats.counter(metrics.APP_WRITE_BLOCKS).add(end_block - start_block + 1)
            fdstate.inode.write_at(fdstate.offset, payload)
            fdstate.offset += length
        thread.regs[V0] = length
        thread.pc += 1
        # Write-behind buffering: the data copy is the only latency.
        return self.config.cpu.syscall_cycles + int(
            length * cpu.write_copy_cycles_per_byte
        )

    def _sys_lseek(self, thread: Thread) -> int:
        proc = thread.process
        fdstate = proc.fd(thread.regs[A0])
        offset = to_signed(thread.regs[A1])
        whence = thread.regs[A2]
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = fdstate.offset + offset
        elif whence == SEEK_END:
            size = fdstate.inode.size if fdstate.inode is not None else 0
            new = size + offset
        else:
            raise InvalidSyscall(f"lseek whence {whence}")
        fdstate.offset = max(0, new)
        thread.regs[V0] = fdstate.offset
        thread.pc += 1
        return self.config.cpu.syscall_cycles

    def _sys_fstat(self, thread: Thread) -> int:
        proc = thread.process
        fdstate = proc.fd(thread.regs[A0])
        thread.regs[V0] = fdstate.inode.size if fdstate.inode is not None else 0
        thread.pc += 1
        return self.config.cpu.syscall_cycles

    def _sys_sbrk(self, thread: Thread) -> int:
        proc = thread.process
        thread.regs[V0] = proc.mem.sbrk(thread.regs[A0])
        thread.pc += 1
        return self.config.cpu.syscall_cycles

    # -- hint ioctls (Table 2) ------------------------------------------------------------

    def hint_from(
        self,
        pid: int,
        inode: Optional[Inode],
        offset: int,
        length: int,
        via: Ioctl,
    ) -> int:
        """Issue one hint segment to the cache manager (used both by the
        hint syscalls and by the SpecHint runtime).

        The hint channel is lossy under fault injection (hints may be
        dropped or rewritten to garbage), and TIP must tolerate whatever
        arrives: segments are validated and clamped to the file before they
        reach the manager.  Hints are pure advice — losing or mangling one
        can only degrade toward the unhinted baseline.
        """
        self.stats.counter(metrics.APP_HINT_CALLS).add()
        if inode is None or length <= 0:
            self.stats.counter(metrics.APP_HINT_CALLS_UNRESOLVABLE).add()
            return 0

        if self.injector is not None:
            delivered = self.injector.filter_hint(inode, offset, length)
            if delivered is None:
                return 0  # lost in the channel; the caller never knows
            offset, length = delivered

        # Defensive validation: garbage offsets/lengths must not crash TIP.
        if offset < 0 or offset >= inode.size or length <= 0:
            self.stats.counter(metrics.APP_HINT_CALLS_UNRESOLVABLE).add()
            return 0
        length = min(length, inode.size - offset)

        segment = HintSegment(inode, offset, length, pid, via)
        return self.manager.hint_segments(pid, [segment])

    def _sys_hint_seg(self, thread: Thread) -> int:
        proc = thread.process
        path = proc.mem.read_cstring(thread.regs[A0]).decode("ascii", "replace")
        inode = self.fs.lookup_or_none(path)
        self.hint_from(
            proc.pid, inode, thread.regs[A1], thread.regs[A2], Ioctl.TIPIO_SEG
        )
        thread.regs[V0] = 0
        thread.pc += 1
        return self.config.cpu.syscall_cycles + self.config.cpu.hint_call_cycles

    def _sys_hint_fd_seg(self, thread: Thread) -> int:
        proc = thread.process
        try:
            fdstate = proc.fd(thread.regs[A0])
            inode = fdstate.inode
        except BadFileDescriptor:
            inode = None
        self.hint_from(
            proc.pid, inode, thread.regs[A1], thread.regs[A2], Ioctl.TIPIO_FD_SEG
        )
        thread.regs[V0] = 0
        thread.pc += 1
        return self.config.cpu.syscall_cycles + self.config.cpu.hint_call_cycles

    def _sys_cancel_all(self, thread: Thread) -> int:
        cancelled = self.manager.cancel_all(thread.process.pid)
        thread.regs[V0] = cancelled
        thread.pc += 1
        return self.config.cpu.syscall_cycles + self.config.cpu.hint_call_cycles
