"""Processes and file descriptor state."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import BadFileDescriptor
from repro.fs.filesystem import Inode
from repro.fs.readahead import ReadAheadState
from repro.kernel.thread import PRIO_ORIGINAL, PRIO_SPECULATING, Thread, ThreadState
from repro.kernel.vmstat import PageAccounting
from repro.vm.binary import Binary
from repro.vm.memory import AddressSpace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spechint.runtime import SpecProcessState

#: First file descriptor handed out by open() (0-2 are stdio).
FIRST_FD = 3
STDOUT_FD = 1
STDERR_FD = 2


class FdState:
    """One open file description."""

    __slots__ = ("fd", "inode", "offset", "ra_state", "path")

    def __init__(self, fd: int, inode: Optional[Inode], path: str) -> None:
        self.fd = fd
        #: None for stdio descriptors.
        self.inode = inode
        self.offset = 0
        #: Sequential read-ahead state for this open file.
        self.ra_state = ReadAheadState()
        self.path = path

    def __repr__(self) -> str:
        return f"FdState(fd={self.fd}, path={self.path!r}, offset={self.offset})"


class Process:
    """One simulated process: address space, threads, fds, speculation state."""

    def __init__(self, pid: int, binary: Binary) -> None:
        self.pid = pid
        self.binary = binary
        self.name = binary.name
        self.mem = AddressSpace(binary.data)
        self.vmstat = PageAccounting()

        self.fds: Dict[int, FdState] = {
            STDOUT_FD: FdState(STDOUT_FD, None, "<stdout>"),
            STDERR_FD: FdState(STDERR_FD, None, "<stderr>"),
        }
        self._next_fd = FIRST_FD

        self.threads: List[Thread] = []
        main = Thread(0, "original", self, PRIO_ORIGINAL)
        main.pc = binary.entry_point
        main.regs[29] = self.mem.stack_top  # sp
        self.threads.append(main)

        #: SpecHint per-process state; attached when the binary is a
        #: speculating executable (see repro.spechint.runtime).
        self.spec: Optional["SpecProcessState"] = None

        self.exited = False
        self.exit_code: int = 0
        #: Bytes the program wrote to stdout/stderr (observable output,
        #: used by correctness tests: transformed == original).
        self.output = bytearray()
        #: Demand-read trace: (ino, offset, length) per original-thread
        #: read call, in program order.  The differential oracle asserts
        #: this sequence is identical with speculation on and off —
        #: hinting may only change *timing*, never *which* data the
        #: application demands.
        self.read_trace: List[Tuple[int, int, int]] = []

        # Footprint: the loader maps the executable image (no demand
        # faults counted) plus the initialized data segment.
        self.vmstat.touch_range(self.mem.data_start, max(1, len(binary.data)))
        self._account_image_pages(binary)

    def _account_image_pages(self, binary: Binary) -> None:
        """Count the executable image as resident pages.

        Text is not data-addressable (Harvard layout) but occupies real
        memory; it is accounted as synthetic pages outside the data range.
        Benchmark binaries declare their full-scale executable size
        (a SpecVM program is far smaller than a statically linked Alpha
        executable); a transformed binary's modelled size includes the
        shadow code and support libraries, which is what makes the
        speculating executables' footprints larger (Table 6).
        """
        from repro.params import PAGE_SIZE

        meta = getattr(binary, "spec_meta", None)
        if meta is not None and meta.report is not None:
            image_bytes = meta.report.transformed_size_bytes
        else:
            image_bytes = getattr(binary, "declared_size_bytes", None) or \
                binary.size_bytes
        base_page = 1 << 40  # synthetic page range for the image
        for page in range(base_page, base_page + max(1, image_bytes // PAGE_SIZE) + 1):
            self.vmstat.preload_page(page)

    # -- threads -----------------------------------------------------------

    @property
    def original_thread(self) -> Thread:
        return self.threads[0]

    @property
    def spec_thread(self) -> Optional[Thread]:
        for t in self.threads:
            if t.is_spec:
                return t
        return None

    def add_spec_thread(self) -> Thread:
        """Spawn the low-priority speculating thread (starts idle)."""
        thread = Thread(len(self.threads), "speculating", self, PRIO_SPECULATING,
                        is_spec=True)
        thread.state = ThreadState.SPEC_IDLE
        self.threads.append(thread)
        return thread

    # -- fds ----------------------------------------------------------------

    def open_fd(self, inode: Inode, path: str) -> FdState:
        fd = self._next_fd
        self._next_fd += 1
        state = FdState(fd, inode, path)
        self.fds[fd] = state
        return state

    def fd(self, fd_num: int) -> FdState:
        state = self.fds.get(fd_num)
        if state is None:
            raise BadFileDescriptor(f"pid {self.pid}: fd {fd_num}")
        return state

    def close_fd(self, fd_num: int) -> None:
        if fd_num not in self.fds:
            raise BadFileDescriptor(f"pid {self.pid}: close fd {fd_num}")
        del self.fds[fd_num]

    def exit(self, code: int) -> None:
        self.exited = True
        self.exit_code = code
        for thread in self.threads:
            thread.exit()

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, {self.name!r}, exited={self.exited})"
