"""Structured tracing, metrics, and hint-lifecycle observability.

Public surface:

* :class:`~repro.trace.tracer.Tracer` / :data:`~repro.trace.tracer.NULL_TRACER`
  — the ring-buffered event recorder and its shared disabled stand-in;
* :class:`~repro.trace.lifecycle.HintLifecycle` — per-hint state machine
  (disclosed -> prefetch issued -> filled -> consumed | cancelled | wasted);
* :func:`~repro.trace.phases.stall_breakdown` — the always-on cycle ledger;
* :class:`~repro.trace.analyzer.TraceAnalyzer` — derived metrics
  (median hint lead time, overlapped speculation, disk utilization);
* :mod:`~repro.trace.export` — JSONL and Chrome ``trace_event`` writers.
"""

from repro.trace.analyzer import TraceAnalyzer
from repro.trace.export import chrome_trace, export_to_path, write_chrome_trace, write_jsonl
from repro.trace.lifecycle import HintLifecycle, HintRecord
from repro.trace.phases import StallBreakdown, stall_breakdown
from repro.trace.tracer import (
    ALL_CATEGORIES,
    CAT_CACHE,
    CAT_HINT,
    CAT_KERNEL,
    CAT_SCHED,
    CAT_SPEC,
    CAT_STORAGE,
    CAT_TIP,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    parse_categories,
)

__all__ = [
    "ALL_CATEGORIES",
    "CAT_CACHE",
    "CAT_HINT",
    "CAT_KERNEL",
    "CAT_SCHED",
    "CAT_SPEC",
    "CAT_STORAGE",
    "CAT_TIP",
    "HintLifecycle",
    "HintRecord",
    "NULL_TRACER",
    "NullTracer",
    "StallBreakdown",
    "TraceAnalyzer",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "export_to_path",
    "parse_categories",
    "stall_breakdown",
    "write_chrome_trace",
    "write_jsonl",
]
