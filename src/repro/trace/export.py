"""Trace exporters: JSONL and Chrome ``trace_event``.

Two formats, one event shape:

* **JSONL** — one event dict per line, trivially greppable/streamable;
  this is what the differential oracle drops next to a failing cell.
* **Chrome trace_event** — the same dicts wrapped in
  ``{"traceEvents": [...], ...}`` with thread-name metadata so the file
  loads directly into Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing`` with readable track names.

Timestamps are simulated cycles passed through as the format's
microsecond field — absolute units are meaningless inside the simulator,
relative spacing is what the timeline view is for.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, List

from repro.errors import TraceError
from repro.trace.tracer import (
    TID_DISK_BASE,
    TID_ORIGINAL,
    TID_SPECULATING,
    TID_SYSTEM,
    TraceEvent,
    Tracer,
)

#: Human names for the synthetic thread ids (Perfetto track labels).
_TRACK_NAMES = {
    TID_ORIGINAL: "original thread",
    TID_SPECULATING: "speculating thread",
    TID_SYSTEM: "kernel/tip",
}


def _track_name(tid: int) -> str:
    name = _TRACK_NAMES.get(tid)
    if name is not None:
        return name
    if tid >= TID_DISK_BASE:
        return f"disk {tid - TID_DISK_BASE}"
    return f"track {tid}"


def write_jsonl(events: Iterable[TraceEvent], stream: IO[str]) -> int:
    """Write one JSON event per line.  Returns the event count."""
    count = 0
    for event in events:
        stream.write(json.dumps(event.to_jsonable(), sort_keys=True))
        stream.write("\n")
        count += 1
    return count


def chrome_trace(tracer: Tracer) -> Dict[str, object]:
    """Build the Chrome ``trace_event`` document for a recorded trace."""
    events: List[Dict[str, object]] = []
    seen_tids = set()
    for event in tracer.events():
        seen_tids.add(event.tid)
        events.append(event.to_jsonable())
    # Thread-name metadata events give Perfetto readable track labels.
    for tid in sorted(seen_tids):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": _track_name(tid)},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "clock": "simulated cycles",
            "dropped_events": tracer.dropped,
        },
    }


def write_chrome_trace(tracer: Tracer, stream: IO[str]) -> int:
    """Write the Chrome trace JSON document.  Returns the event count."""
    document = chrome_trace(tracer)
    json.dump(document, stream)
    stream.write("\n")
    return len(tracer)


def export_to_path(tracer: Tracer, path: str, fmt: str) -> int:
    """Export ``tracer`` to ``path`` in ``fmt`` ("jsonl" or "chrome")."""
    try:
        with open(path, "w", encoding="utf-8") as handle:
            if fmt == "jsonl":
                return write_jsonl(tracer.events(), handle)
            if fmt == "chrome":
                return write_chrome_trace(tracer, handle)
    except OSError as exc:
        raise TraceError(f"cannot write trace to {path!r}: {exc}") from exc
    raise TraceError(f"unknown trace export format {fmt!r} (jsonl|chrome)")
