"""Phase attribution: where did the simulated cycles go?

The paper's performance story is a cycle ledger: elapsed time on the
original thread splits into *compute* (application instructions and
syscall overheads), *checks* (SpecHint's hint-log comparisons and restart
requests), and *demand stall* (blocked on a read the cache could not
serve).  The speculating thread's own CPU time — which in uniprocessor
mode hides entirely inside the stall phase — is reported alongside.

This attribution is **always on**: it is computed from counters the
kernel and the SpecHint runtime maintain anyway, so every
:class:`~repro.harness.results.RunResult` carries a stall breakdown even
when event tracing is disabled.  The finer-grained view — how much of the
speculating thread's time actually *overlapped* a stall — needs the event
timeline and lives in :class:`~repro.trace.analyzer.TraceAnalyzer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from repro.sim.metrics import KERNEL_DEMAND_STALL_CYCLES, SPEC_CHECK_CYCLES
from repro.sim.stats import StatRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


@dataclass
class StallBreakdown:
    """Cycle ledger for one run (all values in simulated cycles).

    ``wall`` covers the original thread's timeline, so
    ``compute + checks + demand_stall + other == wall``; ``speculation``
    overlaps the other phases (it runs while the original thread is
    stalled, or on the second CPU) and is reported beside the ledger, not
    inside it.
    """

    wall: int = 0
    #: Application instructions + syscall overheads on original threads.
    compute: int = 0
    #: Hint-log checks and restart requests charged to the original thread.
    checks: int = 0
    #: Original-thread cycles blocked waiting for demand reads.
    demand_stall: int = 0
    #: CPU time consumed by speculating threads (overlapping, see above).
    speculation: int = 0
    #: Remainder: context switches, spec-thread init, scheduler idle gaps.
    other: int = 0

    def to_jsonable(self) -> Dict[str, int]:
        return {
            "wall": self.wall,
            "compute": self.compute,
            "checks": self.checks,
            "demand_stall": self.demand_stall,
            "speculation": self.speculation,
            "other": self.other,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, int]) -> "StallBreakdown":
        return cls(
            wall=int(data.get("wall", 0)),
            compute=int(data.get("compute", 0)),
            checks=int(data.get("checks", 0)),
            demand_stall=int(data.get("demand_stall", 0)),
            speculation=int(data.get("speculation", 0)),
            other=int(data.get("other", 0)),
        )

    def pct(self, phase_cycles: int) -> float:
        """A phase as a percentage of wall time."""
        return 100.0 * phase_cycles / self.wall if self.wall else 0.0


def stall_breakdown(kernel: "Kernel") -> StallBreakdown:
    """Compute the cycle ledger from a (possibly still running) kernel.

    Reads only counters and per-thread CPU totals — never the event
    buffer — so it works identically with tracing on, off, or mid-run.
    """
    stats: StatRegistry = kernel.stats
    wall = kernel.clock.now
    original_cpu = 0
    spec_cpu = 0
    for process in kernel.processes:
        for thread in process.threads:
            if thread.is_spec:
                spec_cpu += thread.cpu_cycles
            else:
                original_cpu += thread.cpu_cycles
    checks = stats.get(SPEC_CHECK_CYCLES)
    demand_stall = stats.get(KERNEL_DEMAND_STALL_CYCLES)
    # Checks are charged through the read syscall and therefore already
    # included in the threads' CPU totals; carve them out of compute.
    compute = max(0, original_cpu - checks)
    other = max(0, wall - compute - checks - demand_stall)
    return StallBreakdown(
        wall=wall,
        compute=compute,
        checks=checks,
        demand_stall=demand_stall,
        speculation=spec_cpu,
        other=other,
    )
