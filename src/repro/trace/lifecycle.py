"""Per-hint lifecycle accounting.

The informed-prefetching lineage behind TIP stands on per-hint accounting:
*when* was each hint disclosed, when did its prefetch go to a disk, when
did the block land in the cache, and how did the hint end — consumed by
the read it predicted, cancelled by ``TIPIO_CANCEL_ALL``, or wasted
(stale-dropped or never consumed)?  This module tracks exactly that, one
record per block-granularity hint queue entry, keyed by the TIP manager's
hint sequence number.

Invariants (tested across every app and chaos profile):

* every disclosed hint ends in **exactly one** terminal state —
  ``disclosed == consumed + cancelled + wasted + open`` at all times, and
  ``open == 0`` after :meth:`~repro.tip.manager.TipManager.finalize`;
* per process, ``open_for(pid)`` equals the manager's
  ``outstanding_hints(pid)`` — in particular it drops to zero the moment
  ``TIPIO_CANCEL_ALL`` drains the queue.

The tracker never reads anything but the simulation clock: like the
tracer it is purely observational and cannot perturb a run.  Detailed
records are kept up to ``capacity`` (aggregates stay exact beyond it, so
a pathological hint storm degrades the *top-hints* listing, never the
accounting).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.clock import SimClock
from repro.sim.metrics import TIP_HINT_LEAD_CYCLES, TIP_HINTS_READY_BEFORE_DEMAND
from repro.sim.stats import Distribution, StatRegistry
from repro.trace.tracer import CAT_HINT, NULL_TRACER, TID_SYSTEM, Tracer

BlockKey = Tuple[int, int]  # (ino, file_block) — mirrors fs.cache.BlockKey

#: Terminal states a hint can end in.
CONSUMED = "consumed"
CANCELLED = "cancelled"
WASTED = "wasted"


class HintRecord:
    """Lifecycle of one block-granularity hint."""

    __slots__ = (
        "seq", "key", "pid", "disclosed_ts", "issued_ts", "filled_ts",
        "terminal", "terminal_ts", "detail",
    )

    def __init__(self, seq: int, key: BlockKey, pid: int, disclosed_ts: int) -> None:
        self.seq = seq
        self.key = key
        self.pid = pid
        self.disclosed_ts = disclosed_ts
        #: When TIP issued a prefetch for this hint's block (None = never).
        self.issued_ts: Optional[int] = None
        #: When the prefetched block became resident (None = never).
        self.filled_ts: Optional[int] = None
        #: Terminal state (None while the hint is open).
        self.terminal: Optional[str] = None
        self.terminal_ts: int = 0
        #: Why a wasted hint was wasted ("stale" / "unconsumed").
        self.detail: str = ""

    @property
    def lead_cycles(self) -> int:
        """Disclosure-to-terminal lead time."""
        return self.terminal_ts - self.disclosed_ts

    @property
    def ready_before_demand(self) -> bool:
        """The prefetch had fully arrived before the demand read consumed
        the hint — the overlap the whole system exists to create."""
        return (
            self.terminal == CONSUMED
            and self.filled_ts is not None
            and self.filled_ts <= self.terminal_ts
        )

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "ino": self.key[0],
            "block": self.key[1],
            "pid": self.pid,
            "disclosed_ts": self.disclosed_ts,
            "issued_ts": self.issued_ts,
            "filled_ts": self.filled_ts,
            "terminal": self.terminal,
            "terminal_ts": self.terminal_ts,
            "detail": self.detail,
        }


class HintLifecycle:
    """Tracks every hint from disclosure to its terminal state."""

    #: Detailed records kept; aggregates remain exact beyond this.
    DEFAULT_CAPACITY = 1 << 17

    def __init__(
        self,
        clock: SimClock,
        tracer: Tracer = NULL_TRACER,
        stats: Optional[StatRegistry] = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.clock = clock
        self.tracer = tracer
        #: When given, lead-time aggregates mirror into the stat registry.
        self.stats = stats
        self.capacity = capacity
        self._records: Dict[int, HintRecord] = {}
        #: Open (non-terminal) hint seqs per block key, disclosure order.
        self._open_by_key: Dict[BlockKey, List[int]] = {}
        #: Open hints per pid (exact even past capacity).
        self._open_by_pid: Dict[int, int] = {}

        # Exact aggregates (never capped).
        self.disclosed_total = 0
        self.terminal_counts: Dict[str, int] = {
            CONSUMED: 0, CANCELLED: 0, WASTED: 0,
        }
        self.lead_times = Distribution("hint.lead_cycles")
        #: Consumed hints whose block had fully arrived before the read.
        self.ready_before_demand = 0
        #: Prefetches that failed terminally and fell back to disclosed.
        self.prefetches_dropped = 0

    # -- intake -------------------------------------------------------------

    def disclosed(self, seq: int, key: BlockKey, pid: int) -> None:
        """A hint entered a process's queue."""
        now = self.clock.now
        self.disclosed_total += 1
        self._open_by_pid[pid] = self._open_by_pid.get(pid, 0) + 1
        if len(self._records) < self.capacity:
            self._records[seq] = HintRecord(seq, key, pid, now)
            self._open_by_key.setdefault(key, []).append(seq)
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(CAT_HINT, "hint.disclosed", tid=TID_SYSTEM,
                           seq=seq, ino=key[0], block=key[1], pid=pid)

    # -- prefetch progress ---------------------------------------------------

    def prefetch_issued(self, key: BlockKey) -> None:
        """TIP sent a prefetch for ``key`` to the array."""
        record = self._first_open(key, unissued=True)
        if record is not None:
            record.issued_ts = self.clock.now
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(CAT_HINT, "hint.prefetch_issued", tid=TID_SYSTEM,
                           ino=key[0], block=key[1])

    def filled(self, key: BlockKey) -> None:
        """A fetch for ``key`` completed; the block is resident."""
        now = self.clock.now
        for seq in self._open_by_key.get(key, ()):
            record = self._records.get(seq)
            if record is not None and record.filled_ts is None:
                record.filled_ts = now

    def prefetch_dropped(self, key: BlockKey) -> None:
        """The prefetch failed terminally; the hint stays open (TIP may
        re-issue it) but its issue timestamp no longer stands."""
        self.prefetches_dropped += 1
        record = self._first_open(key, unissued=False)
        if record is not None and record.filled_ts is None:
            record.issued_ts = None
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(CAT_HINT, "hint.prefetch_dropped", tid=TID_SYSTEM,
                           ino=key[0], block=key[1])

    def _first_open(self, key: BlockKey, unissued: bool) -> Optional[HintRecord]:
        for seq in self._open_by_key.get(key, ()):
            record = self._records.get(seq)
            if record is None:
                continue
            if unissued and record.issued_ts is not None:
                continue
            return record
        return None

    # -- terminal states -----------------------------------------------------

    def consumed(self, seq: int, pid: int) -> None:
        """The read this hint predicted arrived and matched it."""
        record = self._finish(seq, pid, CONSUMED)
        if record is not None:
            self.lead_times.observe(record.lead_cycles)
            if self.stats is not None:
                self.stats.distribution(TIP_HINT_LEAD_CYCLES).observe(
                    record.lead_cycles
                )
            if record.ready_before_demand:
                self.ready_before_demand += 1
                if self.stats is not None:
                    self.stats.counter(TIP_HINTS_READY_BEFORE_DEMAND).add()
            tracer = self.tracer
            if tracer.enabled:
                tracer.complete(CAT_HINT, "hint.lifetime",
                                record.disclosed_ts, record.lead_cycles,
                                tid=TID_SYSTEM, seq=seq, ino=record.key[0],
                                block=record.key[1], terminal=CONSUMED,
                                ready=record.ready_before_demand)

    def cancelled(self, seq: int, pid: int) -> None:
        """TIPIO_CANCEL_ALL dropped this hint."""
        self._finish(seq, pid, CANCELLED)

    def wasted(self, seq: int, pid: int, detail: str) -> None:
        """The hint never matched a read (stale-dropped or end-of-run)."""
        record = self._finish(seq, pid, WASTED)
        if record is not None:
            record.detail = detail

    def _finish(self, seq: int, pid: int, terminal: str) -> Optional[HintRecord]:
        self.terminal_counts[terminal] += 1
        open_count = self._open_by_pid.get(pid, 0)
        if open_count > 0:
            self._open_by_pid[pid] = open_count - 1
        record = self._records.get(seq)
        if record is None:
            return None
        # Exactly-one-terminal-state invariant: a second terminal for the
        # same seq is a lifecycle bug, not a counting detail.
        assert record.terminal is None, (
            f"hint seq {seq} reached {terminal} after {record.terminal}"
        )
        record.terminal = terminal
        record.terminal_ts = self.clock.now
        seqs = self._open_by_key.get(record.key)
        if seqs is not None:
            try:
                seqs.remove(seq)
            except ValueError:
                pass
            if not seqs:
                del self._open_by_key[record.key]
        return record

    # -- queries -------------------------------------------------------------

    @property
    def open_total(self) -> int:
        """Hints disclosed but not yet terminal."""
        return self.disclosed_total - sum(self.terminal_counts.values())

    def open_for(self, pid: int) -> int:
        """Open hints of one process (reconciles with TIP's queue length)."""
        return self._open_by_pid.get(pid, 0)

    def records(self) -> List[HintRecord]:
        """Detailed records, disclosure order (may be capped; see class doc)."""
        return [self._records[seq] for seq in sorted(self._records)]

    def disclosed_keys(self) -> List[BlockKey]:
        """Every (ino, block) key disclosed, in disclosure order.

        This is the hint ledger as an *observer* sees it — exactly the
        channel the speculation-security lint reasons about: if a secret
        influences which keys appear here, the secret has leaked into an
        observable access pattern.  The security correlation tests diff
        this sequence across runs that differ only in secret data.
        (Capped at ``capacity`` like :meth:`records`.)
        """
        return [self._records[seq].key for seq in sorted(self._records)]

    def summary_counts(self) -> Dict[str, int]:
        """The lifecycle ledger: disclosed and every terminal bucket."""
        return {
            "disclosed": self.disclosed_total,
            CONSUMED: self.terminal_counts[CONSUMED],
            CANCELLED: self.terminal_counts[CANCELLED],
            WASTED: self.terminal_counts[WASTED],
            "open": self.open_total,
        }

    @property
    def pct_ready_before_demand(self) -> float:
        """% of consumed hints whose prefetch completed before the read."""
        consumed = self.terminal_counts[CONSUMED]
        return 100.0 * self.ready_before_demand / consumed if consumed else 0.0
