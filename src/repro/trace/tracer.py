"""Structured event tracing for the simulated system.

One :class:`Tracer` per simulation records timestamped events into a
bounded ring buffer.  Design constraints, in order:

1. **Zero behavioral perturbation.**  The tracer only ever *reads* the
   simulation clock; it never advances it, schedules events, or touches
   any simulated state.  A run with tracing enabled is cycle-identical to
   the same run without it.
2. **Zero cost when disabled.**  Every instrumentation site guards its
   event construction with ``if tracer.enabled:`` against the shared
   :data:`NULL_TRACER` singleton, so a disabled run pays one attribute
   test per site, and builds no argument dicts.
3. **Bounded memory.**  The ring buffer drops the *oldest* events when
   full (the end of a run — where the interesting divergence usually is —
   survives); the drop count is reported, never silent.

Events use the Chrome ``trace_event`` phase vocabulary directly so the
exporters are trivial: ``"i"`` (instant), ``"X"`` (complete span with a
duration), ``"C"`` (counter sample).  Timestamps are simulated cycles.

The tracer also carries the run's :class:`~repro.sim.stats.StatRegistry`,
unifying the two observability planes: trace consumers can query any
counter or distribution mid-run through :meth:`Tracer.query_counter` /
:meth:`Tracer.query_distribution` without waiting for the end-of-run
snapshot.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Iterator, Optional, Tuple

from repro.errors import TraceError
from repro.sim.clock import SimClock
from repro.sim.stats import Distribution, StatRegistry

# -- categories -------------------------------------------------------------

CAT_KERNEL = "kernel"      # syscalls, read path, blocks/wakeups
CAT_SCHED = "sched"        # context switches, thread execution slices
CAT_SPEC = "spec"          # speculation: restarts, parks, COW, hint checks
CAT_HINT = "hint"          # hint lifecycle: disclosed ... consumed/cancelled/wasted
CAT_TIP = "tip"            # TIP manager decisions (prefetch scheduling)
CAT_CACHE = "cache"        # block cache transitions
CAT_STORAGE = "storage"    # per-disk service spans and queue depths

ALL_CATEGORIES: Tuple[str, ...] = (
    CAT_KERNEL, CAT_SCHED, CAT_SPEC, CAT_HINT, CAT_TIP, CAT_CACHE, CAT_STORAGE,
)

#: Synthetic thread ids for the Chrome/Perfetto track layout.
TID_ORIGINAL = 0
TID_SPECULATING = 1
TID_SYSTEM = 90
TID_DISK_BASE = 100  # disk N renders as track TID_DISK_BASE + N


def parse_categories(spec: str) -> Tuple[str, ...]:
    """Parse a ``--categories`` list like ``"hint,storage"``.

    Unknown names raise :class:`TraceError` (a typo'd category silently
    recording nothing is the observability version of a typo'd counter).
    """
    names = tuple(part.strip() for part in spec.split(",") if part.strip())
    for name in names:
        if name not in ALL_CATEGORIES:
            raise TraceError(
                f"unknown trace category {name!r}; expected one of "
                f"{', '.join(ALL_CATEGORIES)}"
            )
    return names


class TraceEvent:
    """One recorded event (phase vocabulary matches Chrome trace_event)."""

    __slots__ = ("ts", "category", "name", "ph", "tid", "dur", "args")

    def __init__(
        self,
        ts: int,
        category: str,
        name: str,
        ph: str,
        tid: int,
        dur: int = 0,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        self.ts = ts
        self.category = category
        self.name = name
        self.ph = ph
        self.tid = tid
        self.dur = dur
        self.args = args

    def to_jsonable(self) -> Dict[str, object]:
        """Chrome trace_event dict (also the JSONL record shape)."""
        entry: Dict[str, object] = {
            "name": self.name,
            "cat": self.category,
            "ph": self.ph,
            "ts": self.ts,
            "pid": 1,
            "tid": self.tid,
        }
        if self.ph == "X":
            entry["dur"] = self.dur
        if self.args:
            entry["args"] = self.args
        return entry

    def __repr__(self) -> str:
        return (
            f"TraceEvent({self.ts}, {self.category}:{self.name}, "
            f"ph={self.ph}, tid={self.tid})"
        )


class Tracer:
    """Ring-buffered, category-filterable event recorder."""

    #: Default ring capacity (events).  ~100 bytes/event -> tens of MB max.
    DEFAULT_CAPACITY = 1 << 18

    def __init__(
        self,
        clock: SimClock,
        stats: Optional[StatRegistry] = None,
        capacity: int = DEFAULT_CAPACITY,
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        if capacity <= 0:
            raise TraceError(f"tracer capacity must be positive, got {capacity}")
        self.clock = clock
        #: The run's stat registry (mid-run queryable; may be attached late
        #: by the harness via :meth:`attach_stats`).
        self.stats = stats
        self.capacity = capacity
        #: None = record every category.
        self.categories: Optional[frozenset] = (
            frozenset(categories) if categories is not None else None
        )
        if self.categories is not None:
            for name in self.categories:
                if name not in ALL_CATEGORIES:
                    raise TraceError(f"unknown trace category {name!r}")
        self.enabled = True
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        #: Lifetime emitted count; ``emitted - len(events)`` were dropped.
        self.emitted = 0

    # -- wiring -------------------------------------------------------------

    def attach_stats(self, stats: StatRegistry) -> None:
        """Bind the run's stat registry (done by ``build_system``)."""
        self.stats = stats

    def bind_clock(self, clock: SimClock) -> None:
        """Rebind to a run's clock.

        The harness creates the clock deep inside ``build_system``, after
        the caller has already decided whether (and how) to trace — so a
        caller-constructed tracer starts on a placeholder clock and is
        bound to the real one here.  Rebinding mid-run would corrupt
        timestamps; bind before the first event.
        """
        if self.emitted:
            raise TraceError("cannot rebind the clock of a tracer in use")
        self.clock = clock

    # -- recording ----------------------------------------------------------

    def wants(self, category: str) -> bool:
        """True when events of ``category`` would be recorded."""
        if not self.enabled:
            return False
        return self.categories is None or category in self.categories

    def instant(
        self, category: str, name: str, tid: int = TID_SYSTEM,
        **args: object,
    ) -> None:
        """Record a point-in-time event at the current clock reading."""
        if not self.wants(category):
            return
        self._append(TraceEvent(self.clock.now, category, name, "i", tid,
                                args=args or None))

    def complete(
        self, category: str, name: str, start: int, duration: int,
        tid: int = TID_SYSTEM, **args: object,
    ) -> None:
        """Record a span that began at ``start`` and lasted ``duration``."""
        if not self.wants(category):
            return
        self._append(TraceEvent(start, category, name, "X", tid,
                                dur=max(0, duration), args=args or None))

    def counter(
        self, category: str, name: str, value: int, tid: int = TID_SYSTEM,
    ) -> None:
        """Record a counter sample (renders as a Perfetto counter track)."""
        if not self.wants(category):
            return
        self._append(TraceEvent(self.clock.now, category, name, "C", tid,
                                args={"value": value}))

    def _append(self, event: TraceEvent) -> None:
        self._events.append(event)
        self.emitted += 1

    # -- reading ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer."""
        return self.emitted - len(self._events)

    def events(self) -> Iterator[TraceEvent]:
        """Recorded events, oldest first."""
        return iter(self._events)

    # -- unified stats plane -------------------------------------------------

    def query_counter(self, name: str, default: int = 0) -> int:
        """Current value of a registry counter, mid-run."""
        if self.stats is None:
            return default
        return self.stats.get(name, default)

    def query_distribution(self, name: str) -> Optional[Distribution]:
        """A registry distribution, mid-run (None if never observed)."""
        if self.stats is None:
            return None
        return self.stats.distribution_or_none(name)

    def __repr__(self) -> str:
        return (
            f"Tracer(events={len(self._events)}, dropped={self.dropped}, "
            f"enabled={self.enabled})"
        )


class NullTracer(Tracer):
    """The disabled tracer: every record call is a no-op.

    Shared by every un-traced simulation (it holds no per-run state), so
    components can unconditionally keep a ``tracer`` attribute and guard
    hot instrumentation with ``if self.tracer.enabled:``.
    """

    def __init__(self) -> None:
        super().__init__(SimClock(), capacity=1)
        self.enabled = False

    def wants(self, category: str) -> bool:  # noqa: ARG002 - interface
        return False

    def instant(self, category: str, name: str, tid: int = TID_SYSTEM,
                **args: object) -> None:
        pass

    def complete(self, category: str, name: str, start: int, duration: int,
                 tid: int = TID_SYSTEM, **args: object) -> None:
        pass

    def counter(self, category: str, name: str, value: int,
                tid: int = TID_SYSTEM) -> None:
        pass


#: Process-wide disabled tracer (safe to share: it never stores anything).
NULL_TRACER = NullTracer()
