"""Post-hoc trace analysis.

:class:`TraceAnalyzer` turns a recorded trace (plus the always-on hint
lifecycle and stall breakdown) into the numbers the observability layer
exists to answer:

* median (and distribution of) hint lead time, disclosed -> consumed;
* what fraction of prefetches completed before the demand read needed
  them (the paper's "prefetch far enough ahead" criterion);
* the stall breakdown, with the trace-only refinement of *overlapped
  compute* — how many of the speculating thread's CPU cycles ran inside
  an original-thread stall (useful speculation) rather than beside it;
* per-disk busy time and peak queue depth.

Everything here is pure computation over recorded events — importing or
running the analyzer can never affect a simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.trace.lifecycle import HintLifecycle, HintRecord
from repro.trace.phases import StallBreakdown
from repro.trace.tracer import (
    CAT_KERNEL,
    CAT_SCHED,
    CAT_STORAGE,
    TID_DISK_BASE,
    TID_SPECULATING,
    Tracer,
)

Span = Tuple[int, int]  # (start, end) in cycles, end exclusive


def _merge(spans: List[Span]) -> List[Span]:
    """Sort and coalesce overlapping/adjacent spans."""
    if not spans:
        return []
    spans = sorted(spans)
    merged = [spans[0]]
    for start, end in spans[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            if end > last_end:
                merged[-1] = (last_start, end)
        else:
            merged.append((start, end))
    return merged


def _intersection_cycles(a: List[Span], b: List[Span]) -> int:
    """Total overlap between two merged span lists (two-pointer sweep)."""
    total = 0
    i = j = 0
    while i < len(a) and j < len(b):
        start = max(a[i][0], b[j][0])
        end = min(a[i][1], b[j][1])
        if start < end:
            total += end - start
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


class TraceAnalyzer:
    """Derives summary metrics from one run's trace and lifecycle."""

    def __init__(
        self,
        tracer: Tracer,
        lifecycle: Optional[HintLifecycle] = None,
        breakdown: Optional[StallBreakdown] = None,
        result: Optional[object] = None,
    ) -> None:
        self.tracer = tracer
        self.lifecycle = lifecycle
        self.breakdown = breakdown
        #: Optional RunResult: enables the per-disk I/O health and
        #: degraded-mode sections (counters live in the result, not the
        #: trace, so a filtered trace cannot hide them).
        self.result = result

    # -- span extraction -----------------------------------------------------

    def _spans(self, category: str, name: str, tid: Optional[int] = None) -> List[Span]:
        spans = [
            (event.ts, event.ts + event.dur)
            for event in self.tracer.events()
            if event.ph == "X"
            and event.category == category
            and event.name == name
            and (tid is None or event.tid == tid)
        ]
        return _merge(spans)

    def stall_spans(self) -> List[Span]:
        """Intervals where an original thread was blocked on a demand read."""
        return self._spans(CAT_KERNEL, "read.stall")

    def spec_exec_spans(self) -> List[Span]:
        """Intervals where the speculating thread was executing."""
        return self._spans(CAT_SCHED, "exec", tid=TID_SPECULATING)

    def overlapped_speculation_cycles(self) -> int:
        """Speculating-thread CPU cycles that ran *inside* a demand stall.

        This is the trace-only refinement of the stall breakdown: in
        uniprocessor mode it should equal (nearly all of) the speculation
        phase; on two CPUs it shows how much speculation was actually
        hidden behind stalls versus merely concurrent.
        """
        return _intersection_cycles(self.spec_exec_spans(), self.stall_spans())

    # -- storage -------------------------------------------------------------

    def disk_busy_cycles(self) -> Dict[int, int]:
        """Per-disk total service time, from storage service spans."""
        busy: Dict[int, int] = {}
        for event in self.tracer.events():
            if event.ph == "X" and event.category == CAT_STORAGE:
                disk = event.tid - TID_DISK_BASE
                busy[disk] = busy.get(disk, 0) + event.dur
        return busy

    def disk_utilization(self, wall: int) -> Dict[int, float]:
        """Per-disk busy fraction of ``wall`` cycles."""
        if wall <= 0:
            return {}
        return {
            disk: min(1.0, cycles / wall)
            for disk, cycles in sorted(self.disk_busy_cycles().items())
        }

    def peak_queue_depths(self) -> Dict[str, int]:
        """Max sampled value of each queue-depth counter track."""
        peaks: Dict[str, int] = {}
        for event in self.tracer.events():
            if event.ph == "C" and event.args:
                value = event.args.get("value")
                if isinstance(value, int):
                    prev = peaks.get(event.name, 0)
                    if value > prev:
                        peaks[event.name] = value
        return peaks

    # -- hint lifecycle ------------------------------------------------------

    def median_hint_lead(self) -> float:
        """Median disclosed->consumed lead time in cycles (0 if no hints)."""
        if self.lifecycle is None:
            return 0.0
        return self.lifecycle.lead_times.median

    def pct_prefetches_before_demand(self) -> float:
        if self.lifecycle is None:
            return 0.0
        return self.lifecycle.pct_ready_before_demand

    def top_hints(self, n: int = 10) -> List[HintRecord]:
        """The ``n`` consumed hints with the longest lead times."""
        if self.lifecycle is None:
            return []
        consumed = [r for r in self.lifecycle.records() if r.terminal == "consumed"]
        consumed.sort(key=lambda r: (-r.lead_cycles, r.seq))
        return consumed[:n]

    # -- summary -------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """All derived metrics as one JSON-friendly dict."""
        breakdown = self.breakdown
        wall = breakdown.wall if breakdown is not None else 0
        out: Dict[str, object] = {
            "events": len(self.tracer),
            "events_dropped": self.tracer.dropped,
            "stall_breakdown": breakdown.to_jsonable() if breakdown else None,
            "overlapped_speculation_cycles": self.overlapped_speculation_cycles(),
            "disk_utilization": {
                str(disk): round(util, 4)
                for disk, util in self.disk_utilization(wall).items()
            },
            "peak_queue_depths": self.peak_queue_depths(),
        }
        if self.lifecycle is not None:
            out["hints"] = self.lifecycle.summary_counts()
            out["hint_lead_cycles_median"] = self.median_hint_lead()
            out["hint_lead_cycles_p90"] = self.lifecycle.lead_times.percentile(90)
            out["pct_prefetches_before_demand"] = round(
                self.pct_prefetches_before_demand(), 2
            )
        result = self.result
        if result is not None:
            per_disk = result.per_disk_io_counters()  # type: ignore[attr-defined]
            if per_disk:
                out["per_disk_io"] = {
                    str(disk): counters
                    for disk, counters in sorted(per_disk.items())
                }
            if result.disk_deaths:  # type: ignore[attr-defined]
                out["degraded"] = {
                    "disk_deaths": result.disk_deaths,  # type: ignore[attr-defined]
                    "degraded_reads": result.degraded_reads,  # type: ignore[attr-defined]
                    "reconstructed_blocks": result.reconstructed_blocks,  # type: ignore[attr-defined]
                    "hedges_won": result.hedges_won,  # type: ignore[attr-defined]
                    "rebuild_completed": result.rebuild_completed,  # type: ignore[attr-defined]
                    "rebuild_blocks": result.rebuild_blocks,  # type: ignore[attr-defined]
                }
        return out

    def render_summary(self) -> str:
        """Human-readable summary block for the CLI."""
        lines: List[str] = []
        breakdown = self.breakdown
        if breakdown is not None:
            lines.append(f"wall cycles          {breakdown.wall:>16,}")
            lines.append("stall breakdown (of original-thread wall time):")
            for label, cycles in (
                ("compute", breakdown.compute),
                ("checks", breakdown.checks),
                ("demand stall", breakdown.demand_stall),
                ("other", breakdown.other),
            ):
                lines.append(
                    f"  {label:<18} {cycles:>16,}  ({breakdown.pct(cycles):5.1f}%)"
                )
            overlap = self.overlapped_speculation_cycles()
            lines.append(
                f"  speculation (overlapping) {breakdown.speculation:>9,}  "
                f"({overlap:,} inside stalls)"
            )
        lifecycle = self.lifecycle
        if lifecycle is not None:
            counts = lifecycle.summary_counts()
            lines.append(
                "hints                "
                f"disclosed={counts['disclosed']:,} consumed={counts['consumed']:,} "
                f"cancelled={counts['cancelled']:,} wasted={counts['wasted']:,} "
                f"open={counts['open']:,}"
            )
            if lifecycle.lead_times.count:
                lines.append(
                    f"hint lead time       median={lifecycle.lead_times.median:,.0f} "
                    f"p90={lifecycle.lead_times.percentile(90):,.0f} cycles"
                )
            lines.append(
                "prefetch readiness   "
                f"{lifecycle.pct_ready_before_demand:.1f}% complete before demand read"
            )
        utilization = self.disk_utilization(breakdown.wall if breakdown else 0)
        if utilization:
            parts = [f"disk{disk}={util * 100:.1f}%" for disk, util in utilization.items()]
            lines.append("disk utilization     " + " ".join(parts))
        result = self.result
        if result is not None:
            per_disk = result.per_disk_io_counters()  # type: ignore[attr-defined]
            if per_disk:
                parts = []
                for disk in sorted(per_disk):
                    counters = per_disk[disk]
                    detail = ",".join(f"{name}={counters[name]}"
                                      for name in sorted(counters))
                    parts.append(f"disk{disk}({detail})")
                lines.append("disk I/O health      " + " ".join(parts))
            if result.disk_deaths:  # type: ignore[attr-defined]
                if result.rebuild_completed:  # type: ignore[attr-defined]
                    done_s = (result.rebuild_completed_cycle  # type: ignore[attr-defined]
                              / result.cpu_hz)  # type: ignore[attr-defined]
                    rebuild = (f"rebuild done @{done_s:.3f}s "
                               f"({result.rebuild_blocks:,} blocks)")  # type: ignore[attr-defined]
                else:
                    rebuild = "rebuild INCOMPLETE"
                lines.append(
                    "degraded mode        "
                    f"{result.disk_deaths} death(s), "  # type: ignore[attr-defined]
                    f"{result.degraded_reads:,} degraded reads, "  # type: ignore[attr-defined]
                    f"{result.reconstructed_blocks:,} reconstructed, "  # type: ignore[attr-defined]
                    f"{result.hedges_won:,} hedges won; {rebuild}"  # type: ignore[attr-defined]
                )
        lines.append(
            f"trace                {len(self.tracer):,} events "
            f"({self.tracer.dropped:,} dropped)"
        )
        return "\n".join(lines)
