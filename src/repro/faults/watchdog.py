"""The speculation watchdog: the paper's safety guarantee made operational.

Speculation is supposed to be pure opportunity — wrong hints cost some
wasted prefetches, but execution stays correct.  That still leaves a
pathological regime (the paper's Gnuld-on-one-disk case, or a fault plan
forcing constant divergence) where speculation burns CPU and hint-channel
bandwidth while never being right.  The watchdog observes three signals
and, when any crosses its limit, disables speculation for the rest of the
run, falling back to vanilla execution:

* **restart storms** — consecutive speculation restarts with no hint-log
  match in between;
* **fault storms** — cumulative speculative faults (signals);
* **low hint accuracy** — the fraction of hint-log checks that matched,
  over a sliding window of recent read calls.

A limit of 0 disables that trigger.  The defaults are generous enough that
none of the paper's benchmarks ever trip the watchdog; the chaos profiles
(notably ``restart-storm``) exist to trip it on purpose.

Distinct from tripping, the watchdog also carries a *resumable* degraded-
mode suspension: while the storage array is degraded (a disk died and the
rebuild has not finished), speculation's prefetch appetite only competes
with reconstruction and resilver traffic, so the runtime suspends
speculative execution via :meth:`set_degraded` and resumes it when the
rebuild completes.  Suspension is policy, not a safety trip — it clears
itself, and never sets ``disabled``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional


class SpeculationWatchdog:
    """Decides when speculation is doing more harm than good."""

    def __init__(
        self,
        restart_limit: int = 64,
        fault_limit: int = 256,
        min_accuracy: float = 0.02,
        accuracy_window: int = 256,
    ) -> None:
        self.restart_limit = restart_limit
        self.fault_limit = fault_limit
        self.min_accuracy = min_accuracy
        self.accuracy_window = accuracy_window

        self._window: Deque[bool] = deque(maxlen=max(1, accuracy_window))
        self._consecutive_restarts = 0

        #: Lifetime statistics.
        self.restarts = 0
        self.faults = 0
        self.checks = 0
        self.matches = 0

        self.disabled = False
        self.trip_reason: Optional[str] = None

        #: Resumable degraded-mode suspension (storage array lost a disk).
        self.suspended = False
        #: Lifetime count of degraded-mode suspensions.
        self.suspensions = 0

    # -- signal intake -------------------------------------------------------

    def note_check(self, matched: bool) -> bool:
        """One original-thread hint-log check; returns True when it trips."""
        self.checks += 1
        if matched:
            self.matches += 1
            self._consecutive_restarts = 0
        self._window.append(matched)
        if (
            self.min_accuracy > 0.0
            and self.accuracy_window > 0
            and len(self._window) == self._window.maxlen
        ):
            accuracy = sum(self._window) / len(self._window)
            if accuracy < self.min_accuracy:
                return self._trip("low_accuracy")
        return False

    def note_restart(self) -> bool:
        """One speculation restart; returns True when it trips."""
        self.restarts += 1
        self._consecutive_restarts += 1
        if 0 < self.restart_limit <= self._consecutive_restarts:
            return self._trip("restart_storm")
        return False

    def note_fault(self) -> bool:
        """One speculative fault (signal); returns True when it trips."""
        self.faults += 1
        if 0 < self.fault_limit <= self.faults:
            return self._trip("fault_storm")
        return False

    def set_degraded(self, degraded: bool) -> Optional[str]:
        """Track the array's degraded state; returns the transition.

        Returns ``"suspended"`` when speculation should pause, ``"resumed"``
        when it may continue, or None when nothing changed.
        """
        if degraded and not self.suspended:
            self.suspended = True
            self.suspensions += 1
            return "suspended"
        if not degraded and self.suspended:
            self.suspended = False
            return "resumed"
        return None

    # -- state ---------------------------------------------------------------

    @property
    def sliding_accuracy(self) -> float:
        """Match fraction over the current window (1.0 when empty)."""
        if not self._window:
            return 1.0
        return sum(self._window) / len(self._window)

    def _trip(self, reason: str) -> bool:
        if not self.disabled:
            self.disabled = True
            self.trip_reason = reason
        return True

    def __repr__(self) -> str:
        state = f"tripped:{self.trip_reason}" if self.disabled else "armed"
        if self.suspended:
            state += ",suspended"
        return (
            f"SpeculationWatchdog({state}, restarts={self.restarts}, "
            f"faults={self.faults}, accuracy={self.sliding_accuracy:.2f})"
        )
