"""Generative chaos: seeded sampling of the whole fault-dimension space.

The hand-written :data:`~repro.faults.plan.PROFILES` are five points in a
fault space that spans transient error rates, stuck/offline windows, hint
channel loss and corruption, restart storms, disk death with rebuilds and
hedging, double faults, and the speculation throttle/watchdog knobs.
:class:`FaultPlanGenerator` samples that space — every case is a valid
:class:`~repro.faults.plan.FaultPlan` (composition rules enforced: a
double fault implies a first death and therefore
``expects_data_loss``) plus an optional set of speculation-parameter
overrides, fully determined by ``(seed, index)`` so any case can be
regenerated, rerun, and shrunk in isolation.

Sampling is *dimension-weighted*: each case activates one to three
dimensions drawn by weight (rare, expensive compositions like the double
fault carry low weight), and every dimension draws from its own forked
RNG stream so the generator inherits the injector's decoupling property —
adding a dimension never perturbs how another one is sampled.

:class:`CoverageLedger` keeps the campaign honest: it counts cases per
dimension, per dimension *combination*, and per intensity bucket, so
``repro fuzz --coverage-report`` shows which corners of the fault space a
budget actually visited.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import FuzzError
from repro.faults.plan import FaultPlan
from repro.sim.rng import DeterministicRng

#: SpecHintParams fields a fuzz case may override (the speculation-policy
#: dimensions: throttle and watchdog knobs).
SPEC_OVERRIDE_FIELDS = (
    "throttle_cancel_limit",
    "throttle_disable_reads",
    "watchdog_restart_limit",
    "watchdog_fault_limit",
    "watchdog_min_accuracy",
    "watchdog_accuracy_window",
)

#: Serialization format version of fuzz cases / reproducers.
CASE_VERSION = 1


def validate_spec_overrides(overrides: Dict[str, object]) -> None:
    """Reject override keys outside the whitelist with a typed error."""
    unknown = sorted(set(overrides) - set(SPEC_OVERRIDE_FIELDS))
    if unknown:
        raise FuzzError(
            f"unknown speculation override key(s): {', '.join(unknown)}; "
            f"expected a subset of: {', '.join(SPEC_OVERRIDE_FIELDS)}"
        )


@dataclass
class FuzzCase:
    """One generated fuzz cell: an app under a generated fault plan."""

    index: int
    app: str
    plan: FaultPlan
    spec_overrides: Dict[str, object] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"fuzz/{self.index:04d}/{self.app}"

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "version": CASE_VERSION,
            "index": self.index,
            "app": self.app,
            "plan": self.plan.to_jsonable(),
            "spec_overrides": dict(self.spec_overrides),
        }

    @classmethod
    def from_jsonable(cls, data: object) -> "FuzzCase":
        if not isinstance(data, dict):
            raise FuzzError(
                f"fuzz case must be a JSON object, got {type(data).__name__}"
            )
        version = data.get("version", CASE_VERSION)
        if version != CASE_VERSION:
            raise FuzzError(
                f"fuzz case version {version!r} not supported "
                f"(this build reads version {CASE_VERSION})"
            )
        missing = [k for k in ("app", "plan") if k not in data]
        if missing:
            raise FuzzError(
                f"fuzz case missing key(s): {', '.join(missing)}"
            )
        overrides = dict(data.get("spec_overrides", {}))
        validate_spec_overrides(overrides)
        return cls(
            index=int(data.get("index", 0)),
            app=str(data["app"]),
            plan=FaultPlan.from_jsonable(data["plan"]),
            spec_overrides=overrides,
        )


# ---------------------------------------------------------------------------
# Dimensions
# ---------------------------------------------------------------------------

@dataclass
class _Draft:
    """Mutable scratch a case is assembled in before freezing."""

    ndisks: int
    plan: Dict[str, object] = field(default_factory=dict)
    overrides: Dict[str, object] = field(default_factory=dict)


def _sample_transient(rng: DeterministicRng, draft: _Draft) -> None:
    draft.plan["disk_error_rate"] = round(rng.uniform(0.01, 0.10), 4)


def _sample_slow_window(rng: DeterministicRng, draft: _Draft) -> None:
    draft.plan["slow_factor"] = round(rng.uniform(5.0, 60.0), 2)
    draft.plan["slow_start_s"] = round(rng.uniform(0.0, 0.004), 6)
    draft.plan["slow_duration_s"] = round(rng.uniform(0.002, 0.02), 6)


def _sample_offline_window(rng: DeterministicRng, draft: _Draft) -> None:
    draft.plan["offline_disk"] = rng.randint(0, draft.ndisks - 1)
    draft.plan["offline_start_s"] = round(rng.uniform(0.0, 0.004), 6)
    draft.plan["offline_duration_s"] = round(rng.uniform(0.002, 0.012), 6)


def _sample_hint_drop(rng: DeterministicRng, draft: _Draft) -> None:
    draft.plan["hint_drop_rate"] = round(rng.uniform(0.05, 0.5), 4)


def _sample_hint_corrupt(rng: DeterministicRng, draft: _Draft) -> None:
    draft.plan["hint_corrupt_rate"] = round(rng.uniform(0.05, 0.5), 4)


def _sample_restart_storm(rng: DeterministicRng, draft: _Draft) -> None:
    draft.plan["spec_divergence_rate"] = round(rng.uniform(0.1, 0.99), 4)


def _sample_disk_death(rng: DeterministicRng, draft: _Draft) -> None:
    draft.plan["dead_disk"] = rng.randint(0, draft.ndisks - 1)
    draft.plan["dead_at_s"] = round(rng.uniform(0.0005, 0.006), 6)
    if rng.uniform(0.0, 1.0) < 0.5:
        draft.plan["rebuild_share"] = round(rng.uniform(0.3, 0.9), 2)
    if rng.uniform(0.0, 1.0) < 0.5:
        draft.plan["hedge_after_s"] = round(rng.uniform(0.002, 0.008), 6)


def _sample_double_fault(rng: DeterministicRng, draft: _Draft) -> None:
    # Composition rule: runs after disk-death (its requirement), so the
    # first death is already drawn; the second must hit a different disk
    # and land after the first so expects_data_loss composes correctly.
    dead = int(draft.plan["dead_disk"])  # type: ignore[arg-type]
    second = rng.randint(0, draft.ndisks - 2)
    if second >= dead:
        second += 1
    draft.plan["second_dead_disk"] = second
    dead_at = float(draft.plan["dead_at_s"])  # type: ignore[arg-type]
    draft.plan["second_dead_at_s"] = round(
        dead_at + rng.uniform(0.0005, 0.004), 6
    )


def _sample_throttle_params(rng: DeterministicRng, draft: _Draft) -> None:
    draft.overrides["throttle_cancel_limit"] = rng.randint(1, 8)
    draft.overrides["throttle_disable_reads"] = rng.randint(8, 64)


def _sample_watchdog_params(rng: DeterministicRng, draft: _Draft) -> None:
    draft.overrides["watchdog_restart_limit"] = rng.randint(2, 16)
    draft.overrides["watchdog_fault_limit"] = rng.randint(8, 64)
    draft.overrides["watchdog_min_accuracy"] = round(
        rng.uniform(0.0, 0.3), 3
    )
    draft.overrides["watchdog_accuracy_window"] = rng.randint(16, 128)


@dataclass(frozen=True)
class Dimension:
    """One axis of the fault space the generator can activate."""

    name: str
    weight: float
    sampler: Callable[[DeterministicRng, _Draft], None]
    #: Dimension this one cannot exist without (composition rule).
    requires: Optional[str] = None


#: The full fault space, in application order (requirements first).
DIMENSIONS: Tuple[Dimension, ...] = (
    Dimension("transient", 1.0, _sample_transient),
    Dimension("slow-window", 0.8, _sample_slow_window),
    Dimension("offline-window", 0.8, _sample_offline_window),
    Dimension("hint-drop", 1.0, _sample_hint_drop),
    Dimension("hint-corrupt", 1.0, _sample_hint_corrupt),
    Dimension("restart-storm", 0.9, _sample_restart_storm),
    Dimension("disk-death", 0.7, _sample_disk_death),
    Dimension("double-fault", 0.25, _sample_double_fault,
              requires="disk-death"),
    Dimension("throttle-params", 0.5, _sample_throttle_params),
    Dimension("watchdog-params", 0.5, _sample_watchdog_params),
)

_DIMENSION_BY_NAME: Dict[str, Dimension] = {d.name: d for d in DIMENSIONS}
_DIMENSION_ORDER: Dict[str, int] = {
    d.name: i for i, d in enumerate(DIMENSIONS)
}


def case_dimensions(
    plan: FaultPlan, spec_overrides: Optional[Dict[str, object]] = None
) -> List[str]:
    """Which dimensions a (plan, overrides) pair actually activates.

    Shared vocabulary of the coverage ledger and the shrinker: the same
    function that tells the ledger "this case exercised hint-drop +
    disk-death" tells the shrinker which axes it may try to remove.
    """
    overrides = spec_overrides or {}
    dims: List[str] = []
    if plan.disk_error_rate > 0.0:
        dims.append("transient")
    if plan.slow_factor != 1.0 and plan.slow_duration_s > 0.0:
        dims.append("slow-window")
    if plan.offline_disk >= 0 and plan.offline_duration_s > 0.0:
        dims.append("offline-window")
    if plan.hint_drop_rate > 0.0:
        dims.append("hint-drop")
    if plan.hint_corrupt_rate > 0.0:
        dims.append("hint-corrupt")
    if plan.spec_divergence_rate > 0.0:
        dims.append("restart-storm")
    if plan.dead_disk >= 0:
        dims.append("disk-death")
    if plan.second_dead_disk >= 0:
        dims.append("double-fault")
    if any(k.startswith("throttle_") for k in overrides):
        dims.append("throttle-params")
    if any(k.startswith("watchdog_") for k in overrides):
        dims.append("watchdog-params")
    return dims


#: Intensity buckets: (plan field, lo, hi) per bucketed dimension.
_BUCKETED: Dict[str, Tuple[str, float, float]] = {
    "transient": ("disk_error_rate", 0.01, 0.10),
    "hint-drop": ("hint_drop_rate", 0.05, 0.5),
    "hint-corrupt": ("hint_corrupt_rate", 0.05, 0.5),
    "restart-storm": ("spec_divergence_rate", 0.1, 0.99),
    "slow-window": ("slow_factor", 5.0, 60.0),
}


def _bucket(value: float, lo: float, hi: float) -> str:
    span = (hi - lo) or 1.0
    third = (value - lo) / span
    if third < 1.0 / 3.0:
        return "low"
    if third < 2.0 / 3.0:
        return "mid"
    return "high"


class CoverageLedger:
    """Counts which corners of the fault space a campaign visited."""

    def __init__(self) -> None:
        self.cases = 0
        self.dimension_counts: Dict[str, int] = {}
        self.combo_counts: Dict[str, int] = {}
        self.bucket_counts: Dict[str, int] = {}
        self.app_counts: Dict[str, int] = {}
        self.data_loss_cases = 0

    def note(self, case: FuzzCase) -> None:
        self.cases += 1
        self.app_counts[case.app] = self.app_counts.get(case.app, 0) + 1
        dims = case_dimensions(case.plan, case.spec_overrides)
        for dim in dims:
            self.dimension_counts[dim] = self.dimension_counts.get(dim, 0) + 1
            bucketed = _BUCKETED.get(dim)
            if bucketed is not None:
                name, lo, hi = bucketed
                key = f"{dim}:{_bucket(float(getattr(case.plan, name)), lo, hi)}"
                self.bucket_counts[key] = self.bucket_counts.get(key, 0) + 1
        combo = "+".join(sorted(dims)) or "(none)"
        self.combo_counts[combo] = self.combo_counts.get(combo, 0) + 1
        if case.plan.expects_data_loss:
            self.data_loss_cases += 1

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "cases": self.cases,
            "apps": dict(sorted(self.app_counts.items())),
            "dimensions": dict(sorted(self.dimension_counts.items())),
            "combos": dict(sorted(self.combo_counts.items())),
            "buckets": dict(sorted(self.bucket_counts.items())),
            "data_loss_cases": self.data_loss_cases,
            "dimensions_never_hit": sorted(
                set(_DIMENSION_BY_NAME) - set(self.dimension_counts)
            ),
        }

    def format_text(self) -> str:
        lines = [f"fault-space coverage over {self.cases} case(s):"]
        for dim in DIMENSIONS:
            count = self.dimension_counts.get(dim.name, 0)
            lines.append(f"  {dim.name:18s} {count:4d}")
        never = sorted(set(_DIMENSION_BY_NAME) - set(self.dimension_counts))
        if never:
            lines.append(f"  never hit: {', '.join(never)}")
        lines.append(f"  distinct combos: {len(self.combo_counts)}; "
                     f"data-loss cases: {self.data_loss_cases}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------

class FaultPlanGenerator:
    """Deterministic ``(seed, index) -> FuzzCase`` sampler."""

    def __init__(
        self,
        seed: int,
        apps: Sequence[str] = ("agrep",),
        ndisks: int = 4,
        max_dimensions: int = 3,
    ) -> None:
        if not apps:
            raise FuzzError("fuzz generator needs at least one app")
        if ndisks < 2:
            raise FuzzError(
                f"fuzz generator needs >= 2 disks for disk-fault "
                f"dimensions, got {ndisks}"
            )
        self.seed = seed
        self.apps = tuple(apps)
        self.ndisks = ndisks
        self.max_dimensions = max(1, max_dimensions)

    def _choose_dimensions(self, rng: DeterministicRng) -> List[Dimension]:
        count = 1
        if rng.uniform(0.0, 1.0) < 0.6:
            count += 1
        if self.max_dimensions >= 3 and rng.uniform(0.0, 1.0) < 0.3:
            count += 1
        count = min(count, self.max_dimensions, len(DIMENSIONS))
        chosen: List[str] = []
        pool = list(DIMENSIONS)
        while pool and len(chosen) < count:
            total = sum(d.weight for d in pool)
            pick = rng.uniform(0.0, total)
            acc = 0.0
            selected = pool[-1]
            for dim in pool:
                acc += dim.weight
                if pick <= acc:
                    selected = dim
                    break
            pool.remove(selected)
            chosen.append(selected.name)
        # Composition rules: pull in requirements (may exceed `count` by
        # design — a double fault is meaningless without its first death).
        for name in list(chosen):
            required = _DIMENSION_BY_NAME[name].requires
            if required is not None and required not in chosen:
                chosen.append(required)
        chosen.sort(key=_DIMENSION_ORDER.__getitem__)
        return [_DIMENSION_BY_NAME[name] for name in chosen]

    def case(self, index: int) -> FuzzCase:
        """The ``index``-th case of this seed (stable under any budget)."""
        root = DeterministicRng(self.seed, f"fuzz/case{index}")
        app = root.fork("app").choice(self.apps)
        draft = _Draft(ndisks=self.ndisks)
        for dim in self._choose_dimensions(root.fork("dims")):
            dim.sampler(root.fork(f"dim/{dim.name}"), draft)
        plan = FaultPlan(
            name=f"fuzz-{self.seed}-{index}",
            seed=root.fork("fault-seed").randint(0, 2**31 - 1),
            **draft.plan,  # type: ignore[arg-type]
        )
        plan.validate()
        return FuzzCase(
            index=index, app=app, plan=plan,
            spec_overrides=dict(draft.overrides),
        )

    def cases(self, budget: int) -> List[FuzzCase]:
        """The first ``budget`` cases of this seed."""
        if budget < 1:
            raise FuzzError(f"fuzz budget must be >= 1, got {budget}")
        return [self.case(index) for index in range(budget)]
