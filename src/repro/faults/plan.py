"""Fault plans: declarative descriptions of what should go wrong.

A :class:`FaultPlan` is a frozen value object naming the fault processes to
run during a simulation — disk error rates, slow/offline windows, hint
channel loss, forced speculation divergence — plus the seed that makes each
of them reproducible.  The :class:`~repro.faults.injector.FaultInjector`
interprets the plan against the simulation clock.

Times are expressed in (simulated) seconds so plans are independent of the
processor frequency; the injector converts them to cycles.

The built-in :data:`PROFILES` are the chaos modes the harness and the
``--chaos`` CLI flag expose.  Each targets one degradation path:

* ``transient-errors`` — random media errors; demand reads must survive via
  retry-with-backoff, failed prefetches must be dropped silently;
* ``stuck-disk`` — one window during which every disk services requests
  absurdly slowly; per-request timeouts fire, abort, and retry;
* ``offline-disk`` — one disk rejects everything for a window mid-run;
  backoff must ride out the outage;
* ``hint-corruption`` — hints are dropped or rewritten to garbage before
  reaching TIP; hinting degrades toward the unhinted baseline;
* ``restart-storm`` — the original thread is forced to judge speculation
  off track almost every read; the speculation watchdog must eventually
  disable speculation entirely;
* ``disk-death`` — one disk dies permanently mid-run; the parity array
  reconstructs degraded reads from the survivors while the rebuild engine
  resilvers onto a hot spare, and output stays byte-identical;
* ``rebuild-storm`` — an early disk death with an aggressive rebuild
  bandwidth share plus background transient errors; demand traffic,
  reconstruction, and the resilver all contend for the surviving disks;
* ``double-fault`` — a second disk dies before the rebuild can finish;
  the stripe rows are unrecoverable and the run must fail loudly with a
  typed :class:`~repro.errors.DataLossError`, never silently corrupt.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Optional

from repro.errors import InvalidFaultPlan


@dataclass(frozen=True)
class FaultPlan:
    """Everything that is allowed to go wrong in one run."""

    name: str = "none"

    #: Seed for every fault decision (independent of the system seed, so
    #: the same workload can be replayed under different fault streams).
    seed: int = 7

    # -- disk faults ---------------------------------------------------------

    #: Probability that a disk access completes with a transient error.
    disk_error_rate: float = 0.0

    #: Service-time multiplier applied to accesses *started* inside the
    #: slow window (1.0 = no slowdown).
    slow_factor: float = 1.0
    slow_start_s: float = 0.0
    slow_duration_s: float = 0.0

    #: Disk that goes offline (-1 = none).  While offline the disk rejects
    #: every access after the command overhead (fail-fast).
    offline_disk: int = -1
    offline_start_s: float = 0.0
    offline_duration_s: float = 0.0

    #: Disk that dies *permanently* (-1 = none).  Unlike an offline window
    #: it never comes back: the array must reconstruct its blocks from
    #: parity and resilver onto a hot spare.
    dead_disk: int = -1
    dead_at_s: float = 0.0

    #: A second permanent death (the RAID-5 double fault).  If it lands
    #: before the first rebuild finishes, affected rows are unrecoverable
    #: and the run fails with a typed DataLossError.
    second_dead_disk: int = -1
    second_dead_at_s: float = 0.0

    #: Rebuild bandwidth share override (0 = use the array's default).
    rebuild_share: float = 0.0

    #: Arm a hedged (duplicate reconstruction-path) read this many seconds
    #: after each demand dispatch (0 = hedging off).
    hedge_after_s: float = 0.0

    # -- hint channel faults -------------------------------------------------

    #: Probability a TIPIO_* hint is silently lost before reaching TIP.
    hint_drop_rate: float = 0.0

    #: Probability a hint's (offset, length) is rewritten to garbage.
    hint_corrupt_rate: float = 0.0

    # -- speculation faults --------------------------------------------------

    #: Probability the original thread's hint-log check is forced to judge
    #: speculation off track even when the entry matched (wrong-path
    #: exercise; drives restart storms).
    spec_divergence_rate: float = 0.0

    @property
    def active(self) -> bool:
        """True when the plan can actually inject something."""
        return (
            self.disk_error_rate > 0.0
            or (self.slow_factor != 1.0 and self.slow_duration_s > 0.0)
            or (self.offline_disk >= 0 and self.offline_duration_s > 0.0)
            or self.dead_disk >= 0
            or self.hint_drop_rate > 0.0
            or self.hint_corrupt_rate > 0.0
            or self.spec_divergence_rate > 0.0
        )

    @property
    def permanent_death(self) -> bool:
        """True when the plan kills at least one disk for good."""
        return self.dead_disk >= 0

    @property
    def expects_data_loss(self) -> bool:
        """True when the plan is *designed* to lose data (double fault).

        Such plans must end in a typed DataLossError rather than output
        identity — the oracle and benchmarks treat them accordingly.
        """
        return self.dead_disk >= 0 and self.second_dead_disk >= 0

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same plan driven by a different fault seed."""
        return replace(self, seed=seed)

    # -- serialization -------------------------------------------------------
    #
    # Fault plans travel: into fuzz-cell payloads across the supervised
    # worker pool, into shrunk reproducer files under tests/corpus/, and
    # back out of both.  Round-trips must be exact and failures typed —
    # a hand-edited reproducer with a misspelled key dies with an
    # InvalidFaultPlan naming the key, never a KeyError.

    def to_jsonable(self) -> Dict[str, object]:
        """Every field, explicitly — JSON round-trips to an equal plan."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_jsonable(cls, data: object) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_jsonable` output (typed errors)."""
        if not isinstance(data, dict):
            raise InvalidFaultPlan(
                f"fault plan must be a JSON object, got {type(data).__name__}"
            )
        known = {f.name: f for f in fields(cls)}
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise InvalidFaultPlan(
                f"unknown fault plan key(s): {', '.join(unknown)}; "
                f"expected a subset of: {', '.join(sorted(known))}"
            )
        kwargs: Dict[str, object] = {}
        for name, value in data.items():
            kind = known[name].type
            if kind == "str":
                if not isinstance(value, str):
                    raise InvalidFaultPlan(
                        f"fault plan key {name!r} must be a string, "
                        f"got {type(value).__name__}"
                    )
            elif kind == "int":
                if isinstance(value, bool) or not isinstance(value, int):
                    raise InvalidFaultPlan(
                        f"fault plan key {name!r} must be an integer, "
                        f"got {type(value).__name__}"
                    )
            else:  # float fields accept ints (JSON writers may emit 0)
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise InvalidFaultPlan(
                        f"fault plan key {name!r} must be a number, "
                        f"got {type(value).__name__}"
                    )
                value = float(value)
            kwargs[name] = value
        plan = cls(**kwargs)  # type: ignore[arg-type]
        plan.validate()
        return plan

    def validate(self) -> None:
        """Reject out-of-range values with a typed error."""
        for name in ("disk_error_rate", "hint_drop_rate",
                     "hint_corrupt_rate", "spec_divergence_rate",
                     "rebuild_share"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise InvalidFaultPlan(
                    f"fault plan {name}={rate!r} outside [0, 1]"
                )
        for name in ("slow_start_s", "slow_duration_s", "offline_start_s",
                     "offline_duration_s", "dead_at_s", "second_dead_at_s",
                     "hedge_after_s"):
            value = getattr(self, name)
            if value < 0.0:
                raise InvalidFaultPlan(
                    f"fault plan {name}={value!r} must be >= 0"
                )
        if self.slow_factor <= 0.0:
            raise InvalidFaultPlan(
                f"fault plan slow_factor={self.slow_factor!r} must be > 0"
            )
        for name in ("offline_disk", "dead_disk", "second_dead_disk"):
            disk = getattr(self, name)
            if disk < -1:
                raise InvalidFaultPlan(
                    f"fault plan {name}={disk!r} must be a disk id or -1"
                )
        if self.second_dead_disk >= 0 and self.dead_disk < 0:
            raise InvalidFaultPlan(
                "fault plan sets second_dead_disk without dead_disk "
                "(a double fault needs a first fault)"
            )
        if (self.second_dead_disk >= 0
                and self.second_dead_disk == self.dead_disk):
            raise InvalidFaultPlan(
                f"fault plan second_dead_disk={self.second_dead_disk} "
                f"must differ from dead_disk"
            )


#: The built-in chaos profiles (see module docstring).
PROFILES: Dict[str, FaultPlan] = {
    "none": FaultPlan(name="none"),
    "transient-errors": FaultPlan(
        name="transient-errors",
        disk_error_rate=0.05,
    ),
    "stuck-disk": FaultPlan(
        name="stuck-disk",
        slow_factor=50.0,
        slow_start_s=0.0,
        slow_duration_s=0.02,
    ),
    "offline-disk": FaultPlan(
        name="offline-disk",
        offline_disk=0,
        offline_start_s=0.002,
        offline_duration_s=0.010,
    ),
    "hint-corruption": FaultPlan(
        name="hint-corruption",
        hint_drop_rate=0.15,
        hint_corrupt_rate=0.15,
    ),
    "restart-storm": FaultPlan(
        name="restart-storm",
        spec_divergence_rate=0.99,
    ),
    "disk-death": FaultPlan(
        name="disk-death",
        dead_disk=1,
        dead_at_s=0.004,
        hedge_after_s=0.004,
    ),
    "rebuild-storm": FaultPlan(
        name="rebuild-storm",
        dead_disk=0,
        dead_at_s=0.0005,
        rebuild_share=0.9,
        disk_error_rate=0.02,
        hedge_after_s=0.004,
    ),
    "double-fault": FaultPlan(
        name="double-fault",
        dead_disk=0,
        dead_at_s=0.0005,
        second_dead_disk=2,
        second_dead_at_s=0.002,
    ),
}


def profile(name: str, seed: Optional[int] = None) -> FaultPlan:
    """Look up a built-in profile, optionally re-seeded."""
    try:
        plan = PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise ValueError(
            f"unknown fault profile {name!r}; expected one of: {known}"
        ) from None
    if seed is not None:
        plan = plan.with_seed(seed)
    return plan
