"""The fault injector: interprets a :class:`FaultPlan` against the clock.

One injector is shared by the whole simulated machine.  Every decision is
drawn from :class:`~repro.sim.rng.DeterministicRng` streams forked per
fault site (one per disk, one for the hint channel, one for speculation),
so a given (plan, seed) pair yields bit-identical fault sequences — the
chaos benchmarks assert exactly this.

The injector only *decides*; the degradation machinery lives where the
faults land (retry/backoff and timeouts in the striped array, silent
prefetch dropping in the cache manager, the watchdog in the SpecHint
runtime).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.faults.plan import FaultPlan
from repro.params import BLOCK_SIZE, CpuParams
from repro.sim.clock import SimClock
from repro.sim.rng import DeterministicRng
from repro.sim.stats import StatRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fs.filesystem import Inode
    from repro.storage.request import IORequest

#: Fault kinds attached to IORequests.
FAULT_TRANSIENT = "transient"
FAULT_OFFLINE = "offline"
FAULT_TIMEOUT = "timeout"
#: The disk is permanently dead: it never comes back, the array must
#: reconstruct from parity (or declare data loss).
FAULT_DEAD = "dead"
#: Terminal marker set by the array when a block is unrecoverable.
FAULT_DATA_LOSS = "data-loss"


class FaultInjector:
    """Seeded oracle asked "does this operation fail, and how?"."""

    def __init__(
        self,
        plan: FaultPlan,
        cpu: CpuParams,
        clock: SimClock,
        stats: StatRegistry,
    ) -> None:
        self.plan = plan
        self.cpu = cpu
        self.clock = clock
        self.stats = stats

        # One independent derived stream per fault *dimension* (plus one
        # per disk, forked lazily).  Decisions in one dimension must never
        # advance another dimension's stream: enabling hint corruption on
        # a plan that already drops hints leaves the drop schedule — and
        # every other dimension's schedule — bit-identical.  The
        # determinism-stability test pins a digest over exactly this.
        root = DeterministicRng(plan.seed, f"faults/{plan.name}")
        self._disk_rngs: Dict[int, DeterministicRng] = {}
        self._root = root
        self._hint_drop_rng = root.fork("hints/drop")
        self._hint_corrupt_rng = root.fork("hints/corrupt")
        self._hint_garble_rng = root.fork("hints/garble")
        self._spec_rng = root.fork("spec")

        # Windows resolved to cycle times once, up front.
        self._slow_lo = cpu.cycles(plan.slow_start_s)
        self._slow_hi = self._slow_lo + cpu.cycles(plan.slow_duration_s)
        self._offline_lo = cpu.cycles(plan.offline_start_s)
        self._offline_hi = self._offline_lo + cpu.cycles(plan.offline_duration_s)
        self._dead_at = cpu.cycles(plan.dead_at_s)
        self._second_dead_at = cpu.cycles(plan.second_dead_at_s)

    def _disk_rng(self, disk_id: int) -> DeterministicRng:
        rng = self._disk_rngs.get(disk_id)
        if rng is None:
            rng = self._root.fork(f"disk{disk_id}")
            self._disk_rngs[disk_id] = rng
        return rng

    # -- disk faults ---------------------------------------------------------

    def disk_offline(self, disk_id: int, now: int) -> bool:
        """Is ``disk_id`` inside its offline window at cycle ``now``?"""
        return (
            self.plan.offline_disk == disk_id
            and self._offline_lo <= now < self._offline_hi
        )

    def disk_dead(self, disk_id: int, now: int) -> bool:
        """Has ``disk_id`` died permanently by cycle ``now``?"""
        plan = self.plan
        if plan.dead_disk == disk_id and now >= self._dead_at:
            return True
        return (
            plan.second_dead_disk == disk_id and now >= self._second_dead_at
        )

    def on_disk_service(
        self, disk_id: int, request: "IORequest", service_cycles: int
    ) -> Tuple[int, Optional[str]]:
        """Judge one disk access as it starts service.

        Returns the (possibly altered) service time and the fault kind the
        access will complete with, or None for a clean completion.
        """
        plan = self.plan
        now = self.clock.now

        if self.disk_dead(disk_id, now):
            # The controller gives up almost immediately: no media access,
            # the drive does not answer at all.
            self.stats.counter("faults.disk_dead_rejects").add()
            return max(1, int(service_cycles * 0.02)), FAULT_DEAD

        if self.disk_offline(disk_id, now):
            # Fail fast: the controller rejects after a fraction of the
            # normal service time (command overhead, no media access).
            self.stats.counter("faults.disk_offline_rejects").add()
            return max(1, int(service_cycles * 0.05)), FAULT_OFFLINE

        if plan.slow_factor != 1.0 and self._slow_lo <= now < self._slow_hi:
            service_cycles = max(1, int(service_cycles * plan.slow_factor))
            self.stats.counter("faults.disk_slow_services").add()

        if plan.disk_error_rate > 0.0:
            if self._disk_rng(disk_id).uniform(0.0, 1.0) < plan.disk_error_rate:
                self.stats.counter("faults.disk_transient_errors").add()
                return service_cycles, FAULT_TRANSIENT

        return service_cycles, None

    # -- hint channel faults -------------------------------------------------

    def filter_hint(
        self, inode: "Inode", offset: int, length: int
    ) -> Optional[Tuple[int, int]]:
        """Pass a hint through the (lossy, noisy) channel.

        Returns None when the hint is dropped, else the (offset, length)
        actually delivered — possibly rewritten to garbage that TIP must
        tolerate (out-of-file offsets, absurd lengths).
        """
        plan = self.plan
        if plan.hint_drop_rate > 0.0:
            if self._hint_drop_rng.uniform(0.0, 1.0) < plan.hint_drop_rate:
                self.stats.counter("faults.hints_dropped").add()
                return None
        if plan.hint_corrupt_rate > 0.0:
            if self._hint_corrupt_rng.uniform(0.0, 1.0) < plan.hint_corrupt_rate:
                self.stats.counter("faults.hints_corrupted").add()
                span = max(inode.size, BLOCK_SIZE)
                offset = self._hint_garble_rng.randint(0, 2 * span)
                length = self._hint_garble_rng.randint(1, span + BLOCK_SIZE)
        return offset, length

    # -- speculation faults --------------------------------------------------

    def force_divergence(self) -> bool:
        """Should this hint-log check be forced to judge off-track?"""
        rate = self.plan.spec_divergence_rate
        if rate <= 0.0:
            return False
        if self._spec_rng.uniform(0.0, 1.0) < rate:
            self.stats.counter("faults.spec_divergence").add()
            return True
        return False
