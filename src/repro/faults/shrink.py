"""Delta-debugging shrinker for failing fuzz cells.

Given a failing ``(app, plan, seed)`` cell and the name of the monitor
that tripped, :func:`shrink_case` deterministically minimizes the fault
schedule while the *same* invariant still trips:

* **removal passes** drop whole fault events (the transient-error
  process, a slow/offline window, a disk death...) one at a time, with
  composition rules — removing the first disk death also removes the
  second death, the rebuild-share override and hedging, because they
  cannot exist without it;
* **reduction passes** lower rates, shorten windows and soften the
  slowdown factor, halving toward a floor;
* the two alternate to a fixpoint (or an evaluation budget), always in
  a fixed order, so the same failing cell always shrinks to the same
  minimal reproducer.

The result persists as a :class:`Reproducer` JSON file; the committed
ones live in ``tests/corpus/`` and are replayed by tier-1 tests (they
must stay green on main — each documents a schedule that once found a
bug) and by ``repro fuzz replay FILE``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import FuzzError, InvalidFaultPlan, ReproError
from repro.faults.generate import CASE_VERSION, FuzzCase, validate_spec_overrides
from repro.faults.plan import FaultPlan

#: ``evaluate(case) -> violations`` — the shrinker's only window into the
#: world.  Production passes a closure over the fuzz engine; tests can
#: pass a pure predicate, keeping shrink-logic tests instant.
Evaluator = Callable[[FuzzCase], List[object]]


# ---------------------------------------------------------------------------
# Event model
# ---------------------------------------------------------------------------

def shrink_events(case: FuzzCase) -> List[str]:
    """The removable fault events of a case, in shrink order.

    Finer-grained than the generator's dimensions: ``rebuild-share`` and
    ``hedged-reads`` ride on a disk death but can be removed on their
    own.  ``len(shrink_events(case))`` is the "fault event count" a
    minimal reproducer is measured by.
    """
    plan = case.plan
    events: List[str] = []
    if plan.disk_error_rate > 0.0:
        events.append("transient-errors")
    if plan.slow_factor != 1.0 and plan.slow_duration_s > 0.0:
        events.append("slow-window")
    if plan.offline_disk >= 0 and plan.offline_duration_s > 0.0:
        events.append("offline-window")
    if plan.second_dead_disk >= 0:
        events.append("second-dead-disk")
    if plan.dead_disk >= 0:
        events.append("dead-disk")
    if plan.rebuild_share > 0.0:
        events.append("rebuild-share")
    if plan.hedge_after_s > 0.0:
        events.append("hedged-reads")
    if plan.hint_drop_rate > 0.0:
        events.append("hint-drop")
    if plan.hint_corrupt_rate > 0.0:
        events.append("hint-corrupt")
    if plan.spec_divergence_rate > 0.0:
        events.append("restart-storm")
    if any(k.startswith("throttle_") for k in case.spec_overrides):
        events.append("throttle-params")
    if any(k.startswith("watchdog_") for k in case.spec_overrides):
        events.append("watchdog-params")
    return events


def _without(case: FuzzCase, event: str) -> Optional[FuzzCase]:
    """The case with one event removed (None when not removable)."""
    plan = case.plan
    overrides = dict(case.spec_overrides)
    if event == "transient-errors":
        plan = replace(plan, disk_error_rate=0.0)
    elif event == "slow-window":
        plan = replace(plan, slow_factor=1.0, slow_start_s=0.0,
                       slow_duration_s=0.0)
    elif event == "offline-window":
        plan = replace(plan, offline_disk=-1, offline_start_s=0.0,
                       offline_duration_s=0.0)
    elif event == "dead-disk":
        # Composition: the second death, the rebuild share and hedging
        # make no sense without the first death — they go with it.
        plan = replace(plan, dead_disk=-1, dead_at_s=0.0,
                       second_dead_disk=-1, second_dead_at_s=0.0,
                       rebuild_share=0.0, hedge_after_s=0.0)
    elif event == "second-dead-disk":
        plan = replace(plan, second_dead_disk=-1, second_dead_at_s=0.0)
    elif event == "rebuild-share":
        plan = replace(plan, rebuild_share=0.0)
    elif event == "hedged-reads":
        plan = replace(plan, hedge_after_s=0.0)
    elif event == "hint-drop":
        plan = replace(plan, hint_drop_rate=0.0)
    elif event == "hint-corrupt":
        plan = replace(plan, hint_corrupt_rate=0.0)
    elif event == "restart-storm":
        plan = replace(plan, spec_divergence_rate=0.0)
    elif event == "throttle-params":
        overrides = {k: v for k, v in overrides.items()
                     if not k.startswith("throttle_")}
    elif event == "watchdog-params":
        overrides = {k: v for k, v in overrides.items()
                     if not k.startswith("watchdog_")}
    else:
        return None
    try:
        plan.validate()
    except InvalidFaultPlan:
        return None
    return FuzzCase(index=case.index, app=case.app, plan=plan,
                    spec_overrides=overrides)


def _reductions(case: FuzzCase) -> List[Tuple[str, FuzzCase]]:
    """Rate/window softening candidates, in a fixed order."""
    plan = case.plan
    candidates: List[Tuple[str, FaultPlan]] = []
    for name, floor in (
        ("disk_error_rate", 0.005),
        ("hint_drop_rate", 0.02),
        ("hint_corrupt_rate", 0.02),
        ("spec_divergence_rate", 0.05),
    ):
        value = float(getattr(plan, name))
        if value > floor:
            candidates.append((
                f"halve {name}",
                replace(plan, **{name: round(value / 2.0, 6)}),
            ))
    if plan.slow_factor > 2.0 and plan.slow_duration_s > 0.0:
        candidates.append((
            "soften slow_factor",
            replace(plan, slow_factor=round(1.0 + (plan.slow_factor - 1.0) / 2.0, 4)),
        ))
    if plan.slow_duration_s > 0.001:
        candidates.append((
            "narrow slow window",
            replace(plan, slow_duration_s=round(plan.slow_duration_s / 2.0, 6)),
        ))
    if plan.offline_disk >= 0 and plan.offline_duration_s > 0.001:
        candidates.append((
            "narrow offline window",
            replace(plan, offline_duration_s=round(plan.offline_duration_s / 2.0, 6)),
        ))
    return [
        (label, FuzzCase(index=case.index, app=case.app, plan=candidate,
                         spec_overrides=dict(case.spec_overrides)))
        for label, candidate in candidates
    ]


# ---------------------------------------------------------------------------
# Shrink loop
# ---------------------------------------------------------------------------

@dataclass
class ShrinkResult:
    """Minimal failing case plus the trail of how it got there."""

    case: FuzzCase
    monitor: str
    evaluations: int
    removed: List[str] = field(default_factory=list)
    reduced: List[str] = field(default_factory=list)

    @property
    def events(self) -> List[str]:
        return shrink_events(self.case)


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.spent = 0

    def take(self) -> bool:
        if self.spent >= self.limit:
            return False
        self.spent += 1
        return True


def shrink_case(
    case: FuzzCase,
    monitor: str,
    evaluate: Evaluator,
    max_evaluations: int = 64,
) -> ShrinkResult:
    """Minimize ``case`` while ``monitor`` still trips under ``evaluate``.

    ``evaluate`` returns the cell's violations (objects with a
    ``monitor`` attribute, e.g. :class:`repro.harness.invariants.Violation`);
    the shrink predicate is "some violation from the target monitor
    survives".  Raises :class:`FuzzError` when the starting case does not
    trip the monitor at all — shrinking a passing cell is a caller bug.
    """
    budget = _Budget(max_evaluations)

    def trips(candidate: FuzzCase) -> bool:
        if not budget.take():
            return False
        violations = evaluate(candidate)
        return any(
            getattr(v, "monitor", None) == monitor for v in violations
        )

    if not trips(case):
        raise FuzzError(
            f"cannot shrink {case.key}: monitor {monitor!r} does not trip "
            f"on the starting case"
        )

    current = case
    removed: List[str] = []
    reduced: List[str] = []
    changed = True
    while changed and budget.spent < budget.limit:
        changed = False
        for event in shrink_events(current):
            candidate = _without(current, event)
            if candidate is None:
                continue
            if trips(candidate):
                current = candidate
                removed.append(event)
                changed = True
        for label, candidate in _reductions(current):
            if trips(candidate):
                current = candidate
                reduced.append(label)
                changed = True
    return ShrinkResult(
        case=current, monitor=monitor, evaluations=budget.spent,
        removed=removed, reduced=reduced,
    )


# ---------------------------------------------------------------------------
# Reproducers
# ---------------------------------------------------------------------------

@dataclass
class Reproducer:
    """A minimal shrunk schedule, persisted for replay.

    Corpus semantics: a committed reproducer documents a schedule that
    once tripped ``monitor``; on a healthy tree it must replay *green*
    (tier-1 replays every ``tests/corpus/*.json``), and while the bug is
    live ``repro fuzz replay FILE`` exits red with the violation.
    """

    case: FuzzCase
    monitor: str
    detail: str = ""
    workload_scale: float = 0.25
    note: str = ""

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "version": CASE_VERSION,
            "monitor": self.monitor,
            "detail": self.detail,
            "workload_scale": self.workload_scale,
            "note": self.note,
            "case": self.case.to_jsonable(),
        }

    @classmethod
    def from_jsonable(cls, data: object) -> "Reproducer":
        if not isinstance(data, dict):
            raise FuzzError(
                f"reproducer must be a JSON object, got {type(data).__name__}"
            )
        version = data.get("version", CASE_VERSION)
        if version != CASE_VERSION:
            raise FuzzError(
                f"reproducer version {version!r} not supported "
                f"(this build reads version {CASE_VERSION})"
            )
        if "case" not in data:
            raise FuzzError("reproducer missing its 'case' object")
        case = FuzzCase.from_jsonable(data["case"])
        validate_spec_overrides(case.spec_overrides)
        return cls(
            case=case,
            monitor=str(data.get("monitor", "")),
            detail=str(data.get("detail", "")),
            workload_scale=float(data.get("workload_scale", 0.25)),  # type: ignore[arg-type]
            note=str(data.get("note", "")),
        )

    def save(self, path: str) -> None:
        from repro.harness.checkpoint import atomic_write_json

        atomic_write_json(path, self.to_jsonable())

    @classmethod
    def load(cls, path: str) -> "Reproducer":
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise FuzzError(f"cannot read reproducer {path!r}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise FuzzError(
                f"reproducer {path!r} is not valid JSON: {exc}"
            ) from exc
        try:
            return cls.from_jsonable(data)
        except ReproError as exc:
            raise FuzzError(f"reproducer {path!r}: {exc}") from exc
