"""Deterministic fault injection and graceful degradation.

The paper's safety claim — speculative pre-execution "can never hurt
correctness" — is only interesting when something actually goes wrong.
This package supplies the wrong: seeded, reproducible fault plans that
make disks fail transiently, crawl, or drop offline; that lose or corrupt
TIP hints in the channel; and that force the speculating thread down the
wrong path.  The rest of the stack (retry policy in the striped array,
silent prefetch dropping in the cache managers, the speculation watchdog)
must degrade gracefully: every run under every fault plan produces output
byte-identical to the fault-free run.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import PROFILES, FaultPlan, profile
from repro.faults.watchdog import SpeculationWatchdog

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "PROFILES",
    "profile",
    "SpeculationWatchdog",
]
