"""Reproduction of *Automatic I/O Hint Generation through Speculative
Execution* (Fay Chang and Garth A. Gibson, OSDI 1999).

Quickstart::

    from repro import run_one, Variant

    original = run_one("agrep", Variant.ORIGINAL)
    speculating = run_one("agrep", Variant.SPECULATING)
    print(f"{speculating.improvement_over(original):.0f}% faster")

Package map (see DESIGN.md for the full inventory):

* ``repro.spechint`` — the contribution: the binary transformation tool
  and the speculation runtime;
* ``repro.tip`` — the TIP informed prefetching and caching manager;
* ``repro.vm`` — the SpecVM execution substrate (ISA, assembler, machine);
* ``repro.kernel`` / ``repro.fs`` / ``repro.storage`` — kernel, file
  system, and disk-array substrates;
* ``repro.apps`` — Agrep, Gnuld and XDataSlice benchmark programs;
* ``repro.harness`` — experiment drivers for every table and figure.
"""

from repro.harness.config import ExperimentConfig, Variant
from repro.harness.experiments import (
    improvements,
    run_cache_size_sweep,
    run_cpu_ratio_sweep,
    run_disk_sweep,
    run_matrix,
    run_one,
)
from repro.harness.results import RunResult
from repro.harness.runner import build_system, run_experiment
from repro.params import SystemConfig
from repro.spechint.tool import SpecHintTool

__version__ = "1.0.0"

__all__ = [
    "ExperimentConfig",
    "Variant",
    "RunResult",
    "SystemConfig",
    "SpecHintTool",
    "build_system",
    "run_experiment",
    "run_one",
    "run_matrix",
    "run_disk_sweep",
    "run_cache_size_sweep",
    "run_cpu_ratio_sweep",
    "improvements",
    "__version__",
]
