"""Software-enforced copy-on-write (Section 3.2.1).

Inspired by software fault isolation, every load and store the speculating
thread executes is checked against a map of copied memory regions:

* a store to a region that has not been copied first copies the region,
  then writes the copy;
* a load reads the copy when one exists (the "current" value with respect
  to speculative execution), otherwise main memory.

The original thread's memory is therefore never modified by speculation.
Region size is configurable (the paper explored 128 B - 8192 B and uses
1024 B); the check costs are charged as extra cycles on the shadow code's
``COW_*`` instructions, and first-copy costs are returned from the store
path so the machine can charge them.

Accesses to unmapped addresses raise
:class:`~repro.vm.machine.SpeculationFault`, which the machine converts to
a simulated signal (speculation halts until the next restart).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.kernel.vmstat import PageAccounting
from repro.params import PAGE_SIZE, SpecHintParams
from repro.sim.metrics import SPEC_COW_REGIONS_COPIED
from repro.trace.tracer import CAT_SPEC, NULL_TRACER, TID_SPECULATING, Tracer
from repro.vm.machine import SpeculationFault
from repro.vm.memory import MASK64, AddressSpace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.stats import StatRegistry
    from repro.spechint.auditor import IsolationAuditor

#: Synthetic page-number base for COW copies in footprint accounting.
_COW_PAGE_BASE = 1 << 42


class CowMap:
    """The copy-on-write data structure of one speculation era."""

    def __init__(
        self,
        mem: AddressSpace,
        params: SpecHintParams,
        vmstat: Optional[PageAccounting] = None,
        auditor: Optional["IsolationAuditor"] = None,
        stats: Optional["StatRegistry"] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.mem = mem
        self.region_size = params.cow_region_size
        self._copy_cost_per_region = max(
            1, int(params.cow_region_size * params.cow_copy_cycles_per_byte)
        )
        self.vmstat = vmstat
        #: Isolation auditor: checks every write against the containment
        #: map (observation only; never alters behaviour of correct code).
        self.auditor = auditor
        self.stats = stats
        self.tracer = tracer
        self._copies: Dict[int, bytearray] = {}
        #: Lifetime counters (across clears).
        self.regions_copied_total = 0
        self.bytes_copied_total = 0

    # -- lifecycle ----------------------------------------------------------

    def clear(self) -> None:
        """Discard all copies (done when speculation restarts)."""
        self._copies.clear()

    @property
    def copied_regions(self) -> int:
        return len(self._copies)

    @property
    def copied_bytes(self) -> int:
        return len(self._copies) * self.region_size

    def is_copied(self, addr: int) -> bool:
        return (addr // self.region_size) in self._copies

    # -- internals ------------------------------------------------------------

    def _check(self, addr: int, length: int) -> None:
        if not self.mem.valid(addr, length):
            raise SpeculationFault(f"speculative access to [{addr:#x}+{length}]")

    def _ensure_copied(self, region: int) -> int:
        """Copy a region on first write; returns the cycle cost incurred."""
        if region in self._copies:
            return 0
        size = self.region_size
        base = region * size
        self._copies[region] = bytearray(self.mem.raw_read(base, size))
        self.regions_copied_total += 1
        self.bytes_copied_total += size
        if self.stats is not None:
            self.stats.counter(SPEC_COW_REGIONS_COPIED).add()
        if self.tracer.enabled:
            self.tracer.instant(
                CAT_SPEC, "cow.copy", tid=TID_SPECULATING, base=base, size=size,
            )
        if self.vmstat is not None:
            # COW copies occupy real memory: account them as distinct pages.
            first = _COW_PAGE_BASE + (region * size) // PAGE_SIZE
            last = _COW_PAGE_BASE + (region * size + size - 1) // PAGE_SIZE
            for page in range(first, last + 1):
                self.vmstat.touch_page(page)
        return self._copy_cost_per_region

    def _read(self, addr: int, length: int) -> bytes:
        self._check(addr, length)
        size = self.region_size
        first = addr // size
        last = (addr + length - 1) // size
        if first == last:
            copy = self._copies.get(first)
            if copy is None:
                return self.mem.raw_read(addr, length)
            off = addr - first * size
            return bytes(copy[off:off + length])
        # Range spans regions: assemble piecewise.
        out = bytearray()
        cursor = addr
        remaining = length
        while remaining > 0:
            region = cursor // size
            off = cursor - region * size
            chunk = min(remaining, size - off)
            copy = self._copies.get(region)
            if copy is None:
                out += self.mem.raw_read(cursor, chunk)
            else:
                out += copy[off:off + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def _write(self, addr: int, payload: bytes) -> int:
        """Write through COW; returns extra cycles from first-copies."""
        self._check(addr, len(payload))
        size = self.region_size
        extra = 0
        cursor = addr
        index = 0
        remaining = len(payload)
        while remaining > 0:
            region = cursor // size
            off = cursor - region * size
            chunk = min(remaining, size - off)
            extra += self._ensure_copied(region)
            self._copies[region][off:off + chunk] = payload[index:index + chunk]
            cursor += chunk
            index += chunk
            remaining -= chunk
        if self.auditor is not None:
            self.auditor.check_cow_containment(self, addr, len(payload))
        return extra

    # -- word/byte interface (machine COW_* handlers) ------------------------------

    def load_word(self, addr: int) -> int:
        return int.from_bytes(self._read(addr, 8), "little")

    def store_word(self, addr: int, value: int) -> int:
        return self._write(addr, (value & MASK64).to_bytes(8, "little"))

    def load_byte(self, addr: int) -> int:
        return self._read(addr, 1)[0]

    def store_byte(self, addr: int, value: int) -> int:
        return self._write(addr, bytes((value & 0xFF,)))

    # -- bulk interface (SpecHint runtime) -------------------------------------------

    def read_bytes(self, addr: int, length: int) -> bytes:
        """Speculation-visible bytes (used for path strings and the like).

        Zero- and negative-length ranges raise the typed fault instead of
        silently returning nothing: a degenerate range is always a bug in
        the shadow code, and silent truncation would let speculation run
        on with garbage.
        """
        if length <= 0:
            raise SpeculationFault(
                f"zero-length speculative read at {addr:#x} (length {length})"
            )
        return self._read(addr, length)

    def write_bytes(self, addr: int, payload: bytes) -> int:
        """Bulk speculative write (e.g. cached read data into a buffer);
        returns first-copy cycle costs."""
        if not payload:
            raise SpeculationFault(
                f"zero-length speculative write at {addr:#x}"
            )
        return self._write(addr, payload)

    def read_cstring(self, addr: int, max_len: int = 4096) -> bytes:
        """NUL-terminated string as speculation sees it.

        The scan never leaves the mapped segment containing ``addr``: a
        string that would cross the segment (shadow-region) boundary
        raises the typed fault explicitly rather than relying on per-byte
        validity of whatever lies beyond.
        """
        seg_end = self.mem.segment_end(addr)
        if seg_end is None:
            raise SpeculationFault(
                f"speculative string at unmapped address {addr:#x}"
            )
        limit = min(max_len, seg_end - addr)
        out = bytearray()
        for i in range(limit):
            byte = self.load_byte(addr + i)
            if byte == 0:
                return bytes(out)
            out.append(byte)
        if limit < max_len:
            raise SpeculationFault(
                f"speculative string at {addr:#x} crosses the region "
                f"boundary at {seg_end:#x}"
            )
        raise SpeculationFault(f"unterminated speculative string at {addr:#x}")

    def precopy_range(self, addr: int, length: int) -> int:
        """Eagerly copy every region covering [addr, addr+length).

        Used for the restart-time stack copy: the speculating thread works
        on a private copy of the original thread's stack, which also lets
        stack-relative accesses skip COW checks (paper footnote 3).
        Returns the number of bytes copied.  Zero- and negative-length
        ranges raise the typed fault (callers must skip empty copies
        explicitly; a silent no-op here masked bad restart arithmetic).
        """
        if length <= 0:
            raise SpeculationFault(
                f"degenerate precopy range [{addr:#x}+{length}]"
            )
        self._check(addr, length)
        size = self.region_size
        first = addr // size
        last = (addr + length - 1) // size
        copied = 0
        for region in range(first, last + 1):
            if self._ensure_copied(region):
                copied += size
        return copied
