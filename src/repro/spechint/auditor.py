"""The speculation isolation auditor.

The paper's entire safety argument rests on one invariant: software-enforced
copy-on-write and syscall suppression guarantee that speculative
pre-execution can never alter the original thread's state, no matter how
far off track it runs.  This module turns that assumption into an enforced,
tested contract, in three parts:

* **write containment** — while the speculating thread is on the CPU, an
  :class:`~repro.vm.memory.AddressSpace` write guard reports every main
  memory mutation *before* it lands.  The only range speculation may write
  directly is its private heap; everything else must go through the COW
  map, whose writes are additionally checked against the containment map
  (the set of copied regions).  A write that escapes either raises a typed
  :class:`~repro.errors.IsolationViolation` with main memory untouched;

* **tamper-evident audit table** — every suppressed side effect (writes
  pretended successful, forbidden syscalls parked, restarts, quarantines)
  is appended to a hash-chained record table.  The chain digest is
  re-verified at each restart boundary, so a record rewritten after the
  fact is detected;

* **restart-boundary digest** — the original thread digests its non-shadow
  state (fd-table bindings, heap break, the saved register snapshot) at
  every read call; the speculating thread re-digests and compares before
  consuming the saved state in :meth:`perform_restart`.  Speculation can
  only restart from state it provably did not disturb.

On any violation the runtime imposes a :class:`IsolationQuarantine` —
speculation is suspended for a bounded, exponentially growing number of
original-thread reads, and permanently after a few repeat offences.  This
generalizes the PR-1 watchdog's one-way disable: a transient corruption
costs a bounded window of hinting, a persistent one degenerates to vanilla
execution.  The original thread is never touched either way.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple

from repro.errors import IsolationViolation
from repro.vm.memory import SPEC_HEAP_BASE, SPEC_HEAP_MAX, AddressSpace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.process import Process
    from repro.spechint.cow import CowMap

#: Chain anchor for an empty audit table.
_GENESIS = "spechint-audit-genesis"


def _digest(*parts: object) -> str:
    """Short, stable hex digest of a tuple of printable parts."""
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")
    return h.hexdigest()[:24]


class AuditRecord:
    """One entry of the tamper-evident audit table."""

    __slots__ = ("seq", "kind", "detail", "digest")

    def __init__(self, seq: int, kind: str, detail: str, digest: str) -> None:
        self.seq = seq
        self.kind = kind
        self.detail = detail
        #: Chain digest covering this record and every record before it.
        self.digest = digest

    def __repr__(self) -> str:
        return f"AuditRecord({self.seq}, {self.kind!r}, {self.detail!r})"


class AuditTable:
    """Hash-chained, bounded log of suppressed speculative side effects.

    Each record's digest covers the previous digest, so rewriting any
    retained record breaks :meth:`verify`.  Old records fold into the
    anchor digest when the table exceeds its capacity — the chain stays
    verifiable end to end while memory stays bounded.
    """

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = max(1, capacity)
        self._records: Deque[AuditRecord] = deque()
        #: Digest of everything folded out of the retained window.
        self.anchor_digest = _digest(_GENESIS)
        self.head_digest = self.anchor_digest
        self.records_total = 0

    def record(self, kind: str, detail: str = "") -> AuditRecord:
        seq = self.records_total
        self.records_total += 1
        digest = _digest(self.head_digest, seq, kind, detail)
        entry = AuditRecord(seq, kind, detail, digest)
        self._records.append(entry)
        self.head_digest = digest
        while len(self._records) > self.capacity:
            folded = self._records.popleft()
            self.anchor_digest = folded.digest
        return entry

    def records(self) -> List[AuditRecord]:
        return list(self._records)

    def verify(self) -> None:
        """Recompute the chain; raises :class:`IsolationViolation` when any
        retained record was altered after it was written."""
        running = self.anchor_digest
        for entry in self._records:
            expected = _digest(running, entry.seq, entry.kind, entry.detail)
            if entry.digest != expected:
                raise IsolationViolation(
                    f"audit record #{entry.seq} ({entry.kind}) fails its "
                    f"chain digest: table was tampered with"
                )
            running = entry.digest
        if running != self.head_digest:
            raise IsolationViolation("audit table head digest mismatch")

    def __len__(self) -> int:
        return len(self._records)


class IsolationQuarantine:
    """Bounded-restart quarantine: how long speculation stays benched.

    The first violation suspends speculation for ``base_reads``
    original-thread read calls; each further violation doubles the window;
    after ``max_violations`` the quarantine is permanent.  This generalizes
    the watchdog's one-way disable to a graded response.
    """

    def __init__(self, base_reads: int = 64, max_violations: int = 3) -> None:
        self.base_reads = max(1, base_reads)
        self.max_violations = max(1, max_violations)
        self.violations = 0
        self.reads_remaining = 0
        self.permanent = False
        self.reasons: List[str] = []

    @property
    def active(self) -> bool:
        return self.permanent or self.reads_remaining > 0

    def impose(self, reason: str) -> None:
        self.violations += 1
        self.reasons.append(reason)
        if self.violations >= self.max_violations:
            self.permanent = True
            self.reads_remaining = 0
        else:
            self.reads_remaining = self.base_reads * (2 ** (self.violations - 1))

    def tick_read(self) -> bool:
        """Count one original-thread read; True when this read releases the
        quarantine."""
        if self.permanent or self.reads_remaining <= 0:
            return False
        self.reads_remaining -= 1
        return self.reads_remaining == 0

    def __repr__(self) -> str:
        if self.permanent:
            return f"IsolationQuarantine(permanent, {self.violations} violations)"
        if self.reads_remaining:
            return f"IsolationQuarantine({self.reads_remaining} reads left)"
        return "IsolationQuarantine(clear)"


class IsolationAuditor:
    """Checks the isolation invariant for one speculating process."""

    def __init__(self, process: "Process", capacity: int = 1024) -> None:
        self.process = process
        self.table = AuditTable(capacity)

        #: Boundary digests (captured by the original thread, verified by
        #: the speculating thread at the next restart).
        self._boundary_digest: Optional[str] = None
        self._saved_regs_digest: Optional[str] = None

        #: Lifetime statistics.
        self.cow_writes_checked = 0
        self.guard_checks = 0
        self.boundary_captures = 0
        self.boundary_verifies = 0
        self.violations = 0

    # -- write containment ---------------------------------------------------

    def arm(self, mem: AddressSpace) -> None:
        """Attach the write guard (speculating thread about to execute)."""
        mem.write_guard = self._on_guarded_write

    def disarm(self, mem: AddressSpace) -> None:
        mem.write_guard = None

    def _on_guarded_write(self, addr: int, length: int) -> None:
        """A main-memory mutation while speculation holds the CPU.

        The only main memory the speculating thread may write directly is
        its private heap; everything else must stay inside COW copies.
        """
        self.guard_checks += 1
        end = addr + max(0, length)
        if SPEC_HEAP_BASE <= addr and end <= SPEC_HEAP_MAX:
            return
        self.violations += 1
        raise IsolationViolation(
            f"speculative write to main memory [{addr:#x}+{length}] "
            f"escaped COW containment"
        )

    def check_cow_containment(self, cow: "CowMap", addr: int, length: int) -> None:
        """Post-write check: every region the write covered must be in the
        containment map (the COW copy table)."""
        self.cow_writes_checked += 1
        size = cow.region_size
        first = addr // size
        last = (addr + max(1, length) - 1) // size
        for region in range(first, last + 1):
            if not cow.is_copied(region * size):
                self.violations += 1
                raise IsolationViolation(
                    f"COW write to [{addr:#x}+{length}] left region "
                    f"{region:#x} out of the containment map"
                )

    # -- restart-boundary digest ---------------------------------------------

    def _state_digest(self) -> str:
        """Digest of non-shadow state speculation must never disturb:
        fd-table bindings (fd -> inode; offsets excluded because the
        blocked read legitimately advances its own offset) and the heap
        break."""
        bindings: Tuple = tuple(sorted(
            (fd, state.inode.ino if state.inode is not None else -1)
            for fd, state in self.process.fds.items()
        ))
        return _digest(bindings, self.process.mem.brk)

    def capture_boundary(self, saved_regs: Optional[List[int]]) -> None:
        """Original-thread side: snapshot the boundary digests at a read
        call (the last capture before a restart is the blocking read)."""
        self.boundary_captures += 1
        self._boundary_digest = self._state_digest()
        self._saved_regs_digest = (
            _digest(tuple(saved_regs)) if saved_regs is not None else None
        )

    def verify_restart_boundary(self, saved_regs: Optional[List[int]]) -> None:
        """Speculating-thread side: nothing non-shadow may have changed
        since the original thread captured the boundary, and the saved
        register snapshot must be exactly what was saved.  Also re-verifies
        the audit chain."""
        self.boundary_verifies += 1
        self.table.verify()
        if self._boundary_digest is not None:
            current = self._state_digest()
            if current != self._boundary_digest:
                self.violations += 1
                raise IsolationViolation(
                    "non-shadow state (fd table / heap break) changed "
                    "across the speculation-only window"
                )
        if self._saved_regs_digest is not None and saved_regs is not None:
            if _digest(tuple(saved_regs)) != self._saved_regs_digest:
                self.violations += 1
                raise IsolationViolation(
                    "saved register snapshot was mutated between the "
                    "restart request and the restart"
                )
