"""Transformation statistics (the paper's Table 3)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TransformReport:
    """What the SpecHint tool did to one binary."""

    binary_name: str
    #: Wall-clock seconds the transformation took (Table 3 "Modification time").
    modification_time_s: float

    #: Original executable size in bytes.
    original_size_bytes: int
    #: Transformed executable size in bytes (shadow code + SpecHint runtime
    #: objects + threading libraries).
    transformed_size_bytes: int

    #: Instruction counts.
    original_insns: int
    shadow_insns: int

    #: Transformation detail counters.
    loads_wrapped: int
    stores_wrapped: int
    stack_relative_skipped: int
    cwork_dilated: int
    static_transfers_redirected: int
    dynamic_transfers_routed: int
    jump_tables_remapped: int
    jump_tables_unrecognized: int
    output_calls_stripped: int
    reads_substituted: int
    syscalls_guarded: int

    #: Static-analysis optimization counters (all zero when the tool runs
    #: without ``optimize=True``).
    analysis_applied: bool = False
    stores_elided_dead: int = 0
    loads_unchecked_dead: int = 0
    stack_proved_unchecked: int = 0
    heap_stores_elided: int = 0
    transfers_statically_resolved: int = 0
    #: Instrumentation cost: COW check cycles the mechanical transformation
    #: would emit vs. what was emitted after analysis.
    check_cycles_baseline: int = 0
    check_cycles_emitted: int = 0

    @property
    def stores_elided(self) -> int:
        """Store sites whose COW wrapper was removed entirely."""
        return self.stores_elided_dead + self.heap_stores_elided

    @property
    def store_elision_pct(self) -> float:
        """% of would-be COW store wrappers the analysis elided."""
        total = self.stores_wrapped + self.stores_elided
        if total <= 0:
            return 0.0
        return 100.0 * self.stores_elided / total

    @property
    def check_cycles_saved_pct(self) -> float:
        """% of baseline COW check cycles removed by the analysis."""
        if self.check_cycles_baseline <= 0:
            return 0.0
        saved = self.check_cycles_baseline - self.check_cycles_emitted
        return 100.0 * saved / self.check_cycles_baseline

    @property
    def size_increase_pct(self) -> float:
        """Percentage growth of the executable (Table 3 "% increase in size")."""
        if self.original_size_bytes <= 0:
            return 0.0
        growth = self.transformed_size_bytes - self.original_size_bytes
        return 100.0 * growth / self.original_size_bytes

    def row(self) -> str:
        """One formatted Table 3 row."""
        return (
            f"{self.binary_name:<12} {self.modification_time_s:>8.3f}s "
            f"{self.transformed_size_bytes / 1024:>10,.0f} KB "
            f"{self.size_increase_pct:>8.0f}%"
        )
