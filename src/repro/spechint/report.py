"""Transformation statistics (the paper's Table 3)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TransformReport:
    """What the SpecHint tool did to one binary."""

    binary_name: str
    #: Wall-clock seconds the transformation took (Table 3 "Modification time").
    modification_time_s: float

    #: Original executable size in bytes.
    original_size_bytes: int
    #: Transformed executable size in bytes (shadow code + SpecHint runtime
    #: objects + threading libraries).
    transformed_size_bytes: int

    #: Instruction counts.
    original_insns: int
    shadow_insns: int

    #: Transformation detail counters.
    loads_wrapped: int
    stores_wrapped: int
    stack_relative_skipped: int
    cwork_dilated: int
    static_transfers_redirected: int
    dynamic_transfers_routed: int
    jump_tables_remapped: int
    jump_tables_unrecognized: int
    output_calls_stripped: int
    reads_substituted: int
    syscalls_guarded: int

    @property
    def size_increase_pct(self) -> float:
        """Percentage growth of the executable (Table 3 "% increase in size")."""
        if self.original_size_bytes <= 0:
            return 0.0
        growth = self.transformed_size_bytes - self.original_size_bytes
        return 100.0 * growth / self.original_size_bytes

    def row(self) -> str:
        """One formatted Table 3 row."""
        return (
            f"{self.binary_name:<12} {self.modification_time_s:>8.3f}s "
            f"{self.transformed_size_bytes / 1024:>10,.0f} KB "
            f"{self.size_increase_pct:>8.0f}%"
        )
